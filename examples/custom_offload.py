#!/usr/bin/env python
"""Writing your own offload engine.

PANIC's promise (section 3.1.1) is that *any* self-contained engine can
join the NIC: implement ``service_time_ps`` (the cost model) and
``handle`` (the transform), bind it to a mesh tile, and program a chain
through it.  This example adds a word-count telemetry engine that
annotates packets with payload statistics, then chains HTTP-ish traffic
through telemetry + checksum while other traffic skips both.

Run with::

    python examples/custom_offload.py
"""

from typing import List

from repro import PanicConfig, PanicNic, Simulator
from repro.engines import Engine
from repro.engines.base import EngineOutput
from repro.packet import Packet, build_udp_frame, parse_frame
from repro.sim.clock import US


class TelemetryEngine(Engine):
    """Counts words/bytes in UDP payloads (a toy DPI-style offload)."""

    def __init__(self, sim, name, **kwargs):
        super().__init__(sim, name, **kwargs)
        self.total_words = 0

    def service_time_ps(self, packet: Packet) -> int:
        # One byte per cycle plus fixed setup -- an honest cost model
        # keeps the scheduler's decisions meaningful.
        return self.clock.cycles_to_ps(8 + packet.frame_bytes)

    def handle(self, packet: Packet) -> List[EngineOutput]:
        payload = parse_frame(packet.data).payload
        words = len(payload.split())
        self.total_words += words
        packet.meta.annotations["telemetry"] = {
            "words": words,
            "bytes": len(payload),
        }
        return [(packet, None)]  # continue along the chain


def main() -> None:
    sim = Simulator()
    # Leave a spare tile for the custom engine: use a 4x4 mesh with a
    # smaller stock offload set.
    nic = PanicNic(sim, PanicConfig(ports=1, offloads=("checksum",)))

    # Build and bind the custom engine on a free tile, then wire its
    # lookup-table default back to the heavyweight pipeline.
    telemetry = TelemetryEngine(sim, "panic.telemetry")
    port = nic.mesh.bind(telemetry, 2, 2)
    telemetry.bind_port(port)
    telemetry.lookup_table.default_next = nic.rmt.address
    nic.engines["telemetry"] = telemetry
    nic.control._addr_of["telemetry"] = telemetry.address

    # Chain DSCP-8 traffic through telemetry then checksum.
    nic.control.route_dscp(8, ["telemetry", "checksum"])

    delivered = []
    nic.host.software_handler = lambda p, q: delivered.append(p)

    def udp(payload: bytes, dscp: int) -> Packet:
        return Packet(build_udp_frame(
            src_mac="02:00:00:00:00:01", dst_mac="02:00:00:00:00:02",
            src_ip="10.0.0.1", dst_ip="10.0.0.2",
            src_port=1234, dst_port=80, payload=payload, dscp=dscp,
        ))

    monitored = udp(b"GET /index.html HTTP/1.1 Host: example", dscp=8)
    ordinary = udp(b"opaque bulk bytes", dscp=0)
    nic.inject(monitored)
    nic.inject(ordinary)
    sim.run()

    assert len(delivered) == 2
    print("monitored path :", " -> ".join(monitored.trail))
    print("ordinary path  :", " -> ".join(ordinary.trail))
    print("telemetry      :", monitored.meta.annotations["telemetry"])
    print("words counted  :", telemetry.total_words)
    assert "panic.telemetry" in monitored.trail
    assert "panic.telemetry" not in ordinary.trail
    assert monitored.meta.annotations["csum_ok"] is True


if __name__ == "__main__":
    main()
