#!/usr/bin/env python
"""Quickstart: build a PANIC NIC, serve a key-value GET from the NIC.

Run with::

    python examples/quickstart.py

This walks the paper's headline scenario in ~40 lines: a GET for a hot
key is answered by the on-NIC cache engine -- parsed and routed by the
heavyweight RMT pipeline, scheduled by the slack-ranked PIFO, switched
over the 2D mesh -- without the host CPU ever running.
"""

from repro import PanicConfig, PanicNic, Simulator
from repro.packet import KvOpcode, KvRequest, build_kv_request_frame, parse_frame
from repro.sim.clock import format_time


def main() -> None:
    sim = Simulator()

    # A one-port 100 Gbps NIC on a 4x4 mesh with the default offload set
    # (IPSec, compression, KV cache, RDMA).
    nic = PanicNic(sim, PanicConfig(ports=1))

    # Program the logical switch: KV opcodes flow through the cache.
    nic.control.enable_kv_cache()

    # Warm the on-NIC cache with a hot key.
    nic.offload("kvcache").cache_put(b"user:42", b"{'name': 'ada'}")

    # A client GET arrives on the wire.
    request = build_kv_request_frame(
        KvRequest(KvOpcode.GET, tenant=1, request_id=1, key=b"user:42")
    )
    nic.inject(request)
    sim.run()

    # The response left the NIC without touching the host.
    [response] = nic.transmitted
    kv = parse_frame(response.data).kv_response()
    print(f"response value : {kv.value!r}")
    print(f"request path   : {' -> '.join(request.trail)}")
    print(f"finished at    : {format_time(sim.now)}")
    print(f"host CPU ran   : {nic.host.interrupts_taken.value} times")
    assert kv.value == b"{'name': 'ada'}"
    assert nic.host.interrupts_taken.value == 0


if __name__ == "__main__":
    main()
