#!/usr/bin/env python
"""A full rack scenario: client machine <-> PANIC server over a cable.

Both machines have PANIC NICs.  The client's application posts KV
requests into its own NIC's transmit rings (doorbell -> DMA -> RMT ->
wire); the server's NIC answers hot keys from its cache *without waking
the server CPU*, while cold keys fall through to the server's software
KV server.  Response latency is measured application-to-application.

Run with::

    python examples/client_server_rack.py
"""

from repro import HostKvServer, PanicConfig, PanicNic, Simulator
from repro.analysis import format_table, mesh_map, utilization_report
from repro.packet import KvOpcode, KvRequest, build_kv_request_frame, parse_frame
from repro.sim.clock import NS, US
from repro.workloads import Wire


def main() -> None:
    sim = Simulator()
    client = PanicNic(sim, PanicConfig(ports=1), name="client")
    server = PanicNic(sim, PanicConfig(ports=1), name="server")
    server.control.enable_kv_cache()
    HostKvServer(server.host)
    Wire(sim, client, server, propagation_ps=500 * NS)

    # Server state: hot keys cached on the NIC, the rest in host memory.
    for i in range(10):
        server.offload("kvcache").cache_put(b"hot%d" % i, b"hot-value")
    for i in range(100):
        server.host.store(b"cold%d" % i, b"cold-value")

    # Client application: issue requests, time the responses.
    sent = {}
    latencies = {"hot": [], "cold": []}

    def client_rx(packet, queue):
        frame = parse_frame(packet.data)
        if not frame.is_kv or frame.payload[0] != KvOpcode.RESPONSE:
            return
        response = frame.kv_response()
        kind, t0 = sent.pop(response.request_id)
        latencies[kind].append((sim.now - t0) / US)

    client.host.software_handler = client_rx

    request_id = 0
    for i in range(30):
        kind = "hot" if i % 2 == 0 else "cold"
        key = b"%s%d" % (kind.encode(), i % 10)
        frame = build_kv_request_frame(
            KvRequest(KvOpcode.GET, 1, request_id, key)
        ).data
        sent[request_id] = (kind, sim.now)
        client.host.enqueue_tx(frame)
        request_id += 1
        sim.run(until_ps=sim.now + 30 * US)  # pace the client a little
    sim.run()

    print(mesh_map(server))
    print()
    rows = []
    for kind in ("hot", "cold"):
        values = latencies[kind]
        rows.append([
            kind, len(values),
            f"{sum(values) / len(values):.1f}",
            f"{max(values):.1f}",
        ])
    print(format_table(
        ["key class", "responses", "mean RTT (us)", "max RTT (us)"],
        rows,
        title="Application-to-application KV latency across the rack",
    ))
    print()
    print(f"server NIC cache hits : {server.offload('kvcache').hits.value}")
    print(f"server CPU interrupts : {server.host.interrupts_taken.value} "
          "(only the cold keys)")
    print()
    print(utilization_report(server))


if __name__ == "__main__":
    main()
