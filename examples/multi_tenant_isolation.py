#!/usr/bin/env python
"""Performance isolation with the slack-based logical scheduler.

Section 3.1.3 / 3.2: a bandwidth hog and a latency-sensitive tenant
share the DMA engine, whose service is slow because the host memory is
contended.  With FIFO scheduling the sensitive tenant's tail latency
explodes; with slack scheduling its messages bypass the hog's queued DMA
requests and the tail collapses -- while the hog loses nothing.

Run with::

    python examples/multi_tenant_isolation.py
"""

from repro import PanicConfig, PanicNic, Simulator
from repro.analysis import format_table
from repro.sim.clock import MS, US
from repro.sim.stats import Histogram
from repro.workloads import KvsWorkload, TenantSpec

SENSITIVE, HOG = 1, 2


def run(use_slack: bool) -> dict:
    sim = Simulator()
    nic = PanicNic(sim, PanicConfig(ports=1))
    nic.host.contention_ps = 2 * US  # co-running apps hammer host memory

    if use_slack:
        nic.control.set_tenant_slack(SENSITIVE, 10 * US)
        nic.control.set_tenant_slack(HOG, 10 * MS)
    else:  # FIFO: identical slack for everyone
        nic.control.set_tenant_slack(SENSITIVE, 100 * US)
        nic.control.set_tenant_slack(HOG, 100 * US)

    latency = {SENSITIVE: Histogram(), HOG: Histogram()}

    def on_delivery(packet, queue):
        tenant = packet.meta.tenant
        if tenant in latency and packet.meta.nic_arrival_ps is not None:
            latency[tenant].record((sim.now - packet.meta.nic_arrival_ps) / US)

    nic.host.software_handler = on_delivery
    workload = KvsWorkload(
        sim, nic,
        [
            TenantSpec(SENSITIVE, rate_pps=50_000, latency_sensitive=True,
                       key_space=50, get_fraction=1.0),
            TenantSpec(HOG, rate_pps=2_000_000, key_space=500,
                       get_fraction=0.0, value_bytes=1024),
        ],
        requests_per_tenant=100,
    )
    workload.start()
    sim.run()
    return {
        "p50": latency[SENSITIVE].percentile(50),
        "p99": latency[SENSITIVE].percentile(99),
        "hog_delivered": latency[HOG].count,
    }


def main() -> None:
    fifo = run(use_slack=False)
    slack = run(use_slack=True)
    print(format_table(
        ["scheduler", "sensitive p50 (us)", "sensitive p99 (us)",
         "hog delivered"],
        [
            ["FIFO", f"{fifo['p50']:.1f}", f"{fifo['p99']:.1f}",
             fifo["hog_delivered"]],
            ["slack", f"{slack['p50']:.1f}", f"{slack['p99']:.1f}",
             slack["hog_delivered"]],
        ],
        title="NIC-side delivery latency of the latency-sensitive tenant",
    ))
    improvement = fifo["p99"] / slack["p99"]
    print(f"\nslack scheduling cuts the sensitive tenant's p99 by "
          f"{improvement:.1f}x; the hog still delivered "
          f"{slack['hog_delivered']}/100 packets")


if __name__ == "__main__":
    main()
