#!/usr/bin/env python
"""Graceful degradation when an offload engine dies mid-run.

A single-port NIC carries two IPSec-bound traffic classes over two IPSec
lanes (``ipsec`` and the instanced spare ``ipsec1``).  A seeded
:class:`~repro.faults.FaultPlan` kills the primary lane a third of the
way through the run.  The mesh-resident :class:`HealthMonitor` notices
within its credit-timeout (the probe outstanding past ``timeout_ps``),
declares the tile dead, and the control plane recomputes every chain and
lookup-table route through the backup.  Throughput dips during the
detection window (those packets are black-holed, and counted) and then
recovers -- the NIC degrades instead of wedging.

Run with::

    python examples/fault_tolerance.py
"""

from repro import PanicConfig, PanicNic, Simulator
from repro.analysis import format_table
from repro.faults import FaultInjector, FaultPlan, attach_health_monitor
from repro.packet.builder import build_udp_frame
from repro.packet.packet import MessageKind, Packet
from repro.sim.clock import NS, US, format_time

N_FRAMES = 400
GAP_PS = 150 * NS
CRASH_AT = 30 * US
HORIZON = 200 * US


def build_nic(sim: Simulator) -> PanicNic:
    nic = PanicNic(sim, PanicConfig(
        ports=1,
        offloads=("ipsec", "ipsec1", "compression", "kvcache"),
    ))
    nic.set_backup("ipsec", "ipsec1")
    # Two traffic classes, one per lane; after failover both share ipsec1.
    nic.control.route_dscp(10, ["ipsec"])
    nic.control.route_dscp(12, ["ipsec1"])
    return nic


def spray(sim: Simulator, nic: PanicNic) -> None:
    def inject(i: int = 0) -> None:
        if i >= N_FRAMES:
            return
        frame = build_udp_frame(
            src_mac="02:00:00:00:00:01", dst_mac="02:00:00:00:00:02",
            src_ip="10.0.0.1", dst_ip="10.0.0.2",
            src_port=1000 + i, dst_port=9,
            dscp=10 if i % 2 == 0 else 12,
            payload=bytes(120),
        )
        nic.inject(Packet(frame, MessageKind.ETHERNET))
        sim.schedule(GAP_PS, inject, i + 1)

    inject()


def main() -> None:
    sim = Simulator()
    nic = build_nic(sim)
    monitor = attach_health_monitor(nic, period_ps=2 * US, timeout_ps=4 * US)
    monitor.start()

    plan = FaultPlan(seed=42).crash_engine(CRASH_AT, "ipsec")
    FaultInjector(nic, plan).arm()
    print(plan.describe())
    print()

    # Sample delivery progress so the dip-and-recover shape is visible.
    timeline = []

    def sample(last=[0]) -> None:
        delivered = nic.host.rx_delivered.value
        timeline.append((sim.now // US, delivered, delivered - last[0]))
        last[0] = delivered
        if sim.now < HORIZON:
            sim.schedule(20 * US, sample)

    sim.schedule(20 * US, sample)

    spray(sim, nic)
    sim.run(until_ps=HORIZON)
    monitor.stop()
    sim.run()  # drain

    stats = nic.stats()
    print(format_table(
        ["time (us)", "delivered (total)", "delivered (window)"],
        [[t, total, window] for t, total, window in timeline],
        title="Delivery progress (crash at 30 us)",
    ))
    print()
    print("failure detected at :", ", ".join(
        f"{key} @{format_time(when)}" for key, when in monitor.failed_at.items()
    ) or "never")
    print("primary (ipsec)     :", int(stats["ipsec"]["processed"]),
          "processed,", int(stats["faults"]["blackholed"]), "black-holed")
    print("backup (ipsec1)     :", int(stats["ipsec1"]["processed"]), "processed")
    print("delivered to host   :", int(stats["host"]["rx_delivered"]),
          f"/ {N_FRAMES}")
    print("watchdog            :",
          int(stats["faults"]["watchdog_fires"]), "fire(s),",
          int(stats["faults"]["failovers"]), "failover(s)")
    nic.mesh.assert_drained()
    print("mesh                : fully drained (0 messages in flight)")


if __name__ == "__main__":
    main()
