#!/usr/bin/env python
"""DCQCN congestion control running entirely on PANIC engines.

Two machines on a cable.  The sender streams a bulk flow; the receiver's
host memory is slow, so its DMA queue builds.  Three PANIC engines close
the classic DCQCN loop (Zhu et al., SIGCOMM 2015):

* the receiver's ``ecnmark`` engine RED-marks the flow CE as the DMA
  queue deepens;
* the receiver host answers CE with CNPs (congestion notifications);
* the sender's ``dcqcn`` engine catches the CNPs and throttles the
  flow's token bucket in the ``ratelimit`` engine, with timer-driven
  recovery afterwards.

Run with::

    python examples/congestion_control.py
"""

from repro import PanicConfig, PanicNic, Simulator
from repro.analysis import format_table
from repro.engines.dcqcn import CNP_UDP_PORT, CnpResponder
from repro.packet import KvOpcode, KvRequest, build_kv_request_frame
from repro.sim.clock import US
from repro.workloads import Wire

FLOW = 7
N_FRAMES = 200
BATCH = 8
BATCH_GAP_PS = 15 * US


def main() -> None:
    sim = Simulator()
    sender = PanicNic(sim, PanicConfig(
        ports=1, offloads=("ratelimit", "dcqcn")), name="sender")
    receiver = PanicNic(sim, PanicConfig(
        ports=1, offloads=("ecnmark",),
        offload_params={"ecnmark": {"k_min": 3, "k_max": 10}},
        coalesce_count=2,
    ), name="receiver")
    Wire(sim, sender, receiver)
    receiver.host.contention_ps = 3 * US

    delivered = []
    receiver.host.software_handler = lambda p, q: delivered.append(sim.now)

    # Program the loop.  (The CnpResponder wraps whatever software
    # handler is already installed, so register it last.)
    receiver.control.route_tenant(FLOW, ["ecnmark"])
    CnpResponder(receiver.host, min_gap_ps=20 * US)
    sender.control.route_tenant_tx(FLOW, ["ratelimit"])
    sender.offload("ratelimit").set_rate(FLOW, rate_bps=100e9,
                                         burst_bytes=16384)
    sender.control.route_udp_port(CNP_UDP_PORT, ["dcqcn"], append_dma=False)

    def post_batch(start: int) -> None:
        for i in range(start, min(start + BATCH, N_FRAMES)):
            frame = build_kv_request_frame(
                KvRequest(KvOpcode.SET, FLOW, i, b"k%03d" % i, b"v" * 800),
                ecn=2,
            ).data
            sender.host.tx_rings[0].append(frame)
        sender.pcie.ring_doorbell(0)

    for batch in range(0, N_FRAMES, BATCH):
        sim.schedule_at(batch // BATCH * BATCH_GAP_PS, post_batch, batch)

    # Sample the controlled rate over time.
    timeline = []

    def sample():
        bucket = sender.offload("ratelimit").bucket(FLOW)
        rate = bucket.rate_bps if bucket else 100e9
        timeline.append((sim.now / US, rate / 1e9,
                         receiver.dma.backlog))
        if len(delivered) < N_FRAMES:
            sim.schedule(40 * US, sample)

    sim.schedule(0, sample)
    sim.run()

    print(format_table(
        ["time (us)", "sender rate (Gbps)", "receiver DMA queue"],
        [[f"{t:.0f}", f"{rate:.2f}", queue] for t, rate, queue in timeline[:20]],
        title="DCQCN control timeline (first 20 samples)",
    ))
    print()
    print(f"delivered          : {len(delivered)}/{N_FRAMES} (lossless)")
    print(f"CE marks           : {receiver.offload('ecnmark').marked.value}")
    print(f"CNPs processed     : {sender.offload('dcqcn').cnps.value}")
    print(f"receiver queue peak: {receiver.dma.queue.max_occupancy}")


if __name__ == "__main__":
    main()
