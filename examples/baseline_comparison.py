#!/usr/bin/env python
"""Head-to-head: PANIC vs the three existing NIC architectures (Fig. 2).

One mixed workload -- 90% plain packets, 10% needing a slow DPI scan --
runs over all four NICs built from the *same* engine implementations and
host model.  Reported per NIC: mean and p99 NIC-side latency of the
plain ("victim") packets, plus each architecture's characteristic
pathology.

Run with::

    python examples/baseline_comparison.py
"""

from repro import PanicConfig, PanicNic, Simulator
from repro.analysis import format_table
from repro.baselines import ManycoreNic, PipelineNic, RmtNic, UnsupportedOffloadError
from repro.core.pipeline_programs import DIR_RX
from repro.engines import ChecksumEngine, RegexEngine
from repro.packet import Packet, build_udp_frame
from repro.rmt import MatchKey, RmtProgram
from repro.sim.clock import US

N = 60
GAP_PS = 150_000


def traffic(mark_needs: bool):
    packets = []
    for i in range(N):
        dpi = i % 10 == 0
        payload = b"scan me " * 120 if dpi else b"fast"
        frame = build_udp_frame(
            src_mac="02:00:00:00:00:01", dst_mac="02:00:00:00:00:02",
            src_ip="10.0.0.1", dst_ip="10.0.0.2",
            src_port=7000 + i % 16, dst_port=8888,
            payload=payload, dscp=1 if dpi else 0, identification=i,
        )
        packet = Packet(frame)
        packet.meta.annotations["seq"] = i
        if dpi and mark_needs:
            packet.meta.annotations["needs"] = ("regex",)
        packets.append((packet, dpi))
    return packets


def victim_stats(sim, nic, mark_needs):
    done = {}
    nic.host.software_handler = (
        lambda p, q: done.__setitem__(p.meta.annotations["seq"], sim.now)
    )
    victims = []
    for i, (packet, dpi) in enumerate(traffic(mark_needs)):
        sim.schedule_at(i * GAP_PS, nic.inject, packet)
        if not dpi:
            victims.append((packet.meta.annotations["seq"], i * GAP_PS))
    sim.run()
    lat = sorted(done[s] - t for s, t in victims)
    mean = sum(lat) / len(lat) / US
    p99 = lat[int(len(lat) * 0.99) - 1] / US
    return mean, p99


def main() -> None:
    rows = []

    sim = Simulator()
    line = [("regex", RegexEngine(sim, "pl.dpi", patterns=[b"scan"],
                                  cycles_per_byte=40.0)),
            ("checksum", ChecksumEngine(sim, "pl.csum"))]
    mean, p99 = victim_stats(sim, PipelineNic(sim, line), True)
    rows.append(["pipeline (Fig 2a)", f"{mean:.1f}", f"{p99:.1f}",
                 "HOL blocking behind slow DPI"])

    sim = Simulator()
    mc = ManycoreNic(sim, [("regex", RegexEngine(sim, "mc.dpi",
                                                 patterns=[b"scan"],
                                                 cycles_per_byte=40.0))],
                     orchestration_ps=10 * US)
    mean, p99 = victim_stats(sim, mc, True)
    rows.append(["manycore (Fig 2b)", f"{mean:.1f}", f"{p99:.1f}",
                 "~10us core orchestration on every packet"])

    sim = Simulator()
    program = RmtProgram("flexnic")
    steer = program.add_table("steer", [MatchKey("meta.direction")],
                              requires="udp.src_port")
    steer.add([DIR_RX], "hash_select",
              {"fields": ["ipv4.src", "udp.src_port"], "ways": 4})
    rmt_nic = RmtNic(sim, program)
    try:
        rmt_nic.attach_offload("regex")
        dpi_note = "??"
    except UnsupportedOffloadError:
        dpi_note = "cannot host the DPI offload at all"
    mean, p99 = victim_stats(sim, rmt_nic, False)
    rows.append(["rmt-only (Fig 2c)", f"{mean:.1f}", f"{p99:.1f}", dpi_note])

    sim = Simulator()
    panic = PanicNic(sim, PanicConfig(
        ports=1, offloads=("regex", "checksum"),
        offload_params={"regex": {"patterns": [b"scan"],
                                  "cycles_per_byte": 40.0}}))
    panic.control.route_dscp(1, ["regex"])
    mean, p99 = victim_stats(sim, panic, False)
    rows.append(["PANIC", f"{mean:.1f}", f"{p99:.1f}",
                 "DPI chained per packet; victims unaffected"])

    print(format_table(
        ["architecture", "victim mean (us)", "victim p99 (us)", "notes"],
        rows,
        title=f"{N}-packet mixed burst; 10% needs slow DPI",
    ))


if __name__ == "__main__":
    main()
