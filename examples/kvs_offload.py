#!/usr/bin/env python
"""The paper's section 3.2 walk-through: a geodistributed multi-tenant
key-value store with per-packet offload chains.

Three tenants share one PANIC NIC:

* tenant 1 -- LAN, latency-sensitive; hot keys served by the NIC cache;
* tenant 2 -- LAN, bulk throughput with larger values;
* tenant 3 -- WAN: its requests arrive ESP-encrypted and are decrypted
  by the IPSec engine before re-entering the RMT pipeline (two
  heavyweight passes, exactly as section 3.1.2 describes).

Cache misses and SETs continue over the chain to the DMA engine, land in
host memory, raise a (coalesced) interrupt, and are answered by the host
software KV server.

Run with::

    python examples/kvs_offload.py
"""

from repro import HostKvServer, PanicConfig, PanicNic, Simulator
from repro.analysis import format_table
from repro.sim.clock import US
from repro.workloads import KvsWorkload, TenantSpec


def main() -> None:
    sim = Simulator()
    nic = PanicNic(sim, PanicConfig(ports=1))
    HostKvServer(nic.host)  # software path for whatever the NIC can't serve

    # Program the logical switch and scheduler.
    nic.control.enable_kv_cache()
    nic.control.enable_ipsec_rx()
    nic.control.set_tenant_slack(1, 10 * US)     # tight SLO
    nic.control.set_tenant_slack(2, 1000 * US)   # bulk
    nic.control.set_tenant_slack(3, 100 * US)

    tenants = [
        TenantSpec(1, rate_pps=400_000, latency_sensitive=True,
                   key_space=200, get_fraction=0.95),
        TenantSpec(2, rate_pps=800_000, key_space=2000,
                   get_fraction=0.7, value_bytes=512),
        TenantSpec(3, rate_pps=200_000, wan=True, key_space=200),
    ]
    workload = KvsWorkload(sim, nic, tenants, requests_per_tenant=150,
                           ipsec=nic.offload("ipsec"))
    workload.populate_store(values_per_tenant=2000)
    workload.warm_nic_cache(nic.offload("kvcache"), hot_keys=20)
    workload.start()
    sim.run()

    summary = workload.summary()
    print(format_table(
        ["tenant", "profile", "responses", "p50 (us)", "p99 (us)"],
        [
            [1, "LAN latency-sensitive", summary[1]["responses"],
             f"{summary[1]['latency_us_p50']:.1f}",
             f"{summary[1]['latency_us_p99']:.1f}"],
            [2, "LAN bulk", summary[2]["responses"],
             f"{summary[2]['latency_us_p50']:.1f}",
             f"{summary[2]['latency_us_p99']:.1f}"],
            [3, "WAN via IPSec", summary[3]["responses"],
             f"{summary[3]['latency_us_p50']:.1f}",
             f"{summary[3]['latency_us_p99']:.1f}"],
        ],
        title="Per-tenant response latency",
    ))
    cache = nic.offload("kvcache")
    print(f"\nNIC cache        : {cache.hits.value} hits, "
          f"{cache.misses.value} misses")
    print(f"IPSec decrypts   : {nic.offload('ipsec').decrypted.value}")
    print(f"host-served      : {nic.host.rx_delivered.value} requests")
    print(f"host interrupts  : {nic.host.interrupts_taken.value} "
          f"(coalesced)")


if __name__ == "__main__":
    main()
