"""Tests for IMIX traffic generation and cross-feature combinations."""

import pytest

from repro.core import PanicConfig, PanicNic
from repro.packet import parse_frame
from repro.sim import Simulator
from repro.sim.clock import US
from repro.sim.rng import SeededRng
from repro.workloads import CbrSource
from repro.workloads.generator import IMIX_BLEND, imix_factory


class TestImixFactory:
    def _sizes(self, n=600):
        factory = imix_factory(rng=SeededRng(5))
        return [len(factory(i).data) for i in range(n)]

    def test_only_blend_sizes_produced(self):
        allowed = {size for size, _w in IMIX_BLEND}
        observed = set(self._sizes())
        # 64-byte target means a 64-byte frame (min payload applies).
        assert observed <= allowed | {64}
        assert len(observed) == 3

    def test_blend_ratios_roughly_hold(self):
        sizes = self._sizes(1200)
        small = sum(1 for s in sizes if s == 64)
        medium = sum(1 for s in sizes if s == 570)
        large = sum(1 for s in sizes if s == 1500)
        total = len(sizes)
        assert small / total == pytest.approx(7 / 12, abs=0.08)
        assert medium / total == pytest.approx(4 / 12, abs=0.08)
        assert large / total == pytest.approx(1 / 12, abs=0.05)

    def test_frames_parse_and_carry_cookie(self):
        factory = imix_factory(rng=SeededRng(1))
        packet = factory(42)
        parsed = parse_frame(packet.data)
        assert parsed.udp is not None
        assert int.from_bytes(parsed.payload[:8], "big") == 42

    def test_deterministic_for_seed(self):
        a = [len(imix_factory(rng=SeededRng(9))(i).data) for i in range(50)]
        b = [len(imix_factory(rng=SeededRng(9))(i).data) for i in range(50)]
        assert a == b

    def test_flows_vary_by_seq(self):
        factory = imix_factory(rng=SeededRng(2))
        ports = {parse_frame(factory(i).data).udp.src_port for i in range(20)}
        assert len(ports) > 1  # multiple flows for RSS spreading


class TestImixThroughNic:
    def test_imix_mix_survives_panic(self, sim, nic):
        delivered = []
        nic.host.software_handler = lambda p, q: delivered.append(p)
        source = CbrSource(
            sim, "imix.src", nic.inject, imix_factory(rng=SeededRng(3)),
            rate_pps=1_000_000, count=60,
        )
        source.start()
        sim.run()
        assert len(delivered) == 60
        sizes = {len(p.data) for p in delivered}
        assert len(sizes) == 3  # all three classes arrived intact
