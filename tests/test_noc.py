"""Tests for the on-chip network: channels, routers, mesh, crossbar."""

import pytest

from repro.noc import Crossbar, Endpoint, Mesh, MeshConfig, NocMessage
from repro.noc.channel import Channel
from repro.packet import Packet
from repro.sim import Clock, Simulator
from repro.sim.clock import MHZ


class Sink(Endpoint):
    def __init__(self, sim=None):
        self.sim = sim
        self.got = []

    def receive(self, message):
        when = self.sim.now if self.sim else None
        self.got.append((message, when))


def build_mesh(sim, width=4, height=4, **kwargs):
    mesh = Mesh(sim, MeshConfig(width=width, height=height, **kwargs))
    sinks = {}
    ports = {}
    for y in range(height):
        for x in range(width):
            sink = Sink(sim)
            ports[(x, y)] = mesh.bind(sink, x, y)
            sinks[(x, y)] = sink
    return mesh, sinks, ports


class TestChannel:
    def test_serialization_time(self, sim):
        got = []
        ch = Channel(sim, "ch", 64, Clock(500 * MHZ), lambda m, c: got.append(sim.now))
        msg = NocMessage(Packet(b"\x00" * 64), dest_addr=1, src_addr=0)
        ch.submit(msg)
        sim.run()
        # 512 bits / 64 = 8 cycles + 1 router cycle = 9 * 2000 ps.
        assert got == [18000]

    def test_back_to_back_messages_serialize(self, sim):
        got = []
        ch = Channel(sim, "ch", 64, Clock(500 * MHZ), lambda m, c: got.append(sim.now))
        for _ in range(3):
            ch.submit(NocMessage(Packet(b"\x00" * 64), dest_addr=1, src_addr=0))
        sim.run()
        assert got == [18000, 36000, 54000]

    def test_credits_block_transfers(self, sim):
        held = []
        ch = Channel(
            sim, "ch", 64, Clock(500 * MHZ), lambda m, c: held.append(m), credits=1
        )
        for _ in range(3):
            ch.submit(NocMessage(Packet(b"\x00" * 64), dest_addr=1, src_addr=0))
        sim.run()
        # Only one credit and nobody releases: exactly one delivery.
        assert len(held) == 1
        assert ch.queue_len == 2
        # Releasing lets the next one through.
        ch.release_credit()
        sim.run()
        assert len(held) == 2

    def test_credit_overflow_detected(self, sim):
        ch = Channel(sim, "ch", 64, Clock(), lambda m, c: None, credits=1)
        with pytest.raises(RuntimeError):
            ch.release_credit()

    def test_invalid_parameters(self, sim):
        with pytest.raises(ValueError):
            Channel(sim, "bad1", 0, Clock(), lambda m, c: None)
        with pytest.raises(ValueError):
            Channel(sim, "bad2", 64, Clock(), lambda m, c: None, credits=0)

    def test_hops_incremented_on_delivery(self, sim):
        got = []
        ch = Channel(sim, "ch", 64, Clock(), lambda m, c: got.append(m))
        ch.submit(NocMessage(Packet(b""), dest_addr=1, src_addr=0))
        sim.run()
        assert got[0].hops == 1


class TestMeshRouting:
    def test_corner_to_corner_xy_route(self, sim):
        mesh, sinks, ports = build_mesh(sim)
        ports[(0, 0)].send(Packet(b"\x00" * 64), mesh.address_of(3, 3))
        sim.run()
        message, when = sinks[(3, 3)].got[0]
        assert message.hops == 7  # inject + 3 east + 3 south
        assert when == 7 * 9 * 2000

    def test_local_delivery_same_column(self, sim):
        mesh, sinks, ports = build_mesh(sim)
        ports[(2, 0)].send(Packet(b"\x00" * 64), mesh.address_of(2, 3))
        sim.run()
        message, _ = sinks[(2, 3)].got[0]
        assert message.hops == 4  # inject + 3 south

    def test_every_pair_reachable(self, sim):
        mesh, sinks, ports = build_mesh(sim, width=3, height=3)
        sent = 0
        for src in ports:
            for dst in ports:
                if src == dst:
                    continue
                ports[src].send(Packet(b"\x00" * 64), mesh.address_of(*dst))
                sent += 1
        sim.run()
        assert sum(len(s.got) for s in sinks.values()) == sent
        assert mesh.in_flight == 0

    def test_lossless_under_heavy_fanin(self, sim):
        # Everyone floods one corner; all messages must still arrive.
        mesh, sinks, ports = build_mesh(sim, credits=2)
        target = mesh.address_of(3, 3)
        n = 0
        for coord, port in ports.items():
            if coord == (3, 3):
                continue
            for _ in range(20):
                port.send(Packet(b"\x00" * 64), target)
                n += 1
        sim.run()
        assert len(sinks[(3, 3)].got) == n
        assert mesh.in_flight == 0

    def test_address_coordinate_mapping(self, sim):
        mesh = Mesh(sim, MeshConfig(width=4, height=3))
        assert mesh.address_of(2, 1) == 6
        assert mesh.coords_of(6) == (2, 1)
        with pytest.raises(ValueError):
            mesh.coords_of(12)
        with pytest.raises(ValueError):
            mesh.address_of(4, 0)

    def test_double_bind_rejected(self, sim):
        mesh = Mesh(sim, MeshConfig(width=2, height=2))
        mesh.bind(Sink(), 0, 0)
        with pytest.raises(ValueError):
            mesh.bind(Sink(), 0, 0)

    def test_wider_channels_are_faster(self):
        times = {}
        for bits in (64, 128):
            sim = Simulator()
            mesh, sinks, ports = build_mesh(sim, channel_bits=bits)
            ports[(0, 0)].send(Packet(b"\x00" * 128), mesh.address_of(3, 0))
            sim.run()
            times[bits] = sinks[(3, 0)].got[0][1]
        assert times[128] < times[64]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MeshConfig(width=0)
        with pytest.raises(ValueError):
            MeshConfig(channel_bits=0)
        with pytest.raises(ValueError):
            MeshConfig(credits=0)


class TestCrossbar:
    def test_delivery(self, sim):
        xbar = Crossbar(sim, ports=4)
        sinks = [Sink(sim) for _ in range(4)]
        xports = [xbar.bind(s) for s in sinks]
        xports[0].send(Packet(b"\x00" * 64), 3)
        sim.run()
        assert len(sinks[3].got) == 1

    def test_port_limit(self, sim):
        xbar = Crossbar(sim, ports=1)
        xbar.bind(Sink(sim))
        with pytest.raises(ValueError):
            xbar.bind(Sink(sim))

    def test_unknown_destination_rejected(self, sim):
        xbar = Crossbar(sim, ports=2)
        port = xbar.bind(Sink(sim))
        with pytest.raises(ValueError):
            port.send(Packet(b""), 1)  # address 1 never bound

    def test_frequency_derates_with_port_count(self, sim):
        small = Crossbar(sim, ports=4, name="small")
        big = Crossbar(sim, ports=32, name="big")
        assert big.clock.freq_hz < small.clock.freq_hz

    def test_output_contention_serializes(self, sim):
        xbar = Crossbar(sim, ports=3, freq_derating=0.0)
        sinks = [Sink(sim) for _ in range(3)]
        xports = [xbar.bind(s) for s in sinks]
        xports[0].send(Packet(b"\x00" * 64), 2)
        xports[1].send(Packet(b"\x00" * 64), 2)
        sim.run()
        t0, t1 = sinks[2].got[0][1], sinks[2].got[1][1]
        assert t1 - t0 >= 9 * 2000  # second waits for the first


class TestNocMessage:
    def test_bits_counts_chain_header(self):
        packet = Packet(b"\x00" * 10)
        message = NocMessage(packet, dest_addr=1, src_addr=0)
        assert message.bits == 80

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            NocMessage(Packet(b""), dest_addr=-1, src_addr=0)


class TestChannelUtilization:
    """Channel.utilization must report the actual busy fraction."""

    def _one_transfer(self, sim):
        # 64 bytes on a 64-bit channel @ 500 MHz: busy for 18_000 ps.
        ch = Channel(sim, "ch", 64, Clock(500 * MHZ), lambda m, c: None)
        ch.submit(NocMessage(Packet(b"\x00" * 64), dest_addr=1, src_addr=0))
        sim.run()
        return ch

    def test_zero_elapsed_is_zero(self, sim):
        ch = Channel(sim, "ch", 64, Clock(500 * MHZ), lambda m, c: None)
        assert ch.utilization(0) == 0.0
        assert ch.utilization(-5) == 0.0

    def test_idle_channel_is_zero(self, sim):
        ch = Channel(sim, "ch", 64, Clock(500 * MHZ), lambda m, c: None)
        assert ch.utilization(1_000_000) == 0.0

    def test_busy_fraction(self, sim):
        ch = self._one_transfer(sim)
        assert ch.utilization(18_000) == 1.0
        assert ch.utilization(36_000) == 0.5
        assert ch.utilization(72_000) == 0.25

    def test_in_progress_transfer_is_clipped(self, sim):
        # Ask for utilization at a horizon inside the transfer window:
        # only the portion up to the horizon may count.
        ch = self._one_transfer(sim)
        assert ch.utilization(9_000) == 1.0

    def test_never_exceeds_one(self, sim):
        ch = Channel(sim, "ch", 64, Clock(500 * MHZ), lambda m, c: None)
        for _ in range(3):
            ch.submit(NocMessage(Packet(b"\x00" * 64), dest_addr=1,
                                 src_addr=0))
        sim.run()
        assert ch.utilization(1) <= 1.0
