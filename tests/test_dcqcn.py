"""Tests for the DCQCN congestion-control subsystem (ECN marking,
CNP plumbing, the rate-control algorithm, and the closed loop)."""

import pytest

from repro.core import PanicConfig, PanicNic
from repro.engines import RateLimiterEngine
from repro.engines.dcqcn import (
    CNP_UDP_PORT,
    CnpResponder,
    DcqcnEngine,
    DcqcnRateController,
    ECN_CE,
    ECN_ECT0,
    EcnMarkerEngine,
    build_cnp,
    parse_cnp,
)
from repro.noc import Endpoint, Mesh, MeshConfig
from repro.packet import Packet, PanicHeader, build_udp_frame, parse_frame
from repro.sim import Simulator
from repro.sim.clock import US


def ect_frame(payload=b"data", ecn=ECN_ECT0, tenant=None):
    packet = Packet(build_udp_frame(
        src_mac="02:00:00:00:00:01", dst_mac="02:00:00:00:00:02",
        src_ip="10.0.0.1", dst_ip="10.0.0.2",
        src_port=1, dst_port=2, payload=payload, ecn=ecn,
    ))
    packet.meta.tenant = tenant
    return packet


class TestEcnHeader:
    def test_ecn_roundtrip_on_wire(self):
        frame = build_udp_frame(
            src_mac="02:00:00:00:00:01", dst_mac="02:00:00:00:00:02",
            src_ip="10.0.0.1", dst_ip="10.0.0.2",
            src_port=1, dst_port=2, payload=b"x", ecn=ECN_CE,
        )
        assert parse_frame(frame).ipv4.ecn == ECN_CE

    def test_ecn_validated(self):
        from repro.packet import HeaderError, Ipv4Header

        with pytest.raises(HeaderError):
            Ipv4Header(src="1.1.1.1", dst="2.2.2.2", ecn=4)


class TestCnpFrames:
    def test_build_parse_roundtrip(self):
        cnp = build_cnp(77, src_mac="02:00:00:00:00:02",
                        dst_mac="02:00:00:00:00:01",
                        src_ip="10.0.0.2", dst_ip="10.0.0.1")
        assert parse_cnp(cnp) == 77
        assert parse_frame(cnp).udp.dst_port == CNP_UDP_PORT

    def test_non_cnp_returns_none(self):
        assert parse_cnp(ect_frame().data) is None
        assert parse_cnp(b"garbage") is None


class TestEcnMarker:
    def test_marks_when_watched_queue_deep(self, sim):
        marker = EcnMarkerEngine(sim, "mark", k_min=0, k_max=1, p_max=1.0)
        watched = RateLimiterEngine(sim, "watched")
        marker.watch_engine = watched
        # Fake a deep queue on the watched engine.
        for i in range(5):
            watched.queue.push(i, i)
        out = marker.handle(ect_frame())[0][0]
        assert parse_frame(out.data).ipv4.ecn == ECN_CE
        assert marker.marked.value == 1

    def test_no_marking_when_queue_shallow(self, sim):
        marker = EcnMarkerEngine(sim, "mark2", k_min=5, k_max=20)
        out = marker.handle(ect_frame())[0][0]
        assert parse_frame(out.data).ipv4.ecn == ECN_ECT0

    def test_non_ect_never_marked(self, sim):
        marker = EcnMarkerEngine(sim, "mark3", k_min=0, k_max=1)
        watched = RateLimiterEngine(sim, "watched3")
        marker.watch_engine = watched
        for i in range(5):
            watched.queue.push(i, i)
        out = marker.handle(ect_frame(ecn=0))[0][0]
        assert parse_frame(out.data).ipv4.ecn == 0
        assert marker.eligible.value == 0

    def test_parameters_validated(self, sim):
        with pytest.raises(ValueError):
            EcnMarkerEngine(sim, "bad1", k_min=5, k_max=2)
        with pytest.raises(ValueError):
            EcnMarkerEngine(sim, "bad2", p_max=0)


class TestRateController:
    def test_cnp_cuts_rate(self):
        ctrl = DcqcnRateController(100e9)
        rate = ctrl.on_cnp(1, 0)
        assert rate == pytest.approx(50e9)  # alpha starts at 1 -> halve

    def test_successive_cnps_keep_cutting(self):
        ctrl = DcqcnRateController(100e9)
        r1 = ctrl.on_cnp(1, 0)
        r2 = ctrl.on_cnp(1, 1000)
        assert r2 < r1

    def test_rate_floors_at_min(self):
        ctrl = DcqcnRateController(100e9, min_rate_bps=1e9)
        for t in range(100):
            rate = ctrl.on_cnp(1, t)
        assert rate == 1e9

    def test_timer_recovers_toward_target(self):
        ctrl = DcqcnRateController(100e9)
        ctrl.on_cnp(1, 0)
        before = ctrl.rate_bps(1)
        for t in range(5):
            ctrl.on_timer(1, 1000 + t)
        assert ctrl.rate_bps(1) > before
        # Fast recovery converges to the pre-cut target.
        assert ctrl.rate_bps(1) <= 100e9

    def test_additive_increase_reaches_line_rate(self):
        ctrl = DcqcnRateController(10e9, additive_step_bps=1e9)
        ctrl.on_cnp(1, 0)
        for t in range(200):
            ctrl.on_timer(1, t)
        assert ctrl.rate_bps(1) == pytest.approx(10e9, rel=0.01)

    def test_flows_independent(self):
        ctrl = DcqcnRateController(100e9)
        ctrl.on_cnp(1, 0)
        assert ctrl.rate_bps(2) == 100e9

    def test_alpha_ewma(self):
        ctrl = DcqcnRateController(100e9, g=0.5)
        state = ctrl.flow(1)
        ctrl.on_cnp(1, 0)
        assert state.alpha == pytest.approx(1.0)  # (1-g)*1 + g
        ctrl.on_timer(1, 1)
        assert state.alpha == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            DcqcnRateController(0)
        with pytest.raises(ValueError):
            DcqcnRateController(1e9, g=1.5)


class TestDcqcnEngine:
    def test_cnp_actuates_limiter(self, sim):
        mesh = Mesh(sim, MeshConfig(width=2, height=1))
        dcqcn = DcqcnEngine(sim, "dcqcn", line_rate_bps=100e9)
        dcqcn.bind_port(mesh.bind(dcqcn, 0, 0))
        limiter = RateLimiterEngine(sim, "rl")
        limiter.bind_port(mesh.bind(limiter, 1, 0))
        dcqcn.attach_limiter(limiter)
        cnp = Packet(build_cnp(5, src_mac="02:00:00:00:00:02",
                               dst_mac="02:00:00:00:00:01",
                               src_ip="10.0.0.2", dst_ip="10.0.0.1"))
        cnp.panic = PanicHeader(chain=[])
        dcqcn._loopback(cnp)
        sim.run(until_ps=10 * US)
        bucket = limiter.bucket(5)
        assert bucket is not None
        assert bucket.rate_bps == pytest.approx(50e9)

    def test_timer_restores_rate(self, sim):
        mesh = Mesh(sim, MeshConfig(width=2, height=1))
        dcqcn = DcqcnEngine(sim, "dcqcn2", line_rate_bps=10e9,
                            timer_period_ps=20 * US)
        dcqcn.bind_port(mesh.bind(dcqcn, 0, 0))
        limiter = RateLimiterEngine(sim, "rl2")
        limiter.bind_port(mesh.bind(limiter, 1, 0))
        dcqcn.attach_limiter(limiter)
        cnp = Packet(build_cnp(5, src_mac="02:00:00:00:00:02",
                               dst_mac="02:00:00:00:00:01",
                               src_ip="10.0.0.2", dst_ip="10.0.0.1"))
        cnp.panic = PanicHeader(chain=[])
        dcqcn._loopback(cnp)
        sim.run()  # timers run until rate recovers
        assert limiter.bucket(5).rate_bps == pytest.approx(10e9, rel=0.01)


class TestCnpResponder:
    def test_ce_triggers_cnp(self, sim):
        from repro.core.host import Host

        host = Host(sim, "h")
        sent = []
        host.enqueue_tx = lambda frame, queue=0: sent.append(frame)
        responder = CnpResponder(host)
        ce_packet = ect_frame(ecn=ECN_CE, tenant=9)
        host.software_handler(ce_packet, 0)
        assert len(sent) == 1
        assert parse_cnp(sent[0]) == 9

    def test_cnp_rate_limited(self, sim):
        from repro.core.host import Host

        host = Host(sim, "h2")
        sent = []
        host.enqueue_tx = lambda frame, queue=0: sent.append(frame)
        CnpResponder(host, min_gap_ps=100 * US)
        for _ in range(5):
            host.software_handler(ect_frame(ecn=ECN_CE, tenant=9), 0)
        assert len(sent) == 1  # gap not elapsed: one CNP only

    def test_unmarked_packets_ignored(self, sim):
        from repro.core.host import Host

        host = Host(sim, "h3")
        sent = []
        host.enqueue_tx = lambda frame, queue=0: sent.append(frame)
        CnpResponder(host)
        host.software_handler(ect_frame(ecn=ECN_ECT0, tenant=9), 0)
        assert sent == []

    def test_downstream_handler_still_runs(self, sim):
        from repro.core.host import Host

        host = Host(sim, "h4")
        seen = []
        host.software_handler = lambda p, q: seen.append(p)
        CnpResponder(host)
        packet = ect_frame(ecn=ECN_CE, tenant=1)
        host.software_handler(packet, 0)
        assert seen == [packet]
