"""Selective-repeat transport: SACK arithmetic, wraparound, Karn's rule.

Unit tests drive a :class:`SelectiveRepeatTransport` over a fake NIC so
sequence-space corners (16-bit wraparound, SACK block unwrapping,
RTT-sample eligibility) are exercised with exact control; end-to-end
tests run whole racks and hold the same exactly-once-in-order bar the
go-back-N suite does -- with strictly less retransmission traffic.
"""

import pytest

from repro.faults.plan import FaultPlan
from repro.faults.rack import wire_target
from repro.reliability.rack import reliable_rack_topology
from repro.reliability.selective import (
    FAST_RETX_DUPTHRESH,
    RttEstimator,
    SACK_MAX_BLOCKS,
    SEQ_SPACE,
    SR_ACK,
    SR_DATA,
    SR_HEADER_BYTES,
    SelectiveRepeatTransport,
    pack_sr_ack,
    pack_sr_data,
    parse_sr_segment,
    seq_unwrap,
    seq_wrap,
)
from repro.reliability.transport import parse_segment
from repro.sim.clock import US
from repro.sim.kernel import Simulator
from repro.sim.rng import SeededRng
from repro.sim.shard import run_monolithic, run_sharded


class TestSequenceSpace:
    def test_wrap_unwrap_roundtrip_near_the_wrap(self):
        for ref in (0, 100, SEQ_SPACE - 2, SEQ_SPACE + 5, 3 * SEQ_SPACE):
            for delta in (-100, -1, 0, 1, 100, 1000):
                seq = ref + delta
                if seq < 0:
                    continue
                assert seq_unwrap(seq_wrap(seq), ref) == seq

    def test_wire_field_is_16_bit(self):
        assert seq_wrap(SEQ_SPACE) == 0
        assert seq_wrap(SEQ_SPACE + 7) == 7
        assert seq_wrap(SEQ_SPACE - 1) == SEQ_SPACE - 1

    def test_old_sequence_numbers_unwrap_below_reference(self):
        ref = 5 * SEQ_SPACE + 10
        assert seq_unwrap(seq_wrap(ref - 3), ref) == ref - 3


class TestSegmentFormat:
    def test_data_roundtrip(self):
        seg = pack_sr_data(2, 3, SEQ_SPACE + 41, b"hello")
        assert parse_sr_segment(seg) == (SR_DATA, 2, 3, 41, b"hello")

    def test_ack_roundtrip_with_sack_blocks_across_wrap(self):
        blocks = ((SEQ_SPACE - 2, SEQ_SPACE + 1), (SEQ_SPACE + 4,
                                                   SEQ_SPACE + 6))
        ack = pack_sr_ack(3, 2, SEQ_SPACE - 5, blocks)
        seg_type, src, dst, cum, wire_blocks = parse_sr_segment(ack)
        assert (seg_type, src, dst) == (SR_ACK, 3, 2)
        assert cum == seq_wrap(SEQ_SPACE - 5)
        # The [65534, 65537) block wraps on the wire: start 65534, end 1.
        assert wire_blocks == ((SEQ_SPACE - 2, 1), (4, 6))
        # And unwraps back to the original absolute ranges.
        start, end = wire_blocks[0]
        ref = SEQ_SPACE - 5
        assert seq_unwrap(start, ref) == SEQ_SPACE - 2
        assert (end - start) % SEQ_SPACE == 3

    def test_rejects_junk_and_truncated_sack(self):
        assert parse_sr_segment(b"") is None
        assert parse_sr_segment(bytes(SR_HEADER_BYTES)) is None
        ack = pack_sr_ack(0, 1, 5, ((6, 8),))
        assert parse_sr_segment(ack[:-1]) is None  # truncated block
        too_many = bytearray(pack_sr_ack(0, 1, 5))
        too_many[SR_HEADER_BYTES] = SACK_MAX_BLOCKS + 1
        assert parse_sr_segment(bytes(too_many)) is None

    def test_gbn_parser_rejects_sr_segments(self):
        # The segment types are disjoint on purpose: a go-back-N NIC
        # sharing a rack with a selective-repeat NIC must not misparse.
        assert parse_segment(pack_sr_data(0, 1, 3, b"x")) is None
        assert parse_segment(pack_sr_ack(0, 1, 3)) is None

    def test_pack_validates_blocks(self):
        with pytest.raises(ValueError, match="SACK"):
            pack_sr_ack(0, 1, 0, tuple((i, i + 1) for i in range(5)))
        with pytest.raises(ValueError, match="empty"):
            pack_sr_ack(0, 1, 0, ((3, 3),))


class TestRttEstimator:
    def test_first_sample_initialises_per_rfc(self):
        est = RttEstimator(30 * US, 1 * US, 480 * US)
        assert est.rto_ps() == 30 * US  # cold start: the fixed initial
        est.sample(8 * US)
        assert est.srtt_ps == 8 * US
        assert est.rttvar_ps == 4 * US
        assert est.rto_ps() == 8 * US + 4 * 4 * US

    def test_converges_toward_stable_rtt(self):
        est = RttEstimator(30 * US, 1 * US, 480 * US)
        for _ in range(50):
            est.sample(6 * US)
        assert abs(est.srtt_ps - 6 * US) < 0.01 * US
        # Variance decays, but the srtt/4 granularity floor keeps the
        # RTO strictly above the measured RTT.
        assert 6 * US < est.rto_ps() <= 8 * US

    def test_rto_respects_min_and_max(self):
        est = RttEstimator(30 * US, 5 * US, 40 * US)
        est.sample(1 * US)
        assert est.rto_ps() == 5 * US
        est2 = RttEstimator(30 * US, 1 * US, 10 * US)
        est2.sample(100 * US)
        assert est2.rto_ps() == 10 * US

    def test_validates_bounds(self):
        with pytest.raises(ValueError, match="rto_min"):
            RttEstimator(30 * US, 0, 10 * US)
        with pytest.raises(ValueError, match="rto_min"):
            RttEstimator(30 * US, 10 * US, 5 * US)


class _FakeHost:
    def __init__(self):
        self.software_handler = None
        self.tx = []

    def enqueue_tx(self, frame, queue):
        self.tx.append(frame)


class _FakeNic:
    def __init__(self, sim):
        self.sim = sim
        self.name = "fake"
        self.telemetry = None
        self.host = _FakeHost()
        self.transport = None


class _FakePacket:
    def __init__(self, segment):
        self.data = bytes(42) + segment  # eth+ip+udp headers, then seg


def _bench_transport(sim, **kw):
    """A transport over a fake NIC: transmissions are recorded, nothing
    is delivered unless the test injects it via the software handler."""
    nic = _FakeNic(sim)
    kw.setdefault("rto_initial_ps", 10 * US)
    kw.setdefault("jitter", 0.0)
    transport = SelectiveRepeatTransport(
        nic, 0,
        frame_builder=lambda dst, seg: seg,
        rng=SeededRng(3).fork("sr"),
        **kw,
    )
    return nic, transport


def _tx_data_seqs(nic):
    seqs = []
    for frame in nic.host.tx:
        parsed = parse_sr_segment(frame)
        if parsed and parsed[0] == SR_DATA:
            seqs.append(parsed[3])
    return seqs


def _feed(transport, segment):
    transport._on_host_rx(_FakePacket(segment), 0)


class TestReceiverWraparound:
    def test_in_order_delivery_across_the_wrap(self):
        sim = Simulator()
        nic, transport = _bench_transport(
            sim, initial_seq=SEQ_SPACE - 3)
        got = []
        transport.on_deliver = lambda src, seq, p, q: got.append(seq)
        for seq in range(SEQ_SPACE - 3, SEQ_SPACE + 2):
            _feed(transport, pack_sr_data(1, 0, seq, b"d"))
        assert got == list(range(SEQ_SPACE - 3, SEQ_SPACE + 2))
        assert transport.stats()["delivered"] == 5

    def test_duplicates_suppressed_across_the_wrap(self):
        sim = Simulator()
        nic, transport = _bench_transport(
            sim, initial_seq=SEQ_SPACE - 3)
        got = []
        transport.on_deliver = lambda src, seq, p, q: got.append(seq)
        for seq in range(SEQ_SPACE - 3, SEQ_SPACE + 2):
            _feed(transport, pack_sr_data(1, 0, seq, b"d"))
        # Replay one pre-wrap and one post-wrap segment: both are old
        # news to the receiver even though one's wire field (1) is
        # numerically above the other's (65534).
        _feed(transport, pack_sr_data(1, 0, SEQ_SPACE - 2, b"d"))
        _feed(transport, pack_sr_data(1, 0, SEQ_SPACE + 1, b"d"))
        assert transport.stats()["duplicates_suppressed"] == 2
        assert got == list(range(SEQ_SPACE - 3, SEQ_SPACE + 2))

    def test_out_of_order_buffering_and_sack_blocks(self):
        sim = Simulator()
        nic, transport = _bench_transport(sim)
        got = []
        transport.on_deliver = lambda src, seq, p, q: got.append(seq)
        _feed(transport, pack_sr_data(1, 0, 0, b"d"))
        _feed(transport, pack_sr_data(1, 0, 3, b"d"))  # hole at 1, 2
        _feed(transport, pack_sr_data(1, 0, 2, b"d"))
        assert got == [0]
        # The latest ACK advertises cum=1 plus the buffered [2, 4) range.
        seg_type, _s, _d, cum, blocks = parse_sr_segment(nic.host.tx[-1])
        assert seg_type == SR_ACK and cum == 1
        assert blocks == ((2, 4),)
        _feed(transport, pack_sr_data(1, 0, 1, b"d"))  # hole fills
        assert got == [0, 1, 2, 3]
        assert transport.stats()["buffered_ooo"] == 2


class TestSenderSack:
    def test_sack_advances_base_through_sacked_run(self):
        sim = Simulator()
        nic, transport = _bench_transport(sim, window=8)
        for _ in range(4):
            transport.send(1, b"p")
        # Receiver got 1..3 but not 0: cum stays 0, SACK covers [1, 4).
        _feed(transport, pack_sr_ack(1, 0, 0, ((1, 4),)))
        flow = transport._tx[1]
        assert flow.base == 0
        assert flow.sacked == {1, 2, 3}
        # Cum finally covers 0 -- base jumps through the SACKed run.
        _feed(transport, pack_sr_ack(1, 0, 1, ()))
        assert flow.base == 4
        assert not flow.sacked

    def test_sack_arithmetic_across_the_wrap(self):
        start = SEQ_SPACE - 2
        sim = Simulator()
        nic, transport = _bench_transport(
            sim, window=8, initial_seq=start)
        for _ in range(6):
            transport.send(1, b"p")
        # SACK [65535, 65537+1): wire start 65535, wire end 2 -- the
        # block wraps, the hole is the very first segment (65534).
        _feed(transport, pack_sr_ack(
            1, 0, start, ((start + 1, start + 4),)))
        flow = transport._tx[1]
        assert flow.base == start
        assert flow.sacked == {start + 1, start + 2, start + 3}
        _feed(transport, pack_sr_ack(1, 0, start + 1, ()))
        assert flow.base == start + 4

    def test_fast_retransmit_fires_once_per_hole(self):
        sim = Simulator()
        nic, transport = _bench_transport(sim, window=8)
        for _ in range(1 + FAST_RETX_DUPTHRESH):
            transport.send(1, b"p")
        assert _tx_data_seqs(nic) == [0, 1, 2, 3]
        # Three SACKed segments above the hole at 0: resend it now.
        _feed(transport, pack_sr_ack(1, 0, 0, ((1, 4),)))
        assert _tx_data_seqs(nic) == [0, 1, 2, 3, 0]
        assert transport.stats()["fast_retransmits"] == 1
        # A further duplicate SACK must not resend the hole again.
        _feed(transport, pack_sr_ack(1, 0, 0, ((1, 4),)))
        assert _tx_data_seqs(nic) == [0, 1, 2, 3, 0]
        assert transport.stats()["fast_retransmits"] == 1

    def test_stale_cum_below_base_is_a_dup_ack(self):
        sim = Simulator()
        nic, transport = _bench_transport(sim, window=4)
        for _ in range(3):
            transport.send(1, b"p")
        _feed(transport, pack_sr_ack(1, 0, 2, ()))
        assert transport._tx[1].base == 2
        _feed(transport, pack_sr_ack(1, 0, 1, ()))  # reordered stale ACK
        assert transport._tx[1].base == 2
        assert transport.stats()["dup_acks"] == 1

    def test_window_bounds_outstanding_segments(self):
        sim = Simulator()
        nic, transport = _bench_transport(sim, window=2, max_retries=1)
        for _ in range(5):
            transport.send(1, b"p")
        assert set(_tx_data_seqs(nic)) == {0, 1}

    def test_constructor_validates_window_against_seq_space(self):
        with pytest.raises(ValueError, match="window"):
            _bench_transport(Simulator(), window=SEQ_SPACE)


class TestKarnsRule:
    def test_ack_of_retransmitted_segment_takes_no_sample(self):
        sim = Simulator()
        nic, transport = _bench_transport(
            sim, window=1, rto_initial_ps=10 * US)
        sim.schedule_at(0, transport.send, 1, b"p")
        # The first RTO fires at 10 us and retransmits seq 0; the ACK
        # lands after that, so its RTT is ambiguous (which transmission
        # does it acknowledge?).  Karn's rule: no sample.
        sim.schedule_at(12 * US, _feed, transport,
                        pack_sr_ack(1, 0, 1, ()))
        sim.run()
        flow = transport._tx[1]
        assert transport.stats()["rto_fired"] == 1
        assert transport.stats()["retransmits"] == 1
        assert flow.rtt.samples == 0
        assert flow.rtt.srtt_ps is None  # estimator untouched
        assert flow.rtt.rto_ps() == 10 * US

    def test_clean_segment_after_retransmission_samples_again(self):
        sim = Simulator()
        nic, transport = _bench_transport(
            sim, window=1, rto_initial_ps=10 * US)
        sim.schedule_at(0, transport.send, 1, b"p")
        sim.schedule_at(12 * US, _feed, transport,
                        pack_sr_ack(1, 0, 1, ()))      # poisoned: no sample
        sim.schedule_at(14 * US, transport.send, 1, b"p")
        sim.schedule_at(20 * US, _feed, transport,
                        pack_sr_ack(1, 0, 2, ()))      # clean: 6 us sample
        sim.run()
        flow = transport._tx[1]
        assert flow.rtt.samples == 1
        assert flow.rtt.srtt_ps == 6 * US

    def test_sample_from_never_retransmitted_segment_in_mixed_ack(self):
        sim = Simulator()
        nic, transport = _bench_transport(
            sim, window=4, rto_initial_ps=10 * US)
        sim.schedule_at(0, transport.send, 1, b"p")
        sim.schedule_at(0, transport.send, 1, b"p")
        # RTO at 10 us retransmits only the base (seq 0); seq 1 was
        # transmitted exactly once.  The covering ACK may sample seq 1.
        sim.schedule_at(12 * US, _feed, transport,
                        pack_sr_ack(1, 0, 2, ()))
        sim.run()
        flow = transport._tx[1]
        assert transport.stats()["retransmits"] == 1  # base only
        assert flow.rtt.samples == 1
        assert flow.rtt.srtt_ps == 12 * US  # measured on seq 1, not 0

    def test_backoff_resets_on_progress(self):
        sim = Simulator()
        nic, transport = _bench_transport(
            sim, window=1, rto_initial_ps=10 * US, max_retries=8)
        sim.schedule_at(0, transport.send, 1, b"p")
        sim.schedule_at(35 * US, _feed, transport,
                        pack_sr_ack(1, 0, 1, ()))  # after 2 expiries
        sim.run()
        flow = transport._tx[1]
        assert flow.backoff == 1
        assert flow.retries == 0


class TestEndToEndSelectiveRepeat:
    def test_clean_wire_delivers_in_order_without_retransmits(self):
        result = run_monolithic(
            reliable_rack_topology(nics=2, frames=10, transport="sr"))
        for name, peer in (("nic0", 1), ("nic1", 0)):
            report = result.reports[name]
            assert [(s, q) for s, q, _t, _qu in report["deliveries"]] == \
                [(peer, seq) for seq in range(10)]
            rel = report["stats"]["reliability"]
            assert rel["retransmits"] == 0
            assert report["tx_flows"][peer] == {
                "sent": 10, "acked": 10, "failed": 0, "aborted": 0,
            }
            assert report["fct"][peer] > 0
            assert report["rtt"][peer]["samples"] > 0

    def test_loss_heals_exactly_once_in_order_with_fewer_retransmits(self):
        def plan():
            p = FaultPlan(seed=3)
            for j in (1, 2, 3):
                p.wire_loss(0, wire_target(0, j),
                            drop_p=0.01, corrupt_p=0.005)
            return p

        results = {}
        for transport in ("gbn", "sr"):
            result = run_monolithic(
                reliable_rack_topology(nics=4, pattern="fanin", frames=30,
                                       transport=transport),
                fault_plan=plan(),
            )
            report = result.reports["nic0"]
            for src in (1, 2, 3):
                assert [seq for s, seq, _t, _q in report["deliveries"]
                        if s == src] == list(range(30))
            results[transport] = sum(
                result.reports[n]["stats"]["reliability"]["retransmits"]
                for n in result.reports
            )
        # Selective repeat resends holes, go-back-N resends windows.
        assert results["sr"] < results["gbn"]

    def test_mono_equals_sharded_under_loss(self):
        def plan():
            return (FaultPlan(seed=9)
                    .wire_loss(0, wire_target(0, 1), drop_p=0.05)
                    .wire_loss(0, wire_target(0, 2), drop_p=0.05))

        def topo():
            return reliable_rack_topology(
                nics=4, pattern="fanin", frames=20, transport="sr")

        mono = run_monolithic(topo(), fault_plan=plan())
        sharded = run_sharded(topo(), workers=2, fault_plan=plan())
        assert mono.reports == sharded.reports
        assert mono.wire_stats == sharded.wire_stats
