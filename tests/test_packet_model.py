"""Tests for the Packet container, PANIC header, KV protocol and builders."""

import pytest

from repro.packet import (
    HeaderError,
    KV_UDP_PORT,
    KvOpcode,
    KvRequest,
    KvResponse,
    KvStatus,
    MIN_FRAME_BYTES,
    Packet,
    PanicHeader,
    build_kv_request_frame,
    build_kv_response_frame,
    build_udp_frame,
    parse_frame,
    wire_bits,
)
from repro.packet.packet import Direction, MessageKind


class TestWireBits:
    def test_minimum_frame_is_672_bits(self):
        # 64 B frame + 20 B preamble/IFG = 84 B = 672 bits (Table 2 basis).
        assert wire_bits(64) == 672

    def test_short_frames_padded(self):
        assert wire_bits(10) == 672
        assert wire_bits(0) == 672

    def test_large_frame(self):
        assert wire_bits(1500) == (1500 + 20) * 8

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            wire_bits(-1)


class TestPacket:
    def test_ids_are_unique(self):
        assert Packet(b"a").packet_id != Packet(b"b").packet_id

    def test_chip_bits_includes_chain_header(self):
        packet = Packet(b"\x00" * 100)
        assert packet.chip_bits == 800
        packet.panic = PanicHeader(chain=[1, 2])
        assert packet.chip_bits == (100 + 16 + 4) * 8

    def test_trail_records_engines(self):
        packet = Packet(b"")
        packet.touch("a")
        packet.touch("b")
        assert packet.trail == ["a", "b"]

    def test_clone_is_independent(self):
        packet = Packet(b"data")
        packet.meta.tenant = 3
        packet.panic = PanicHeader(chain=[5], slack_ps=9)
        clone = packet.clone()
        assert clone.packet_id != packet.packet_id
        assert clone.meta.tenant == 3
        clone.panic.advance()
        assert packet.panic.cursor == 0

    def test_default_kind_and_direction(self):
        packet = Packet(b"")
        assert packet.kind == MessageKind.ETHERNET
        assert packet.meta.direction == Direction.RX


class TestPanicHeader:
    def test_pack_unpack_roundtrip(self):
        header = PanicHeader(chain=[10, 20, 30], cursor=1, slack_ps=123456,
                             needs_rmt=True, droppable=True)
        parsed, rest = PanicHeader.unpack(header.pack() + b"tail")
        assert parsed.chain == [10, 20, 30]
        assert parsed.cursor == 1
        assert parsed.slack_ps == 123456
        assert parsed.needs_rmt and parsed.droppable
        assert rest == b"tail"

    def test_empty_chain_roundtrip(self):
        parsed, _rest = PanicHeader.unpack(PanicHeader().pack())
        assert parsed.chain == [] and parsed.exhausted

    def test_advance_walks_chain(self):
        header = PanicHeader(chain=[7, 8])
        assert header.peek_next_hop() == 7
        assert header.advance() == 7
        assert header.advance() == 8
        assert header.exhausted
        with pytest.raises(HeaderError):
            header.advance()

    def test_remaining(self):
        header = PanicHeader(chain=[1, 2, 3], cursor=1)
        assert header.remaining() == [2, 3]

    def test_extend(self):
        header = PanicHeader(chain=[1])
        header.extend([2, 3])
        assert header.chain == [1, 2, 3]

    def test_bad_magic_rejected(self):
        blob = bytearray(PanicHeader(chain=[1]).pack())
        blob[0] = 0
        with pytest.raises(HeaderError):
            PanicHeader.unpack(bytes(blob))

    def test_cursor_outside_chain_rejected(self):
        with pytest.raises(HeaderError):
            PanicHeader(chain=[1], cursor=2)

    def test_address_range_validated(self):
        with pytest.raises(HeaderError):
            PanicHeader(chain=[1 << 16])

    def test_length_matches_pack(self):
        header = PanicHeader(chain=[1, 2, 3, 4])
        assert header.length == len(header.pack())

    def test_copy_is_deep(self):
        header = PanicHeader(chain=[1, 2])
        copy = header.copy()
        copy.advance()
        assert header.cursor == 0


class TestKvProtocol:
    def test_request_roundtrip(self):
        req = KvRequest(KvOpcode.SET, 9, 1234, b"key", b"value")
        parsed, rest = KvRequest.unpack(req.pack() + b"!")
        assert parsed == req
        assert rest == b"!"

    def test_get_cannot_carry_value(self):
        with pytest.raises(HeaderError):
            KvRequest(KvOpcode.GET, 0, 0, b"k", b"oops")

    def test_request_cannot_be_response(self):
        with pytest.raises(HeaderError):
            KvRequest(KvOpcode.RESPONSE, 0, 0, b"k")

    def test_response_roundtrip(self):
        resp = KvResponse(KvStatus.OK, 9, 1234, b"value")
        parsed, rest = KvResponse.unpack(resp.pack())
        assert parsed == resp
        assert rest == b""

    def test_response_opcode_enforced(self):
        blob = bytearray(KvResponse(KvStatus.OK, 0, 0).pack())
        blob[0] = int(KvOpcode.GET)
        with pytest.raises(HeaderError):
            KvResponse.unpack(bytes(blob))

    def test_truncated_body_rejected(self):
        req = KvRequest(KvOpcode.SET, 1, 2, b"key", b"value")
        with pytest.raises(HeaderError):
            KvRequest.unpack(req.pack()[:-1])


class TestBuilders:
    def test_udp_frame_parses_back(self):
        frame = build_udp_frame(
            src_mac="02:00:00:00:00:01",
            dst_mac="02:00:00:00:00:02",
            src_ip="10.0.0.1",
            dst_ip="10.0.0.2",
            src_port=1111,
            dst_port=2222,
            payload=b"ping",
            dscp=5,
        )
        parsed = parse_frame(frame)
        assert parsed.ipv4 is not None and parsed.udp is not None
        assert str(parsed.ipv4.src) == "10.0.0.1"
        assert parsed.ipv4.dscp == 5
        assert parsed.udp.dst_port == 2222
        assert parsed.payload == b"ping"

    def test_kv_request_frame(self):
        packet = build_kv_request_frame(KvRequest(KvOpcode.GET, 3, 77, b"k"))
        parsed = parse_frame(packet.data)
        assert parsed.is_kv
        assert parsed.kv_request().request_id == 77
        assert packet.meta.tenant == 3

    def test_kv_response_frame(self):
        packet = build_kv_response_frame(KvResponse(KvStatus.OK, 3, 77, b"v"))
        parsed = parse_frame(packet.data)
        assert parsed.is_kv
        response = parsed.kv_response()
        assert response.value == b"v"
        assert parsed.udp.src_port == KV_UDP_PORT

    def test_parse_frame_respects_ip_total_length(self):
        frame = build_udp_frame(
            src_mac="02:00:00:00:00:01",
            dst_mac="02:00:00:00:00:02",
            src_ip="10.0.0.1",
            dst_ip="10.0.0.2",
            src_port=1,
            dst_port=2,
            payload=b"x",
        )
        padded = frame + bytes(MIN_FRAME_BYTES - len(frame))
        parsed = parse_frame(padded)
        assert parsed.payload == b"x"

    def test_parse_frame_inconsistent_length_rejected(self):
        frame = bytearray(
            build_udp_frame(
                src_mac="02:00:00:00:00:01",
                dst_mac="02:00:00:00:00:02",
                src_ip="10.0.0.1",
                dst_ip="10.0.0.2",
                src_port=1,
                dst_port=2,
                payload=b"x",
            )
        )
        frame[16] = 0xFF  # total_length high byte absurdly large
        with pytest.raises(HeaderError):
            parse_frame(bytes(frame))

    def test_non_ip_frame_stops_at_l2(self):
        from repro.packet import build_eth_frame

        frame = build_eth_frame(
            "02:00:00:00:00:02", "02:00:00:00:00:01", b"raw", ethertype=0x88B5
        )
        parsed = parse_frame(frame)
        assert parsed.ipv4 is None
        assert parsed.payload == b"raw"
