"""Tests for the Table 2 line-rate model, reporting, and Table 1 taxonomy."""

import pytest

from repro.analysis import (
    format_comparison,
    format_table,
    min_frame_pps,
    required_rmt_pipelines,
    rmt_pipeline_pps,
    sustainable_rmt_passes,
    table2_rows,
)
from repro.engines import TABLE1, coverage, table1_rows
from repro.engines.taxonomy import Beneficiary, Placement, Resource
from repro.sim.clock import MHZ


class TestTable2:
    def test_rows_match_paper_within_rounding(self):
        rows = table2_rows()
        assert len(rows) == 4
        for row in rows:
            # The paper rounds to pretty numbers; we stay within 1%.
            assert row.pps_mpps == pytest.approx(row.paper_mpps, rel=0.01)

    def test_exact_values(self):
        rows = {(r.line_rate_gbps, r.ports): r.pps_mpps for r in table2_rows()}
        assert rows[(40, 2)] == pytest.approx(238.095, abs=0.01)
        assert rows[(100, 1)] == pytest.approx(297.619, abs=0.01)

    def test_pps_scales_linearly(self):
        assert min_frame_pps(80e9, 1) == pytest.approx(2 * min_frame_pps(40e9, 1))
        assert min_frame_pps(40e9, 4) == pytest.approx(2 * min_frame_pps(40e9, 2))

    def test_single_direction_halves(self):
        assert min_frame_pps(40e9, 2, directions=1) == pytest.approx(
            min_frame_pps(40e9, 2) / 2
        )

    def test_input_validation(self):
        with pytest.raises(ValueError):
            min_frame_pps(0, 1)
        with pytest.raises(ValueError):
            min_frame_pps(40e9, 0)


class TestSection42Feasibility:
    def test_two_pipelines_cover_two_port_100g(self):
        # Section 4.2: two 500 MHz pipelines = 1000 Mpps > 600 Mpps needed.
        assert rmt_pipeline_pps(500 * MHZ, 2) == 1e9
        passes = sustainable_rmt_passes(500 * MHZ, 2, 100e9, 2)
        assert passes > 1.0

    def test_cannot_chain_through_rmt_at_line_rate(self):
        # The paper's negative result: with per-offload RMT switching
        # (>= 2 passes/packet) two pipelines cannot hold 2x100G line rate.
        passes = sustainable_rmt_passes(500 * MHZ, 2, 100e9, 2)
        assert passes < 2.0

    def test_required_pipelines(self):
        assert required_rmt_pipelines(100e9, 2, 500 * MHZ) == 2
        assert required_rmt_pipelines(100e9, 2, 500 * MHZ, passes_per_packet=2) == 3
        assert required_rmt_pipelines(40e9, 2, 500 * MHZ) == 1


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) or True for line in lines)

    def test_format_table_arity_check(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_format_comparison_marks_best(self):
        text = format_comparison("latency", {"panic": 1.0, "pipeline": 5.0})
        assert "panic" in text.splitlines()[2]
        assert "<-- best" in text.splitlines()[2]

    def test_format_comparison_higher_is_better(self):
        text = format_comparison(
            "throughput", {"panic": 5.0, "pipeline": 1.0}, lower_is_better=False
        )
        best_line = [l for l in text.splitlines() if "best" in l][0]
        assert "panic" in best_line

    def test_empty_comparison_rejected(self):
        with pytest.raises(ValueError):
            format_comparison("x", {})


class TestTable1Taxonomy:
    def test_row_count_matches_paper(self):
        assert len(TABLE1) == 11  # Emu and RDMA appear twice

    def test_known_rows(self):
        rows = dict(table1_rows())
        assert rows["FlexNIC"] == "Application Inline Computation"
        assert rows["Azure SmartNIC"] == "Infrastructure CPU-bypass Network"

    def test_engine_coverage_spans_all_axes(self):
        classes = [cls for _name, cls in coverage()]
        assert classes  # non-empty
        beneficiaries = {c.split()[0] for c in classes}
        assert beneficiaries == {"Application", "Infrastructure"}
        placements = {c.split()[1] for c in classes}
        assert placements == {"Inline", "CPU-bypass"}
        resources = {c.split()[2] for c in classes}
        assert resources == {"Computation", "Memory", "Network"}

    def test_axes_are_enums(self):
        assert Beneficiary.APPLICATION.value == "Application"
        assert Placement.CPU_BYPASS.value == "CPU-bypass"
        assert Resource.MEMORY.value == "Memory"
