"""The seeded chaos harness and its delivery invariants.

``repro.reliability.chaos`` turns one integer seed into a random fault
plan, runs the reliable rack incast monolithically and sharded under it,
and checks the invariants of DESIGN.md section 12.  These tests pin the
harness itself: plan generation is a pure function of the seed, the
invariants hold across a handful of seeds (kept small -- CI runs the
bigger batch through ``benchmarks/chaos/run_chaos.py``), and the checker
actually catches the violations it claims to, so a green batch means
something.
"""

from types import SimpleNamespace

import pytest

from repro.reliability.chaos import (
    _check_case,
    _check_lb_case,
    generate_chaos_plan,
    run_chaos,
    run_chaos_case,
    split_config,
)


class TestPlanGeneration:
    def test_same_seed_same_plan(self):
        assert generate_chaos_plan(11, 4).describe() == \
            generate_chaos_plan(11, 4).describe()

    def test_different_seeds_differ(self):
        plans = {generate_chaos_plan(s, 4).describe() for s in range(8)}
        assert len(plans) > 1

    def test_plans_carry_their_seed(self):
        assert generate_chaos_plan(5, 4).seed == 5

    def test_crashes_spare_the_incast_receiver(self):
        # nic0 is every fanin flow's receiver; a plan that crashes its
        # checksum lane would fail all flows at once and tell us nothing.
        for seed in range(40):
            plan = generate_chaos_plan(seed, 4)
            crash_lines = [line for line in plan.describe().splitlines()
                           if " crash " in line]
            assert not any("nic0" in line for line in crash_lines)


class TestInvariants:
    def test_invariants_hold_on_a_seed_batch(self):
        report = run_chaos([0, 1, 2], frames=15, workers=2)
        assert report["passed"], report["failed_seeds"]
        assert report["goodput_min"] > 0.0
        for case in report["cases"]:
            assert all(case["invariants"].values()), case["violations"]

    def test_case_report_shape(self):
        case = run_chaos_case(4, frames=10, check_replay=False)
        assert case["seed"] == 4
        assert case["config"] == "gbn"
        assert set(case["invariants"]) == {
            "no_committed_loss", "no_duplicates", "accounting",
            "mono_eq_sharded", "replay_deterministic",
        }
        assert 0.0 <= case["goodput"] <= 1.0
        assert case["sent"] == 3 * 10  # three fanin senders
        assert set(case["linklayer"]) == {
            "protected", "nacks", "retransmits", "repaired",
            "gave_up", "bypassed",
        }
        assert case["fct_mean_ps"] <= case["fct_max_ps"]


class TestTransportConfigs:
    def test_split_config_vocabulary(self):
        assert split_config("gbn") == ("gbn", False)
        assert split_config("sr") == ("sr", False)
        assert split_config("gbn+ll") == ("gbn", True)
        with pytest.raises(ValueError, match="config"):
            split_config("tcp")
        with pytest.raises(ValueError, match="config"):
            split_config("gbn+turbo")

    def test_each_seed_runs_under_every_config(self):
        report = run_chaos([3], frames=10, check_replay=False,
                           configs=("gbn", "sr", "gbn+ll"))
        assert [c["config"] for c in report["cases"]] == \
            ["gbn", "sr", "gbn+ll"]
        assert set(report["by_config"]) == {"gbn", "sr", "gbn+ll"}
        for summary in report["by_config"].values():
            assert summary["passed"]
        assert report["params"]["configs"] == ["gbn", "sr", "gbn+ll"]

    def test_link_local_config_arms_every_wire(self):
        plan = generate_chaos_plan(3, 4, link_local=True)
        armed = [line for line in plan.describe().splitlines()
                 if "wire_linklayer" in line]
        assert len(armed) == 6  # all-pairs cabling of a 4-NIC rack
        # The fault mix itself is untouched: same weather, new armour.
        base = generate_chaos_plan(3, 4).describe()
        stripped = "\n".join(
            line for line in plan.describe().splitlines()
            if "wire_linklayer" not in line and "fault plan" not in line
        )
        assert stripped == "\n".join(base.splitlines()[1:])

    def test_goodput_floor_breach_is_surfaced_not_passed_over(self):
        # An impossible floor (1.01) must flag every link-local case
        # without flipping the invariant verdict.
        report = run_chaos([0], frames=10, check_replay=False,
                           configs=("gbn+ll",), goodput_floor=1.01)
        assert report["passed"]  # invariants are independent of floors
        assert not report["floor_ok"]
        assert report["floor_failures"][0]["config"] == "gbn+ll"
        # And the floor never applies to configs without link-local.
        report = run_chaos([0], frames=10, check_replay=False,
                           configs=("gbn",), goodput_floor=1.01)
        assert report["floor_ok"]


def _result(reports):
    return SimpleNamespace(reports=reports, wire_stats={})


def _nic_report(deliveries=(), tx_flows=None, failures=()):
    return {
        "deliveries": list(deliveries),
        "tx_flows": tx_flows or {},
        "failures": list(failures),
    }


class TestCheckerTeeth:
    """A checker that can't fail is worse than none: feed ``_check_case``
    hand-built violating runs and make sure each invariant bites."""

    def test_clean_run_passes(self):
        mono = _result({
            "nic0": _nic_report(deliveries=[(1, 0, 100, 0)]),
            "nic1": _nic_report(tx_flows={
                0: {"sent": 1, "acked": 1, "failed": 0, "aborted": 0},
            }),
        })
        assert _check_case(mono, None, None) == []

    def test_duplicate_delivery_flagged(self):
        mono = _result({
            "nic0": _nic_report(
                deliveries=[(1, 0, 100, 0), (1, 0, 200, 0)]),
        })
        assert any("duplicate delivery" in v
                   for v in _check_case(mono, None, None))

    def test_committed_loss_flagged(self):
        # nic1 believes seqs 0 and 1 were acked; the receiver only ever
        # saw seq 0 -- an ACK was forged somewhere.
        mono = _result({
            "nic0": _nic_report(deliveries=[(1, 0, 100, 0)]),
            "nic1": _nic_report(tx_flows={
                0: {"sent": 2, "acked": 2, "failed": 0, "aborted": 0},
            }),
        })
        assert any("committed loss" in v
                   for v in _check_case(mono, None, None))

    def test_accounting_leak_flagged(self):
        mono = _result({
            "nic0": _nic_report(),
            "nic1": _nic_report(tx_flows={
                0: {"sent": 3, "acked": 1, "failed": 1, "aborted": 1},
            }, failures=[(0, 1, 999, 9)]),
        })
        assert any("accounting leak" in v
                   for v in _check_case(mono, None, None))

    def test_unacked_without_abort_flagged(self):
        mono = _result({
            "nic0": _nic_report(),
            "nic1": _nic_report(tx_flows={
                0: {"sent": 2, "acked": 1, "failed": 1, "aborted": 0},
            }),
        })
        assert any("DeliveryFailed" in v
                   for v in _check_case(mono, None, None))

    def test_mono_shard_divergence_flagged(self):
        mono = _result({"nic0": _nic_report(deliveries=[(1, 0, 100, 0)])})
        shard = _result({"nic0": _nic_report(deliveries=[(1, 0, 101, 0)])})
        violations = _check_case(mono, shard, None)
        assert any("mono != sharded" in v and "nic0" in v
                   for v in violations)

    def test_replay_divergence_flagged(self):
        mono = _result({"nic0": _nic_report()})
        replay = _result({"nic0": _nic_report(deliveries=[(1, 0, 1, 0)])})
        assert any("replay" in v for v in _check_case(mono, None, replay))


def _lb_result(stats=None, backends=None, clients=None):
    """A hand-built lb-rack run: nic0 the balancer, nic1..nic2 backends,
    higher indices clients."""
    clean = {"steered": 0, "inserts": 0, "hits": 0,
             "evictions": 0, "bypass": 0}
    reports = {"nic0": {"steering": {"stats": {**clean, **(stats or {})}}}}
    for b, deliveries in (backends or {1: (), 2: ()}).items():
        reports[f"nic{b}"] = _nic_report(deliveries=deliveries)
    for c, kwargs in (clients or {}).items():
        reports[f"nic{c}"] = _nic_report(**kwargs)
    return _result(reports)


class TestLbCheckerTeeth:
    """Same bar for the lb config's checker: every invariant the chaos
    ``lb`` cases gate on must bite on a hand-built violating run."""

    def test_clean_run_passes(self):
        mono = _lb_result(
            stats={"steered": 2, "inserts": 1, "hits": 1},
            backends={1: [(3, 0, 100, 0), (3, 1, 110, 0)], 2: ()},
            clients={3: {"tx_flows": {
                0: {"sent": 2, "acked": 2, "failed": 0, "aborted": 0},
            }}},
        )
        assert _check_lb_case(mono, None, None, 2) == []

    def test_affinity_bypass_flagged(self):
        mono = _lb_result(stats={"bypass": 3})
        assert any("affinity violation" in v and "ring-only" in v
                   for v in _check_lb_case(mono, None, None, 2))

    def test_affinity_eviction_flagged(self):
        mono = _lb_result(stats={"evictions": 1})
        assert any("affinity violation" in v and "evicted" in v
                   for v in _check_lb_case(mono, None, None, 2))

    def test_flow_split_across_backends_flagged(self):
        # Client 3's sequence numbers land on both backends: the flow
        # changed backend mid-connection.
        mono = _lb_result(
            backends={1: [(3, 0, 100, 0)], 2: [(3, 1, 110, 0)]},
            clients={3: {"tx_flows": {
                0: {"sent": 2, "acked": 2, "failed": 0, "aborted": 0},
            }}},
        )
        violations = _check_lb_case(mono, None, None, 2)
        assert any("affinity violation" in v and "backends [1, 2]" in v
                   for v in violations)

    def test_committed_loss_checked_against_backend_union(self):
        # The client saw an ACK for seq 0 but no backend host ever
        # received it -- committed loss, whatever epoch was live.
        mono = _lb_result(clients={3: {"tx_flows": {
            0: {"sent": 1, "acked": 1, "failed": 0, "aborted": 0},
        }}})
        assert any("committed loss" in v
                   for v in _check_lb_case(mono, None, None, 2))

    def test_duplicate_to_backend_host_flagged(self):
        mono = _lb_result(backends={1: [(3, 0, 100, 0), (3, 0, 200, 0)],
                                    2: ()})
        assert any("duplicate delivery" in v
                   for v in _check_lb_case(mono, None, None, 2))

    def test_mode_divergence_flagged(self):
        mono = _lb_result()
        shard = _lb_result(stats={"steered": 9})
        assert any("mono != sharded" in v
                   for v in _check_lb_case(mono, shard, None, 2))
