"""Tests for multi-tile heavyweight RMT pipelines (Figure 3c)."""

import pytest

from repro.core import PanicConfig, PanicNic
from repro.packet import KvOpcode, KvRequest, build_kv_request_frame, parse_frame
from repro.sim import Simulator


class TestMultiTileRmt:
    def build(self, sim, tiles=2, ports=2):
        return PanicNic(sim, PanicConfig(
            ports=ports, rmt_tiles=tiles, mesh_width=4, mesh_height=4,
            offloads=("kvcache",),
        ))

    def test_tiles_constructed(self, sim):
        nic = self.build(sim)
        assert len(nic.rmt_tiles) == 2
        assert "rmt" in nic.engines and "rmt1" in nic.engines
        assert nic.rmt is nic.rmt_tiles[0]

    def test_ports_spread_across_tiles(self, sim):
        nic = self.build(sim)
        assert nic.ports[0].lookup_table.default_next == nic.rmt_tiles[0].address
        assert nic.ports[1].lookup_table.default_next == nic.rmt_tiles[1].address

    def test_both_tiles_process_traffic(self, sim):
        nic = self.build(sim)
        nic.control.enable_kv_cache()
        nic.offload("kvcache").cache_put(b"k", b"v")
        nic.inject(build_kv_request_frame(KvRequest(KvOpcode.GET, 1, 1, b"k")),
                   port=0)
        nic.inject(build_kv_request_frame(KvRequest(KvOpcode.GET, 1, 2, b"k")),
                   port=1)
        sim.run()
        assert len(nic.transmitted) == 2
        assert nic.rmt_tiles[0].processed.value >= 1
        assert nic.rmt_tiles[1].processed.value >= 1

    def test_single_control_plane_programs_all_tiles(self, sim):
        nic = self.build(sim)
        nic.control.enable_kv_cache()
        # Both engines share the very same program object.
        assert (nic.rmt_tiles[0].pipeline.program
                is nic.rmt_tiles[1].pipeline.program)

    def test_responses_work_from_either_tile(self, sim):
        nic = self.build(sim)
        nic.control.enable_kv_cache()
        nic.offload("kvcache").cache_put(b"k", b"v")
        for i, port in enumerate((0, 1, 0, 1)):
            nic.inject(
                build_kv_request_frame(KvRequest(KvOpcode.GET, 1, i, b"k")),
                port=port,
            )
        sim.run()
        values = {parse_frame(p.data).kv_response().value
                  for p in nic.transmitted}
        assert values == {b"v"}
        assert len(nic.transmitted) == 4

    def test_tile_count_validated(self):
        with pytest.raises(ValueError):
            PanicConfig(rmt_tiles=0)

    def test_tiles_fit_check(self):
        with pytest.raises(ValueError):
            PanicConfig(ports=2, rmt_tiles=12, mesh_width=4, mesh_height=4)

    def test_aggregate_throughput_scales(self, sim):
        """Two tiles admit packets concurrently: the span for a burst
        split across tiles is about half the single-tile span."""
        nic = self.build(sim)
        times = {0: [], 1: []}
        for index, tile in enumerate(nic.rmt_tiles):
            original = tile.decision_handler

            def handler(packet, phv, _index=index, _orig=original):
                times[_index].append(sim.now)
                return _orig(packet, phv)

            tile.decision_handler = handler
        nic.control.enable_kv_cache()
        nic.offload("kvcache").cache_put(b"k", b"v")
        for i in range(20):
            nic.inject(
                build_kv_request_frame(KvRequest(KvOpcode.GET, 1, i, b"k")),
                port=i % 2,
            )
        sim.run()
        assert len(times[0]) >= 10 and len(times[1]) >= 10
