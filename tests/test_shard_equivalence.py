"""The sharded runner must be invisible in simulated results.

``repro.sim.shard`` partitions a rack topology across worker processes
synchronized with conservative time windows.  The contract (DESIGN.md
section 10) mirrors the fast-path one: every simulated observable --
per-NIC ``stats()`` trees, delivery tuples with picosecond timestamps --
is bit-identical between the monolithic single-process run and the
sharded run at any worker count.  These tests enforce it on the
symmetric and fan-in rack workloads, and cover the protocol's edges:
topology partitioning, the lookahead floor, deadlock detection across
the barrier, and the wall-clock speedup the sharding exists for.
"""

import os

import pytest

from repro.core.topology import (
    LinkSpec,
    MIN_LOOKAHEAD_PS,
    NicSpec,
    RackTopology,
    TopologyError,
)
from repro.sim.clock import NS, US
from repro.sim.shard import (
    ShardDeadlockError,
    parallel_map,
    run_monolithic,
    run_sharded,
)
from repro.workloads.rack import build_rack_nic, rack_port, rack_topology


def _assert_identical(mono, sharded):
    assert set(sharded.reports) == set(mono.reports)
    for name in mono.reports:
        assert sharded.reports[name]["deliveries"] == \
            mono.reports[name]["deliveries"], f"{name} deliveries diverge"
        assert sharded.reports[name]["stats"] == \
            mono.reports[name]["stats"], f"{name} stats diverge"


class TestEquivalence:
    def test_symmetric_rack_all_worker_counts(self):
        topo = rack_topology(nics=4, frames=8)
        mono = run_monolithic(topo)
        # Every NIC hears every frame from its 3 peers.
        for name in mono.reports:
            assert len(mono.reports[name]["deliveries"]) == 3 * 8
        for workers in (1, 2, 3, 4):
            sharded = run_sharded(topo, workers=workers)
            _assert_identical(mono, sharded)
            assert sharded.events_fired == mono.events_fired

    def test_fanin_rack(self):
        topo = rack_topology(nics=4, frames=6, pattern="fanin")
        mono = run_monolithic(topo)
        assert len(mono.reports["nic0"]["deliveries"]) == 3 * 6
        for name in ("nic1", "nic2", "nic3"):
            assert mono.reports[name]["deliveries"] == []
        sharded = run_sharded(topo, workers=4)
        _assert_identical(mono, sharded)

    def test_two_nics_long_wire(self):
        # WAN-ish propagation: windows are huge, rounds few.
        topo = rack_topology(nics=2, frames=10, propagation_ps=50 * US)
        mono = run_monolithic(topo)
        sharded = run_sharded(topo, workers=2)
        _assert_identical(mono, sharded)
        assert sharded.rounds > 0
        assert sharded.lookahead_ps == 50 * US

    def test_deliveries_are_timestamped(self):
        topo = rack_topology(nics=2, frames=3)
        mono = run_monolithic(topo)
        deliveries = mono.reports["nic1"]["deliveries"]
        assert deliveries, "nic1 saw no traffic"
        for src, seq, t_ps, queue in deliveries:
            assert src == 0
            assert t_ps > 0


class TestSpeedup:
    def test_four_workers_speed_up_the_incast(self):
        """The acceptance bar: >=2x on the 4-NIC incast with 4 workers.

        Wall-clock speedup needs 4 real cores; on smaller machines the
        run still executes (equivalence is asserted) but the timing
        assertion is skipped.
        """
        topo = rack_topology(nics=4, frames=240, gap_ps=1 * US,
                             propagation_ps=8 * US)
        mono = run_monolithic(topo)
        sharded = run_sharded(topo, workers=4)
        _assert_identical(mono, sharded)
        try:
            cores = len(os.sched_getaffinity(0))
        except AttributeError:  # pragma: no cover - non-Linux
            cores = os.cpu_count() or 1
        if cores < 4:
            pytest.skip(f"speedup needs 4 cores, machine has {cores}")
        speedup = mono.wall_seconds / sharded.wall_seconds
        assert speedup >= 2.0, (
            f"4-worker incast speedup {speedup:.2f}x < 2x "
            f"(mono {mono.wall_seconds:.2f}s, "
            f"sharded {sharded.wall_seconds:.2f}s, "
            f"{sharded.rounds} rounds)"
        )


class TestProtocolEdges:
    def test_deadlock_detected_across_barrier(self):
        # A tiny window budget turns the first busy window into a
        # deadlock report instead of a hung barrier.
        topo = rack_topology(nics=2, frames=50, gap_ps=100 * NS)
        with pytest.raises(ShardDeadlockError) as excinfo:
            run_sharded(topo, workers=2, window_event_budget=10)
        assert "pending" in str(excinfo.value)
        assert excinfo.value.shard in (0, 1)

    def test_deadlock_report_names_shard_nics_and_starved_engines(self):
        # The report must say *where* to look: which NICs live on the
        # wedged shard, and which engines still hold work (or an explicit
        # statement that none do, pointing at wires/host timers instead).
        topo = rack_topology(nics=2, frames=50, gap_ps=100 * NS)
        with pytest.raises(ShardDeadlockError) as excinfo:
            run_sharded(topo, workers=2, window_event_budget=10)
        message = str(excinfo.value)
        assert "shard NICs:" in message
        named = [n for n in ("nic0", "nic1") if n in message]
        assert named, message
        assert ("starved engines:" in message
                or "no engine holds work" in message), message

    def test_single_worker_runs_one_window(self):
        topo = rack_topology(nics=3, frames=4)
        result = run_sharded(topo, workers=1)
        assert result.rounds == 1
        assert result.lookahead_ps == 0

    def test_parallel_map_matches_serial(self):
        items = list(range(13))
        assert parallel_map(_square, items, jobs=4) == [i * i for i in items]
        assert parallel_map(_square, items, jobs=1) == [i * i for i in items]
        assert parallel_map(_square, [], jobs=4) == []


def _square(x):
    return x * x


class TestTopology:
    def _topo(self, n=4):
        return rack_topology(nics=n, frames=1)

    def test_assignment_is_contiguous_and_balanced(self):
        topo = self._topo(5)
        assignment = topo.assign_shards(2)
        assert assignment == {"nic0": 0, "nic1": 0, "nic2": 0,
                              "nic3": 1, "nic4": 1}
        sizes = [list(assignment.values()).count(s) for s in (0, 1)]
        assert max(sizes) - min(sizes) <= 1

    def test_too_many_workers_rejected(self):
        with pytest.raises(TopologyError):
            self._topo(2).assign_shards(3)
        with pytest.raises(TopologyError):
            self._topo(2).assign_shards(0)

    def test_lookahead_is_min_cross_propagation(self):
        specs = [NicSpec(f"n{i}", build_rack_nic,
                         {"index": i, "n_nics": 3, "frames": 0})
                 for i in range(3)]
        links = [
            LinkSpec("n0", "n1", port_a=rack_port(0, 1),
                     port_b=rack_port(1, 0), propagation_ps=2 * US),
            LinkSpec("n1", "n2", port_a=rack_port(1, 2),
                     port_b=rack_port(2, 1), propagation_ps=5 * US),
        ]
        topo = RackTopology(specs, links)
        assignment = {"n0": 0, "n1": 1, "n2": 1}
        assert topo.lookahead_ps(assignment) == 2 * US
        # All NICs in one shard: no cross links, unbounded window.
        assert topo.lookahead_ps({"n0": 0, "n1": 0, "n2": 0}) == 0

    def test_lookahead_floor_enforced(self):
        specs = [NicSpec(f"n{i}", build_rack_nic,
                         {"index": i, "n_nics": 2, "frames": 0})
                 for i in range(2)]
        links = [LinkSpec("n0", "n1", propagation_ps=MIN_LOOKAHEAD_PS - 1)]
        topo = RackTopology(specs, links)
        with pytest.raises(TopologyError, match="minimum lookahead"):
            topo.lookahead_ps({"n0": 0, "n1": 1})
        # Same wire is fine when both ends share a shard.
        assert topo.lookahead_ps({"n0": 0, "n1": 0}) == 0

    def test_zero_weight_nics_still_assigned(self):
        # frames=0 (and junk hints) clamp to weight 1: every NIC lands
        # in exactly one shard and no shard comes up empty.
        specs = [NicSpec(f"n{i}", build_rack_nic,
                         {"index": i, "n_nics": 4,
                          "frames": 0 if i % 2 else "many"})
                 for i in range(4)]
        topo = RackTopology(specs, [LinkSpec("n0", "n1"),
                                    LinkSpec("n2", "n3", port_a=1,
                                             port_b=1)])
        assignment = topo.assign_shards(3)
        assert sorted(assignment) == [f"n{i}" for i in range(4)]
        assert set(assignment.values()) == {0, 1, 2}

    def test_dominant_hot_nic_gets_its_own_shard(self):
        # One NIC emits 100x the traffic of the rest: binning it with
        # idle peers just to equalize counts would serialize the run, so
        # the weighted split isolates it.
        frames = [1000, 10, 10, 10]
        specs = [NicSpec(f"n{i}", build_rack_nic,
                         {"index": i, "n_nics": 4, "frames": frames[i]})
                 for i in range(4)]
        topo = RackTopology(specs, [LinkSpec("n0", "n1")])
        assignment = topo.assign_shards(2)
        assert assignment["n0"] == 0
        assert [assignment[f"n{i}"] for i in (1, 2, 3)] == [1, 1, 1]

    def test_equal_weights_keep_historical_split(self):
        # When every NIC weighs the same, the weighted assignment must
        # reproduce the old equal-size contiguous split exactly (larger
        # early shards on ties) -- pinned so old sharded runs replay
        # bit-identically.
        for n, workers, expected in (
            (5, 2, [0, 0, 0, 1, 1]),
            (6, 3, [0, 0, 1, 1, 2, 2]),
            (4, 4, [0, 1, 2, 3]),
        ):
            topo = rack_topology(nics=n, frames=7)
            assignment = topo.assign_shards(workers)
            assert [assignment[f"nic{i}"] for i in range(n)] == expected

    def test_malformed_topologies_rejected(self):
        spec = NicSpec("n0", build_rack_nic,
                       {"index": 0, "n_nics": 2, "frames": 0})
        with pytest.raises(TopologyError, match="duplicate"):
            RackTopology([spec, spec], [])
        with pytest.raises(TopologyError, match="unknown NIC"):
            RackTopology([spec], [LinkSpec("n0", "ghost")])
        with pytest.raises(TopologyError, match="itself"):
            LinkSpec("n0", "n0")
        with pytest.raises(TopologyError, match="cabled twice"):
            specs = [NicSpec(f"n{i}", build_rack_nic,
                             {"index": i, "n_nics": 3, "frames": 0})
                     for i in range(3)]
            RackTopology(specs, [
                LinkSpec("n0", "n1", port_a=0, port_b=0),
                LinkSpec("n0", "n2", port_a=0, port_b=0),
            ])
