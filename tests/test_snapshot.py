"""Tests for control-plane snapshots (export / import / diff)."""

import pytest

from repro.core import PanicConfig, PanicNic
from repro.packet import KvOpcode, KvRequest, build_kv_request_frame, parse_frame
from repro.rmt import MatchKey, MatchKind, RmtProgram
from repro.rmt.snapshot import (
    SnapshotError,
    diff_programs,
    export_program,
    import_program,
)
from repro.sim import Simulator


def small_program():
    program = RmtProgram("snap")
    table = program.add_table("acl", [MatchKey("ipv4.dst", MatchKind.LPM)])
    table.add([(0x0A000000, 8)], "drop", priority=8)
    table2 = program.add_table("mark", [MatchKey("udp.dst_port")])
    table2.add([80], "set_field", {"field": "meta.web", "value": 1})
    table2.add([443], "set_field", {"field": "meta.web", "value": 2})
    return program


class TestSnapshotRoundtrip:
    def test_export_import_restores_entries(self):
        source = small_program()
        snapshot = export_program(source)
        target = small_program()
        target.table("acl").clear()
        target.table("mark").clear()
        installed = import_program(target, snapshot)
        assert installed == 3
        assert target.table("acl").size == 1
        assert target.table("mark").size == 2

    def test_restored_entries_match_semantics(self):
        from repro.rmt import Phv

        source = small_program()
        snapshot = export_program(source)
        target = small_program()
        target.table("mark").clear()
        import_program(target, snapshot)
        action, params, hit = target.table("mark").lookup(
            Phv({"udp.dst_port": 443})
        )
        assert (action, params["value"], hit) == ("set_field", 2, True)

    def test_bytes_patterns_roundtrip(self):
        program = RmtProgram("bytes")
        table = program.add_table("keys", [MatchKey("kv.key")])
        table.add([b"\x00\xffkey"], "drop")
        snapshot = export_program(program)
        target = RmtProgram("bytes2")
        target.add_table("keys", [MatchKey("kv.key")])
        import_program(target, snapshot)
        from repro.rmt import Phv

        assert target.table("keys").lookup(Phv({"kv.key": b"\x00\xffkey"}))[2]

    def test_merge_mode_keeps_existing(self):
        source = small_program()
        snapshot = export_program(source)
        target = small_program()  # already has the same 3 entries
        with pytest.raises(Exception):
            # exact-duplicate insert collides in merge mode
            import_program(target, snapshot, clear=False)

    def test_unknown_table_rejected(self):
        source = small_program()
        snapshot = export_program(source)
        target = RmtProgram("empty")
        with pytest.raises(SnapshotError):
            import_program(target, snapshot)

    def test_malformed_json_rejected(self):
        with pytest.raises(SnapshotError):
            import_program(small_program(), "{nope")

    def test_hit_counts_exported(self):
        from repro.rmt import Phv

        program = small_program()
        program.table("mark").lookup(Phv({"udp.dst_port": 80}))
        snapshot = export_program(program)
        assert '"hits": 1' in snapshot


class TestDiff:
    def test_identical_snapshots(self):
        snap = export_program(small_program())
        diff = diff_programs(snap, snap)
        assert diff["mark"] == {"only_a": 0, "only_b": 0, "common": 2}

    def test_detects_added_entry(self):
        a = export_program(small_program())
        program = small_program()
        program.table("mark").add([8080], "drop")
        b = export_program(program)
        diff = diff_programs(a, b)
        assert diff["mark"]["only_b"] == 1
        assert diff["mark"]["common"] == 2


class TestNicSnapshot:
    def test_full_nic_control_plane_roundtrip(self, sim):
        nic = PanicNic(sim, PanicConfig(ports=1))
        nic.control.enable_kv_cache()
        nic.control.set_tenant_slack(1, 123_000)
        snapshot = export_program(nic.control.program)

        # A second NIC restored from the snapshot behaves identically.
        sim2 = Simulator()
        nic2 = PanicNic(sim2, PanicConfig(ports=1), name="panic2")
        import_program(nic2.control.program, snapshot)
        nic2.offload("kvcache").cache_put(b"k", b"v")
        nic2.inject(build_kv_request_frame(KvRequest(KvOpcode.GET, 1, 1, b"k")))
        sim2.run()
        response = parse_frame(nic2.transmitted[0].data).kv_response()
        assert response.value == b"v"
