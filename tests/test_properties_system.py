"""Property-based tests over system components (routing, shaping,
placement, scheduling policies)."""

from hypothesis import given, settings, strategies as st

from repro.engines.ratelimit import TokenBucket
from repro.noc import Endpoint, Mesh, MeshConfig
from repro.noc.placement import (
    expected_hops,
    greedy_placement,
    manhattan,
)
from repro.packet import Packet
from repro.sched import PifoQueue, WeightedShareSlackPolicy
from repro.sim import Simulator
from repro.sim.clock import SEC


class _Sink(Endpoint):
    def __init__(self):
        self.got = []

    def receive(self, message):
        self.got.append(message)


@given(
    st.integers(2, 5), st.integers(2, 5),
    st.data(),
)
@settings(max_examples=60, deadline=None)
def test_mesh_delivery_hops_equal_manhattan_plus_injection(w, h, data):
    """XY routing takes exactly manhattan(src, dst) + 1 channel hops."""
    sim = Simulator()
    mesh = Mesh(sim, MeshConfig(width=w, height=h))
    sinks = {}
    ports = {}
    for y in range(h):
        for x in range(w):
            sink = _Sink()
            ports[(x, y)] = mesh.bind(sink, x, y)
            sinks[(x, y)] = sink
    sx = data.draw(st.integers(0, w - 1))
    sy = data.draw(st.integers(0, h - 1))
    dx = data.draw(st.integers(0, w - 1))
    dy = data.draw(st.integers(0, h - 1))
    if (sx, sy) == (dx, dy):
        return
    ports[(sx, sy)].send(Packet(b"\x00" * 64), mesh.address_of(dx, dy))
    sim.run()
    [message] = sinks[(dx, dy)].got
    assert message.hops == manhattan((sx, sy), (dx, dy)) + 1


@given(st.lists(st.tuples(st.integers(0, w_max := 3),
                          st.integers(0, 3),
                          st.integers(0, 3),
                          st.integers(0, 3)),
                min_size=1, max_size=40))
@settings(max_examples=40, deadline=None)
def test_mesh_is_always_lossless(pairs):
    sim = Simulator()
    mesh = Mesh(sim, MeshConfig(width=4, height=4, credits=2))
    sinks = {}
    ports = {}
    for y in range(4):
        for x in range(4):
            sink = _Sink()
            ports[(x, y)] = mesh.bind(sink, x, y)
            sinks[(x, y)] = sink
    sent = 0
    for sx, sy, dx, dy in pairs:
        if (sx, sy) == (dx, dy):
            continue
        ports[(sx, sy)].send(Packet(b"\x00" * 64), mesh.address_of(dx, dy))
        sent += 1
    sim.run()
    assert sum(len(s.got) for s in sinks.values()) == sent
    assert mesh.in_flight == 0


@given(
    st.floats(min_value=1e8, max_value=1e11, allow_nan=False),
    st.integers(100, 10_000),
    st.lists(st.integers(60, 1500), min_size=2, max_size=30),
)
@settings(max_examples=60, deadline=None)
def test_token_bucket_never_exceeds_rate_plus_burst(rate_bps, burst, sizes):
    """Cumulative bytes admitted by time T <= burst + rate * T."""
    bucket = TokenBucket(rate_bps=rate_bps, burst_bytes=burst)
    now = 0
    admitted = 0
    for size in sizes:
        when = bucket.eligible_at(size, now)
        assert when >= now
        now = when
        if size <= burst:  # oversized packets can never be admitted
            assert bucket.try_consume(size, now)
            admitted += size
    bound = burst + rate_bps * now / (8 * SEC)
    assert admitted <= bound + 1


@given(st.lists(st.tuples(st.integers(0, 3), st.integers(1, 50)),
                min_size=1, max_size=100))
def test_wfq_virtual_time_never_regresses(events):
    policy = WeightedShareSlackPolicy({0: 1.0, 1: 2.0, 2: 5.0, 3: 0.5})
    last = {}
    for tenant, cost in events:
        deadline = policy.deadline_ps(tenant, 0, cost_ps=cost)
        if tenant in last:
            # Non-decreasing; ties (sub-ps virtual time) are broken FIFO
            # by the PIFO's sequence numbers.
            assert deadline >= last[tenant]
        last[tenant] = deadline


@given(
    st.integers(2, 4),
    st.lists(
        st.tuples(st.integers(0, 7), st.integers(0, 7),
                  st.floats(min_value=0.1, max_value=10, allow_nan=False)),
        min_size=1, max_size=20,
    ),
)
@settings(max_examples=50, deadline=None)
def test_greedy_placement_valid_and_bounded(k, raw_traffic):
    engines = [f"e{i}" for i in range(8)]
    traffic = {}
    for a, b, weight in raw_traffic:
        if a != b:
            traffic[(f"e{a}", f"e{b}")] = weight
    placement = greedy_placement(engines, traffic, 4, 4)
    # Valid: all engines placed on distinct tiles inside the mesh.
    assert set(placement) == set(engines)
    coords = list(placement.values())
    assert len(set(coords)) == len(coords)
    assert all(0 <= x < 4 and 0 <= y < 4 for x, y in coords)
    # Bounded: expected hops can never beat 1 (adjacent) for nonzero
    # traffic, nor exceed the mesh diameter.
    if traffic:
        hops = expected_hops(placement, traffic)
        assert 1.0 <= hops <= 6.0


@given(st.lists(st.tuples(st.integers(0, 1000), st.booleans()),
                min_size=1, max_size=80),
       st.integers(1, 8))
def test_pifo_droppable_conservation(items, capacity):
    """accepted + dropped == offered, and survivors beat the dropped."""
    queue = PifoQueue(capacity=capacity)
    offered = 0
    for i, (rank, _d) in enumerate(items):
        queue.push(i, rank, droppable=True)
        offered += 1
    survivors = []
    while not queue.is_empty:
        survivors.append(queue.pop()[1])
    assert len(survivors) + queue.dropped.value == offered
    assert survivors == sorted(survivors)
