"""In-band network telemetry (INT) and the simulator self-profiler.

The INT subsystem (``repro.telemetry.int_``) turns every NIC carrying
an :class:`IntConfig` into an INT source/transit/sink: RMT stages push
per-hop records onto a per-packet stack, the sink NIC pops the stack
into flow postcards, and a rack-level :class:`IntCollector` derives
path traces, hop latency breakdowns, queue watermarks, path changes and
microbursts.  The acceptance bar (ISSUE 9 / DESIGN.md section 16) is
bit-identity: INT flow reports must compare equal between
``run_monolithic`` and ``run_sharded`` at any worker count, in both
window protocols, with tracing telemetry on or off, in side-channel
and in-band carriage alike.  These tests enforce that bar and pin the
edges: the in-band trailer codec (magic, internet checksum, corrupt
and absent trailers), side-channel zero-cost invisibility, in-band
frame-growth visibility, postcard bounding, collector views, the
kernel wall-time profiler, the speculative rollback-cost counters, and
the tracer ring-buffer overflow accounting across the sharded merge.
"""

import os

import pytest

from repro.sim.clock import NS, US
from repro.sim.kernel import Simulator
from repro.sim.shard import run_monolithic, run_sharded
from repro.telemetry.config import IntConfig, TelemetryConfig
from repro.telemetry.export import merge_int_reports, int_chrome_events
from repro.telemetry.int_ import (
    FOOTER_STRUCT,
    RECORD_STRUCT,
    IntCollector,
    encode_stack,
    flow_name,
    format_int_report,
    parse_stack,
)
from repro.workloads.rack import rack_topology

HAVE_FORK = hasattr(os, "fork")

needs_fork = pytest.mark.skipif(
    not HAVE_FORK, reason="sharded execution requires os.fork")


def _assert_identical(mono, sharded):
    assert set(sharded.reports) == set(mono.reports)
    for name in mono.reports:
        assert sharded.reports[name] == mono.reports[name], \
            f"{name} diverges"
    assert sharded.wire_stats == mono.wire_stats
    assert sharded.events_fired == mono.events_fired


def _postcard_count(result):
    return sum(
        len(report.get("int", ()))
        for report in result.reports.values()
    )


# ----------------------------------------------------------------------
# In-band trailer codec
# ----------------------------------------------------------------------

class TestTrailerCodec:
    RECORDS = (
        (0, 0, 100, 250, 3, 7),
        (2, 1, 9000, 12345, -1, 0),
        (65535, 7, 2**40, 2**40 + 17, 2**31 - 1, 5),
    )

    def test_roundtrip(self):
        blob = encode_stack(self.RECORDS)
        assert len(blob) == (len(self.RECORDS) * RECORD_STRUCT.size
                             + FOOTER_STRUCT.size)
        parsed = parse_stack(b"payload bytes" + blob)
        assert parsed is not None
        records, trailer_len, valid = parsed
        assert valid
        assert records == self.RECORDS
        assert trailer_len == len(blob)

    def test_empty_stack_roundtrips(self):
        blob = encode_stack(())
        records, trailer_len, valid = parse_stack(b"x" + blob)
        assert valid and records == () and trailer_len == len(blob)

    def test_no_trailer_is_none(self):
        assert parse_stack(b"") is None
        assert parse_stack(b"just a UDP datagram") is None

    def test_wrong_magic_is_none(self):
        blob = bytearray(encode_stack(self.RECORDS[:1]))
        blob[-FOOTER_STRUCT.size] ^= 0xFF  # corrupt magic
        assert parse_stack(bytes(blob)) is None

    def test_count_beyond_frame_is_none(self):
        # A footer declaring more records than the frame holds must be
        # rejected, not read out of bounds.
        footer = FOOTER_STRUCT.pack(0x31544E49, 100, 0)
        assert parse_stack(b"tiny" + footer) is None

    def test_corrupt_records_fail_checksum_but_keep_length(self):
        blob = bytearray(encode_stack(self.RECORDS))
        blob[3] ^= 0x40  # flip a bit inside the record region
        parsed = parse_stack(bytes(blob))
        assert parsed is not None
        records, trailer_len, valid = parsed
        assert not valid
        assert records == ()
        # The sink can still strip the damaged region deterministically.
        assert trailer_len == len(blob)


# ----------------------------------------------------------------------
# Mono == sharded bit-identity (the ISSUE acceptance matrix)
# ----------------------------------------------------------------------

@needs_fork
class TestIntEquivalence:
    WORKER_COUNTS = (1, 2, 4)

    def _topo(self, telemetry=None, inband=False):
        return rack_topology(
            nics=4, pattern="fanin", frames=8, gap_ps=400 * NS,
            propagation_ps=500 * NS, telemetry=telemetry,
            int_=IntConfig(inband=inband))

    @pytest.mark.parametrize("inband", [False, True])
    @pytest.mark.parametrize("speculative", [False, True])
    def test_reports_bit_identical_every_worker_count(
            self, speculative, inband):
        topo = self._topo(inband=inband)
        mono = run_monolithic(topo)
        assert _postcard_count(mono) > 0
        for workers in self.WORKER_COUNTS:
            sharded = run_sharded(topo, workers=workers,
                                  speculative=speculative)
            _assert_identical(mono, sharded)

    @pytest.mark.parametrize("speculative", [False, True])
    def test_bit_identical_with_tracing_telemetry_on(self, speculative):
        topo = self._topo(telemetry=TelemetryConfig(sample_every=1))
        mono = run_monolithic(topo)
        assert _postcard_count(mono) > 0
        assert any("trace" in r for r in mono.reports.values())
        for workers in self.WORKER_COUNTS:
            sharded = run_sharded(topo, workers=workers,
                                  speculative=speculative)
            _assert_identical(mono, sharded)

    def test_merged_collector_report_identical(self):
        # The end-to-end artifact the operator reads: merge postcards,
        # run the collector, compare the full derived report.
        topo = self._topo()
        mono = run_monolithic(topo)
        reference = IntCollector()
        for sink, cards in merge_int_reports(mono.reports).items():
            reference.ingest(sink, cards)
        for workers in self.WORKER_COUNTS:
            sharded = run_sharded(topo, workers=workers)
            collector = IntCollector()
            for sink, cards in merge_int_reports(sharded.reports).items():
                collector.ingest(sink, cards)
            assert collector.report() == reference.report()


class TestSideChannelInvisibility:
    def test_side_channel_timeline_matches_int_free_run(self):
        # Side-channel INT is observation only: stripping the "int" keys
        # out of an INT run must reproduce the INT-free run exactly.
        base = run_monolithic(rack_topology(
            nics=3, pattern="fanin", frames=6, gap_ps=1 * US))
        with_int = run_monolithic(rack_topology(
            nics=3, pattern="fanin", frames=6, gap_ps=1 * US,
            int_=IntConfig()))
        assert _postcard_count(with_int) > 0
        for name, report in with_int.reports.items():
            stripped = {k: v for k, v in report.items() if k != "int"}
            stripped["stats"] = {
                k: v for k, v in report["stats"].items() if k != "int"}
            assert stripped == base.reports[name], f"{name} perturbed"
        assert with_int.events_fired == base.events_fired

    def test_inband_growth_shifts_timeline(self):
        # In-band carriage is real payload bytes: serialization of the
        # grown frames must move delivery instants, while the postcard
        # *content* (paths, queues) stays the same flows.
        side = run_monolithic(rack_topology(
            nics=3, pattern="fanin", frames=6, gap_ps=1 * US,
            int_=IntConfig(inband=False)))
        inband = run_monolithic(rack_topology(
            nics=3, pattern="fanin", frames=6, gap_ps=1 * US,
            int_=IntConfig(inband=True)))
        side_cards = merge_int_reports(side.reports)["nic0"]
        inband_cards = merge_int_reports(inband.reports)["nic0"]
        assert len(side_cards) == len(inband_cards) > 0
        paths = lambda cards: sorted(card[2] for card in cards)
        assert paths(side_cards) == paths(inband_cards)
        # Same frames, later deliveries: every in-band frame carried its
        # trailer across the wire.
        side_t = sorted(card[0] for card in side_cards)
        inband_t = sorted(card[0] for card in inband_cards)
        assert inband_t != side_t
        assert sum(inband_t) > sum(side_t)

    def test_inband_sink_strips_trailer_from_host_bytes(self):
        # Deliveries record payload sizes via the frame tuples; the
        # delivered (src, seq, ...) tuples must match the side-channel
        # run -- the host never sees trailer bytes.
        side = run_monolithic(rack_topology(
            nics=3, pattern="fanin", frames=6, gap_ps=1 * US,
            int_=IntConfig(inband=False)))
        inband = run_monolithic(rack_topology(
            nics=3, pattern="fanin", frames=6, gap_ps=1 * US,
            int_=IntConfig(inband=True)))
        key = lambda rep: sorted((d[0], d[1], d[3])
                                 for d in rep["deliveries"])
        for name in side.reports:
            assert key(side.reports[name]) == key(inband.reports[name])


# ----------------------------------------------------------------------
# Postcard semantics on a single run
# ----------------------------------------------------------------------

class TestPostcards:
    def _cards(self, **int_kwargs):
        result = run_monolithic(rack_topology(
            nics=3, pattern="fanin", frames=5, gap_ps=1 * US,
            int_=IntConfig(**int_kwargs)))
        return result, merge_int_reports(result.reports)

    def test_fanin_postcards_land_on_sink_only(self):
        result, merged = self._cards()
        assert set(merged) == {"nic0", "nic1", "nic2"}
        # fanin: all traffic terminates at nic0.
        assert len(merged["nic0"]) == 10  # 2 senders x 5 frames
        assert merged["nic1"] == [] and merged["nic2"] == []

    def test_record_fields_are_simulated_state(self):
        _, merged = self._cards()
        for deliver_ps, queue, path, records in merged["nic0"]:
            assert path[-1] == 0  # sink hop is nic0
            assert len(records) == len(path)
            for idx, record in enumerate(records):
                nic_id, hop, ingress, egress, pifo, engine = record
                assert hop == idx  # hop = position in the stack
                assert 0 <= ingress <= egress <= deliver_ps
                assert pifo >= -1 and engine >= 0

    def test_hop_latency_positive_across_wire(self):
        _, merged = self._cards()
        for _, _, _, records in merged["nic0"]:
            # Transit egress precedes sink ingress by the propagation
            # delay at least.
            assert records[1][2] > records[0][3]

    def test_max_postcards_bounds_retention(self):
        result, merged = self._cards(max_postcards=3)
        assert len(merged["nic0"]) == 3
        summary = result.reports["nic0"]["stats"]["int"]
        assert summary["postcards"] == 3
        assert summary["dropped_postcards"] == 7

    def test_max_hops_suppresses_stack_growth(self):
        result, merged = self._cards(max_hops=1)
        summary = result.reports["nic0"]["stats"]["int"]
        assert summary["hops_suppressed"] > 0
        for _, _, path, records in merged["nic0"]:
            assert len(records) == 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            IntConfig(max_hops=0)
        with pytest.raises(ValueError):
            IntConfig(max_postcards=-1)

    def test_merge_returns_none_without_int(self):
        result = run_monolithic(rack_topology(
            nics=3, pattern="fanin", frames=2, gap_ps=1 * US))
        assert merge_int_reports(result.reports) is None


# ----------------------------------------------------------------------
# Collector-derived views
# ----------------------------------------------------------------------

class TestCollector:
    def _collector(self, **kwargs):
        # Tight incast: all senders release aligned frames into nic0,
        # shallow gap so the sink queue visibly builds.
        result = run_monolithic(rack_topology(
            nics=4, pattern="fanin", frames=30, gap_ps=200 * NS,
            propagation_ps=500 * NS, int_=IntConfig()))
        collector = IntCollector(**kwargs)
        for sink, cards in merge_int_reports(result.reports).items():
            collector.ingest(sink, cards)
        return collector

    def test_flows_trace_the_fanin_paths(self):
        flows = self._collector().flows()
        assert set(flows) == {(1, 0), (2, 0), (3, 0)}
        for flow, view in flows.items():
            assert view["postcards"] == 30
            assert view["path"] == (flow[0], 0)
            assert view["paths"] == [(flow[0], 0)]
            assert 0 < view["e2e_mean_ps"] <= view["e2e_max_ps"]

    def test_hop_stats_watermarks(self):
        stats = self._collector().hop_stats()
        assert set(stats) == {"nic0", "nic1", "nic2", "nic3"}
        for view in stats.values():
            assert view["hops"] > 0
            assert 0 < view["latency_mean_ps"] <= view["latency_max_ps"]
        # The incast sink sees the deepest queues in the rack.
        sink_peak = stats["nic0"]["engine_depth_watermark"]
        assert sink_peak >= max(stats[n]["engine_depth_watermark"]
                                for n in ("nic1", "nic2", "nic3"))
        assert sink_peak > 1

    def test_microburst_detected_with_culprit_flows(self):
        bursts = self._collector(microburst_depth=8).microbursts()
        assert bursts, "aligned incast must register a microburst"
        burst = bursts[0]
        assert burst["node"] == "nic0"
        assert burst["peak_depth"] >= 8
        assert burst["end_ps"] >= burst["start_ps"]
        assert set(burst["flows"]) == {"nic1->nic0", "nic2->nic0",
                                       "nic3->nic0"}

    def test_no_path_changes_on_static_rack(self):
        assert self._collector().path_changes() == []

    def test_report_and_formatting(self):
        collector = self._collector()
        report = collector.report()
        assert report["postcards"] == 90
        assert set(report["flows"]) == {"nic1->nic0", "nic2->nic0",
                                        "nic3->nic0"}
        for row in report["flows"].values():
            assert row["paths_seen"] == 1
        text = format_int_report(report)
        assert "nic1->nic0" in text
        assert "microburst" in text.lower()

    def test_chrome_events_exportable(self):
        events = int_chrome_events(self._collector())
        assert events
        assert events[0]["ph"] == "M"  # process-name metadata
        assert all("ts" in ev for ev in events[1:])
        assert any(ev["name"] == "microburst" for ev in events)


# ----------------------------------------------------------------------
# Kernel self-profiler
# ----------------------------------------------------------------------

class TestKernelProfiler:
    def test_attribution_by_component_name(self):
        sim = Simulator()
        sim.set_profile({})

        class Comp:
            def __init__(self, name):
                self.name = name
                self.calls = 0

            def tick(self):
                self.calls += 1

        a, b = Comp("alpha"), Comp("beta")
        for i in range(5):
            sim.schedule_at(i * 10, a.tick)
        sim.schedule_at(100, b.tick)
        sim.run()
        rows = sim.profile_report()
        by_name = {name: (seconds, calls) for seconds, calls, name in rows}
        assert by_name["alpha"][1] == 5
        assert by_name["beta"][1] == 1
        assert all(seconds >= 0 for seconds, _, _ in rows)
        # Sorted hottest-first.
        assert rows == sorted(rows, reverse=True)

    def test_profile_does_not_perturb_results(self):
        topo = rack_topology(nics=3, pattern="fanin", frames=5,
                             gap_ps=1 * US, int_=IntConfig())
        plain = run_monolithic(topo)
        profiled = run_monolithic(topo, profile=True)
        assert profiled.reports == plain.reports
        assert profiled.events_fired == plain.events_fired
        assert plain.profile is None
        assert profiled.profile is not None
        names = {name for _, _, name in profiled.profile}
        assert any(name.startswith("nic0.") for name in names)
        total_calls = sum(calls for _, calls, _ in profiled.profile)
        assert total_calls == profiled.events_fired

    @needs_fork
    @pytest.mark.parametrize("speculative", [False, True])
    def test_sharded_profile_merges_per_shard_rows(self, speculative):
        topo = rack_topology(nics=4, pattern="fanin", frames=6,
                             gap_ps=400 * NS, propagation_ps=500 * NS)
        mono = run_monolithic(topo)
        sharded = run_sharded(topo, workers=2, speculative=speculative,
                              profile=True)
        _assert_identical(mono, sharded)
        assert sharded.profile is not None
        total_calls = sum(calls for _, calls, _ in sharded.profile)
        assert total_calls == sharded.events_fired
        assert set(sharded.shard_profiles) == {0, 1}
        for shard_view in sharded.shard_profiles.values():
            assert shard_view["busy_seconds"] >= 0
            assert shard_view["profile"]

    @needs_fork
    def test_profile_off_keeps_fields_none(self):
        topo = rack_topology(nics=3, pattern="fanin", frames=4,
                             gap_ps=1 * US)
        sharded = run_sharded(topo, workers=2)
        assert sharded.profile is None
        assert sharded.shard_profiles is None


# ----------------------------------------------------------------------
# Speculative rollback-cost accounting
# ----------------------------------------------------------------------

@needs_fork
class TestRollbackAccounting:
    def test_rollback_costs_surface_in_result(self):
        # Dense aligned traffic: stragglers land inside the optimistic
        # window every round, forcing rollbacks.
        topo = rack_topology(nics=4, frames=10, gap_ps=1 * US)
        mono = run_monolithic(topo)
        spec = run_sharded(topo, workers=4, speculative=True)
        _assert_identical(mono, spec)
        assert spec.rollbacks > 0
        assert spec.capsules_replayed > 0
        assert spec.rollback_wall_seconds > 0
        assert len(spec.horizon_history) == spec.rounds
        assert all(h >= 1 for h in spec.horizon_history)

    def test_conservative_run_reports_zero_rollback_cost(self):
        topo = rack_topology(nics=3, pattern="fanin", frames=4,
                             gap_ps=1 * US)
        result = run_sharded(topo, workers=2)
        assert result.rollbacks == 0
        assert result.capsules_replayed == 0
        assert result.rollback_wall_seconds == 0
        assert result.horizon_history == ()

    def test_window_log_matches_rollback_totals(self):
        # window_log carries *cumulative* rollback/replay counters, so
        # the high-water row equals the run totals.
        topo = rack_topology(nics=4, frames=8, gap_ps=1 * US)
        spec = run_sharded(topo, workers=2, speculative=True)
        assert spec.window_log
        assert max(row[2] for row in spec.window_log) == spec.rollbacks
        assert max(row[3] for row in spec.window_log) \
            == spec.replayed_events


# ----------------------------------------------------------------------
# Tracer ring-buffer overflow across the sharded merge (satellite 3)
# ----------------------------------------------------------------------

@needs_fork
class TestTracerOverflowShardedMerge:
    def _topo(self, max_spans):
        return rack_topology(
            nics=3, pattern="fanin", frames=8, gap_ps=400 * NS,
            propagation_ps=500 * NS,
            telemetry=TelemetryConfig(sample_every=1,
                                      max_spans=max_spans))

    def test_dropped_spans_exact_across_merge(self):
        tiny = self._topo(max_spans=4)
        mono = run_monolithic(tiny)
        summaries = {name: rep["trace_summary"]
                     for name, rep in mono.reports.items()}
        assert any(s["dropped_spans"] > 0 for s in summaries.values()), \
            "workload must overflow the ring"
        for name, summary in summaries.items():
            # Conservation: every sampled span was either kept or
            # dropped, and the ring never holds more than max_spans.
            emitted = summary["spans"] + summary["dropped_spans"]
            assert summary["spans"] <= 4
            assert len(mono.reports[name]["trace"]) == summary["spans"]
            assert emitted >= summary["spans"]
        for workers in (1, 2):
            for speculative in (False, True):
                sharded = run_sharded(tiny, workers=workers,
                                      speculative=speculative)
                _assert_identical(mono, sharded)

    def test_span_ids_deterministic_after_wrap(self):
        tiny = self._topo(max_spans=4)
        roomy = self._topo(max_spans=65536)
        wrapped = run_monolithic(tiny)
        again = run_monolithic(tiny)
        full = run_monolithic(roomy)
        # Wrapping the ring is deterministic: re-running yields the
        # exact same surviving spans (ids included).
        assert again.reports == wrapped.reports
        for name in wrapped.reports:
            kept = wrapped.reports[name]["trace"]
            everything = set(full.reports[name]["trace"])
            # The ring keeps a subset of the same deterministic span
            # stream the unbounded run records: identical trace ids,
            # seqs and payloads -- eviction never renumbers survivors.
            for span in kept:
                assert span in everything
            full_summary = full.reports[name]["trace_summary"]
            tiny_summary = wrapped.reports[name]["trace_summary"]
            assert tiny_summary["seen"] == full_summary["seen"]
            assert tiny_summary["sampled"] == full_summary["sampled"]
            # Eviction accounting: emitted = kept + dropped, and the
            # unbounded run never drops.
            assert full_summary["dropped_spans"] == 0
            assert tiny_summary["dropped_spans"] == max(
                0, full_summary["spans"] - 4)
