"""End-to-end reliable delivery over lossy rack wires.

The go-back-N transport (``repro.reliability.transport``) lives in host
software and speaks through the unmodified NIC pipeline, so these tests
run whole racks: segment framing, window discipline, cumulative ACKs,
duplicate suppression, RTO backoff with bounded retries surfacing
``DeliveryFailed``, the >=90% goodput floor at 1% wire loss, telemetry
instants for retransmission events, and bit-identical behaviour between
monolithic and sharded execution while wires are dropping frames.
"""

import pytest

from repro.core.config import PanicConfig
from repro.core.panic import PanicNic
from repro.faults.plan import FaultPlan
from repro.faults.rack import wire_target
from repro.packet.builder import build_udp_frame
from repro.reliability.transport import (
    ACK,
    DATA,
    HEADER_BYTES,
    ReliableTransport,
    default_rto_ps,
    pack_segment,
    parse_segment,
)
from repro.reliability.rack import reliable_rack_topology
from repro.sim.clock import US
from repro.sim.kernel import Simulator
from repro.sim.rng import SeededRng
from repro.sim.shard import run_monolithic, run_sharded
from repro.telemetry import TelemetryConfig


class TestSegmentFormat:
    def test_roundtrip_data_and_ack(self):
        seg = pack_segment(DATA, 2, 3, 41, b"hello")
        assert parse_segment(seg) == (DATA, 2, 3, 41, b"hello")
        ack = pack_segment(ACK, 3, 2, 7)
        assert parse_segment(ack) == (ACK, 3, 2, 7, b"")

    def test_ethernet_padding_is_harmless(self):
        seg = pack_segment(DATA, 0, 1, 0, b"x") + bytes(20)
        seg_type, _src, _dst, _seq, rest = parse_segment(seg)
        assert seg_type == DATA
        assert rest.startswith(b"x")

    def test_rejects_junk(self):
        assert parse_segment(b"") is None
        assert parse_segment(b"\x00" * (HEADER_BYTES - 1)) is None
        assert parse_segment(bytes(HEADER_BYTES)) is None  # bad magic
        bad_type = bytearray(pack_segment(DATA, 0, 1, 0))
        bad_type[2] = 9
        assert parse_segment(bytes(bad_type)) is None

    def test_default_rto_scales_with_propagation(self):
        assert default_rto_ps(0) == 30 * US
        assert default_rto_ps(1000) == 8 * 1000 + 30 * US


def _lone_transport(sim, **kw):
    """A transport on a NIC with no peer: every DATA frame leaves port 0
    and falls on the floor, so nothing is ever acknowledged."""
    nic = PanicNic(sim, PanicConfig(ports=1, offloads=("checksum",)))
    nic.control.route_dscp_tx(10, chain=["checksum"], egress_port=0)

    def frame_builder(dst, segment):
        return build_udp_frame(
            src_mac="02:00:00:00:00:01",
            dst_mac="02:00:00:00:00:02",
            src_ip="10.0.0.1",
            dst_ip="10.0.1.1",
            src_port=40000,
            dst_port=9000,
            payload=segment,
            dscp=10,
        )

    transport = ReliableTransport(
        nic, 0,
        frame_builder=frame_builder,
        rng=SeededRng(7).fork("reliability"),
        rto_initial_ps=default_rto_ps(0),
        **kw,
    )
    return nic, transport


def _tx_seqs(nic):
    """DATA sequence numbers of every frame the NIC ever transmitted."""
    seqs = []
    for packet in nic.transmitted:
        parsed = parse_segment(packet.data[42:])
        if parsed is not None and parsed[0] == DATA:
            seqs.append(parsed[3])
    return seqs


class TestSenderStateMachine:
    def test_window_bounds_outstanding_segments(self):
        sim = Simulator()
        nic, transport = _lone_transport(sim, window=2, max_retries=1)
        for _ in range(5):
            transport.send(1, b"payload")
        sim.run()
        # Only the first window's worth was ever on the wire -- seqs 2..4
        # stayed queued behind the ACKs that never came.
        assert set(_tx_seqs(nic)) == {0, 1}
        assert transport.stats()["data_sent"] == 2

    def test_bounded_retries_surface_delivery_failed(self):
        sim = Simulator()
        nic, transport = _lone_transport(sim, max_retries=3)
        transport.send(1, b"payload")
        sim.run()  # drains: bounded retries guarantee heap exhaustion
        stats = transport.stats()
        assert stats["rto_fired"] == 4  # 3 retries + the aborting expiry
        assert stats["retransmits"] == 3
        assert stats["delivery_failures"] == 1
        (failure,) = transport.failures
        assert failure.dst == 1
        assert failure.first_seq == 0
        assert failure.retries == 4
        assert transport.flow_report() == {
            1: {"sent": 1, "acked": 0, "failed": 1, "aborted": 1}
        }

    def test_rto_backs_off_exponentially_to_the_cap(self):
        sim = Simulator()
        nic, transport = _lone_transport(sim, max_retries=8, jitter=0.0)
        transport.send(1, b"payload")
        rto0 = transport.rto_initial_ps
        sim.run()
        # With jitter disabled the expiries land exactly at the doubled
        # RTOs, capped at 16x: 1+2+4+8+16+16+16+16+16 initial-RTOs deep.
        expected = sum(min(2 ** i, 16) for i in range(9)) * rto0
        assert transport.failures[0].at_ps == expected

    def test_aborted_flow_refuses_new_work_quietly(self):
        sim = Simulator()
        nic, transport = _lone_transport(sim, max_retries=1)
        transport.send(1, b"payload")
        sim.run()
        assert transport.failures
        sent_before = transport.stats()["data_sent"]
        transport.send(1, b"more")
        sim.run()
        assert transport.stats()["data_sent"] == sent_before
        assert transport.flow_report()[1]["aborted"] == 1

    def test_constructor_validates_parameters(self):
        sim = Simulator()
        with pytest.raises(ValueError, match="window"):
            _lone_transport(sim, window=0)
        with pytest.raises(ValueError, match="jitter"):
            _lone_transport(Simulator(), jitter=1.0)


def _run(topology, plan=None):
    return run_monolithic(topology, fault_plan=plan)


def _delivered_pairs(report):
    return [(src, seq) for src, seq, _t, _q in report["deliveries"]]


class TestEndToEnd:
    def test_clean_wire_delivers_in_order_without_retransmits(self):
        result = _run(reliable_rack_topology(nics=2, frames=10))
        for name, peer in (("nic0", 1), ("nic1", 0)):
            report = result.reports[name]
            assert _delivered_pairs(report) == [
                (peer, seq) for seq in range(10)
            ]
            rel = report["stats"]["reliability"]
            assert rel["retransmits"] == 0
            assert rel["delivery_failures"] == 0
            assert report["tx_flows"][peer] == {
                "sent": 10, "acked": 10, "failed": 0, "aborted": 0,
            }

    def test_reliability_block_lives_in_nic_stats(self):
        result = _run(reliable_rack_topology(nics=2, frames=2))
        rel = result.reports["nic0"]["stats"]["reliability"]
        for key in ("data_sent", "retransmits", "rto_fired", "acks_sent",
                    "delivered", "duplicates_suppressed"):
            assert key in rel

    def test_loss_heals_to_exactly_once_in_order(self):
        plan = (FaultPlan(seed=3)
                .wire_loss(0, wire_target(0, 1), drop_p=0.2)
                .wire_loss(0, wire_target(0, 2), drop_p=0.2))
        result = _run(
            reliable_rack_topology(nics=3, pattern="fanin", frames=15),
            plan,
        )
        report = result.reports["nic0"]
        # Every frame from both senders arrived exactly once, in order
        # per source, despite heavy loss in both directions.
        for src in (1, 2):
            assert [seq for s, seq in _delivered_pairs(report)
                    if s == src] == list(range(15))
        retransmits = sum(
            result.reports[n]["stats"]["reliability"]["retransmits"]
            for n in ("nic1", "nic2")
        )
        assert retransmits > 0
        drops = sum(s["loss_drops"] for s in result.wire_stats.values())
        assert drops > 0

    def test_goodput_floor_at_one_percent_loss(self):
        # The ISSUE's acceptance bar: >=90% goodput at 1% wire loss,
        # with the recovery visible in the stats.  Go-back-N with
        # generous RTOs actually delivers everything here.
        plan = FaultPlan(seed=1)
        for j in (1, 2, 3):
            plan.wire_loss(0, wire_target(0, j), drop_p=0.01)
        result = _run(
            reliable_rack_topology(nics=4, pattern="fanin", frames=30),
            plan,
        )
        sent = sum(r["sent"] for r in result.reports.values())
        delivered = sum(
            len(r["deliveries"]) for r in result.reports.values()
        )
        assert delivered / sent >= 0.90
        assert not any(r["failures"] for r in result.reports.values())

    def test_permanent_cut_aborts_and_still_drains(self):
        plan = FaultPlan().wire_down(0, wire_target(0, 1))
        result = _run(
            reliable_rack_topology(nics=3, pattern="fanin", frames=5),
            plan,
        )
        dead = result.reports["nic1"]
        assert dead["failures"], "cut flow must surface DeliveryFailed"
        assert dead["tx_flows"][0]["aborted"] == 1
        assert dead["tx_flows"][0]["acked"] == 0
        # The untouched sender was not collateral damage.
        assert [seq for s, seq in
                _delivered_pairs(result.reports["nic0"]) if s == 2] == \
            list(range(5))

    def test_flap_heals_without_duplicates(self):
        plan = FaultPlan().flap_wire(20 * US, 120 * US, wire_target(0, 1))
        result = _run(
            reliable_rack_topology(nics=2, frames=20), plan,
        )
        for name in ("nic0", "nic1"):
            pairs = _delivered_pairs(result.reports[name])
            assert len(pairs) == len(set(pairs)) == 20
            assert not result.reports[name]["failures"]
        assert any(
            s["down_drops"] for s in result.wire_stats.values()
        )


class TestRetransmitTelemetry:
    def test_rto_and_retransmit_instants_recorded(self):
        plan = FaultPlan(seed=3).wire_loss(
            0, wire_target(0, 1), drop_p=0.2)
        result = _run(
            reliable_rack_topology(
                nics=2, frames=15,
                telemetry=TelemetryConfig(sample_every=0),
            ),
            plan,
        )
        kinds = {
            span[2]
            for name in result.reports
            for span in result.reports[name].get("trace", ())
        }
        assert "rel_rto" in kinds
        assert "rel_retransmit" in kinds


class TestShardedReliability:
    def test_mono_equals_sharded_under_loss(self):
        def plan():
            return (FaultPlan(seed=9)
                    .wire_loss(0, wire_target(0, 1), drop_p=0.05)
                    .wire_loss(0, wire_target(0, 2), drop_p=0.05)
                    .flap_wire(30 * US, 80 * US, wire_target(0, 3)))

        def topo():
            return reliable_rack_topology(
                nics=4, pattern="fanin", frames=20)

        mono = run_monolithic(topo(), fault_plan=plan())
        sharded = run_sharded(topo(), workers=2, fault_plan=plan())
        assert mono.reports == sharded.reports
        assert mono.wire_stats == sharded.wire_stats
        assert any(
            s["loss_drops"] or s["down_drops"]
            for s in mono.wire_stats.values()
        )
