"""The speculative shard protocol must be invisible in simulated results.

``run_sharded(..., speculative=True)`` lets shards run optimistically
past the conservative lookahead horizon, fork-checkpointing per-shard
state each round and rolling back to deterministic replay whenever a
straggler capsule lands inside the optimistic window.  The contract is
the same bit-identity bar the conservative protocol meets (DESIGN.md
section 10 / section 15): every per-NIC observable -- stats trees,
delivery tuples, wire fault accounting, even the total event count --
must match the monolithic run exactly, on clean traffic, under seeded
wire faults with reliable transports, and with the batched train lane
enabled.  These tests enforce it and pin the speculation machinery's
edges: rollback counters, the window log, the kernel's fired-timestamp
log and ``rewind_clock`` validation.
"""

import os

import pytest

from repro.faults.plan import FaultPlan
from repro.faults.rack import wire_target
from repro.lb.rack import lb_rack_topology
from repro.reliability.rack import reliable_rack_topology
from repro.sim.clock import NS, US
from repro.sim.kernel import SimError, Simulator
from repro.sim.shard import (
    DEFAULT_SPEC_HORIZON,
    ShardError,
    run_monolithic,
    run_sharded,
)
from repro.workloads.rack import rack_topology

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="speculation requires os.fork")


def _assert_identical(mono, sharded):
    assert set(sharded.reports) == set(mono.reports)
    for name in mono.reports:
        assert sharded.reports[name] == mono.reports[name], \
            f"{name} diverges"
    assert sharded.wire_stats == mono.wire_stats
    assert sharded.events_fired == mono.events_fired


class TestSpeculativeEquivalence:
    def test_chatty_incast_all_worker_counts(self):
        # Dense all-pairs traffic: stragglers constantly land inside the
        # optimistic window, so this exercises rollback + replay hard.
        topo = rack_topology(nics=4, frames=10, gap_ps=1 * US)
        mono = run_monolithic(topo)
        for workers in (1, 2, 4):
            spec = run_sharded(topo, workers=workers, speculative=True)
            _assert_identical(mono, spec)
            assert spec.speculative

    def test_sparse_traffic_commits_wide_windows(self):
        # Long gaps between frames: speculation should commit multi-
        # lookahead windows and finish in fewer rounds than the
        # conservative protocol needs.
        topo = rack_topology(nics=4, frames=12, gap_ps=40 * US,
                             propagation_ps=500 * NS)
        mono = run_monolithic(topo)
        cons = run_sharded(topo, workers=2, speculative=False)
        spec = run_sharded(topo, workers=2, speculative=True)
        _assert_identical(mono, cons)
        _assert_identical(mono, spec)
        assert spec.rounds < cons.rounds

    def test_fanin_rack(self):
        topo = rack_topology(nics=4, frames=8, pattern="fanin")
        mono = run_monolithic(topo)
        spec = run_sharded(topo, workers=4, speculative=True)
        _assert_identical(mono, spec)

    def test_faulty_wires_with_reliable_transport(self):
        # Seeded drops + corruption under go-back-N: rollback must not
        # double-inject or lose capsules, and the per-wire fault
        # accounting must replay to the exact same counters.
        plan = FaultPlan(seed=3)
        for i in range(4):
            for j in range(i + 1, 4):
                plan.wire_loss(0, wire_target(i, j),
                               drop_p=0.02, corrupt_p=0.01)
        topo = reliable_rack_topology(nics=4, pattern="fanin", frames=12)
        mono = run_monolithic(topo, fault_plan=plan)
        spec = run_sharded(topo, workers=2, speculative=True,
                           fault_plan=plan)
        _assert_identical(mono, spec)

    def test_batched_train_lane(self):
        # PR7's batch_execution lane mutates NIC state at emulated hop
        # times without firing heap events; the kernel's fired log must
        # still see those mutations so dirty detection stays sound.
        # Note: train formation depends on window boundaries, so the raw
        # event *count* differs between monolithic and sharded batched
        # runs (a window end splits a train in two).  The conservative
        # and speculative protocols place their boundaries differently
        # too, so their counts may differ -- but each boundary can split
        # at most one train, which bounds the drift.  The observables
        # must still match exactly.
        topo = rack_topology(nics=4, frames=10, batch=True)
        mono = run_monolithic(topo)
        cons = run_sharded(topo, workers=4, speculative=False)
        spec = run_sharded(topo, workers=4, speculative=True)
        for name in mono.reports:
            assert cons.reports[name] == mono.reports[name]
            assert spec.reports[name] == mono.reports[name]
        assert cons.wire_stats == mono.wire_stats
        assert spec.wire_stats == mono.wire_stats
        windows = max(cons.rounds, len(spec.window_log))
        assert abs(spec.events_fired - cons.events_fired) <= windows

    def test_tag_rack_past_the_dscp_cap(self):
        topo = rack_topology(nics=9, frames=4, pattern="fanin")
        mono = run_monolithic(topo)
        spec = run_sharded(topo, workers=3, speculative=True)
        _assert_identical(mono, spec)

    def test_lb_failover_races_the_optimistic_window(self):
        # A backend NIC goes dark mid-run; the LB's heartbeat monitor
        # declares it and calls steering.fail() -- an epoch bump that
        # reprograms the vip_steer table -- from inside a speculative
        # window.  If a rollback replayed the declaration twice (or a
        # discarded window leaked the table mutation), the LB report's
        # epoch / failed / detected fields would diverge from the
        # monolithic run.  Full-report bit-identity covers all of them.
        def plan():
            return FaultPlan(seed=7).nic_down(20 * US, "nic1")

        def topo():
            return lb_rack_topology(nics=6, n_backends=2, frames=8)

        mono = run_monolithic(topo(), fault_plan=plan())
        lb = mono.reports["nic0"]
        assert 1 in lb["monitor"]["detected"]  # the race actually happens
        assert lb["steering"]["failed"]
        for workers in (2, 3):
            spec = run_sharded(topo(), workers=workers, speculative=True,
                               fault_plan=plan())
            _assert_identical(mono, spec)
            assert (spec.reports["nic0"]["monitor"]["hb_failures_detected"]
                    == 1)


class TestSpeculationCounters:
    def test_rollbacks_happen_and_are_counted(self):
        topo = rack_topology(nics=4, frames=10, gap_ps=1 * US)
        spec = run_sharded(topo, workers=4, speculative=True)
        assert spec.rollbacks > 0
        assert spec.replayed_events > 0
        assert spec.discarded_events > 0
        # The window log's cumulative counters end at the run totals.
        assert spec.window_log
        assert spec.window_log[-1][2] == spec.rollbacks
        assert spec.window_log[-1][3] == spec.replayed_events
        # Commit points move strictly forward.
        commits = [entry[0] for entry in spec.window_log]
        assert commits == sorted(commits)

    def test_conservative_rounds_log_clean_windows(self):
        topo = rack_topology(nics=4, frames=6)
        cons = run_sharded(topo, workers=2, speculative=False)
        assert not cons.speculative
        assert cons.rollbacks == 0 and cons.replayed_events == 0
        assert len(cons.window_log) == cons.rounds
        assert all(entry[1:] == (0, 0, 0) for entry in cons.window_log)

    def test_horizon_reported(self):
        topo = rack_topology(nics=4, frames=6)
        spec = run_sharded(topo, workers=2, speculative=True)
        assert spec.spec_horizon == DEFAULT_SPEC_HORIZON
        narrow = run_sharded(topo, workers=2, speculative=True,
                             spec_horizon=1)
        # Horizon 1 degenerates to conservative windows: provably clean.
        assert narrow.rollbacks == 0
        _assert_identical(run_monolithic(topo), narrow)

    def test_bad_horizon_rejected(self):
        topo = rack_topology(nics=4, frames=2)
        with pytest.raises(ShardError):
            run_sharded(topo, workers=2, speculative=True, spec_horizon=0)

    def test_single_worker_has_no_cross_wires(self):
        # No cross-shard wires -> no lookahead -> the speculative
        # protocol cannot engage; the run still completes and reports
        # horizon 0.
        topo = rack_topology(nics=3, frames=4)
        spec = run_sharded(topo, workers=1, speculative=True)
        assert spec.spec_horizon == 0
        assert spec.rollbacks == 0
        _assert_identical(run_monolithic(topo), spec)


class TestKernelFiredLog:
    def test_step_and_advance_log_distinct_timestamps(self):
        sim = Simulator()
        log = []
        sim.set_fired_log(log)
        for t in (100, 100, 250):
            sim.schedule_at(t, lambda: None)
        sim.run()
        assert log == [100, 250]
        sim.advance_clock(900)
        assert log == [100, 250, 900]

    def test_rewind_validates_quiescence(self):
        sim = Simulator()
        sim.set_fired_log([])
        sim.schedule_at(100, lambda: None)
        sim.run()
        with pytest.raises(SimError):
            sim.rewind_clock(200)  # forwards is not a rewind
        sim.schedule_at(500, lambda: None)
        sim.rewind_clock(50)       # pending work is all beyond target
        assert sim.now == 50
