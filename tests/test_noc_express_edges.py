"""Edge cases for the NoC cut-through (express) fast path.

:mod:`repro.noc.express` promises the fast path is invisible in
simulated terms even when a flight is disturbed mid-route.  These tests
pin the two nastiest interactions down as fast-vs-slow equivalence runs:

* a foreign delivery commits a prefix of the flight's crossings, after
  which a fault (corruption or flit drop) armed on one of those
  *committed* hops must materialize the still-collapsed remainder and
  hit the **next** message over that wire -- never the flight's own;
* a flight whose final-hop credit pool hits zero in the very window it
  delivers (bounded lossless endpoint refusing the message), stalling
  follow-up traffic until the endpoint frees space.

Every observable -- delivery payloads, hop counts, picosecond
timestamps, channel counters, credit deficits -- must be bit-identical
with ``MeshConfig.fast_path`` on or off.
"""

import random

import pytest

from repro.noc import Endpoint, Mesh, MeshConfig
from repro.packet import Packet
from repro.sim import Simulator

#: Serialization of a 64-byte message on a 64-bit 500 MHz channel:
#: 512 / 64 = 8 cycles + 1 router cycle = 9 * 2000 ps per hop.
SER = 18_000


class Sink(Endpoint):
    def __init__(self, sim):
        self.sim = sim
        self.got = []

    def receive(self, message):
        self.got.append((message, self.sim.now))


class StingySink(Sink):
    """Bounded lossless input: refuses everything until opened."""

    def __init__(self, sim):
        super().__init__(sim)
        self.accepting = False
        self.refusals = 0

    def try_receive(self, message):
        if not self.accepting:
            self.refusals += 1
            return False
        self.receive(message)
        return True

    def open(self):
        self.accepting = True
        if self.notify_space is not None:
            self.notify_space()


def build_row(sim, length, fast_path, credits=8, stingy_at=None):
    """A 1-high mesh row: long straight routes, deterministic timing."""
    mesh = Mesh(sim, MeshConfig(width=length, height=1, credits=credits,
                                fast_path=fast_path))
    sinks, ports = {}, {}
    for x in range(length):
        sink = StingySink(sim) if x == stingy_at else Sink(sim)
        ports[x] = mesh.bind(sink, x, 0)
        sinks[x] = sink
    return mesh, sinks, ports


def _packet(tag):
    return Packet(bytes([tag]) * 64)


def _observables(mesh, sinks):
    deliveries = {
        x: [(m.packet.data, m.hops, t) for m, t in sink.got]
        for x, sink in sinks.items()
    }
    counters = {
        ch.name: (ch.sent.value, ch.corrupted.value, ch.dropped_flits.value,
                  ch.leaked_credits.value, ch.credit_deficit)
        for ch in mesh.channels
    }
    return deliveries, counters


# ----------------------------------------------------------------------
# Fault armed on a committed hop of a partially-interfered flight
# ----------------------------------------------------------------------


def run_committed_hop_fault(fast_path, fault):
    """Message A cuts through a 6-tile row (0 -> 5).  A local delivery
    into router 1 at t=40us lands after A's crossing ended (36us), so the
    flight commits its first two hops and stays collapsed.  A fault then
    armed on committed hop ``ch_0_0_east`` must materialize the
    remainder and catch message C (0 -> 2), not A."""
    sim = Simulator()
    mesh, sinks, ports = build_row(sim, 6, fast_path)
    sim.schedule_at(0, ports[0].send, _packet(0xAA), 5)
    express_probe = []
    sim.schedule_at(1_000,
                    lambda: express_probe.append(mesh.express_in_flight))
    # Foreign traffic into an already-crossed router: commit, don't
    # materialize (22us submit + one inject hop = 40us delivery).
    sim.schedule_at(22_000, ports[1].send, _packet(0xBB), 1)
    wire = mesh.channel("mesh.ch_0_0_east")
    if fault == "corruption":
        sim.schedule_at(50_000, wire.inject_corruption, random.Random(7), 4)
    else:
        sim.schedule_at(50_000, wire.inject_drop)
    sim.schedule_at(60_000, ports[0].send, _packet(0xCC), 2)
    sim.run()
    mesh.assert_drained()
    return _observables(mesh, sinks), sim.events_fired, express_probe


@pytest.mark.parametrize("fault", ["corruption", "drop"])
def test_committed_hop_fault_is_mode_invisible(fault):
    obs_fast, events_fast, probe_fast = run_committed_hop_fault(True, fault)
    obs_slow, events_slow, probe_slow = run_committed_hop_fault(False, fault)
    assert obs_fast == obs_slow
    # The fast run really did collapse the route; the slow run did not.
    assert probe_fast == [1]
    assert probe_slow == [0]
    assert events_fast <= events_slow


@pytest.mark.parametrize("fault", ["corruption", "drop"])
def test_committed_hop_fault_hits_the_next_message(fault):
    (deliveries, counters), _, _ = run_committed_hop_fault(True, fault)
    # A arrives pristine at the analytic cut-through time: 6 hops.
    assert deliveries[5] == [(bytes([0xAA]) * 64, 6, 6 * SER)]
    # B's local delivery (the interferer) is untouched.
    assert deliveries[1] == [(bytes([0xBB]) * 64, 1, 40_000)]
    sent, corrupted, dropped, leaked, deficit = counters["mesh.ch_0_0_east"]
    if fault == "corruption":
        # C still arrives, 3 hops later, with flipped payload bits.
        assert len(deliveries[2]) == 1
        data, hops, when = deliveries[2][0]
        assert when == 60_000 + 3 * SER
        assert hops == 3
        assert data != bytes([0xCC]) * 64
        assert (corrupted, dropped) == (1, 0)
    else:
        # C vanished on the wire and its credit leaked.
        assert deliveries[2] == []
        assert (corrupted, dropped) == (0, 1)
        assert leaked == 1
        assert deficit == 1


# ----------------------------------------------------------------------
# Cut-through whose final credit hits zero in the delivery window
# ----------------------------------------------------------------------


def run_zero_credit_window(fast_path):
    """With one credit per channel, flight A's delivery into the refusing
    endpoint at tile 3 consumes the final hop's last credit in the same
    window it finishes; follow-up C (2 -> 3) must wait for the endpoint
    to free space before the credit loop moves again."""
    sim = Simulator()
    mesh, sinks, ports = build_row(sim, 4, fast_path, credits=1, stingy_at=3)
    sim.schedule_at(0, ports[0].send, _packet(0xAA), 3)
    express_probe = []
    sim.schedule_at(1_000,
                    lambda: express_probe.append(mesh.express_in_flight))
    sim.schedule_at(80_000, ports[2].send, _packet(0xCC), 3)
    sim.schedule_at(120_000, sinks[3].open)
    sim.run()
    mesh.assert_drained()
    refusals = sinks[3].refusals
    return _observables(mesh, sinks), sim.events_fired, express_probe, refusals


def test_zero_credit_delivery_window_is_mode_invisible():
    obs_fast, events_fast, probe_fast, refusals_fast = \
        run_zero_credit_window(True)
    obs_slow, events_slow, probe_slow, refusals_slow = \
        run_zero_credit_window(False)
    assert obs_fast == obs_slow
    assert refusals_fast == refusals_slow
    assert probe_fast == [1]
    assert probe_slow == [0]
    # The collapsed 4-hop traversal saved real kernel events.
    assert events_fast < events_slow


def test_zero_credit_delivery_window_timing():
    (deliveries, counters), _, _, refusals = run_zero_credit_window(True)
    # A parked at the router until the endpoint opened at 120us.
    assert deliveries[3][0] == (bytes([0xAA]) * 64, 4, 120_000)
    # C could not even start its final hop while A held the only credit:
    # it serializes right after the release and lands one hop later.
    assert deliveries[3][1] == (bytes([0xCC]) * 64, 2, 120_000 + SER)
    assert refusals >= 1
    # Quiesced credit pools are whole again.
    sent, corrupted, dropped, leaked, deficit = counters["mesh.ch_2_0_east"]
    assert (corrupted, dropped, leaked, deficit) == (0, 0, 0, 0)
    assert sent == 2
