"""Tests for lossless engine flow control (the section 6 extension).

With ``overflow="backpressure"`` a full engine refuses deliveries; the
router parks them, channel credits stay consumed, and pressure
propagates toward the source -- no message is ever lost or raises.
"""

import pytest

from repro.engines.base import Engine
from repro.noc import Endpoint, Mesh, MeshConfig
from repro.packet import Packet, PanicHeader
from repro.sim import Simulator
from repro.sim.clock import US


class Sink(Endpoint):
    def __init__(self, sim):
        self.sim = sim
        self.got = []

    def receive(self, message):
        self.got.append((message.packet, self.sim.now))


class SlowEngine(Engine):
    def service_time_ps(self, packet):
        return self.clock.cycles_to_ps(500)  # 1 us per message


def rig(sim, overflow, credits=2, capacity=2):
    """[source sink] -> [slow engine] -> [sink]  on a 3x1 mesh."""
    mesh = Mesh(sim, MeshConfig(width=3, height=1, credits=credits))
    feeder = Sink(sim)
    feeder_port = mesh.bind(feeder, 0, 0)
    engine = SlowEngine(sim, "slow", queue_capacity=capacity,
                        overflow=overflow)
    engine.bind_port(mesh.bind(engine, 1, 0))
    out = Sink(sim)
    mesh.bind(out, 2, 0)
    return mesh, feeder_port, engine, out


def burst(feeder_port, engine, n, droppable=False):
    packets = []
    for _ in range(n):
        packet = Packet(b"\x00" * 64)
        packet.panic = PanicHeader(chain=[2], droppable=droppable)
        feeder_port.send(packet, 1)
        packets.append(packet)
    return packets


class TestBackpressure:
    def test_no_message_lost_under_overload(self, sim):
        mesh, feeder, engine, out = rig(sim, "backpressure")
        burst(feeder, engine, 20)
        sim.run()
        assert len(out.got) == 20
        assert engine.queue.dropped.value == 0
        assert mesh.in_flight == 0

    def test_refusals_counted(self, sim):
        mesh, feeder, engine, out = rig(sim, "backpressure")
        burst(feeder, engine, 20)
        sim.run()
        assert engine.rejected.value > 0  # deliveries were refused

    def test_queue_never_exceeds_capacity(self, sim):
        mesh, feeder, engine, out = rig(sim, "backpressure", capacity=3)
        burst(feeder, engine, 25)
        sim.run()
        assert engine.queue.max_occupancy <= 3
        assert len(out.got) == 25

    def test_pressure_parks_messages_in_router(self, sim):
        mesh, feeder, engine, out = rig(sim, "backpressure")
        burst(feeder, engine, 12)
        # Run briefly: the engine is saturated, so messages accumulate
        # in router buffers / channel queues rather than being dropped.
        sim.run(until_ps=3 * US)
        assert mesh.in_flight > 0
        sim.run()
        assert len(out.got) == 12

    def test_raise_policy_still_raises(self, sim):
        mesh, feeder, engine, out = rig(sim, "raise")
        burst(feeder, engine, 20)
        with pytest.raises(Exception):
            sim.run()

    def test_droppable_messages_still_shed(self, sim):
        mesh, feeder, engine, out = rig(sim, "backpressure")
        burst(feeder, engine, 20, droppable=True)
        sim.run()
        # Droppable overflow is shed by the PIFO, not backpressured.
        assert len(out.got) + engine.queue.dropped.value == 20
        assert engine.queue.dropped.value > 0

    def test_loopback_retries_when_full(self, sim):
        mesh, feeder, engine, out = rig(sim, "backpressure", capacity=1)
        # Fill service + queue, then loop a packet back into ourselves.
        burst(feeder, engine, 2)
        sim.run(max_events=8)
        local = Packet(b"\x00" * 64)
        local.panic = PanicHeader(chain=[2])
        engine._loopback(local)
        sim.run()
        assert any(p is local for p, _t in out.got)

    def test_invalid_policy_rejected(self, sim):
        with pytest.raises(ValueError):
            Engine(sim, "bad", overflow="yolo")


class TestPanicNicBackpressure:
    def test_nic_with_backpressure_loses_nothing(self):
        from repro.core import PanicConfig, PanicNic
        from repro.workloads import KvsWorkload, TenantSpec

        sim = Simulator()
        nic = PanicNic(sim, PanicConfig(
            ports=1, queue_capacity=4, overflow="backpressure"))
        nic.host.contention_ps = 1 * US  # slow DMA to force pressure
        delivered = []
        nic.host.software_handler = lambda p, q: delivered.append(p)
        workload = KvsWorkload(
            sim, nic,
            [TenantSpec(1, rate_pps=2_000_000, get_fraction=0.0,
                        key_space=100, value_bytes=128)],
            requests_per_tenant=60,
        )
        workload.start()
        sim.run()
        assert len(delivered) == 60
        assert all(e.queue.dropped.value == 0 for e in nic.engines.values())
