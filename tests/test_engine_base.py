"""Tests for the base Engine: scheduling queue, chains, lookup tables."""

import pytest

from repro.engines.base import Engine, LocalLookupTable
from repro.noc import Endpoint, Mesh, MeshConfig
from repro.packet import Packet, PanicHeader
from repro.packet.packet import MessageKind
from repro.sched import PifoFullError
from repro.sim import Simulator
from repro.sim.clock import MHZ


class Sink(Endpoint):
    def __init__(self, sim):
        self.sim = sim
        self.got = []

    def receive(self, message):
        self.got.append((message.packet, self.sim.now))


class SlowEngine(Engine):
    """Fixed 100-cycle service, pure pass-through."""

    def service_time_ps(self, packet):
        return self.clock.cycles_to_ps(100)


def rig(sim, engine_cls=Engine, **engine_kwargs):
    """A 3x1 mesh: [engine under test] [sink] [sink2]."""
    mesh = Mesh(sim, MeshConfig(width=3, height=1))
    engine = engine_cls(sim, "eut", **engine_kwargs)
    engine.bind_port(mesh.bind(engine, 0, 0))
    sink = Sink(sim)
    mesh.bind(sink, 1, 0)
    sink2 = Sink(sim)
    mesh.bind(sink2, 2, 0)
    return mesh, engine, sink, sink2


def chained_packet(chain, slack_ps=0, droppable=False, data=b"\x00" * 64):
    packet = Packet(data)
    packet.panic = PanicHeader(chain=list(chain), slack_ps=slack_ps,
                               droppable=droppable)
    return packet


class TestChainFollowing:
    def test_packet_follows_chain_to_next_engine(self, sim):
        mesh, engine, sink, _ = rig(sim)
        packet = chained_packet([engine.address, 1])
        packet.panic.advance()  # we are hop 0
        engine._loopback(packet)
        sim.run()
        assert len(sink.got) == 1
        assert sink.got[0][0] is packet

    def test_exhausted_chain_uses_lookup_default(self, sim):
        mesh, engine, sink, sink2 = rig(sim)
        engine.lookup_table.default_next = 2
        packet = chained_packet([])
        engine._loopback(packet)
        sim.run()
        assert len(sink2.got) == 1

    def test_exhausted_chain_without_default_raises(self, sim):
        mesh, engine, _, _ = rig(sim)
        packet = chained_packet([])
        engine._loopback(packet)
        with pytest.raises(RuntimeError):
            sim.run()

    def test_lookup_rule_overrides_default(self, sim):
        mesh, engine, sink, sink2 = rig(sim)
        engine.lookup_table.default_next = 1
        engine.lookup_table.install(MessageKind.ETHERNET, 2)
        engine._loopback(chained_packet([]))
        sim.run()
        assert len(sink2.got) == 1 and not sink.got

    def test_trail_records_processing(self, sim):
        mesh, engine, sink, _ = rig(sim)
        packet = chained_packet([1])
        engine._loopback(packet)
        sim.run()
        assert "eut" in packet.trail


class TestScheduling:
    def test_slack_orders_service(self, sim):
        mesh, engine, sink, _ = rig(sim, engine_cls=SlowEngine)
        # Fill the engine while it is busy with a first packet.
        first = chained_packet([1], slack_ps=0)
        low = chained_packet([1], slack_ps=10_000_000)
        high = chained_packet([1], slack_ps=100)
        engine._loopback(first)  # starts service immediately
        engine._loopback(low)
        engine._loopback(high)
        sim.run()
        arrivals = [p for p, _t in sink.got]
        assert arrivals.index(high) < arrivals.index(low)

    def test_queue_latency_recorded(self, sim):
        mesh, engine, sink, _ = rig(sim, engine_cls=SlowEngine)
        for _ in range(3):
            engine._loopback(chained_packet([1]))
        sim.run()
        assert engine.queue_latency.count == 3
        assert engine.queue_latency.maximum > 0

    def test_lanes_process_concurrently(self, sim):
        times = {}

        class TwoLane(SlowEngine):
            pass

        mesh, engine, sink, _ = rig(sim, engine_cls=TwoLane, lanes=2)
        for _ in range(2):
            engine._loopback(chained_packet([1]))
        sim.run()
        t0, t1 = sink.got[0][1], sink.got[1][1]
        # Both serviced in parallel: same finish time window, not 2x.
        assert t1 - t0 < engine.clock.cycles_to_ps(100)

    def test_bounded_queue_drops_droppable(self, sim):
        mesh, engine, sink, _ = rig(sim, engine_cls=SlowEngine,
                                    queue_capacity=1)
        engine._loopback(chained_packet([1]))  # in service
        engine._loopback(chained_packet([1]))  # occupies the single slot
        engine._loopback(chained_packet([1], droppable=True, slack_ps=1 << 40))
        sim.run()
        assert engine.queue.dropped.value == 1

    def test_bounded_queue_lossless_overflow_raises(self, sim):
        mesh, engine, _, _ = rig(sim, engine_cls=SlowEngine, queue_capacity=1)
        engine._loopback(chained_packet([1]))  # in service
        engine._loopback(chained_packet([1]))  # fills the single slot
        with pytest.raises(PifoFullError):
            engine._loopback(chained_packet([1]))

    def test_processed_counter(self, sim):
        mesh, engine, sink, _ = rig(sim)
        for _ in range(5):
            engine._loopback(chained_packet([1]))
        sim.run()
        assert engine.processed.value == 5


class TestLocalLookupTable:
    def test_default_and_rules(self):
        table = LocalLookupTable()
        assert table.lookup("anything") is None
        table.default_next = 7
        assert table.lookup("anything") == 7
        table.install("special", 9)
        assert table.lookup("special") == 9
        assert table.lookups.value == 3

    def test_lanes_validation(self, sim):
        with pytest.raises(ValueError):
            Engine(sim, "bad", lanes=0)
