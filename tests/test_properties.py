"""Property-based tests (hypothesis) on core data structures and codecs."""

import heapq

from hypothesis import given, settings, strategies as st

from repro.engines import AhoCorasick, compress, decompress, keystream, xor_bytes
from repro.packet import (
    EthernetHeader,
    Ipv4Header,
    KvOpcode,
    KvRequest,
    MacAddress,
    IPv4Address,
    PanicHeader,
    UdpHeader,
    build_udp_frame,
    internet_checksum,
    parse_frame,
    verify_internet_checksum,
    wire_bits,
)
from repro.sched import PifoQueue
from repro.sim.clock import Clock
from repro.sim.stats import Histogram


# ----------------------------------------------------------------------
# Codec round trips
# ----------------------------------------------------------------------


@given(st.binary(max_size=4096))
@settings(max_examples=200, deadline=None)
def test_compression_roundtrip(data):
    assert decompress(compress(data)) == data


@given(st.binary(max_size=2048))
def test_compression_never_corrupts_header(data):
    blob = compress(data)
    assert blob[:3] == b"LZ1"
    assert int.from_bytes(blob[3:7], "big") == len(data)


@given(st.binary(min_size=1, max_size=512), st.integers(0, 2**32 - 1),
       st.integers(0, 2**32 - 1))
def test_keystream_xor_is_involution(data, spi, seq):
    stream = keystream(b"key", spi, seq, len(data))
    assert xor_bytes(xor_bytes(data, stream), stream) == data


@given(st.binary(max_size=256))
def test_internet_checksum_verifies(data):
    # Checksum fields sit at even offsets in real headers, so the
    # property is over word-aligned data.
    if len(data) % 2:
        data += b"\x00"
    stamped = data + internet_checksum(data).to_bytes(2, "big")
    assert verify_internet_checksum(stamped)


# ----------------------------------------------------------------------
# Header round trips
# ----------------------------------------------------------------------


@given(st.integers(0, 2**48 - 1), st.integers(0, 2**48 - 1),
       st.integers(0, 0xFFFF))
def test_ethernet_header_roundtrip(dst, src, ethertype):
    header = EthernetHeader(MacAddress(dst), MacAddress(src), ethertype)
    parsed, rest = EthernetHeader.unpack(header.pack())
    assert parsed == header and rest == b""


@given(
    st.integers(0, 2**32 - 1),
    st.integers(0, 2**32 - 1),
    st.integers(0, 255),
    st.integers(20, 0xFFFF),
    st.integers(0, 255),
    st.integers(0, 63),
)
def test_ipv4_header_roundtrip(src, dst, proto, length, ttl, dscp):
    header = Ipv4Header(
        src=IPv4Address(src), dst=IPv4Address(dst), protocol=proto,
        total_length=length, ttl=ttl, dscp=dscp,
    )
    parsed, _rest = Ipv4Header.unpack(header.pack())
    assert parsed.src == header.src
    assert parsed.dst == header.dst
    assert parsed.total_length == length
    assert parsed.dscp == dscp
    assert verify_internet_checksum(header.pack())


@given(st.lists(st.integers(0, 0xFFFF), max_size=50),
       st.integers(0, 2**40), st.booleans(), st.booleans())
def test_panic_header_roundtrip(chain, slack, needs_rmt, droppable):
    header = PanicHeader(chain=chain, slack_ps=slack, needs_rmt=needs_rmt,
                         droppable=droppable)
    parsed, rest = PanicHeader.unpack(header.pack() + b"xyz")
    assert parsed.chain == chain
    assert parsed.slack_ps == slack
    assert parsed.needs_rmt == needs_rmt
    assert parsed.droppable == droppable
    assert rest == b"xyz"


@given(
    st.sampled_from([KvOpcode.GET, KvOpcode.SET, KvOpcode.DELETE]),
    st.integers(0, 0xFFFF),
    st.integers(0, 2**32 - 1),
    st.binary(min_size=1, max_size=64),
    st.binary(max_size=128),
)
def test_kv_request_roundtrip(opcode, tenant, request_id, key, value):
    if opcode != KvOpcode.SET:
        value = b""
    request = KvRequest(opcode, tenant, request_id, key, value)
    parsed, rest = KvRequest.unpack(request.pack())
    assert parsed == request and rest == b""


@given(st.binary(max_size=900), st.integers(1, 0xFFFF), st.integers(1, 0xFFFF))
@settings(max_examples=100, deadline=None)
def test_udp_frame_parse_roundtrip(payload, sport, dport):
    frame = build_udp_frame(
        src_mac="02:00:00:00:00:01",
        dst_mac="02:00:00:00:00:02",
        src_ip="10.0.0.1",
        dst_ip="10.0.0.2",
        src_port=sport,
        dst_port=dport,
        payload=payload,
    )
    parsed = parse_frame(frame)
    assert parsed.payload == payload
    assert parsed.udp.src_port == sport
    assert parsed.udp.dst_port == dport


# ----------------------------------------------------------------------
# Data-structure invariants
# ----------------------------------------------------------------------


@given(st.lists(st.integers(0, 2**40), min_size=1, max_size=200))
def test_pifo_pops_sorted(ranks):
    queue = PifoQueue()
    for i, rank in enumerate(ranks):
        queue.push(i, rank)
    popped = []
    while not queue.is_empty:
        popped.append(queue.pop()[1])
    assert popped == sorted(ranks)


@given(st.lists(st.tuples(st.integers(0, 100), st.booleans()),
                min_size=1, max_size=60),
       st.integers(1, 10))
def test_pifo_bounded_never_exceeds_capacity(items, capacity):
    queue = PifoQueue(capacity=capacity)
    accepted = 0
    for i, (rank, droppable) in enumerate(items):
        try:
            if queue.push(i, rank, droppable=True):
                accepted += 1
        except Exception:
            pass
        assert len(queue) <= capacity
    assert queue.pushed.value == accepted


@given(st.lists(st.floats(min_value=-1e9, max_value=1e9,
                          allow_nan=False), min_size=1, max_size=300))
def test_histogram_percentiles_monotone(samples):
    h = Histogram()
    h.record_many(samples)
    pcts = [h.percentile(p) for p in (0, 25, 50, 75, 90, 99, 100)]
    assert pcts == sorted(pcts)
    assert pcts[0] == min(samples)
    assert pcts[-1] == max(samples)


@given(st.integers(1, 10**9), st.floats(min_value=1e6, max_value=1e12,
                                        allow_nan=False))
def test_clock_conversion_bounds(cycles, freq):
    clock = Clock(freq)
    ps = clock.cycles_to_ps(cycles)
    # The period is quantized to integer picoseconds; the conversion is
    # exact w.r.t. the quantized period and never undercounts it.
    assert ps >= cycles * clock.period_ps
    assert ps - cycles * clock.period_ps <= 1
    # And the quantization error vs the ideal period is sub-ps per cycle.
    assert abs(ps - cycles * (1e12 / freq)) <= 0.5 * cycles + 1
    assert clock.ps_to_cycles(ps) >= cycles - 1


@given(st.integers(0, 10_000))
def test_wire_bits_floor(nbytes):
    bits = wire_bits(nbytes)
    assert bits >= 672
    assert bits % 8 == 0


@given(st.lists(st.binary(min_size=1, max_size=8), min_size=1, max_size=10),
       st.binary(max_size=256))
@settings(max_examples=150, deadline=None)
def test_aho_corasick_matches_naive_search(patterns, haystack):
    automaton = AhoCorasick(patterns)
    found = {(end, automaton.patterns[idx]) for end, idx in automaton.search(haystack)}
    expected = set()
    for pattern in set(patterns):
        start = 0
        while True:
            index = haystack.find(pattern, start)
            if index < 0:
                break
            expected.add((index + len(pattern), pattern))
            start = index + 1
    assert found == expected
