"""The RMT-resident L4 load balancer (DESIGN.md section 17).

Pins the four layers separately, then end to end:

* the consistent-hash ring (determinism, bounded churn on removal),
* the ``flow_key64``/``ring_lookup``/``affinity_steer`` data-plane
  actions,
* the :class:`LbSteering` control plane -- make-before-break epochs,
  drain/fail idempotence, gc of masked entries by identity,
* the heartbeat health monitor, including monitor-driven failover of a
  dark backend inside the full rack workload,

plus the chaos-harness integration (the ``lb`` config) and the
collision-freedom of the shipped rack shapes in the affinity table.
"""

import pytest

from repro.core.config import PanicConfig
from repro.core.panic import PanicNic
from repro.faults.plan import FaultPlan
from repro.lb.monitor import (
    HB_ECHO,
    HB_PROBE,
    BackendHealthMonitor,
    pack_heartbeat,
    parse_heartbeat,
)
from repro.lb.rack import client_flow_key, lb_layout, lb_rack_topology
from repro.lb.ring import HashRing, ring_points
from repro.lb.steering import LbSteering
from repro.reliability.chaos import (
    generate_lb_chaos_plan,
    lb_drain_params,
    run_chaos,
    run_chaos_case,
    split_config,
)
from repro.rmt.action import ActionError, flow_key64, ring_lookup
from repro.sim.clock import US
from repro.sim.kernel import Simulator
from repro.sim.shard import run_monolithic


# ----------------------------------------------------------------------
# Hash ring
# ----------------------------------------------------------------------

class TestHashRing:
    def test_points_deterministic_and_order_free(self):
        assert ring_points([3, 1, 2]) == ring_points([1, 2, 3])
        assert ring_points([1, 2, 3]) == ring_points([1, 2, 3])
        assert HashRing([1, 2, 3]).as_param() == ring_points([1, 2, 3])

    def test_points_sorted_and_sized(self):
        points = ring_points([1, 2, 3], vnodes=32)
        assert len(points) == 96
        assert list(points) == sorted(points)
        assert all(0 <= p <= 0xFFFFFFFF for p, _ in points)

    def test_removal_only_moves_the_removed_backends_keys(self):
        # The consistent-hashing property live drain relies on: keys not
        # owned by the removed backend keep their owner.
        ring = HashRing([1, 2, 3, 4])
        # Golden-ratio stride spreads probes across the whole keyspace.
        keys = [(k * 2654435761) & 0xFFFFFFFF for k in range(500)]
        before = {k: ring.owner(k) for k in keys}
        ring.remove(4)
        moved = 0
        for k in keys:
            if before[k] == 4:
                moved += 1
                assert ring.owner(k) in (1, 2, 3)
            else:
                assert ring.owner(k) == before[k]
        assert 0 < moved < len(keys)  # a real share moved, most stayed

    def test_snapshots_are_independent(self):
        # Installed epochs hold a reference to a snapshot; mutating the
        # ring must produce a *new* tuple, not edit the old one.
        ring = HashRing([1, 2])
        old = ring.as_param()
        ring.add(3)
        assert ring.as_param() is not old
        assert old == ring_points([1, 2])

    def test_membership_and_validation(self):
        ring = HashRing([1, 2])
        assert len(ring) == 2 and 1 in ring and 3 not in ring
        with pytest.raises(ValueError):
            ring.add(1)
        with pytest.raises(ValueError):
            ring.remove(9)
        with pytest.raises(ValueError):
            HashRing([1], vnodes=0)


# ----------------------------------------------------------------------
# Data-plane actions
# ----------------------------------------------------------------------

class TestLbActions:
    def test_flow_key64_deterministic_and_nonzero(self):
        seen = set()
        for values in [(0,), (1, 2), (2, 1), (b"abc",), ((10 << 24) | 1,
                                                         40003)]:
            key = flow_key64(values)
            assert key == flow_key64(values)
            assert key != 0  # zero is the empty-slot sentinel
            seen.add(key)
        assert len(seen) == 5  # no collisions in the sample

    def test_ring_lookup_clockwise_and_wraparound(self):
        ring = ((100, 7), (200, 9))
        assert ring_lookup(ring, 50) == 7
        assert ring_lookup(ring, 100) == 7
        assert ring_lookup(ring, 150) == 9
        # Past the last point the ring wraps to its lowest point.
        assert ring_lookup(ring, 0xFFFFFFFF) == 7
        # Only the low 32 bits position the key.
        assert ring_lookup(ring, (1 << 32) + 150) == 9

    def test_empty_ring_is_an_action_error(self):
        with pytest.raises(ActionError):
            ring_lookup((), 1)


# ----------------------------------------------------------------------
# Control plane
# ----------------------------------------------------------------------

def make_steering(n_backends=3, **kwargs):
    sim = Simulator()
    nic = PanicNic(sim, PanicConfig(ports=n_backends + 1, seed=0),
                   name="lb0")
    steering = LbSteering(
        nic, "10.0.99.1",
        {b: b - 1 for b in range(1, n_backends + 1)},
        **kwargs,
    )
    return sim, nic, steering


class TestLbSteering:
    def test_initial_epoch(self):
        _, _, steering = make_steering()
        assert steering.epoch == 0
        assert steering.live_backends() == (1, 2, 3)
        assert steering.report()["installed_entries"] == 1

    def test_drain_is_make_before_break(self):
        _, nic, steering = make_steering()
        table = nic.control.program.table("vip_steer")
        assert steering.drain(2)
        # The new epoch is installed and the old entry still present
        # (masked by priority) until gc -- never an instant with no rule.
        assert steering.epoch == 1
        assert table.size == 2
        epochs = [e for e, _ in steering._entries]
        assert epochs == [0, 1]
        new_entry = steering._entries[-1][1]
        assert new_entry.priority == 1
        backends_on_ring = {b for _, b in new_entry.params["ring"]}
        assert backends_on_ring == {1, 3}
        old_entry = steering._entries[0][1]
        assert {b for _, b in old_entry.params["ring"]} == {1, 2, 3}

    def test_gc_removes_only_masked_epochs(self):
        _, nic, steering = make_steering()
        table = nic.control.program.table("vip_steer")
        steering.drain(2)
        assert steering.gc() == 1
        assert table.size == 1
        assert steering.report()["gc_removed"] == 1
        assert steering.gc() == 0  # nothing stale left

    def test_drain_idempotent(self):
        _, _, steering = make_steering()
        assert steering.drain(2)
        epoch = steering.epoch
        assert not steering.drain(2)  # already out of the live set
        assert steering.epoch == epoch

    def test_fail_after_drain_rebooks_without_new_epoch(self):
        _, _, steering = make_steering()
        steering.drain(2)
        epoch = steering.epoch
        # The monitor declaring a draining backend dead must win the
        # bookkeeping race without re-epoching (it is already retired).
        assert steering.fail(2)
        assert steering.epoch == epoch
        assert 2 in steering.failed and 2 not in steering.draining
        assert not steering.fail(2)  # now idempotent

    def test_fail_is_an_epoch_bump_when_live(self):
        _, _, steering = make_steering()
        assert steering.fail(3)
        assert steering.epoch == 1
        assert steering.live_backends() == (1, 2)

    def test_last_backend_is_unremovable(self):
        _, _, steering = make_steering()
        steering.drain(2)
        steering.drain(1)
        with pytest.raises(RuntimeError):
            steering.drain(3)
        with pytest.raises(RuntimeError):
            steering.fail(3)
        assert steering.live_backends() == (3,)

    def test_unknown_backend_rejected(self):
        _, _, steering = make_steering()
        with pytest.raises(KeyError):
            steering.drain(9)

    def test_constructor_validation(self):
        sim = Simulator()
        nic = PanicNic(sim, PanicConfig(ports=2, seed=0), name="lb0")
        with pytest.raises(ValueError):
            LbSteering(nic, "10.0.99.1", {})
        with pytest.raises(ValueError):
            LbSteering(nic, "10.0.99.1", {1: 0}, slots=0)


# ----------------------------------------------------------------------
# Affinity-table sizing: the shipped rack shapes are collision-free
# ----------------------------------------------------------------------

class TestAffinitySizing:
    @pytest.mark.parametrize("nics,backends,slots", [
        (7, 3, 256),     # the chaos config's shape at the default size
        (32, 4, 2048),   # the lb-smoke bench shape at its sized table
    ])
    def test_shape_collision_free(self, nics, backends, slots):
        _, clients = lb_layout(nics, backends)
        occupied = {flow_key64(client_flow_key(c)) % slots
                    for c in clients}
        assert len(occupied) == len(clients)

    def test_layout_validation(self):
        assert lb_layout(7, 3) == ((1, 2, 3), (4, 5, 6))
        with pytest.raises(ValueError):
            lb_layout(4, 3)  # no room for a client
        with pytest.raises(ValueError):
            lb_layout(7, 0)


# ----------------------------------------------------------------------
# Heartbeat monitor
# ----------------------------------------------------------------------

class TestHeartbeatWire:
    def test_roundtrip(self):
        for hb_type in (HB_PROBE, HB_ECHO):
            assert parse_heartbeat(pack_heartbeat(hb_type, 5)) == (hb_type,
                                                                   5)

    def test_rejects_non_heartbeats(self):
        assert parse_heartbeat(b"") is None
        assert parse_heartbeat(b"\x00" * 5) is None          # wrong magic
        assert parse_heartbeat(b"LB\x05\x00\x01") is None    # bad type

    def test_monitor_validation(self):
        with pytest.raises(ValueError):
            BackendHealthMonitor(None, 0, None, None,
                                 period_ps=0, timeout_ps=10)
        with pytest.raises(ValueError):
            BackendHealthMonitor(None, 0, None, None,
                                 period_ps=5, timeout_ps=5)


class TestRackFailover:
    def test_quiet_rack_has_no_false_positives(self):
        # Healthy backends ride the PCIe coalescing-timeout path and can
        # legitimately go tens of microseconds between echoes; the
        # declaration threshold must absorb that (monitor.py).
        topo = lb_rack_topology(nics=5, n_backends=2, frames=5)
        mono = run_monolithic(topo)
        lb = mono.reports["nic0"]
        assert lb["monitor"]["detected"] == {}
        assert lb["steering"]["failed"] == {}
        assert lb["steering"]["backends"] == [1, 2]

    def test_dark_backend_is_failed_out(self):
        plan = FaultPlan(seed=0).nic_down(20 * US, "nic1")
        topo = lb_rack_topology(nics=5, n_backends=2, frames=5)
        mono = run_monolithic(topo, fault_plan=plan)
        lb = mono.reports["nic0"]
        assert 1 in lb["monitor"]["detected"]
        assert 1 in lb["steering"]["failed"]
        assert lb["steering"]["backends"] == [2]
        # Detection is heartbeat-quantized but must land after the crash.
        assert lb["monitor"]["detected"][1] > 20 * US


# ----------------------------------------------------------------------
# Chaos integration: the ``lb`` config
# ----------------------------------------------------------------------

class TestLbChaosConfig:
    def test_config_vocabulary(self):
        assert split_config("lb") == ("lb", False)
        assert split_config("sr+ll") == ("sr", True)
        with pytest.raises(ValueError):
            split_config("lb+ll")

    def test_drain_params_deterministic(self):
        for seed in range(10):
            a = lb_drain_params(seed)
            assert a == lb_drain_params(seed)
            if a is not None:
                backend, at_ps = a
                assert 1 <= backend <= 3
                assert (100 * US) // 8 <= at_ps <= (100 * US) // 2

    def test_plan_deterministic(self):
        for seed in range(5):
            a = generate_lb_chaos_plan(seed, 7)
            b = generate_lb_chaos_plan(seed, 7)
            assert repr(a._events) == repr(b._events)

    def test_case_passes_with_drain(self):
        # Seed 0 draws a planned drain; the full invariant set must hold
        # mono vs sharded.
        case = run_chaos_case(0, config="lb", frames=8, workers=2,
                              check_replay=False)
        assert case["passed"], case["violations"]
        assert case["invariants"]["no_affinity_violation"]
        assert case["invariants"]["no_committed_loss"]
        assert case["lb"]["drain"] is not None

    def test_case_passes_speculatively_with_crash(self):
        # Seed 1 crashes a backend dark; failover must replay
        # bit-identically under speculative shard windows.
        case = run_chaos_case(1, config="lb", frames=8, workers=2,
                              check_replay=False, speculative=True)
        assert case["passed"], case["violations"]
        assert case["lb"]["failed"]
        assert case["lb"]["monitor"]["hb_failures_detected"] >= 1

    def test_per_config_floor_dict(self):
        report = run_chaos([0], configs=("gbn",), frames=6,
                           check_replay=False,
                           goodput_floor={"gbn": 1.01})
        assert report["floor_failures"]
        assert report["floor_failures"][0]["floor"] == 1.01
        # A config absent from the mapping is ungated.
        report = run_chaos([0], configs=("gbn",), frames=6,
                           check_replay=False,
                           goodput_floor={"sr+ll": 1.01})
        assert report["floor_failures"] == []
