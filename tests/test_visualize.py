"""Tests for the ASCII mesh/occupancy visualizer."""

from repro.analysis import mesh_map, occupancy_map, utilization_report
from repro.core import PanicConfig, PanicNic
from repro.packet import KvOpcode, KvRequest, build_kv_request_frame


class TestVisualize:
    def test_mesh_map_shows_every_engine(self, nic):
        art = mesh_map(nic)
        for key in nic.engines:
            assert key[:13] in art
        assert "4x4 mesh" in art

    def test_mesh_map_empty_tiles_dotted(self, nic):
        assert "." in mesh_map(nic)

    def test_grid_dimensions(self, nic):
        art = mesh_map(nic)
        grid_lines = art.splitlines()[1:]
        # height rows + height+1 separators.
        assert len(grid_lines) == 2 * nic.config.mesh_height + 1

    def test_occupancy_reflects_queue_depth(self, sim, nic):
        nic.control.enable_kv_cache()
        for i in range(5):
            nic.inject(
                build_kv_request_frame(KvRequest(KvOpcode.GET, 1, i, b"x"))
            )
        sim.run(max_events=40)
        art = occupancy_map(nic)
        assert "rmt:" in art
        sim.run()

    def test_utilization_report_counts(self, sim, nic):
        nic.control.enable_kv_cache()
        nic.offload("kvcache").cache_put(b"k", b"v")
        nic.inject(build_kv_request_frame(KvRequest(KvOpcode.GET, 1, 1, b"k")))
        sim.run()
        report = utilization_report(nic)
        assert "rmt" in report
        assert "processed=2" in report  # request + response passes
