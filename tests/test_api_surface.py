"""Coverage for remaining API surface: DMA write path, doorbell edges,
control-plane error paths, rectangular meshes, CLI module entry."""

import pytest

from repro.core import PanicConfig, PanicNic
from repro.core.host import Host
from repro.engines import DmaEngine, PcieEngine
from repro.noc import Endpoint, Mesh, MeshConfig
from repro.packet import Packet, PanicHeader
from repro.packet.packet import Direction, MessageKind
from repro.sim import Simulator


class Sink(Endpoint):
    def __init__(self, sim):
        self.sim = sim
        self.got = []

    def receive(self, message):
        self.got.append(message.packet)


class TestDmaWritePath:
    def rig(self, sim):
        mesh = Mesh(sim, MeshConfig(width=3, height=1))
        dma = DmaEngine(sim, "dma")
        dma.bind_port(mesh.bind(dma, 0, 0))
        sink = Sink(sim)
        mesh.bind(sink, 1, 0)
        host = Host(sim, "h", mem_jitter_ps=0)
        dma.attach_host(host)
        return dma, sink, host

    def test_dma_write_stores_and_confirms(self, sim):
        dma, sink, host = self.rig(sim)
        write = Packet(b"", MessageKind.DMA_WRITE)
        write.meta.annotations.update(
            dma_key=b"log:0", dma_data=b"appended", reply_to=1
        )
        dma._loopback(write)
        sim.run()
        assert host.memory[b"log:0"] == b"appended"
        assert len(sink.got) == 1  # completion to reply_to
        assert sink.got[0].kind == MessageKind.DMA_COMPLETION

    def test_dma_write_without_reply_is_silent(self, sim):
        dma, sink, host = self.rig(sim)
        write = Packet(b"", MessageKind.DMA_WRITE)
        write.meta.annotations.update(dma_key=b"k", dma_data=b"v")
        dma._loopback(write)
        sim.run()
        assert host.memory[b"k"] == b"v"
        assert sink.got == []

    def test_dma_read_missing_key_completion_carries_none(self, sim):
        dma, sink, host = self.rig(sim)
        read = Packet(b"", MessageKind.DMA_READ)
        read.meta.annotations.update(dma_key=b"absent", reply_to=1)
        dma._loopback(read)
        sim.run()
        assert len(sink.got) == 1
        assert sink.got[0].meta.annotations.get("dma_data") is None

    def test_unclassified_message_follows_chain(self, sim):
        dma, sink, host = self.rig(sim)
        stray = Packet(b"\x00" * 64, MessageKind.ETHERNET)
        stray.meta.direction = Direction.TX  # not an RX write
        stray.panic = PanicHeader(chain=[1])
        dma._loopback(stray)
        sim.run()
        assert sink.got == [stray]


class TestPcieEdges:
    def test_doorbell_requires_dma_address(self, sim):
        pcie = PcieEngine(sim, "pcie")
        mesh = Mesh(sim, MeshConfig(width=1, height=1))
        pcie.bind_port(mesh.bind(pcie, 0, 0))
        with pytest.raises(RuntimeError):
            pcie.ring_doorbell(0)

    def test_non_completion_follows_chain(self, sim):
        mesh = Mesh(sim, MeshConfig(width=2, height=1))
        pcie = PcieEngine(sim, "pcie")
        pcie.bind_port(mesh.bind(pcie, 0, 0))
        sink = Sink(sim)
        mesh.bind(sink, 1, 0)
        stray = Packet(b"", MessageKind.CONTROL)
        stray.panic = PanicHeader(chain=[1])
        pcie._loopback(stray)
        sim.run()
        assert sink.got == [stray]

    def test_coalesce_validation(self, sim):
        with pytest.raises(ValueError):
            PcieEngine(sim, "bad1", coalesce_count=0)
        with pytest.raises(ValueError):
            PcieEngine(sim, "bad2", coalesce_timeout_ps=0)


class TestControlPlaneErrors:
    def test_unknown_engine_in_chain(self, nic):
        with pytest.raises(KeyError):
            nic.control.route_dscp(1, ["flux_capacitor"])

    def test_ipsec_route_requires_ipsec_engine(self, sim):
        nic = PanicNic(sim, PanicConfig(ports=1, offloads=()))
        with pytest.raises(KeyError):
            nic.control.enable_ipsec_rx()

    def test_raw_addresses_accepted_in_chains(self, sim, nic):
        addr = nic.offload("kvcache").address
        nic.control.route_dscp(2, [addr])  # ints pass through

    def test_addr_lookup(self, nic):
        assert nic.control.addr("dma") == nic.dma.address
        with pytest.raises(KeyError):
            nic.control.addr("ghost")


class TestRectangularMeshes:
    @pytest.mark.parametrize("width,height", [(6, 2), (2, 6), (5, 3)])
    def test_nic_builds_on_rectangles(self, width, height):
        sim = Simulator()
        nic = PanicNic(
            sim,
            PanicConfig(ports=1, mesh_width=width, mesh_height=height,
                        offloads=("kvcache",)),
            name=f"panic_{width}x{height}",
        )
        delivered = []
        nic.host.software_handler = lambda p, q: delivered.append(p)
        from repro.packet import build_udp_frame

        nic.inject(Packet(build_udp_frame(
            src_mac="02:00:00:00:00:01", dst_mac="02:00:00:00:00:02",
            src_ip="10.0.0.1", dst_ip="10.0.0.2",
            src_port=1, dst_port=2, payload=b"x",
        )))
        sim.run()
        assert len(delivered) == 1


class TestModuleEntry:
    def test_main_module_importable(self):
        import importlib

        cli = importlib.import_module("repro.cli")
        assert callable(cli.main)

    def test_version_exposed(self):
        import repro

        assert repro.__version__
