"""Tag-based rack flow identity: parser, caps, mesh sizing, equivalence.

The 6-bit DSCP encoding caps all-pairs rack flows at 7 NICs; the
VXLAN-style 16-bit payload tag (``flow_id="tag"``) lifts that to 255.
These tests pin the parser's ``rack_tag`` state (FSM and fused paths
must agree bit-for-bit), the short-payload error path, the
``resolve_flow_id`` vocabulary and caps, automatic NoC mesh sizing for
wide racks, and that tag-identified racks stay bit-identical between
monolithic and sharded execution.
"""

import pytest

from repro.packet.builder import build_udp_frame
from repro.packet.headers import RACK_TAG_BYTES, RACK_TAG_UDP_PORT
from repro.rmt import parser as parser_mod
from repro.rmt.parser import default_parse_graph
from repro.sim.shard import run_monolithic, run_sharded
from repro.workloads.rack import (
    MAX_RACK_NICS,
    MAX_TAG_RACK_NICS,
    flow_tag,
    rack_mesh_size,
    rack_topology,
    resolve_flow_id,
)


def _tagged_frame(tag: int, payload: bytes = bytes(20)) -> bytes:
    return build_udp_frame(
        src_mac="02:00:00:00:00:01", dst_mac="02:00:00:00:00:02",
        src_ip="10.0.0.1", dst_ip="10.0.1.1",
        src_port=40001, dst_port=RACK_TAG_UDP_PORT,
        payload=tag.to_bytes(RACK_TAG_BYTES, "big") + payload,
    )


class TestRackTagParsing:
    def test_fused_and_fsm_agree(self):
        graph = default_parse_graph()
        frame = _tagged_frame(0x1234)
        fused = graph.parse(frame)
        # Disable the fused fast path so the same graph walks the FSM.
        saved = parser_mod._fused_default_parse
        parser_mod._fused_default_parse = lambda *a: False
        try:
            fsm = graph.parse(frame)
        finally:
            parser_mod._fused_default_parse = saved
        assert fused.get("rack.tag") == 0x1234
        assert fused._fields == fsm._fields

    def test_untagged_port_leaves_field_unset(self):
        graph = default_parse_graph()
        frame = build_udp_frame(
            src_mac="02:00:00:00:00:01", dst_mac="02:00:00:00:00:02",
            src_ip="10.0.0.1", dst_ip="10.0.1.1",
            src_port=40001, dst_port=9000, payload=bytes(20),
        )
        phv = graph.parse(frame)
        assert phv.get_or("rack.tag", None) is None

    def test_tag_does_not_consume_payload(self):
        # The shim stays part of meta.payload: fixed offsets (checksum,
        # KV parse, the rack workload's seq/index fields) never shift.
        graph = default_parse_graph()
        phv = graph.parse(_tagged_frame(0x00FF, payload=b"hello" + bytes(8)))
        payload = phv.get("meta.payload")
        assert payload[:RACK_TAG_BYTES] == b"\x00\xff"
        assert payload[RACK_TAG_BYTES:RACK_TAG_BYTES + 5] == b"hello"

    def test_short_payload_marks_parse_error(self):
        graph = default_parse_graph()
        frame = build_udp_frame(
            src_mac="02:00:00:00:00:01", dst_mac="02:00:00:00:00:02",
            src_ip="10.0.0.1", dst_ip="10.0.1.1",
            src_port=40001, dst_port=RACK_TAG_UDP_PORT, payload=b"\x01",
        )
        phv = graph.parse(frame)
        assert phv.get("meta.parse_error") == 1
        assert phv.get("meta.parse_error_state") == b"rack_tag"


class TestFlowIdResolution:
    def test_auto_picks_dscp_up_to_seven(self):
        assert resolve_flow_id("auto", 7) == "dscp"
        assert resolve_flow_id("auto", 8) == "tag"

    def test_dscp_cap_enforced(self):
        with pytest.raises(ValueError, match="dscp"):
            resolve_flow_id("dscp", MAX_RACK_NICS + 1)

    def test_tag_cap_enforced(self):
        with pytest.raises(ValueError, match="tag"):
            resolve_flow_id("tag", MAX_TAG_RACK_NICS + 1)
        with pytest.raises(ValueError):
            resolve_flow_id("auto", MAX_TAG_RACK_NICS + 1)

    def test_unknown_vocabulary_rejected(self):
        with pytest.raises(ValueError, match="flow_id"):
            resolve_flow_id("vlan", 4)

    def test_topology_rejects_oversized_dscp_rack(self):
        with pytest.raises(ValueError):
            rack_topology(nics=8, flow_id="dscp")

    def test_tags_are_unique_per_directed_flow(self):
        n = 12
        tags = {flow_tag(s, d, n)
                for s in range(n) for d in range(n) if s != d}
        assert len(tags) == n * (n - 1)


class TestMeshSizing:
    def test_small_racks_keep_stock_mesh(self):
        # <= 7 NICs must keep the historical 4x4 so DSCP-era configs are
        # bit-for-bit unchanged.
        assert rack_mesh_size(6) == 4

    def test_wide_racks_grow_square(self):
        # 31 ports + DMA + PCIe + RMT + checksum offload = 35 tiles.
        assert rack_mesh_size(31) == 6
        assert rack_mesh_size(62) == 9

    def test_wide_rack_builds_and_runs(self):
        topo = rack_topology(nics=9, frames=2, pattern="fanin")
        result = run_monolithic(topo)
        assert len(result.reports["nic0"]["deliveries"]) == 8 * 2


class TestTagEquivalence:
    def test_forced_tag_on_small_rack(self):
        # Same rack size the DSCP suite covers, but on the tag path:
        # mono and sharded must agree bit-for-bit.
        topo = rack_topology(nics=4, frames=6, flow_id="tag")
        mono = run_monolithic(topo)
        for name in mono.reports:
            assert len(mono.reports[name]["deliveries"]) == 3 * 6
        sharded = run_sharded(topo, workers=2)
        assert sharded.reports == mono.reports
        assert sharded.wire_stats == mono.wire_stats

    def test_auto_tag_rack_sharded(self):
        topo = rack_topology(nics=9, frames=3, pattern="fanin")
        mono = run_monolithic(topo)
        assert len(mono.reports["nic0"]["deliveries"]) == 8 * 3
        sharded = run_sharded(topo, workers=3)
        assert sharded.reports == mono.reports

    def test_tag_delivery_attribution_matches_dscp(self):
        # Same traffic pattern under both encodings: the delivered
        # (src, seq) sets must agree even though wire bytes differ.
        def srcseq(reports):
            return {name: [(s, q) for s, q, _t, _queue in
                           report["deliveries"]]
                    for name, report in reports.items()}
        dscp = run_monolithic(rack_topology(nics=4, frames=5,
                                            flow_id="dscp"))
        tag = run_monolithic(rack_topology(nics=4, frames=5,
                                           flow_id="tag"))
        assert srcseq(dscp.reports) == srcseq(tag.reports)
