"""Tests for the analytical mesh model -- Table 3 must reproduce exactly."""

import pytest

from repro.noc import MeshAnalysis, table3_rows
from repro.noc.analysis import TABLE3_PAPER
from repro.sim.clock import MHZ


class TestTable3:
    def test_all_rows_match_paper(self):
        rows = table3_rows()
        assert len(rows) == 4
        for row, (paper_bw, paper_chain) in zip(rows, TABLE3_PAPER):
            assert row.bisection_gbps == pytest.approx(paper_bw)
            assert row.chain_length == pytest.approx(paper_chain, abs=0.005)

    def test_row_labels(self):
        labels = [row.label() for row in table3_rows()]
        assert labels[0] == "40Gbps x2 500MHz 64b 6x6 Mesh"
        assert labels[3] == "100Gbps x2 500MHz 128b 8x8 Mesh"


class TestMeshAnalysis:
    def test_bisection_formula(self):
        # 6x6, 64-bit @ 500 MHz: 2*6 channels * 32 Gbps = 384 Gbps.
        analysis = MeshAnalysis(6, 6, 64, 500 * MHZ)
        assert analysis.channel_bw_bps == 32e9
        assert analysis.bisection_channels == 12
        assert analysis.bisection_bw_bps == 384e9

    def test_capacity_is_twice_bisection(self):
        analysis = MeshAnalysis(8, 8, 64, 500 * MHZ)
        assert analysis.capacity_bps == 2 * analysis.bisection_bw_bps

    def test_chain_length_scales_with_channel_width(self):
        narrow = MeshAnalysis(6, 6, 64, 500 * MHZ)
        wide = MeshAnalysis(6, 6, 128, 500 * MHZ)
        assert wide.chain_length(100e9, 2) > narrow.chain_length(100e9, 2)

    def test_chain_length_drops_with_line_rate(self):
        analysis = MeshAnalysis(8, 8, 128, 500 * MHZ)
        assert analysis.chain_length(40e9, 2) > analysis.chain_length(100e9, 2)

    def test_rectangular_mesh_uses_smaller_cut(self):
        analysis = MeshAnalysis(8, 4, 64, 500 * MHZ)
        assert analysis.bisection_channels == 8

    def test_average_hops(self):
        analysis = MeshAnalysis(6, 6, 64, 500 * MHZ)
        # 2 * (k^2 - 1) / 3k = 2 * 35/18 for k=6.
        assert analysis.average_hops == pytest.approx(2 * 35 / 18)

    def test_diameter(self):
        assert MeshAnalysis(6, 6, 64, 500 * MHZ).diameter == 10

    def test_too_small_mesh_rejected(self):
        with pytest.raises(ValueError):
            MeshAnalysis(1, 4, 64, 500 * MHZ)

    def test_invalid_inputs_rejected(self):
        analysis = MeshAnalysis(4, 4, 64, 500 * MHZ)
        with pytest.raises(ValueError):
            analysis.chain_length(0, 2)
        with pytest.raises(ValueError):
            analysis.chain_length(40e9, 0)
        with pytest.raises(ValueError):
            MeshAnalysis(4, 4, 0, 500 * MHZ)
