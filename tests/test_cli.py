"""Tests for the command-line table generator."""

import pytest

from repro.cli import main


class TestCli:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "FlexNIC" in out
        assert "Azure SmartNIC" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "238.1Mpps" in out
        assert "595.2Mpps" in out

    def test_table3(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "5.60" in out
        assert "6x6 Mesh" in out

    def test_demo_runs_fast_path(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "served-on-nic" in out
        assert "host CPU ran   : 0 times" in out

    def test_all(self, capsys):
        assert main(["all"]) == 0
        out = capsys.readouterr().out
        for marker in ("Table 1", "Table 2", "Table 3", "served-on-nic"):
            assert marker in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["tableX"])

    def test_rack_reports_equivalence(self, capsys):
        assert main(["rack", "--nics", "3", "--frames", "4",
                     "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "bit-identical reports : yes" in out
        assert "monolithic" in out
        assert "sharded" in out
        assert "speedup" in out


class TestIntReportCli:
    def test_incast_flight_record(self, capsys, tmp_path):
        out_json = tmp_path / "int_report.json"
        trace = tmp_path / "int_trace.json"
        assert main(["int-report", "--nics", "4", "--frames", "20",
                     "--gap-ns", "200", "--workers", "2",
                     "--int-out", str(out_json),
                     "--trace-out", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "INT flight record" in out
        assert "nic1->nic0" in out
        assert "microburst" in out.lower()
        assert "bit-identical" not in out  # mono-vs-sharded runs silently
        import json
        report = json.loads(out_json.read_text())
        assert report["postcards"] == 60
        assert report["microbursts"]
        events = json.loads(trace.read_text())
        assert any(ev.get("name") == "microburst"
                   for ev in events["traceEvents"])

    def test_inband_monolithic(self, capsys):
        assert main(["int-report", "--nics", "3", "--frames", "4",
                     "--inband"]) == 0
        out = capsys.readouterr().out
        assert "in-band" in out
        assert "INT flight record" in out


class TestBenchReportCli:
    def _fake_bench(self, tmp_path, eps):
        import json
        payload = {
            "schema": "repro-bench/2", "bench": "kernel",
            "generated": "2026-01-01T00:00:00Z",
            "workloads": {"isolation": {}},
            "series": [
                {"workload": "isolation", "metric": "events_per_sec",
                 "value": eps},
                {"workload": "telemetry_idle", "metric": "overhead_frac",
                 "value": 0.01},
                {"workload": "int_idle", "metric": "overhead_frac",
                 "value": 0.10},
                {"workload": "isolation", "metric": "wall_seconds",
                 "value": 1.5},
            ],
        }
        path = tmp_path / "BENCH_kernel.json"
        path.write_text(json.dumps(payload))
        return str(path)

    def test_passing_summary(self, capsys, tmp_path):
        path = self._fake_bench(tmp_path, eps=50000)
        assert main(["bench-report", "--bench", path]) == 0
        out = capsys.readouterr().out
        assert "gated checks, 0 failing" in out
        assert "isolation [events_per_sec]" in out
        assert "-> ok" in out

    def test_regression_fails(self, capsys, tmp_path):
        path = self._fake_bench(tmp_path, eps=100)  # way below floor
        with pytest.raises(SystemExit):
            main(["bench-report", "--bench", path])
        out = capsys.readouterr().out
        assert "REGRESSION" in out
