"""Tests for the command-line table generator."""

import pytest

from repro.cli import main


class TestCli:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "FlexNIC" in out
        assert "Azure SmartNIC" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "238.1Mpps" in out
        assert "595.2Mpps" in out

    def test_table3(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "5.60" in out
        assert "6x6 Mesh" in out

    def test_demo_runs_fast_path(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "served-on-nic" in out
        assert "host CPU ran   : 0 times" in out

    def test_all(self, capsys):
        assert main(["all"]) == 0
        out = capsys.readouterr().out
        for marker in ("Table 1", "Table 2", "Table 3", "served-on-nic"):
            assert marker in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["tableX"])

    def test_rack_reports_equivalence(self, capsys):
        assert main(["rack", "--nics", "3", "--frames", "4",
                     "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "bit-identical reports : yes" in out
        assert "monolithic" in out
        assert "sharded" in out
        assert "speedup" in out
