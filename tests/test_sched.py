"""Tests for the logical scheduler: PIFO queues and slack policies."""

import pytest

from repro.sched import (
    DeadlineSlackPolicy,
    FifoSlackPolicy,
    PifoFullError,
    PifoQueue,
    StrictPrioritySlackPolicy,
    WeightedShareSlackPolicy,
)
from repro.sim.clock import US


class TestPifoQueue:
    def test_pops_in_rank_order(self):
        q = PifoQueue()
        q.push("late", 300)
        q.push("early", 100)
        q.push("mid", 200)
        assert [q.pop()[0] for _ in range(3)] == ["early", "mid", "late"]

    def test_fifo_within_equal_rank(self):
        q = PifoQueue()
        for label in "abc":
            q.push(label, 5)
        assert [q.pop()[0] for _ in range(3)] == ["a", "b", "c"]

    def test_pop_returns_rank(self):
        q = PifoQueue()
        q.push("x", 42)
        assert q.pop() == ("x", 42)

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            PifoQueue().pop()

    def test_peek_rank(self):
        q = PifoQueue()
        q.push("x", 9)
        assert q.peek_rank() == 9
        assert len(q) == 1

    def test_capacity_overflow_lossless_raises(self):
        q = PifoQueue(capacity=1)
        q.push("a", 1)
        with pytest.raises(PifoFullError):
            q.push("b", 2)

    def test_overflow_drops_incoming_droppable(self):
        q = PifoQueue(capacity=1)
        q.push("resident", 1)
        assert q.push("junk", 2, droppable=True) is False
        assert q.dropped.value == 1
        assert q.pop()[0] == "resident"

    def test_overflow_evicts_worse_droppable_resident(self):
        q = PifoQueue(capacity=2)
        q.push("important", 1)
        q.push("junk", 100, droppable=True)
        # Non-droppable newcomer with a better rank than the junk: evict it.
        assert q.push("urgent", 2) is True
        assert q.dropped.value == 1
        items = [q.pop()[0] for _ in range(2)]
        assert items == ["important", "urgent"]

    def test_overflow_keeps_better_droppable_resident(self):
        q = PifoQueue(capacity=1)
        q.push("good-junk", 1, droppable=True)
        # Incoming droppable with worse rank loses instead.
        assert q.push("bad-junk", 50, droppable=True) is False
        assert q.pop()[0] == "good-junk"

    def test_max_occupancy_tracked(self):
        q = PifoQueue()
        for i in range(5):
            q.push(i, i)
        q.pop()
        q.push(9, 9)
        assert q.max_occupancy == 5

    def test_drain_returns_rank_order(self):
        q = PifoQueue()
        q.push("b", 2)
        q.push("a", 1)
        assert q.drain() == ["a", "b"]
        assert q.is_empty

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            PifoQueue(capacity=0)


class TestSlackPolicies:
    def test_fifo_deadline_is_arrival(self):
        policy = FifoSlackPolicy()
        assert policy.deadline_ps(1, 500) == 500
        assert policy.deadline_ps(None, 0) == 0

    def test_deadline_policy_prefers_tight_slo(self):
        policy = DeadlineSlackPolicy({1: 10 * US, 2: 1000 * US})
        assert policy.deadline_ps(1, 0) < policy.deadline_ps(2, 0)

    def test_deadline_policy_default(self):
        policy = DeadlineSlackPolicy({1: 10 * US}, default_ps=77)
        assert policy.deadline_ps(99, 0) == 77

    def test_deadline_policy_validates_targets(self):
        with pytest.raises(ValueError):
            DeadlineSlackPolicy({1: 0})

    def test_strict_priority_bands(self):
        policy = StrictPrioritySlackPolicy({1: 0, 2: 1}, band_ps=1000)
        assert policy.deadline_ps(1, 0) == 0
        assert policy.deadline_ps(2, 0) == 1000
        # Unknown tenants land below every configured class.
        assert policy.deadline_ps(99, 0) == 2000

    def test_strict_priority_order_survives_arrival_skew(self):
        # A class-0 message arriving *after* class-1 still wins if the
        # band exceeds the arrival gap.
        policy = StrictPrioritySlackPolicy({0: 0, 1: 1}, band_ps=10**9)
        late_high = policy.deadline_ps(0, 1000)
        early_low = policy.deadline_ps(1, 0)
        assert late_high < early_low

    def test_weighted_share_favours_heavy_weight(self):
        policy = WeightedShareSlackPolicy({1: 10.0, 2: 1.0})
        # Same arrival, same cost: heavier weight gets earlier deadline
        # once both have consumed service.
        d1 = [policy.deadline_ps(1, 0, cost_ps=1000) for _ in range(5)]
        d2 = [policy.deadline_ps(2, 0, cost_ps=1000) for _ in range(5)]
        assert d1[-1] < d2[-1]

    def test_weighted_share_virtual_time_monotonic(self):
        policy = WeightedShareSlackPolicy({1: 1.0})
        deadlines = [policy.deadline_ps(1, 0, cost_ps=100) for _ in range(4)]
        assert deadlines == sorted(deadlines)
        assert len(set(deadlines)) == 4

    def test_weighted_share_validates_weights(self):
        with pytest.raises(ValueError):
            WeightedShareSlackPolicy({1: 0})

    def test_slack_ps_helper(self):
        policy = DeadlineSlackPolicy({1: 42})
        assert policy.slack_ps(1) == 42
