"""Tests for the live WFQ slack programming (control-plane level)."""

import pytest

from repro.core import PanicConfig, PanicNic
from repro.packet import KvOpcode, KvRequest, build_kv_request_frame
from repro.sim import Simulator
from repro.sim.clock import US


class TestEnableWfq:
    def test_action_installed_once(self, nic):
        nic.control.enable_wfq({1: 2.0}, cost_ps=1000)
        nic.control.enable_wfq({2: 1.0}, cost_ps=1000)
        assert "wfq_slack" in nic.control.program.actions
        assert nic.control.program.table("tenant_slack").size == 2

    def test_deadlines_reflect_weights(self, sim, nic):
        nic.control.enable_wfq({1: 4.0, 2: 1.0}, cost_ps=4 * US)
        packets = {}
        for tenant in (1, 2):
            for i in range(3):
                packet = build_kv_request_frame(
                    KvRequest(KvOpcode.GET, tenant, tenant * 10 + i, b"k")
                )
                packets.setdefault(tenant, []).append(packet)
                nic.inject(packet)
        sim.run()
        # After three packets each, the light tenant's virtual time has
        # advanced 4x further, so its later deadlines are later.
        heavy_last = packets[1][-1].panic.slack_ps
        light_last = packets[2][-1].panic.slack_ps
        assert light_last > heavy_last

    def test_deadlines_monotonic_per_tenant(self, sim, nic):
        nic.control.enable_wfq({3: 1.0}, cost_ps=4 * US)
        packets = []
        for i in range(4):
            packet = build_kv_request_frame(
                KvRequest(KvOpcode.GET, 3, i, b"k")
            )
            packets.append(packet)
            nic.inject(packet)
        sim.run()
        deadlines = [p.panic.slack_ps for p in packets]
        assert deadlines == sorted(deadlines)

    def test_invalid_weights_rejected(self, nic):
        with pytest.raises(ValueError):
            nic.control.enable_wfq({1: 0.0})
