"""Tests for counters, histograms, latency trackers and rate meters."""

import math

import pytest

from repro.sim import Counter, Histogram, LatencyTracker, RateMeter, TimeSeries
from repro.sim.clock import SEC
from repro.sim.rng import SeededRng


class TestCounter:
    def test_add_and_value(self):
        c = Counter("x")
        c.add()
        c.add(4)
        assert c.value == 5
        assert int(c) == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter().add(-1)

    def test_reset(self):
        c = Counter()
        c.add(10)
        c.reset()
        assert c.value == 0


class TestHistogram:
    def test_mean_min_max(self):
        h = Histogram()
        h.record_many([1, 2, 3, 4])
        assert h.mean == 2.5
        assert h.minimum == 1
        assert h.maximum == 4
        assert h.count == 4

    def test_percentiles_interpolate(self):
        h = Histogram()
        h.record_many(range(101))  # 0..100
        assert h.percentile(0) == 0
        assert h.percentile(50) == 50
        assert h.percentile(99) == 99
        assert h.percentile(100) == 100

    def test_median_of_two(self):
        h = Histogram()
        h.record_many([10, 20])
        assert h.median == 15

    def test_single_sample(self):
        h = Histogram()
        h.record(7)
        assert h.percentile(0) == 7
        assert h.percentile(100) == 7

    def test_empty_statistics_are_nan(self):
        """Zero-delivery runs must survive reporting: mean/min/max read
        nan and summary() degrades to a bare count."""
        h = Histogram("empty")
        assert math.isnan(h.mean)
        assert math.isnan(h.minimum)
        assert math.isnan(h.maximum)
        assert h.summary() == {"count": 0}

    def test_empty_quantiles_still_raise(self):
        h = Histogram("empty")
        with pytest.raises(ValueError):
            h.percentile(50)
        with pytest.raises(ValueError):
            h.cdf(0)

    def test_total_is_cached_and_exact(self):
        h = Histogram()
        h.record(3)
        h.record_many([1.5, 2.5])
        assert h.total == 7.0
        assert h.mean == 7.0 / 3
        h.record(1)
        assert h.total == 8.0

    def test_record_many_consumes_generators(self):
        h = Histogram()
        h.record_many(x for x in (1, 2, 3))
        assert h.count == 3
        assert h.total == 6

    def test_percentile_duplicates(self):
        h = Histogram()
        h.record_many([5, 5, 5, 5])
        for pct in (0, 25, 50, 99, 100):
            assert h.percentile(pct) == 5

    def test_percentile_extremes_single_sample(self):
        h = Histogram()
        h.record(7)
        assert h.percentile(0) == 7
        assert h.percentile(100) == 7
        assert h.cdf(7) == 1.0
        assert h.cdf(6.999) == 0.0

    def test_percentile_range_validated(self):
        h = Histogram()
        h.record(1)
        with pytest.raises(ValueError):
            h.percentile(101)
        with pytest.raises(ValueError):
            h.percentile(-1)

    def test_cdf(self):
        h = Histogram()
        h.record_many([1, 2, 3, 4])
        assert h.cdf(2) == 0.5
        assert h.cdf(0) == 0.0
        assert h.cdf(4) == 1.0

    def test_record_after_query_resorts(self):
        h = Histogram()
        h.record_many([5, 1])
        assert h.minimum == 1
        h.record(0)
        assert h.percentile(0) == 0

    def test_stddev(self):
        h = Histogram()
        h.record_many([2, 4, 4, 4, 5, 5, 7, 9])
        assert abs(h.stddev - 2.138) < 0.01

    def test_summary_keys(self):
        h = Histogram()
        h.record_many([1, 2, 3])
        summary = h.summary()
        assert set(summary) == {"count", "mean", "min", "p50", "p90", "p99", "max"}


class TestLatencyTracker:
    def test_observe_interval(self):
        t = LatencyTracker()
        t.observe(100, 600)
        assert t.mean == 500
        assert t.mean_ns() == 0.5

    def test_backwards_interval_rejected(self):
        t = LatencyTracker()
        with pytest.raises(ValueError):
            t.observe(10, 5)

    def test_zero_latency_allowed(self):
        t = LatencyTracker()
        t.observe(5, 5)
        assert t.mean == 0


class TestRateMeter:
    def test_rate_computation(self):
        m = RateMeter()
        m.record(SEC // 2, 100)
        m.record(SEC, 100)
        assert m.rate_per_sec(SEC) == 200

    def test_empty_rate_is_zero(self):
        assert RateMeter().rate_per_sec(0) == 0.0

    def test_reset(self):
        m = RateMeter()
        m.record(100, 5)
        m.reset(200)
        assert m.total == 0
        m.record(200 + SEC, 10)
        assert m.rate_per_sec() == 10

    def test_reset_reads_zero_until_next_record(self):
        """A reset meter has observed nothing: rate_per_sec() must not
        divide pre-reset totals by the new window."""
        m = RateMeter()
        m.record(SEC, 100)
        m.reset(2 * SEC)
        assert m.rate_per_sec() == 0.0
        assert m.rate_per_sec(3 * SEC) == 0.0

    def test_reset_restarts_window_at_reset_instant(self):
        m = RateMeter()
        m.record(SEC, 1000)
        m.reset(10 * SEC)
        m.record(11 * SEC, 50)
        # Window is [10s, 11s]: only the post-reset sample counts.
        assert m.rate_per_sec() == 50

    def test_implicit_end_is_last_sample(self):
        m = RateMeter()
        m.record(SEC // 2, 100)
        # Implicit end excludes trailing idle time ...
        assert m.rate_per_sec() == 200
        # ... while an explicit clock includes it.
        assert m.rate_per_sec(SEC) == 100

    def test_negative_amount_rejected(self):
        with pytest.raises(ValueError):
            RateMeter().record(0, -1)


class TestTimeSeries:
    def test_record_and_items(self):
        s = TimeSeries("depth", unit="msgs")
        s.record(0, 1)
        s.record(100, 2.5)
        assert s.items() == [(0, 1), (100, 2.5)]
        assert s.count == len(s) == 2
        assert s.unit == "msgs"

    def test_bound_counts_drops(self):
        s = TimeSeries(max_samples=2)
        for t in range(5):
            s.record(t, t)
        assert s.items() == [(0, 0), (1, 1)]
        assert s.dropped == 3

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError):
            TimeSeries(max_samples=0)


class TestSeededRng:
    def test_determinism(self):
        a, b = SeededRng(42), SeededRng(42)
        assert [a.randint(0, 100) for _ in range(10)] == [
            b.randint(0, 100) for _ in range(10)
        ]

    def test_fork_streams_differ(self):
        root = SeededRng(1)
        x = root.fork("x")
        y = root.fork("y")
        assert [x.randint(0, 1 << 30) for _ in range(4)] != [
            y.randint(0, 1 << 30) for _ in range(4)
        ]

    def test_fork_is_deterministic(self):
        assert SeededRng(7).fork("a").seed == SeededRng(7).fork("a").seed

    def test_zipf_skew(self):
        rng = SeededRng(3)
        draws = [rng.zipf_index(100, alpha=1.1) for _ in range(2000)]
        # Rank 0 should dominate under a skewed distribution.
        assert draws.count(0) > draws.count(50) * 3
        assert all(0 <= d < 100 for d in draws)

    def test_zipf_invalid_support(self):
        with pytest.raises(ValueError):
            SeededRng(0).zipf_index(0)

    def test_exponential_mean(self):
        rng = SeededRng(9)
        samples = [rng.exponential(1000) for _ in range(5000)]
        mean = sum(samples) / len(samples)
        assert 900 < mean < 1100

    def test_exponential_invalid_mean(self):
        with pytest.raises(ValueError):
            SeededRng(0).exponential(0)

    def test_bytes_length(self):
        assert len(SeededRng(0).bytes(17)) == 17

    def test_fork_is_interpreter_stable(self):
        """Forked streams must not depend on PYTHONHASHSEED: str hashing
        is randomized per interpreter launch, and a hash()-salted fork
        gave every process (and every spawn-context shard worker) its
        own hostmem-jitter stream -- run-to-run timestamps drifted."""
        import subprocess
        import sys

        script = ("from repro.sim.rng import SeededRng; "
                  "print(SeededRng(3).fork('hostmem').seed, "
                  "SeededRng(3).fork('hostmem').randint(0, 10**9))")
        outs = {
            subprocess.run(
                [sys.executable, "-c", script],
                env={"PYTHONPATH": "src", "PYTHONHASHSEED": seed},
                capture_output=True, text=True, check=True,
            ).stdout
            for seed in ("0", "1", "31337")
        }
        assert len(outs) == 1

    def test_fork_streams_are_independent(self):
        rng = SeededRng(7)
        assert rng.fork("a").seed != rng.fork("b").seed
        assert rng.fork("a").seed == rng.fork("a").seed
