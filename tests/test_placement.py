"""Tests for the engine-placement optimizer (the section 6 extension)."""

import pytest

from repro.core import PanicConfig, PanicNic
from repro.noc.placement import (
    annealed_placement,
    expected_hops,
    greedy_placement,
    manhattan,
    reference_traffic,
)
from repro.sim import Simulator


class TestObjective:
    def test_manhattan(self):
        assert manhattan((0, 0), (3, 4)) == 7
        assert manhattan((2, 2), (2, 2)) == 0

    def test_expected_hops_weighted(self):
        placement = {"a": (0, 0), "b": (3, 0), "c": (0, 1)}
        traffic = {("a", "b"): 1.0, ("a", "c"): 3.0}
        # (1*3 + 3*1) / 4 = 1.5
        assert expected_hops(placement, traffic) == 1.5

    def test_expected_hops_empty_traffic(self):
        assert expected_hops({"a": (0, 0)}, {}) == 0.0

    def test_unplaced_engine_rejected(self):
        with pytest.raises(KeyError):
            expected_hops({"a": (0, 0)}, {("a", "ghost"): 1.0})

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            expected_hops({"a": (0, 0), "b": (1, 0)}, {("a", "b"): -1.0})


class TestGreedy:
    def test_places_everything_uniquely(self):
        engines = [f"e{i}" for i in range(9)]
        traffic = {(f"e{i}", f"e{i+1}"): 1.0 for i in range(8)}
        placement = greedy_placement(engines, traffic, 3, 3)
        assert set(placement) == set(engines)
        assert len(set(placement.values())) == 9

    def test_heavy_pair_adjacent(self):
        engines = ["hot_a", "hot_b", "cold_c", "cold_d"]
        traffic = {("hot_a", "hot_b"): 100.0, ("cold_c", "cold_d"): 0.01}
        placement = greedy_placement(engines, traffic, 4, 4)
        assert manhattan(placement["hot_a"], placement["hot_b"]) == 1

    def test_fixed_placements_honoured(self):
        engines = ["eth0", "rmt", "dma"]
        fixed = {"eth0": (0, 0), "dma": (3, 0)}
        traffic = {("eth0", "rmt"): 1.0, ("rmt", "dma"): 1.0}
        placement = greedy_placement(engines, traffic, 4, 4, fixed=fixed)
        assert placement["eth0"] == (0, 0)
        assert placement["dma"] == (3, 0)
        # rmt lands between its two fixed peers.
        assert expected_hops(placement, traffic) <= 2.0

    def test_overfull_rejected(self):
        with pytest.raises(ValueError):
            greedy_placement(["a", "b", "c"], {}, 1, 2)

    def test_colliding_fixed_rejected(self):
        with pytest.raises(ValueError):
            greedy_placement(["a", "b"], {}, 2, 2,
                             fixed={"a": (0, 0), "b": (0, 0)})

    def test_fixed_outside_mesh_rejected(self):
        with pytest.raises(ValueError):
            greedy_placement(["a"], {}, 2, 2, fixed={"a": (5, 5)})


class TestAnnealing:
    def _setup(self):
        engines = [f"e{i}" for i in range(12)]
        traffic = {}
        # A ring of heavy neighbours plus random light pairs.
        for i in range(12):
            traffic[(f"e{i}", f"e{(i + 1) % 12}")] = 10.0
        traffic[("e0", "e6")] = 1.0
        return engines, traffic

    def test_at_least_as_good_as_greedy(self):
        engines, traffic = self._setup()
        greedy = greedy_placement(engines, traffic, 4, 4)
        annealed = annealed_placement(engines, traffic, 4, 4, seed=1,
                                      iterations=2000)
        assert (expected_hops(annealed, traffic)
                <= expected_hops(greedy, traffic) + 1e-9)

    def test_deterministic_for_seed(self):
        engines, traffic = self._setup()
        a = annealed_placement(engines, traffic, 4, 4, seed=7, iterations=500)
        b = annealed_placement(engines, traffic, 4, 4, seed=7, iterations=500)
        assert a == b

    def test_fixed_tiles_never_move(self):
        engines, traffic = self._setup()
        fixed = {"e0": (0, 0), "e1": (3, 3)}
        placement = annealed_placement(engines, traffic, 4, 4, fixed=fixed,
                                       seed=3, iterations=500)
        assert placement["e0"] == (0, 0)
        assert placement["e1"] == (3, 3)


class TestReferenceTraffic:
    def test_covers_reference_engines(self):
        traffic = reference_traffic(["kvcache", "ipsec"], ports=2)
        names = {n for pair in traffic for n in pair}
        assert names >= {"eth0", "eth1", "rmt", "dma", "pcie",
                         "kvcache", "ipsec"}

    def test_weights_positive(self):
        traffic = reference_traffic(["kvcache"], cache_hit_rate=0.3)
        assert all(w >= 0 for w in traffic.values())


class TestNicPlacementOverride:
    def test_override_moves_engine(self, sim):
        config = PanicConfig(ports=1, placement={"kvcache": (2, 3)})
        nic = PanicNic(sim, config)
        assert nic.mesh.coords_of(nic.offload("kvcache").address) == (2, 3)

    def test_optimized_placement_builds_working_nic(self):
        from repro.packet import KvOpcode, KvRequest, build_kv_request_frame

        offloads = ("ipsec", "compression", "kvcache", "rdma")
        engines = ["eth0", "rmt", "dma", "pcie", *offloads]
        fixed = {"eth0": (0, 0), "dma": (3, 0), "pcie": (3, 1)}
        placement = annealed_placement(
            engines, reference_traffic(offloads), 4, 4,
            fixed=fixed, seed=5, iterations=1000,
        )
        sim = Simulator()
        nic = PanicNic(sim, PanicConfig(ports=1, offloads=offloads,
                                        placement=placement))
        nic.control.enable_kv_cache()
        nic.offload("kvcache").cache_put(b"k", b"v")
        nic.inject(build_kv_request_frame(KvRequest(KvOpcode.GET, 1, 1, b"k")))
        sim.run()
        assert len(nic.transmitted) == 1
