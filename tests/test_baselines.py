"""Tests for the three baseline NIC architectures (Figure 2)."""

import pytest

from repro.baselines import (
    ManycoreNic,
    PipelineNic,
    RmtNic,
    UnsupportedOffloadError,
)
from repro.core.host import Host
from repro.core.pipeline_programs import DIR_RX
from repro.engines import ChecksumEngine, CompressionEngine, IpsecEngine, RegexEngine
from repro.packet import Packet, build_udp_frame
from repro.rmt import MatchKey, RmtProgram
from repro.sim import Simulator
from repro.sim.clock import US


def plain_udp(payload=b"data", src_port=7777):
    return Packet(
        build_udp_frame(
            src_mac="02:00:00:00:00:01",
            dst_mac="02:00:00:00:00:02",
            src_ip="10.0.0.1",
            dst_ip="10.0.0.2",
            src_port=src_port,
            dst_port=8888,
            payload=payload,
        )
    )


def slow_fast_line(sim):
    """A two-stage line: slow DPI then cheap checksum."""
    dpi = RegexEngine(sim, "bl.dpi", patterns=[b"x"], cycles_per_byte=200.0)
    csum = ChecksumEngine(sim, "bl.csum")
    return [("regex", dpi), ("checksum", csum)]


class TestPipelineNic:
    def test_packet_traverses_all_stages(self, sim):
        nic = PipelineNic(sim, slow_fast_line(sim))
        received = []
        nic.host.software_handler = lambda p, q: received.append(p)
        packet = plain_udp()
        nic.inject(packet)
        sim.run()
        assert len(received) == 1
        assert nic.stages[0].passed_through.value == 1  # didn't need DPI
        assert nic.stages[1].passed_through.value == 1

    def test_needed_offload_applied(self, sim):
        nic = PipelineNic(sim, slow_fast_line(sim))
        packet = plain_udp()
        packet.meta.annotations["needs"] = ("checksum",)
        nic.inject(packet)
        sim.run()
        assert nic.stages[1].serviced.value == 1
        assert packet.meta.annotations["served"] == ("checksum",)

    def test_hol_blocking_without_bypass(self, sim):
        nic = PipelineNic(sim, slow_fast_line(sim))
        slow = plain_udp(payload=b"x" * 1400)
        slow.meta.annotations["needs"] = ("regex",)
        victim = plain_udp()
        done = []
        nic.host.software_handler = lambda p, q: done.append((p, sim.now))
        nic.inject(slow)
        nic.inject(victim)
        sim.run()
        victim_time = next(t for p, t in done if p is victim)
        # The victim waited behind the slow DPI packet.
        assert victim_time > 500 * US

    def test_bypass_avoids_hol_blocking(self, sim):
        nic = PipelineNic(sim, slow_fast_line(sim), bypass_enabled=True)
        slow = plain_udp(payload=b"x" * 1400)
        slow.meta.annotations["needs"] = ("regex",)
        victim = plain_udp()
        done = []
        nic.host.software_handler = lambda p, q: done.append((p, sim.now))
        nic.inject(slow)
        nic.inject(victim)
        sim.run()
        victim_time = next(t for p, t in done if p is victim)
        assert victim_time < 10 * US

    def test_wrong_order_forces_recirculation(self, sim):
        # Line order: regex then checksum; the packet needs checksum first.
        nic = PipelineNic(sim, slow_fast_line(sim))
        packet = plain_udp()
        packet.meta.annotations["needs"] = ("checksum", "regex")
        nic.inject(packet)
        sim.run()
        assert nic.recirculations.value == 1
        assert packet.meta.annotations["served"] == ("checksum", "regex")

    def test_in_order_chain_no_recirculation(self, sim):
        nic = PipelineNic(sim, slow_fast_line(sim))
        packet = plain_udp()
        packet.meta.annotations["needs"] = ("regex", "checksum")
        nic.inject(packet)
        sim.run()
        assert nic.recirculations.value == 0

    def test_recirculation_disabled_sends_unserved_to_host(self, sim):
        nic = PipelineNic(sim, slow_fast_line(sim), allow_recirculation=False)
        packet = plain_udp()
        packet.meta.annotations["needs"] = ("checksum", "regex")
        received = []
        nic.host.software_handler = lambda p, q: received.append(p)
        nic.inject(packet)
        sim.run()
        assert received == [packet]
        assert nic.recirculations.value == 0

    def test_tx_through_line(self, sim):
        nic = PipelineNic(sim, slow_fast_line(sim))
        nic.send_from_host(plain_udp().data)
        sim.run()
        assert len(nic.transmitted) == 1


class TestManycoreNic:
    def offloads(self, sim):
        return [("checksum", ChecksumEngine(sim, "mc.csum"))]

    def test_orchestration_latency_floor(self, sim):
        nic = ManycoreNic(sim, self.offloads(sim), orchestration_ps=10 * US)
        done = []
        nic.host.software_handler = lambda p, q: done.append((p, sim.now))
        packet = plain_udp()
        nic.inject(packet)
        sim.run()
        # Every packet pays the ~10us core orchestration (section 2.3.2).
        assert done[0][1] >= 10 * US

    def test_offload_roundtrip_through_station(self, sim):
        nic = ManycoreNic(sim, self.offloads(sim))
        packet = plain_udp()
        packet.meta.annotations["needs"] = ("checksum",)
        nic.inject(packet)
        sim.run()
        assert nic.stations["checksum"].serviced.value == 1
        assert packet.meta.annotations["served"] == ("checksum",)

    def test_cores_limit_concurrency(self, sim):
        # 1 core, 3 packets: finishes spaced by >= orchestration time.
        nic = ManycoreNic(sim, [], cores=1, orchestration_ps=10 * US)
        for _ in range(3):
            nic.inject(plain_udp())
        sim.run()
        # Serialized on the single core: at least 3 x 10us of wall clock.
        assert sim.now >= 30 * US
        assert nic.core_latency.count == 3
        assert nic.core_latency.maximum >= 10 * US

    def test_more_cores_more_throughput(self):
        finish = {}
        for cores in (1, 8):
            sim = Simulator()
            nic = ManycoreNic(sim, [], cores=cores, orchestration_ps=10 * US)
            for _ in range(16):
                nic.inject(plain_udp())
            sim.run()
            finish[cores] = sim.now
        assert finish[8] < finish[1] / 3

    def test_round_robin_spray(self, sim):
        nic = ManycoreNic(sim, [], cores=4)
        packets = [plain_udp() for _ in range(8)]
        for packet in packets:
            nic.inject(packet)
        sim.run()
        cores_used = {p.meta.annotations["core"] for p in packets}
        assert cores_used == {0, 1, 2, 3}

    def test_tx_path(self, sim):
        nic = ManycoreNic(sim, [])
        nic.send_from_host(plain_udp().data)
        sim.run()
        assert len(nic.transmitted) == 1

    def test_core_count_validated(self, sim):
        with pytest.raises(ValueError):
            ManycoreNic(sim, [], cores=0)


class TestRmtNic:
    def build(self, sim, **kwargs):
        program = RmtProgram("flexnic")
        steer = program.add_table(
            "steer", [MatchKey("meta.direction")], requires="udp.src_port"
        )
        steer.add(
            [DIR_RX],
            "hash_select",
            {"fields": ["ipv4.src", "udp.src_port"], "ways": 4},
        )
        return RmtNic(sim, program, **kwargs)

    def test_steers_to_queues(self, sim):
        nic = self.build(sim)
        received = []
        nic.host.software_handler = lambda p, q: received.append((p, q))
        a = plain_udp(src_port=1000)
        b = plain_udp(src_port=1000)
        nic.inject(a)
        nic.inject(b)
        sim.run()
        assert len(received) == 2
        assert a.meta.annotations["rx_queue"] == b.meta.annotations["rx_queue"]

    def test_unsupported_offloads_raise(self, sim):
        nic = self.build(sim)
        for offload in ("ipsec", "compression", "kvcache", "rdma", "regex"):
            with pytest.raises(UnsupportedOffloadError):
                nic.attach_offload(offload)

    def test_header_level_function_accepted(self, sim):
        nic = self.build(sim)
        nic.attach_offload("steering")  # no exception

    def test_tx_with_unsupported_need_raises(self, sim):
        nic = self.build(sim)
        with pytest.raises(UnsupportedOffloadError):
            nic.send_from_host(plain_udp().data, needs=("compression",))

    def test_line_rate_initiation(self, sim):
        nic = self.build(sim, pipelines=2)
        assert nic.throughput_pps == 1e9
        assert nic.initiation_interval_ps == 1000

    def test_drop_action_drops(self, sim):
        program = RmtProgram("dropper")
        table = program.add_table("acl", [MatchKey("udp.dst_port")])
        table.add([8888], "drop")
        nic = RmtNic(sim, program)
        received = []
        nic.host.software_handler = lambda p, q: received.append(p)
        nic.inject(plain_udp())
        sim.run()
        assert received == []
        assert nic.dropped.value == 1

    def test_tx_transmits(self, sim):
        nic = self.build(sim)
        nic.send_from_host(plain_udp().data)
        sim.run()
        assert len(nic.transmitted) == 1
