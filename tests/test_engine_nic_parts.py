"""Tests for the NIC-infrastructure engines: Ethernet MAC, RMT engine,
DMA, PCIe, RDMA -- plus the host model they talk to."""

import pytest

from repro.core.host import Host, HostKvServer
from repro.engines import (
    DmaEngine,
    EthernetPort,
    RdmaEngine,
    RmtPipelineEngine,
)
from repro.noc import Endpoint, Mesh, MeshConfig
from repro.packet import (
    KvOpcode,
    KvRequest,
    KvStatus,
    Packet,
    PanicHeader,
    build_kv_request_frame,
    build_udp_frame,
    parse_frame,
)
from repro.packet.packet import Direction, MessageKind
from repro.rmt import MatchKey, RmtProgram
from repro.sim import Simulator
from repro.sim.clock import MHZ, SEC, US


class Sink(Endpoint):
    def __init__(self, sim):
        self.sim = sim
        self.got = []

    def receive(self, message):
        self.got.append((message.packet, self.sim.now))


def frame_of(size=64):
    payload = b"\x00" * max(0, size - 42)
    return build_udp_frame(
        src_mac="02:00:00:00:00:01",
        dst_mac="02:00:00:00:00:02",
        src_ip="10.0.0.1",
        dst_ip="10.0.0.2",
        src_port=1,
        dst_port=2,
        payload=payload,
    )


class TestEthernetPort:
    def rig(self, sim, line_rate_bps=100e9):
        mesh = Mesh(sim, MeshConfig(width=2, height=1))
        sent = []
        port = EthernetPort(
            sim, "eth", line_rate_bps=line_rate_bps, on_transmit=sent.append
        )
        port.bind_port(mesh.bind(port, 0, 0))
        sink = Sink(sim)
        mesh.bind(sink, 1, 0)
        port.lookup_table.default_next = 1
        return mesh, port, sink, sent

    def test_rx_frame_forwarded_to_default(self, sim):
        mesh, port, sink, _ = self.rig(sim)
        port.inject_rx(Packet(frame_of()))
        sim.run()
        assert len(sink.got) == 1
        packet = sink.got[0][0]
        assert packet.meta.direction == Direction.RX
        assert packet.meta.ingress_port == 0
        assert packet.meta.nic_arrival_ps is not None

    def test_rx_wire_serializes_back_to_back(self, sim):
        mesh, port, _, _ = self.rig(sim, line_rate_bps=10e9)
        p1, p2 = Packet(frame_of()), Packet(frame_of())
        t1 = port.inject_rx(p1)
        t2 = port.inject_rx(p2)
        # 672 bits at 10 Gbps = 67.2 ns per minimal frame.
        assert t2 - t1 == p2.wire_bits * SEC // int(10e9)

    def test_terminal_transmits(self, sim):
        mesh, port, _, sent = self.rig(sim)
        packet = Packet(frame_of())
        packet.panic = PanicHeader(chain=[])
        port.lookup_table.default_next = None
        port._loopback(packet)
        sim.run()
        assert sent == [packet]
        assert packet.meta.direction == Direction.TX
        assert packet.meta.nic_departure_ps is not None

    def test_tx_counts_and_rates(self, sim):
        mesh, port, _, sent = self.rig(sim)
        port.lookup_table.default_next = None
        for _ in range(3):
            packet = Packet(frame_of())
            packet.panic = PanicHeader(chain=[])
            port._loopback(packet)
        sim.run()
        assert port.tx_frames.value == 3
        assert port.tx_rate_bps > 0

    def test_invalid_line_rate(self, sim):
        with pytest.raises(ValueError):
            EthernetPort(sim, "bad", line_rate_bps=0)


class TestRmtPipelineEngine:
    def build(self, sim, pipelines=1, stages=4):
        program = RmtProgram("p")
        for i in range(stages):
            program.add_table(f"t{i}", [MatchKey("udp.dst_port")])
        mesh = Mesh(sim, MeshConfig(width=2, height=1))
        outputs = []

        def handler(packet, phv):
            outputs.append((packet, phv, sim.now))
            return [(packet, 1)]

        engine = RmtPipelineEngine(
            sim, "rmt", program, pipelines=pipelines, decision_handler=handler
        )
        engine.bind_port(mesh.bind(engine, 0, 0))
        sink = Sink(sim)
        mesh.bind(sink, 1, 0)
        return engine, sink, outputs

    def test_throughput_is_f_times_p(self, sim):
        engine, _, _ = self.build(sim, pipelines=2)
        assert engine.throughput_pps == 2 * 500 * MHZ

    def test_latency_scales_with_stages(self, sim):
        short, _, _ = self.build(sim, stages=2)
        sim2 = Simulator()
        long, _, _ = self.build.__func__(self, sim2, stages=12)
        assert long.latency_ps > short.latency_ps

    def test_initiation_interval_with_parallel_pipelines(self, sim):
        engine, _, outputs = self.build(sim, pipelines=2)
        for _ in range(4):
            engine._loopback(Packet(frame_of()))
        sim.run()
        times = sorted(t for _p, _phv, t in outputs)
        gaps = [b - a for a, b in zip(times, times[1:])]
        # Two pipelines: admit every half cycle (1000 ps at 500 MHz).
        assert gaps == [1000, 1000, 1000]

    def test_pipelined_not_blocking(self, sim):
        # 100 packets through a 4-stage pipeline: *decisions* complete at
        # the initiation rate (one per cycle), not one per latency.
        engine, sink, outputs = self.build(sim)
        for _ in range(100):
            engine._loopback(Packet(frame_of()))
        sim.run()
        assert len(sink.got) == 100
        decision_times = sorted(t for _p, _phv, t in outputs)
        span = decision_times[-1] - decision_times[0]
        assert span == 99 * engine.clock.period_ps

    def test_decision_handler_required(self, sim):
        program = RmtProgram("p")
        engine = RmtPipelineEngine(sim, "rmt2", program)
        mesh = Mesh(sim, MeshConfig(width=1, height=1))
        engine.bind_port(mesh.bind(engine, 0, 0))
        engine._loopback(Packet(frame_of()))
        with pytest.raises(RuntimeError):
            sim.run()

    def test_parameter_validation(self, sim):
        program = RmtProgram("p")
        with pytest.raises(ValueError):
            RmtPipelineEngine(sim, "bad1", program, pipelines=0)
        with pytest.raises(ValueError):
            RmtPipelineEngine(sim, "bad2", program, chained_engines=0)


class TestHost:
    def test_memory_roundtrip(self, sim):
        host = Host(sim)
        host.store(b"k", b"v")
        assert host.memory_read(b"k") == b"v"
        host.memory_write(b"k2", b"v2")
        assert host.memory.get(b"k2") == b"v2"
        assert host.memory_read(b"missing") is None
        assert host.memory_read(None) is None

    def test_memory_latency_includes_contention(self, sim):
        host = Host(sim, mem_base_ps=100, mem_jitter_ps=0)
        assert host.memory_latency_ps() == 100
        host.contention_ps = 900
        assert host.memory_latency_ps() == 1000

    def test_memory_latency_jitter_bounded(self, sim):
        host = Host(sim, mem_base_ps=100, mem_jitter_ps=50)
        for _ in range(100):
            assert 100 <= host.memory_latency_ps() <= 150

    def test_rx_ring_and_interrupt_software_pass(self, sim):
        host = Host(sim, software_delay_ps=1000)
        seen = []
        host.software_handler = lambda packet, queue: seen.append((packet, queue))
        packet = Packet(frame_of())
        host.write_rx(packet, 2)
        assert host.rx_backlog == 1
        host.interrupt(1)
        sim.run()
        assert seen == [(packet, 2)]
        assert host.rx_backlog == 0

    def test_bad_queue_index_falls_back(self, sim):
        host = Host(sim, rx_queues=2)
        host.write_rx(Packet(b""), 99)
        assert len(host.rx_rings[0]) == 1

    def test_tx_ring_pop_order(self, sim):
        host = Host(sim)
        host.tx_rings[0].extend([b"a", b"b"])
        assert host.pop_tx(0) == b"a"
        assert host.pop_tx(0) == b"b"
        assert host.pop_tx(0) is None
        assert host.pop_tx(99) is None

    def test_kv_server_get_set_delete(self, sim):
        host = Host(sim, software_delay_ps=100)
        server = HostKvServer(host, per_request_ps=100)
        host.store(b"k", b"stored")

        def run_request(request):
            packet = build_kv_request_frame(request)
            host.write_rx(packet, 0)
            host.interrupt(1)
            sim.run()
            frame = host.pop_tx(0)
            assert frame is not None
            return parse_frame(frame).kv_response()

        get = run_request(KvRequest(KvOpcode.GET, 1, 1, b"k"))
        assert get.status == KvStatus.OK and get.value == b"stored"
        set_resp = run_request(KvRequest(KvOpcode.SET, 1, 2, b"k2", b"v2"))
        assert set_resp.status == KvStatus.OK
        assert host.memory[b"k2"] == b"v2"
        assert server.log == [b"v2"]
        delete = run_request(KvRequest(KvOpcode.DELETE, 1, 3, b"k"))
        assert delete.status == KvStatus.OK
        miss = run_request(KvRequest(KvOpcode.GET, 1, 4, b"k"))
        assert miss.status == KvStatus.NOT_FOUND


class TestDmaPcieRdma:
    """Integration of DMA + PCIe + RDMA engines over a tiny mesh."""

    def rig(self, sim, coalesce_count=2):
        mesh = Mesh(sim, MeshConfig(width=4, height=1))
        from repro.engines import PcieEngine

        dma = DmaEngine(sim, "dma")
        dma.bind_port(mesh.bind(dma, 0, 0))
        pcie = PcieEngine(sim, "pcie", coalesce_count=coalesce_count,
                          coalesce_timeout_ps=5 * US)
        pcie.bind_port(mesh.bind(pcie, 1, 0))
        rdma = RdmaEngine(sim, "rdma")
        rdma.bind_port(mesh.bind(rdma, 2, 0))
        sink = Sink(sim)
        mesh.bind(sink, 3, 0)
        host = Host(sim, mem_jitter_ps=0)
        dma.attach_host(host)
        pcie.attach_host(host)
        host.pcie = pcie
        dma.pcie_addr = pcie.address
        pcie.dma_addr = dma.address
        rdma.dma_addr = dma.address
        # Chain-less outputs (RDMA responses, fetched TX frames) land in
        # the sink, standing in for the RMT pipeline of a full NIC.
        rdma.lookup_table.default_next = sink.address
        dma.lookup_table.default_next = sink.address
        return mesh, dma, pcie, rdma, host, sink

    def test_rx_write_generates_completion_and_interrupt(self, sim):
        mesh, dma, pcie, _, host, _sink = self.rig(sim, coalesce_count=1)
        seen = []
        host.software_handler = lambda pkt, queue: seen.append((pkt, queue))
        packet = Packet(frame_of())
        packet.meta.direction = Direction.RX
        packet.meta.annotations["rx_queue"] = 1
        dma._loopback(packet)
        sim.run()
        assert host.rx_delivered.value == 1
        assert seen == [(packet, 1)]  # delivered on queue 1, then consumed
        assert pcie.completions.value == 1
        assert pcie.interrupts.value == 1
        assert host.interrupts_taken.value == 1

    def test_interrupt_coalescing_by_count(self, sim):
        mesh, dma, pcie, _, host, _sink = self.rig(sim, coalesce_count=2)
        for _ in range(4):
            packet = Packet(frame_of())
            packet.meta.direction = Direction.RX
            dma._loopback(packet)
        sim.run()
        assert pcie.completions.value == 4
        assert pcie.interrupts.value == 2  # 4 completions / 2 per interrupt

    def test_interrupt_coalescing_timeout_flushes(self, sim):
        mesh, dma, pcie, _, host, _sink = self.rig(sim, coalesce_count=100)
        packet = Packet(frame_of())
        packet.meta.direction = Direction.RX
        dma._loopback(packet)
        sim.run()
        assert pcie.interrupts.value == 1  # timeout fired, not the count

    def test_doorbell_fetches_tx_frames(self, sim):
        mesh, dma, pcie, _, host, sink = self.rig(sim)
        host.tx_rings[0].append(frame_of())
        host.tx_rings[0].append(frame_of())
        pcie.ring_doorbell(0)
        sim.run()
        assert dma.tx_fetches.value == 2
        assert len(sink.got) == 2
        assert all(p.meta.direction == Direction.TX for p, _t in sink.got)

    def test_dma_read_returns_data_to_requester(self, sim):
        mesh, dma, pcie, rdma, host, sink = self.rig(sim)
        host.store(b"key", b"stored-value")
        request = build_kv_request_frame(KvRequest(KvOpcode.GET, 1, 9, b"key"))
        request.meta.direction = Direction.RX
        rdma._loopback(request)
        sim.run()
        assert rdma.reads_issued.value == 1
        assert rdma.responses.value == 1
        assert rdma.pending_reads == 0
        # The response went to RDMA's default route (pcie tile); check
        # that a proper KV response was built.
        assert dma.reads.value == 1

    def test_dma_service_time_uses_host_latency(self, sim):
        mesh, dma, pcie, _, host, _sink = self.rig(sim)
        host.contention_ps = 1_000_000
        packet = Packet(frame_of())
        packet.meta.direction = Direction.RX
        base = dma.service_time_ps(packet)
        host.contention_ps = 0
        assert dma.service_time_ps(packet) < base

    def test_dma_requires_host(self, sim):
        dma = DmaEngine(sim, "lonely")
        with pytest.raises(RuntimeError):
            dma.service_time_ps(Packet(b""))
