"""Integration tests for the assembled PANIC NIC."""

import pytest

from repro.core import HostKvServer, PanicConfig, PanicNic
from repro.packet import (
    KvOpcode,
    KvRequest,
    KvStatus,
    Packet,
    build_kv_request_frame,
    build_udp_frame,
    parse_frame,
)
from repro.sim import Simulator
from repro.sim.clock import US


def plain_udp(dst_ip="10.0.0.2", payload=b"hello", dscp=0):
    return Packet(
        build_udp_frame(
            src_mac="02:00:00:00:00:01",
            dst_mac="02:00:00:00:00:02",
            src_ip="10.0.0.1",
            dst_ip=dst_ip,
            src_port=7777,
            dst_port=8888,
            payload=payload,
            dscp=dscp,
        )
    )


class TestConstruction:
    def test_engines_placed_and_wired(self, nic):
        assert set(nic.engines) >= {"eth0", "dma", "pcie", "rmt", "ipsec",
                                    "compression", "kvcache", "rdma"}
        for key, engine in nic.engines.items():
            assert engine.port is not None
            if key != "rmt":
                assert engine.lookup_table.default_next == nic.rmt.address

    def test_dma_pcie_cross_wired(self, nic):
        assert nic.dma.pcie_addr == nic.pcie.address
        assert nic.pcie.dma_addr == nic.dma.address
        assert nic.engines["rdma"].dma_addr == nic.dma.address
        assert nic.host.pcie is nic.pcie

    def test_config_rejects_overfull_mesh(self):
        with pytest.raises(ValueError):
            PanicConfig(ports=4, mesh_width=2, mesh_height=2)

    def test_config_rejects_unknown_offload(self):
        with pytest.raises(ValueError):
            PanicConfig(offloads=("warp_drive",))

    def test_offload_lookup(self, nic):
        assert nic.offload("ipsec") is nic.engines["ipsec"]
        with pytest.raises(KeyError):
            nic.offload("ghost")

    def test_two_port_nic(self, sim):
        nic = PanicNic(sim, PanicConfig(ports=2))
        assert len(nic.ports) == 2
        assert nic.ports[0].port_index == 0
        assert nic.ports[1].port_index == 1


class TestRxPath:
    def test_plain_packet_lands_in_host_ring(self, sim, nic):
        received = []
        nic.host.software_handler = lambda p, q: received.append((p, q))
        nic.inject(plain_udp())
        sim.run()
        assert len(received) == 1
        assert nic.host.rx_delivered.value == 1

    def test_rx_packet_traverses_rmt_then_dma(self, sim, nic):
        packet = plain_udp()
        nic.inject(packet)
        sim.run()
        assert "panic.rmt" in packet.trail
        assert "panic.dma" in packet.trail

    def test_rx_steering_is_flow_stable(self, sim, nic):
        packets = [plain_udp() for _ in range(4)]
        for packet in packets:
            nic.inject(packet)
        sim.run()
        queues = {p.meta.annotations.get("rx_queue") for p in packets}
        assert len(queues) == 1  # same flow -> same queue

    def test_inject_validates_port(self, nic):
        with pytest.raises(ValueError):
            nic.inject(plain_udp(), port=9)


class TestKvFastPath:
    def test_cache_hit_bypasses_cpu(self, sim, nic):
        nic.control.enable_kv_cache()
        nic.offload("kvcache").cache_put(b"hot", b"cached!")
        nic.inject(build_kv_request_frame(KvRequest(KvOpcode.GET, 1, 5, b"hot")))
        sim.run()
        assert len(nic.transmitted) == 1
        response = parse_frame(nic.transmitted[0].data).kv_response()
        assert response.value == b"cached!"
        # CPU bypass: the host never saw the request.
        assert nic.host.rx_delivered.value == 0
        assert nic.host.interrupts_taken.value == 0

    def test_cache_miss_served_by_host(self, sim, nic):
        HostKvServer(nic.host)
        nic.control.enable_kv_cache()
        nic.host.store(b"cold", b"from-host")
        nic.inject(build_kv_request_frame(KvRequest(KvOpcode.GET, 1, 6, b"cold")))
        sim.run()
        assert len(nic.transmitted) == 1
        response = parse_frame(nic.transmitted[0].data).kv_response()
        assert response.value == b"from-host"
        assert nic.host.rx_delivered.value == 1

    def test_get_not_found(self, sim, nic):
        HostKvServer(nic.host)
        nic.control.enable_kv_cache()
        nic.inject(build_kv_request_frame(KvRequest(KvOpcode.GET, 1, 7, b"nope")))
        sim.run()
        response = parse_frame(nic.transmitted[0].data).kv_response()
        assert response.status == KvStatus.NOT_FOUND

    def test_set_writes_through_hot_key(self, sim, nic):
        HostKvServer(nic.host)
        nic.control.enable_kv_cache()
        cache = nic.offload("kvcache")
        cache.cache_put(b"hot", b"old")
        nic.inject(
            build_kv_request_frame(KvRequest(KvOpcode.SET, 1, 8, b"hot", b"new"))
        )
        sim.run()
        assert cache.cache_get(b"hot") == b"new"
        assert nic.host.memory[b"hot"] == b"new"  # host got it too
        response = parse_frame(nic.transmitted[0].data).kv_response()
        assert response.status == KvStatus.OK

    def test_rdma_fast_path_reads_host_memory(self, sim, nic):
        from repro.packet.kv import KvOpcode as Op

        nic.control.route_kv_opcode(Op.GET, ["rdma"], append_dma=False)
        nic.host.store(b"mem-key", b"dma-read-value")
        nic.inject(build_kv_request_frame(KvRequest(Op.GET, 2, 9, b"mem-key")))
        sim.run()
        assert len(nic.transmitted) == 1
        response = parse_frame(nic.transmitted[0].data).kv_response()
        assert response.value == b"dma-read-value"
        # RDMA path: DMA read happened, but no interrupt-driven software.
        assert nic.host.mem_reads.value >= 1
        assert nic.host.interrupts_taken.value == 0


class TestIpsecPath:
    def test_encrypted_request_decrypted_then_served(self, sim, nic):
        nic.control.enable_kv_cache()
        nic.control.enable_ipsec_rx()
        ipsec = nic.offload("ipsec")
        from repro.engines import IpsecSa

        ipsec.install_sa(
            IpsecSa(spi=0x77, key=b"wan", tunnel_src="8.8.8.8",
                    tunnel_dst="9.9.9.9")
        )
        nic.offload("kvcache").cache_put(b"wan-key", b"wan-value")
        request = build_kv_request_frame(KvRequest(KvOpcode.GET, 3, 11, b"wan-key"))
        encrypted = ipsec.encrypt(request, 0x77)
        nic.inject(encrypted)
        sim.run()
        assert ipsec.decrypted.value == 1
        response = parse_frame(nic.transmitted[0].data).kv_response()
        assert response.value == b"wan-value"
        # Two heavyweight passes: encrypted, then decrypted (section 3.1.2),
        # plus one for the response.
        assert nic.rmt.processed.value == 3

    def test_tx_encryption_for_wan_subnet(self, sim, nic):
        from repro.engines import IpsecSa

        nic.control.enable_kv_cache()
        ipsec = nic.offload("ipsec")
        ipsec.install_sa(
            IpsecSa(spi=0x88, key=b"tx", tunnel_src="1.2.3.4",
                    tunnel_dst="5.6.7.8")
        )
        # Responses to 10.77/16 clients must leave encrypted.
        nic.control.encrypt_subnet(0x0A4D0000, 16, spi=0x88)
        nic.offload("kvcache").cache_put(b"k", b"v")
        request = build_kv_request_frame(
            KvRequest(KvOpcode.GET, 4, 12, b"k"), src_ip="10.77.0.9"
        )
        nic.inject(request)
        sim.run()
        assert ipsec.encrypted.value == 1
        out = parse_frame(nic.transmitted[0].data)
        assert out.esp is not None  # left the NIC as ESP


class TestSlackProgramming:
    def test_tenant_slack_stamped_on_chain_header(self, sim, nic):
        nic.control.enable_kv_cache()
        nic.control.set_tenant_slack(5, 123 * US)
        packet = build_kv_request_frame(KvRequest(KvOpcode.GET, 5, 13, b"x"))
        nic.inject(packet)
        sim.run()
        assert packet.panic is not None
        # Deadline = pipeline-exit time + slack; bounded by injection+slack.
        assert packet.panic.slack_ps >= 123 * US

    def test_dscp_slack_for_non_kv(self, sim, nic):
        nic.control.set_dscp_slack(7, 55 * US)
        packet = plain_udp(dscp=7)
        nic.inject(packet)
        sim.run()
        assert packet.panic is not None
        assert packet.panic.slack_ps >= 55 * US


class TestStats:
    def test_stats_shape(self, sim, nic):
        nic.inject(plain_udp())
        sim.run()
        stats = nic.stats()
        assert stats["rmt"]["processed"] == 1
        assert stats["host"]["rx_delivered"] == 1
        assert "nic" in stats

    def test_transmit_callback(self, sim, nic):
        seen = []
        nic.on_transmit(seen.append)
        nic.control.enable_kv_cache()
        nic.offload("kvcache").cache_put(b"k", b"v")
        nic.inject(build_kv_request_frame(KvRequest(KvOpcode.GET, 1, 14, b"k")))
        sim.run()
        assert len(seen) == 1
