"""Property-based tests on the RMT substrate: table semantics against
brute-force reference implementations, and parser totality."""

from hypothesis import given, settings, strategies as st

from repro.packet import build_udp_frame
from repro.rmt import MatchKey, MatchKind, Phv, Table, default_parse_graph


# ----------------------------------------------------------------------
# Ternary matching == reference implementation
# ----------------------------------------------------------------------


@given(
    st.lists(
        st.tuples(st.integers(0, 255), st.integers(0, 255),
                  st.integers(0, 100)),
        min_size=1, max_size=20,
    ),
    st.integers(0, 255),
)
@settings(max_examples=200, deadline=None)
def test_ternary_table_matches_reference(entries, probe):
    table = Table("t", [MatchKey("f", MatchKind.TERNARY)])
    for i, (value, mask, priority) in enumerate(entries):
        table.add([(value, mask)], f"a{i}", priority=priority)
    action, _params, hit = table.lookup(Phv({"f": probe}))

    # Reference: highest priority wins; stable (insertion) order ties.
    best = None
    for i, (value, mask, priority) in enumerate(entries):
        if (probe & mask) == (value & mask):
            if best is None or priority > best[0]:
                best = (priority, i)
    if best is None:
        assert not hit
    else:
        assert hit
        assert action == f"a{best[1]}"


@given(
    st.lists(
        st.tuples(st.integers(0, 2**32 - 1), st.integers(0, 32)),
        min_size=1, max_size=16, unique=True,
    ),
    st.integers(0, 2**32 - 1),
)
@settings(max_examples=200, deadline=None)
def test_lpm_longest_prefix_reference(prefixes, probe):
    table = Table("lpm", [MatchKey("ip", MatchKind.LPM)])
    for i, (prefix, length) in enumerate(prefixes):
        table.add([(prefix, length)], f"a{i}", priority=length)
    action, _params, hit = table.lookup(Phv({"ip": probe}))

    def matches(prefix, length):
        if length == 0:
            return True
        mask = ((1 << length) - 1) << (32 - length)
        return (probe & mask) == (prefix & mask)

    best = None
    for i, (prefix, length) in enumerate(prefixes):
        if matches(prefix, length):
            if best is None or length > best[0]:
                best = (length, i)
    if best is None:
        assert not hit
    else:
        assert hit
        assert action == f"a{best[1]}"


@given(
    st.lists(
        st.tuples(st.integers(0, 65535), st.integers(0, 65535),
                  st.integers(0, 50)),
        min_size=1, max_size=16,
    ),
    st.integers(0, 65535),
)
@settings(max_examples=150, deadline=None)
def test_range_table_matches_reference(raw_entries, probe):
    entries = [(min(a, b), max(a, b), p) for a, b, p in raw_entries]
    table = Table("r", [MatchKey("port", MatchKind.RANGE)])
    for i, (low, high, priority) in enumerate(entries):
        table.add([(low, high)], f"a{i}", priority=priority)
    action, _params, hit = table.lookup(Phv({"port": probe}))
    best = None
    for i, (low, high, priority) in enumerate(entries):
        if low <= probe <= high:
            if best is None or priority > best[0]:
                best = (priority, i)
    if best is None:
        assert not hit
    else:
        assert hit and action == f"a{best[1]}"


# ----------------------------------------------------------------------
# Parser totality: never raises, always terminates
# ----------------------------------------------------------------------


@given(st.binary(max_size=200))
@settings(max_examples=300, deadline=None)
def test_parser_total_on_arbitrary_bytes(data):
    phv = default_parse_graph().parse(data)
    # Either a clean parse or an explicit parse_error marker -- never an
    # exception, and meta.payload always set.
    assert phv.is_valid("meta.payload") or phv.get_or("meta.parse_error", 0)


@given(
    st.integers(1, 65535),
    st.integers(1, 65535),
    st.binary(max_size=100),
    st.integers(0, 63),
    st.integers(0, 3),
)
@settings(max_examples=200, deadline=None)
def test_parser_faithful_on_valid_udp(sport, dport, payload, dscp, ecn):
    frame = build_udp_frame(
        src_mac="02:00:00:00:00:01", dst_mac="02:00:00:00:00:02",
        src_ip="10.1.2.3", dst_ip="10.4.5.6",
        src_port=sport, dst_port=dport, payload=payload,
        dscp=dscp, ecn=ecn,
    )
    phv = default_parse_graph().parse(frame)
    assert phv.get("udp.src_port") == sport
    assert phv.get("udp.dst_port") == dport
    assert phv.get("ipv4.dscp") == dscp
    assert phv.get("ipv4.ecn") == ecn
    if dport != 11211 and sport != 11211:
        assert phv.get("meta.payload") == payload
