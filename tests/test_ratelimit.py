"""Tests for the SENIC-style rate-limiter engine."""

import pytest

from repro.core import PanicConfig, PanicNic
from repro.engines import RateLimiterEngine, TokenBucket
from repro.noc import Endpoint, Mesh, MeshConfig
from repro.packet import Packet, PanicHeader, build_udp_frame
from repro.sim import Simulator
from repro.sim.clock import SEC, US


class Sink(Endpoint):
    def __init__(self, sim):
        self.sim = sim
        self.got = []

    def receive(self, message):
        self.got.append((message.packet, self.sim.now))


class TestTokenBucket:
    def test_starts_full(self):
        bucket = TokenBucket(rate_bps=8e9, burst_bytes=1000)
        assert bucket.try_consume(1000, 0)
        assert not bucket.try_consume(1, 0)

    def test_refills_at_rate(self):
        bucket = TokenBucket(rate_bps=8e9, burst_bytes=1000)  # 1 B/ns
        bucket.try_consume(1000, 0)
        assert not bucket.try_consume(500, 100_000)  # 100ns -> 100B
        assert bucket.try_consume(500, 500_000)      # 500ns -> 500B

    def test_never_exceeds_burst(self):
        bucket = TokenBucket(rate_bps=8e9, burst_bytes=100)
        bucket.refill(10 * SEC)
        assert bucket.tokens == 100

    def test_eligible_at(self):
        bucket = TokenBucket(rate_bps=8e9, burst_bytes=1000)
        bucket.try_consume(1000, 0)
        at = bucket.eligible_at(100, 0)
        assert 100_000 <= at <= 101_000  # ~100 ns for 100 B at 1 B/ns

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate_bps=0, burst_bytes=10)
        with pytest.raises(ValueError):
            TokenBucket(rate_bps=1e9, burst_bytes=0)


class TestRateLimiterEngine:
    def rig(self, sim):
        mesh = Mesh(sim, MeshConfig(width=2, height=1))
        limiter = RateLimiterEngine(sim, "rl")
        limiter.bind_port(mesh.bind(limiter, 0, 0))
        sink = Sink(sim)
        mesh.bind(sink, 1, 0)
        return limiter, sink

    def packet(self, tenant, size=250):
        packet = Packet(bytes(size))
        packet.meta.tenant = tenant
        packet.panic = PanicHeader(chain=[1])
        return packet

    def test_unshaped_tenant_passes(self, sim):
        limiter, sink = self.rig(sim)
        limiter._loopback(self.packet(tenant=9))
        sim.run()
        assert len(sink.got) == 1
        assert limiter.passed.value == 1

    def test_burst_passes_then_paces(self, sim):
        limiter, sink = self.rig(sim)
        limiter.set_rate(1, rate_bps=1e9, burst_bytes=500)  # 2 pkts of 250B
        for _ in range(6):
            limiter._loopback(self.packet(tenant=1))
        sim.run()
        assert len(sink.got) == 6  # paced, never dropped
        times = [t for _p, t in sink.got]
        gaps = [b - a for a, b in zip(times, times[1:])]
        # 250 B at 1 Gbps = 2 us per packet once the burst is spent.
        paced_gaps = gaps[2:]
        for gap in paced_gaps:
            assert gap >= 1.9 * US

    def test_rate_is_enforced_long_run(self, sim):
        limiter, sink = self.rig(sim)
        limiter.set_rate(1, rate_bps=2e9, burst_bytes=250)
        n = 20
        for _ in range(n):
            limiter._loopback(self.packet(tenant=1))
        sim.run()
        elapsed = sink.got[-1][1] - sink.got[0][1]
        achieved_bps = (n - 1) * 250 * 8 * SEC / elapsed
        assert achieved_bps <= 2.1e9

    def test_tenants_isolated(self, sim):
        limiter, sink = self.rig(sim)
        limiter.set_rate(1, rate_bps=1e8, burst_bytes=250)  # slow tenant
        for _ in range(3):
            limiter._loopback(self.packet(tenant=1))
        limiter._loopback(self.packet(tenant=2))  # unshaped
        sim.run(until_ps=10 * US)
        tenants_done = [p.meta.tenant for p, _t in sink.got]
        assert 2 in tenants_done  # tenant 2 was not stuck behind tenant 1

    def test_clear_rate(self, sim):
        limiter, sink = self.rig(sim)
        limiter.set_rate(1, rate_bps=1.0, burst_bytes=1)
        limiter.clear_rate(1)
        limiter._loopback(self.packet(tenant=1))
        sim.run()
        assert len(sink.got) == 1


class TestRateLimiterOnNic:
    def test_tx_pacing_in_panic(self, sim):
        nic = PanicNic(sim, PanicConfig(ports=1, offloads=("ratelimit",)))
        limiter = nic.offload("ratelimit")
        limiter.set_rate(5, rate_bps=1e9, burst_bytes=600)
        nic.control.route_dscp(5, ["ratelimit"])

        def frame(i):
            data = build_udp_frame(
                src_mac="02:00:00:00:00:01", dst_mac="02:00:00:00:00:02",
                src_ip="10.0.0.5", dst_ip="10.0.0.2",
                src_port=1, dst_port=2, payload=bytes(500),
                dscp=5, identification=i,
            )
            packet = Packet(data)
            packet.meta.tenant = 5
            return packet

        arrivals = []
        nic.host.software_handler = lambda p, q: arrivals.append(sim.now)
        for i in range(5):
            nic.inject(frame(i))
        sim.run()
        assert len(arrivals) == 5
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        # ~542 B frames at 1 Gbps ~= 4.3 us each once the burst is spent.
        assert max(gaps) >= 4 * US
