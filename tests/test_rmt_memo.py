"""The RMT flow memo must be invisible in simulated results.

``PanicConfig.rmt_memo`` enables the flow-keyed trajectory memo
(:class:`repro.rmt.pipeline.TrajectoryMemo`): repeat flows skip the
match machinery while every action is re-executed on the live PHV.  The
contract matches ``fast_path``: every simulated observable -- delivery
tuples, picosecond timestamps, the full ``stats()`` tree, and table hit
counters -- is bit-identical with the memo on or off.  The scenarios
here stress the cases where a naive result cache would diverge:
control-plane reprogramming mid-run, time-dependent slack deadlines,
stateful (register-touching and closure-state) policies, and failover
remaps rewriting entry params in place.
"""

import pytest

from repro.core import PanicConfig, PanicNic
from repro.faults import FaultInjector, FaultPlan, attach_health_monitor
from repro.packet import Packet, build_udp_frame
from repro.rmt.pipeline import RmtPipeline, TrajectoryMemo
from repro.rmt.table import MatchKey
from repro.sim import Simulator
from repro.sim.clock import NS, US


def _udp_packet(payload, seq, dscp, src_port=7777):
    frame = build_udp_frame(
        src_mac="02:00:00:00:00:01",
        dst_mac="02:00:00:00:00:02",
        src_ip="10.0.0.1",
        dst_ip="10.0.0.2",
        src_port=src_port,
        dst_port=8888,
        payload=payload,
        dscp=dscp,
        identification=seq & 0xFFFF,
    )
    packet = Packet(frame)
    packet.meta.annotations["seq"] = seq
    return packet


def _watch_deliveries(sim, nic):
    deliveries = []

    def handler(packet, _queue):
        deliveries.append((packet.meta.annotations.get("seq"), sim.now))

    nic.host.software_handler = handler
    return deliveries


def _table_hits(nic):
    """Every entry's hit counter, keyed by (table, patterns)."""
    out = {}
    for stage in nic.control.program.stages:
        for entry in stage.table.entries():
            out[(stage.table.name, entry.patterns)] = entry.hits
    return out


def run_steady_flows(rmt_memo):
    """Two flows, chained offloads, per-class slack -- the common case
    the memo exists to accelerate."""
    sim = Simulator()
    nic = PanicNic(sim, PanicConfig(
        ports=1, offloads=("checksum", "compression"), rmt_memo=rmt_memo,
    ))
    nic.control.route_dscp(5, ["checksum"])
    nic.control.route_dscp(6, ["compression"])
    nic.control.set_dscp_slack(5, 50 * US)
    nic.control.set_dscp_slack(6, 400 * US)
    deliveries = _watch_deliveries(sim, nic)
    for i in range(120):
        sim.schedule_at(i * 300_000, nic.inject,
                        _udp_packet(bytes(100), seq=i, dscp=5 + (i % 2)))
    sim.run()
    return deliveries, sim.now, nic.stats(), _table_hits(nic)


def run_control_plane_churn(rmt_memo):
    """Reprogram tables mid-run: the memo must forget stale trajectories
    the instant an entry is added or removed."""
    sim = Simulator()
    nic = PanicNic(sim, PanicConfig(
        ports=1, offloads=("checksum", "compression"), rmt_memo=rmt_memo,
    ))
    nic.control.route_dscp(5, ["checksum"])
    deliveries = _watch_deliveries(sim, nic)

    def reroute():
        # Flow 5 now takes the compression lane instead.
        nic.control.program.table("dscp_route").remove([b"rx", 5])
        nic.control.route_dscp(5, ["compression"])

    def add_slack():
        nic.control.set_dscp_slack(5, 30 * US)

    sim.schedule_at(20 * US, reroute)
    sim.schedule_at(40 * US, add_slack)
    for i in range(150):
        sim.schedule_at(i * 400_000, nic.inject,
                        _udp_packet(bytes(80), seq=i, dscp=5))
    sim.run()
    return deliveries, sim.now, nic.stats(), _table_hits(nic)


def run_wfq_policy(rmt_memo):
    """Closure-state slack policy: replay must re-execute it, packet by
    packet, or virtual finish times drift."""
    sim = Simulator()
    nic = PanicNic(sim, PanicConfig(
        ports=1, offloads=("checksum",), rmt_memo=rmt_memo,
    ))
    nic.control.enable_wfq({1: 3.0, 2: 1.0}, cost_ps=4 * US)
    deliveries = _watch_deliveries(sim, nic)
    for i in range(100):
        packet = _udp_packet(bytes(60), seq=i, dscp=0)
        packet.meta.tenant = 1 + (i % 2)
        sim.schedule_at(i * 250_000, nic.inject, packet)
    sim.run()
    return deliveries, sim.now, nic.stats(), _table_hits(nic)


def run_failover_remap(rmt_memo):
    """Crash + failover rewrites chain params in place (remap_engine):
    replayed entries must serve the remapped chain."""
    sim = Simulator()
    nic = PanicNic(sim, PanicConfig(
        ports=1, offloads=("ipsec", "ipsec1"), seed=3, rmt_memo=rmt_memo,
    ))
    nic.set_backup("ipsec", "ipsec1")
    nic.control.route_dscp(10, ["ipsec"])
    monitor = attach_health_monitor(nic, period_ps=2 * US, timeout_ps=4 * US)
    monitor.start()
    FaultInjector(nic, FaultPlan(seed=3).crash_engine(30 * US, "ipsec")).arm()
    deliveries = _watch_deliveries(sim, nic)

    def inject(i=0):
        if i >= 150:
            return
        nic.inject(_udp_packet(bytes(120), seq=i, dscp=10))
        sim.schedule(200 * NS, inject, i + 1)

    inject()
    sim.run(until_ps=120 * US)
    monitor.stop()
    sim.run()
    return deliveries, sim.now, nic.stats(), _table_hits(nic)


SCENARIOS = {
    "steady_flows": run_steady_flows,
    "control_plane_churn": run_control_plane_churn,
    "wfq_policy": run_wfq_policy,
    "failover_remap": run_failover_remap,
}


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_memo_is_bit_identical(scenario):
    run = SCENARIOS[scenario]
    on_deliveries, on_now, on_stats, on_hits = run(rmt_memo=True)
    off_deliveries, off_now, off_stats, off_hits = run(rmt_memo=False)
    assert on_deliveries == off_deliveries
    assert len(on_deliveries) > 0
    assert on_now == off_now
    assert on_stats == off_stats
    # Direct table counters agree entry by entry.
    assert on_hits == off_hits


def test_memo_actually_hits():
    """The memo must do real work on steady flows (else it is dead code)."""
    sim = Simulator()
    nic = PanicNic(sim, PanicConfig(ports=1, offloads=("checksum",)))
    nic.control.route_dscp(5, ["checksum"])
    for i in range(60):
        sim.schedule_at(i * 300_000, nic.inject,
                        _udp_packet(bytes(90), seq=i, dscp=5))
    sim.run()
    memo = nic.rmt.pipeline.memo
    assert memo is not None
    assert memo.hits > memo.misses
    assert memo.hits + memo.misses > 0


def test_memo_invalidates_on_table_mutation():
    sim = Simulator()
    nic = PanicNic(sim, PanicConfig(ports=1, offloads=("checksum",)))
    nic.control.route_dscp(5, ["checksum"])
    for i in range(10):
        sim.schedule_at(i * 300_000, nic.inject,
                        _udp_packet(bytes(90), seq=i, dscp=5))
    sim.run()
    memo = nic.rmt.pipeline.memo
    before = memo.invalidations
    nic.control.set_dscp_slack(5, 10 * US)
    assert memo.invalidations == before + 1


def test_memo_invalidates_on_register_write():
    from repro.rmt.pipeline import RmtProgram

    program = RmtProgram("p")
    register = program.add_register("seq", 1)
    program.add_table("t", [MatchKey("meta.direction")])
    program.table("t").add([b"rx"], "set_queue", {"queue": 1})
    pipeline = RmtPipeline(program, memo=True)
    frame = build_udp_frame(
        src_mac="02:00:00:00:00:01", dst_mac="02:00:00:00:00:02",
        src_ip="10.0.0.1", dst_ip="10.0.0.2", src_port=1, dst_port=2,
        payload=bytes(20),
    )
    for _ in range(3):
        pipeline.process(frame, metadata={"direction": b"rx"})
    assert pipeline.memo.hits == 2
    before = pipeline.memo.invalidations
    register.write(0, 7)
    assert pipeline.memo.invalidations == before + 1
    # Next packet re-records rather than replaying a stale trajectory.
    pipeline.process(frame, metadata={"direction": b"rx"})
    assert pipeline.memo.misses == 2


def test_register_writing_flows_never_cached():
    """count/load_balance write registers every packet; such flows must
    fall back to full traversals (the write dirties the recording)."""
    from repro.rmt.pipeline import RmtProgram

    program = RmtProgram("p")
    program.add_register("ctr", 1)
    program.add_table("t", [MatchKey("meta.direction")])
    program.table("t").add([b"rx"], "count", {"register": "ctr"})
    pipeline = RmtPipeline(program, memo=True)
    frame = build_udp_frame(
        src_mac="02:00:00:00:00:01", dst_mac="02:00:00:00:00:02",
        src_ip="10.0.0.1", dst_ip="10.0.0.2", src_port=1, dst_port=2,
        payload=bytes(20),
    )
    for _ in range(5):
        pipeline.process(frame, metadata={"direction": b"rx"})
    assert pipeline.memo.hits == 0
    assert program.registers["ctr"].read(0) == 5


def test_memo_capacity_is_bounded():
    from repro.rmt.pipeline import RmtProgram

    program = RmtProgram("p")
    program.add_table("t", [MatchKey("udp.src_port")])
    pipeline = RmtPipeline(program, memo=True)
    pipeline.memo.max_entries = 8
    for port in range(1, 40):
        frame = build_udp_frame(
            src_mac="02:00:00:00:00:01", dst_mac="02:00:00:00:00:02",
            src_ip="10.0.0.1", dst_ip="10.0.0.2",
            src_port=port, dst_port=2, payload=bytes(20),
        )
        pipeline.process(frame)
    assert len(pipeline.memo._cache) <= 8
