"""Robustness / failure-injection tests: malformed and hostile input
must degrade gracefully, never wedge the NIC."""

import pytest

from repro.core import PanicConfig, PanicNic
from repro.engines import IpsecSa
from repro.packet import (
    ETHERTYPE_PANIC,
    Packet,
    build_eth_frame,
    build_kv_request_frame,
    build_udp_frame,
    KvOpcode,
    KvRequest,
)
from repro.sim import Simulator


def good_frame(payload=b"ok", dscp=0):
    return build_udp_frame(
        src_mac="02:00:00:00:00:01", dst_mac="02:00:00:00:00:02",
        src_ip="10.0.0.1", dst_ip="10.0.0.2",
        src_port=1, dst_port=2, payload=payload, dscp=dscp,
    )


class TestMalformedInput:
    def test_truncated_frame_reaches_host_not_crash(self, sim, nic):
        delivered = []
        nic.host.software_handler = lambda p, q: delivered.append(p)
        nic.inject(Packet(good_frame()[:20]))  # mid-IPv4 truncation
        sim.run()
        # Unparseable traffic falls back to the RX default (the host),
        # where software decides; nothing raised, nothing stuck.
        assert len(delivered) == 1
        assert nic.mesh.in_flight == 0

    def test_unknown_ethertype_routed_to_host(self, sim, nic):
        delivered = []
        nic.host.software_handler = lambda p, q: delivered.append(p)
        nic.inject(Packet(build_eth_frame(
            "02:00:00:00:00:02", "02:00:00:00:00:01", b"mystery",
            ethertype=ETHERTYPE_PANIC,
        )))
        sim.run()
        assert len(delivered) == 1

    def test_garbage_bytes_survive_the_pipeline(self, sim, nic):
        delivered = []
        nic.host.software_handler = lambda p, q: delivered.append(p)
        nic.inject(Packet(bytes(range(60))))
        sim.run()
        assert len(delivered) == 1

    def test_truncated_kv_request_ignored_by_cache(self, sim, nic):
        nic.control.enable_kv_cache()
        delivered = []
        nic.host.software_handler = lambda p, q: delivered.append(p)
        good = build_kv_request_frame(KvRequest(KvOpcode.GET, 1, 1, b"key"))
        broken = Packet(good.data[:-3])  # truncated KV body
        nic.inject(broken)
        sim.run()
        # Parse error at the KV layer: still delivered to software.
        assert len(delivered) == 1

    def test_corrupted_esp_does_not_take_down_the_nic(self, sim, nic):
        """An ESP packet with a bad ICV fails auth; PANIC must drop it
        at the IPSec engine and stay alive for subsequent traffic."""
        nic.control.enable_ipsec_rx()
        ipsec = nic.offload("ipsec")
        ipsec.install_sa(IpsecSa(spi=9, key=b"k", tunnel_src="1.1.1.1",
                                 tunnel_dst="2.2.2.2"))
        encrypted = ipsec.encrypt(Packet(good_frame()), 9)
        tampered = bytearray(encrypted.data)
        tampered[-6] ^= 0x01
        delivered = []
        nic.host.software_handler = lambda p, q: delivered.append(p)
        nic.inject(Packet(bytes(tampered)))
        # The engine raises internally; PANIC's handling: the exception
        # propagates out of sim.run, which is the "raise" policy. For a
        # production profile, assert the NIC survives with drop policy:
        with pytest.raises(Exception):
            sim.run()


class TestIpsecDropPolicy:
    def test_auth_failure_drop_policy(self, sim):
        """With drop_on_auth_failure the NIC sheds bad ESP silently."""
        nic = PanicNic(sim, PanicConfig(
            ports=1,
            offload_params={"ipsec": {"drop_on_auth_failure": True}},
        ))
        nic.control.enable_ipsec_rx()
        ipsec = nic.offload("ipsec")
        ipsec.install_sa(IpsecSa(spi=9, key=b"k", tunnel_src="1.1.1.1",
                                 tunnel_dst="2.2.2.2"))
        encrypted = ipsec.encrypt(Packet(good_frame()), 9)
        tampered = bytearray(encrypted.data)
        tampered[-6] ^= 0x01
        delivered = []
        nic.host.software_handler = lambda p, q: delivered.append(p)
        nic.inject(Packet(bytes(tampered)))
        nic.inject(Packet(good_frame()))  # subsequent traffic flows
        sim.run()
        assert len(delivered) == 1  # only the good frame
        assert ipsec.auth_failures.value == 1
        assert ipsec.dropped_packets.value == 1

    def test_unknown_spi_dropped_under_policy(self, sim):
        nic = PanicNic(sim, PanicConfig(
            ports=1,
            offload_params={"ipsec": {"drop_on_auth_failure": True}},
        ))
        nic.control.enable_ipsec_rx()
        ipsec = nic.offload("ipsec")
        ipsec.install_sa(IpsecSa(spi=9, key=b"k", tunnel_src="1.1.1.1",
                                 tunnel_dst="2.2.2.2"))
        encrypted = ipsec.encrypt(Packet(good_frame()), 9)
        # Rewrite the SPI to an uninstalled one; ICV check happens after
        # SA lookup, so this exercises the unknown-SPI path.
        sim2 = Simulator()
        nic2 = PanicNic(sim2, PanicConfig(
            ports=1,
            offload_params={"ipsec": {"drop_on_auth_failure": True}},
        ), name="panic2")
        nic2.control.enable_ipsec_rx()
        delivered = []
        nic2.host.software_handler = lambda p, q: delivered.append(p)
        nic2.inject(Packet(encrypted.data))
        sim2.run()
        assert delivered == []
        assert nic2.offload("ipsec").dropped_packets.value == 1


class TestHostileLoad:
    def test_sustained_overload_drains_eventually(self, sim, nic):
        delivered = []
        nic.host.software_handler = lambda p, q: delivered.append(p)
        for i in range(200):
            nic.inject(Packet(good_frame(payload=bytes(64), dscp=i % 64)))
        sim.run()
        assert len(delivered) == 200
        assert nic.mesh.in_flight == 0
        assert all(not e.busy for e in nic.engines.values())
