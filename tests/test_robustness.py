"""Robustness / failure-injection tests: malformed and hostile input
must degrade gracefully, never wedge the NIC."""

import pytest

from repro.core import PanicConfig, PanicNic
from repro.engines import IpsecSa
from repro.faults import FaultInjector, FaultPlan, attach_health_monitor
from repro.packet import (
    ETHERTYPE_PANIC,
    Packet,
    build_eth_frame,
    build_kv_request_frame,
    build_udp_frame,
    KvOpcode,
    KvRequest,
)
from repro.sim import Simulator
from repro.sim.clock import US


def good_frame(payload=b"ok", dscp=0):
    return build_udp_frame(
        src_mac="02:00:00:00:00:01", dst_mac="02:00:00:00:00:02",
        src_ip="10.0.0.1", dst_ip="10.0.0.2",
        src_port=1, dst_port=2, payload=payload, dscp=dscp,
    )


class TestMalformedInput:
    def test_truncated_frame_reaches_host_not_crash(self, sim, nic):
        delivered = []
        nic.host.software_handler = lambda p, q: delivered.append(p)
        nic.inject(Packet(good_frame()[:20]))  # mid-IPv4 truncation
        sim.run()
        # Unparseable traffic falls back to the RX default (the host),
        # where software decides; nothing raised, nothing stuck.
        assert len(delivered) == 1
        assert nic.mesh.in_flight == 0

    def test_unknown_ethertype_routed_to_host(self, sim, nic):
        delivered = []
        nic.host.software_handler = lambda p, q: delivered.append(p)
        nic.inject(Packet(build_eth_frame(
            "02:00:00:00:00:02", "02:00:00:00:00:01", b"mystery",
            ethertype=ETHERTYPE_PANIC,
        )))
        sim.run()
        assert len(delivered) == 1

    def test_garbage_bytes_survive_the_pipeline(self, sim, nic):
        delivered = []
        nic.host.software_handler = lambda p, q: delivered.append(p)
        nic.inject(Packet(bytes(range(60))))
        sim.run()
        assert len(delivered) == 1

    def test_truncated_kv_request_ignored_by_cache(self, sim, nic):
        nic.control.enable_kv_cache()
        delivered = []
        nic.host.software_handler = lambda p, q: delivered.append(p)
        good = build_kv_request_frame(KvRequest(KvOpcode.GET, 1, 1, b"key"))
        broken = Packet(good.data[:-3])  # truncated KV body
        nic.inject(broken)
        sim.run()
        # Parse error at the KV layer: still delivered to software.
        assert len(delivered) == 1

    def test_corrupted_esp_does_not_take_down_the_nic(self, sim, nic):
        """An ESP packet with a bad ICV fails auth; PANIC must drop it
        at the IPSec engine and stay alive for subsequent traffic."""
        nic.control.enable_ipsec_rx()
        ipsec = nic.offload("ipsec")
        ipsec.install_sa(IpsecSa(spi=9, key=b"k", tunnel_src="1.1.1.1",
                                 tunnel_dst="2.2.2.2"))
        encrypted = ipsec.encrypt(Packet(good_frame()), 9)
        tampered = bytearray(encrypted.data)
        tampered[-6] ^= 0x01
        delivered = []
        nic.host.software_handler = lambda p, q: delivered.append(p)
        nic.inject(Packet(bytes(tampered)))
        # The engine raises internally; PANIC's handling: the exception
        # propagates out of sim.run, which is the "raise" policy. For a
        # production profile, assert the NIC survives with drop policy:
        with pytest.raises(Exception):
            sim.run()


class TestIpsecDropPolicy:
    def test_auth_failure_drop_policy(self, sim):
        """With drop_on_auth_failure the NIC sheds bad ESP silently."""
        nic = PanicNic(sim, PanicConfig(
            ports=1,
            offload_params={"ipsec": {"drop_on_auth_failure": True}},
        ))
        nic.control.enable_ipsec_rx()
        ipsec = nic.offload("ipsec")
        ipsec.install_sa(IpsecSa(spi=9, key=b"k", tunnel_src="1.1.1.1",
                                 tunnel_dst="2.2.2.2"))
        encrypted = ipsec.encrypt(Packet(good_frame()), 9)
        tampered = bytearray(encrypted.data)
        tampered[-6] ^= 0x01
        delivered = []
        nic.host.software_handler = lambda p, q: delivered.append(p)
        nic.inject(Packet(bytes(tampered)))
        nic.inject(Packet(good_frame()))  # subsequent traffic flows
        sim.run()
        assert len(delivered) == 1  # only the good frame
        assert ipsec.auth_failures.value == 1
        assert ipsec.dropped_packets.value == 1

    def test_unknown_spi_dropped_under_policy(self, sim):
        nic = PanicNic(sim, PanicConfig(
            ports=1,
            offload_params={"ipsec": {"drop_on_auth_failure": True}},
        ))
        nic.control.enable_ipsec_rx()
        ipsec = nic.offload("ipsec")
        ipsec.install_sa(IpsecSa(spi=9, key=b"k", tunnel_src="1.1.1.1",
                                 tunnel_dst="2.2.2.2"))
        encrypted = ipsec.encrypt(Packet(good_frame()), 9)
        # Rewrite the SPI to an uninstalled one; ICV check happens after
        # SA lookup, so this exercises the unknown-SPI path.
        sim2 = Simulator()
        nic2 = PanicNic(sim2, PanicConfig(
            ports=1,
            offload_params={"ipsec": {"drop_on_auth_failure": True}},
        ), name="panic2")
        nic2.control.enable_ipsec_rx()
        delivered = []
        nic2.host.software_handler = lambda p, q: delivered.append(p)
        nic2.inject(Packet(encrypted.data))
        sim2.run()
        assert delivered == []
        assert nic2.offload("ipsec").dropped_packets.value == 1


class TestHostileLoad:
    def test_sustained_overload_drains_eventually(self, sim, nic):
        delivered = []
        nic.host.software_handler = lambda p, q: delivered.append(p)
        for i in range(200):
            nic.inject(Packet(good_frame(payload=bytes(64), dscp=i % 64)))
        sim.run()
        assert len(delivered) == 200
        assert nic.mesh.in_flight == 0
        assert all(not e.busy for e in nic.engines.values())


def failover_nic(sim, **extra):
    """Two IPSec lanes (primary + instanced spare) with a backup rule."""
    nic = PanicNic(sim, PanicConfig(
        ports=1,
        offloads=("ipsec", "ipsec1", "compression", "kvcache"),
        **extra,
    ))
    nic.set_backup("ipsec", "ipsec1")
    nic.control.route_dscp(10, ["ipsec"])
    return nic


class TestEngineFailover:
    def test_crash_failover_resteers_chain(self, sim):
        """After handle_engine_failure, new traffic for the dead lane's
        class flows through the backup engine instead."""
        nic = failover_nic(sim)
        nic.offload("ipsec").fail()
        nic.handle_engine_failure("ipsec")
        delivered = []
        nic.host.software_handler = lambda p, q: delivered.append(p)
        for i in range(10):
            nic.inject(Packet(good_frame(payload=bytes(64), dscp=10)))
        sim.run()
        assert len(delivered) == 10
        assert nic.offload("ipsec").processed.value == 0
        assert nic.offload("ipsec1").processed.value == 10
        assert nic.failovers.value == 1
        assert nic.mesh.in_flight == 0

    def test_failover_rewrites_rmt_chains_and_lookup_tables(self, sim):
        nic = failover_nic(sim)
        old = nic.offload("ipsec").address
        new = nic.offload("ipsec1").address
        nic.control.enable_ipsec_rx()  # another chain through the primary
        rewritten = nic.control.remap_engine(old, new)
        assert rewritten == 2  # dscp_route + ipsec_rx entries
        table = nic.offload("compression").lookup_table
        table.install("marker", old)
        assert table.remap(old, new) == 1
        assert table.lookup("marker") == new

    def test_failover_without_backup_removes_the_hop(self, sim):
        nic = PanicNic(sim, PanicConfig(ports=1))
        nic.control.route_dscp(10, ["ipsec"])
        nic.offload("ipsec").fail()
        nic.handle_engine_failure("ipsec")
        delivered = []
        nic.host.software_handler = lambda p, q: delivered.append(p)
        nic.inject(Packet(good_frame(dscp=10)))
        sim.run()
        # The dead hop was cut from the chain; traffic skips straight to
        # the DMA engine instead of black-holing.
        assert len(delivered) == 1
        assert nic.offload("ipsec").blackholed.value == 0

    def test_handle_engine_failure_is_idempotent(self, sim):
        nic = failover_nic(sim)
        nic.handle_engine_failure("ipsec")
        nic.handle_engine_failure("ipsec")
        assert nic.failovers.value == 1


class TestHealthMonitor:
    def test_watchdog_fires_within_configured_timeout(self, sim):
        nic = failover_nic(sim)
        period, timeout = 2 * US, 4 * US
        monitor = attach_health_monitor(
            nic, period_ps=period, timeout_ps=timeout)
        monitor.start()
        crash_at = 10 * US
        FaultInjector(
            nic, FaultPlan().crash_engine(crash_at, "ipsec")
        ).arm()
        sim.run(until_ps=60 * US)
        monitor.stop()
        sim.run()
        assert monitor.failed_at.keys() == {"ipsec"}
        detected = monitor.failed_at["ipsec"]
        # Detection latency is bounded by the probe timeout plus one
        # tick of watchdog-evaluation granularity.
        assert crash_at < detected <= crash_at + timeout + period
        assert monitor.watchdog_fires.value == 1
        assert nic.failovers.value == 1
        assert nic.mesh.in_flight == 0

    def test_healthy_engines_keep_echoing(self, sim):
        nic = failover_nic(sim)
        monitor = attach_health_monitor(
            nic, period_ps=2 * US, timeout_ps=4 * US)
        monitor.start()
        sim.run(until_ps=30 * US)
        monitor.stop()
        sim.run()
        assert monitor.failed_at == {}
        assert monitor.watchdog_fires.value == 0
        assert monitor.echoes_received.value == monitor.heartbeats_sent.value
        assert monitor.rtt.count > 0

    def test_stalled_engine_detected_like_a_dead_one(self, sim):
        nic = failover_nic(sim)
        monitor = attach_health_monitor(
            nic, period_ps=2 * US, timeout_ps=4 * US)
        monitor.start()
        FaultInjector(
            nic, FaultPlan().stall_engine(5 * US, "ipsec")
        ).arm()
        sim.run(until_ps=40 * US)
        monitor.stop()
        nic.offload("ipsec").recover()  # release the parked probe
        sim.run()
        assert "ipsec" in monitor.failed_at
        assert nic.mesh.in_flight == 0


class TestHealthMonitorEdges:
    """Races and double failures around detection and failover."""

    def test_crash_under_live_traffic_fails_over_midstream(self, sim):
        """The fault fires while frames are in flight: pre-crash traffic
        flows through the primary, the loss window is fully accounted as
        blackholed, and post-detection traffic rides the backup."""
        nic = failover_nic(sim)
        monitor = attach_health_monitor(
            nic, period_ps=2 * US, timeout_ps=4 * US)
        monitor.start()
        delivered = []
        nic.host.software_handler = lambda p, q: delivered.append(p)
        frames = 30
        for i in range(frames):
            sim.schedule_at(
                i * US, nic.inject, Packet(good_frame(dscp=10)))
        FaultInjector(
            nic, FaultPlan().crash_engine(10 * US, "ipsec")
        ).arm()
        sim.run(until_ps=60 * US)
        monitor.stop()
        sim.run()
        assert monitor.failed_at.keys() == {"ipsec"}
        assert nic.failovers.value == 1
        # Detection <= crash + timeout + period, so frames injected from
        # 17 us on must all flow through the backup lane.
        assert nic.offload("ipsec1").processed.value >= frames - 17
        # Nothing vanished uncounted: every frame either reached the
        # host or was blackholed at the dead tile (which also sinks the
        # probe(s) the monitor had in flight when it died).
        blackholed = nic.offload("ipsec").blackholed.value
        assert len(delivered) + blackholed >= frames
        assert len(delivered) >= frames - 17
        assert nic.mesh.in_flight == 0

    def test_backup_crash_after_failover_detected_too(self, sim):
        """Double failure: the backup the first failover steered traffic
        onto dies as well; the monitor (watching both lanes) removes the
        hop entirely and traffic still reaches the host."""
        nic = failover_nic(sim)
        monitor = attach_health_monitor(
            nic, engines=["ipsec", "ipsec1"],
            period_ps=2 * US, timeout_ps=4 * US)
        monitor.start()
        FaultInjector(nic, FaultPlan()
                      .crash_engine(10 * US, "ipsec")
                      .crash_engine(30 * US, "ipsec1")).arm()
        sim.run(until_ps=50 * US)
        monitor.stop()
        delivered = []
        nic.host.software_handler = lambda p, q: delivered.append(p)
        nic.inject(Packet(good_frame(dscp=10)))
        sim.run()
        assert monitor.failed_at.keys() == {"ipsec", "ipsec1"}
        assert monitor.failed_at["ipsec"] < monitor.failed_at["ipsec1"]
        assert nic.failovers.value == 2
        # ipsec1 had no backup of its own: the hop was cut, not
        # black-holed, so the late frame still lands in software.
        assert len(delivered) == 1
        assert nic.mesh.in_flight == 0

    def test_recover_inside_timeout_beats_the_watchdog(self, sim):
        """RECOVER races the heartbeat timeout and wins: the parked
        probe echoes before the outstanding age crosses the line, so no
        failover happens."""
        nic = failover_nic(sim)
        monitor = attach_health_monitor(
            nic, period_ps=2 * US, timeout_ps=4 * US)
        monitor.start()
        FaultInjector(nic, FaultPlan()
                      .stall_engine(5 * US, "ipsec")
                      .recover_engine(7 * US, "ipsec")).arm()
        sim.run(until_ps=30 * US)
        monitor.stop()
        sim.run()
        assert monitor.failed_at == {}
        assert monitor.watchdog_fires.value == 0
        assert nic.failovers.value == 0

    def test_recover_after_timeout_loses_the_race(self, sim):
        """RECOVER lands after the watchdog already declared the engine
        dead: the failover stands, the late echo is ignored as stale,
        and clear() resumes probing without a second fire."""
        nic = failover_nic(sim)
        monitor = attach_health_monitor(
            nic, period_ps=2 * US, timeout_ps=4 * US)
        monitor.start()
        FaultInjector(nic, FaultPlan()
                      .stall_engine(5 * US, "ipsec")
                      .recover_engine(15 * US, "ipsec")).arm()
        sim.run(until_ps=14 * US)
        assert monitor.failed_at.keys() == {"ipsec"}
        declared_at = monitor.failed_at["ipsec"]
        assert declared_at < 15 * US  # the watchdog won the race
        assert nic.failovers.value == 1
        sim.run(until_ps=20 * US)
        # Recovery released the parked probe; its echo must not
        # resurrect the flow state or double-count a failure.
        assert monitor.failures_detected.value == 1
        monitor.clear("ipsec")
        sim.run(until_ps=40 * US)
        monitor.stop()
        sim.run()
        # Probing resumed against the healthy engine: no new fire.
        assert monitor.failed_at == {}
        assert monitor.watchdog_fires.value == 1
        assert nic.mesh.in_flight == 0


class TestCorruptionDetection:
    def test_corrupted_frame_dropped_and_counted(self, sim):
        """A link bit-flip in a checksummed byte is caught at the RMT
        classification point and dropped with accounting."""
        nic = failover_nic(sim, verify_checksums=True)
        # Flip a bit inside the UDP payload (offset 50 > the 42-byte
        # headers) of the next transfer on eth0's injection channel.
        plan = FaultPlan(seed=5).corrupt_link(
            0, "panic.mesh.inj_0_0", offset=50)
        FaultInjector(nic, plan).arm()
        delivered = []
        nic.host.software_handler = lambda p, q: delivered.append(p)
        nic.inject(Packet(good_frame(payload=bytes(64), dscp=10)))
        nic.inject(Packet(good_frame(payload=bytes(64), dscp=10)))
        sim.run()
        assert nic.corrupt_drops.value == 1
        assert len(delivered) == 1  # only the clean frame survived
        assert nic.stats()["faults"]["link_corruptions"] == 1
        assert nic.mesh.in_flight == 0

    def test_checksum_verification_off_by_default(self, sim, nic):
        plan = FaultPlan(seed=5).corrupt_link(
            0, "panic.mesh.inj_0_0", offset=50)
        FaultInjector(nic, plan).arm()
        delivered = []
        nic.host.software_handler = lambda p, q: delivered.append(p)
        nic.inject(Packet(good_frame(payload=bytes(64))))
        sim.run()
        # Without verify_checksums the mangled frame flows through.
        assert nic.corrupt_drops.value == 0
        assert len(delivered) == 1

    def test_dropped_flit_leaks_a_credit(self, sim, nic):
        plan = FaultPlan().drop_on_link(0, "panic.mesh.inj_0_0")
        FaultInjector(nic, plan).arm()
        nic.inject(Packet(good_frame()))
        sim.run()
        channel = nic.mesh.channel("panic.mesh.inj_0_0")
        assert channel.dropped_flits.value == 1
        assert channel.leaked_credits.value == 1
        assert channel.credit_deficit == 1
        assert "leaked" in nic.mesh.stuck_report()

    def test_pifo_rank_corruption_counted(self, sim, nic):
        from repro.sim.rng import SeededRng

        ipsec = nic.offload("ipsec")
        ipsec.fail("stall")  # hold packets in the queue
        nic.control.route_dscp(10, ["ipsec"])
        for _ in range(5):
            nic.inject(Packet(good_frame(dscp=10)))
        sim.run()
        assert ipsec.queue.corrupt_ranks(SeededRng(1)) == 5
        assert ipsec.queue.rank_corruptions.value == 5
        ipsec.recover()
        sim.run()
        assert nic.mesh.in_flight == 0


class TestFaultPlan:
    def test_events_are_time_sorted(self):
        plan = (FaultPlan()
                .crash_engine(30 * US, "ipsec")
                .corrupt_link(10 * US, "ch")
                .recover_engine(50 * US, "ipsec"))
        assert [e.kind for e in plan.events()] == [
            "link_corrupt", "crash", "recover"]
        assert len(plan) == 3
        assert "crash ipsec" in plan.describe()

    def test_plan_validation(self):
        with pytest.raises(ValueError):
            FaultPlan().crash_engine(-1, "ipsec")
        with pytest.raises(ValueError):
            FaultPlan().slow_engine(0, "ipsec", factor=0)
        with pytest.raises(ValueError):
            FaultPlan().corrupt_link(0, "ch", bits=0)

    def test_unknown_target_fails_loudly(self, sim, nic):
        # Arm time, not run time: a typo'd plan must not silently never
        # fire, nor explode only when its event's timestamp comes up.
        with pytest.raises(KeyError, match="nope"):
            FaultInjector(nic, FaultPlan().crash_engine(0, "nope")).arm()
        assert sim.run() == 0  # nothing was scheduled

    def test_unknown_channel_fails_loudly_at_arm(self, sim, nic):
        with pytest.raises(ValueError, match="no_such_channel"):
            FaultInjector(
                nic, FaultPlan().drop_on_link(0, "no_such_channel")
            ).arm()

    def test_wire_kinds_rejected_by_single_nic_injector(self, sim, nic):
        with pytest.raises(ValueError, match="repro.faults.rack"):
            FaultInjector(
                nic, FaultPlan().wire_down(0, "wire_0_1")
            ).arm()

    def test_arming_twice_is_an_error(self, sim, nic):
        injector = FaultInjector(nic, FaultPlan())
        injector.arm()
        with pytest.raises(RuntimeError):
            injector.arm()

    def test_slow_and_recover(self, sim, nic):
        FaultInjector(nic, (
            FaultPlan()
            .slow_engine(0, "ipsec", factor=8.0)
            .recover_engine(20 * US, "ipsec")
        )).arm()
        sim.run()
        assert nic.offload("ipsec").slowdown == 1.0


class TestDeadlockDiagnostics:
    def test_exhausted_budget_raises_with_pending_summary(self, sim):
        from repro.sim.kernel import DeadlockError

        def forever():
            sim.schedule(1000, forever)

        sim.schedule(0, forever)
        with pytest.raises(DeadlockError, match="forever"):
            sim.run(max_events=10, on_max_events="raise")

    def test_exhausted_budget_returns_quietly_by_default(self, sim):
        def forever():
            sim.schedule(1000, forever)

        sim.schedule(0, forever)
        assert sim.run(max_events=10) == 10

    def test_quiesced_mesh_with_stuck_message_is_named(self, sim):
        from repro.noc import Endpoint, Mesh, MeshConfig
        from repro.noc.mesh import MeshStuckError

        class Refusing(Endpoint):
            def try_receive(self, message):
                return False

        mesh = Mesh(sim, MeshConfig(width=2, height=1))

        class Source(Endpoint):
            def receive(self, message):
                pass

        port = mesh.bind(Source(), 0, 0)
        mesh.bind(Refusing(), 1, 0)
        port.send(Packet(b"x" * 16), mesh.address_of(1, 0))
        sim.run()
        with pytest.raises(MeshStuckError) as excinfo:
            mesh.assert_drained()
        report = str(excinfo.value)
        assert "1 messages in flight" in report
        assert "router" in report

    def test_drained_mesh_passes(self, sim, nic):
        nic.inject(Packet(good_frame()))
        sim.run()
        nic.mesh.assert_drained()
        assert "fully drained" in nic.mesh.stuck_report()


class TestFullFaultRun:
    def test_fault_run_leaves_mesh_drained(self, sim):
        """The ISSUE acceptance check: a run combining every fault kind
        ends with 0 in-flight messages."""
        nic = failover_nic(sim)
        monitor = attach_health_monitor(
            nic, period_ps=2 * US, timeout_ps=4 * US)
        monitor.start()
        plan = (FaultPlan(seed=11)
                .slow_engine(5 * US, "compression", factor=4.0)
                .corrupt_link(8 * US, "panic.mesh.inj_0_0")
                .crash_engine(20 * US, "ipsec")
                .corrupt_pifo(25 * US, "ipsec1")
                .recover_engine(60 * US, "compression"))
        FaultInjector(nic, plan).arm()
        delivered = []
        nic.host.software_handler = lambda p, q: delivered.append(p)

        def inject(i=0):
            if i >= 100:
                return
            nic.inject(Packet(good_frame(payload=bytes(64), dscp=10)))
            sim.schedule(500_000, inject, i + 1)

        inject()
        sim.run(until_ps=150 * US)
        monitor.stop()
        sim.run()
        assert nic.mesh.in_flight == 0
        assert nic.failovers.value == 1
        assert delivered  # traffic kept flowing through the faults
        stats = nic.stats()
        assert stats["faults"]["failed_engines"] == 1
        assert stats["faults"]["link_corruptions"] == 1

    def test_identical_plan_and_seed_reproduce_identical_stats(self):
        def run():
            sim = Simulator()
            nic = failover_nic(sim)
            monitor = attach_health_monitor(
                nic, period_ps=2 * US, timeout_ps=4 * US)
            monitor.start()
            plan = (FaultPlan(seed=9)
                    .crash_engine(15 * US, "ipsec")
                    .corrupt_link(3 * US, "panic.mesh.inj_0_0"))
            FaultInjector(nic, plan).arm()
            for i in range(40):
                sim.schedule_at(i * 400_000, nic.inject,
                                Packet(good_frame(payload=bytes(64), dscp=10)))
            sim.run(until_ps=80 * US)
            monitor.stop()
            sim.run()
            return nic.stats()

        assert run() == run()
