"""Tests for the shared packet buffer and pointer-mode forwarding."""

import pytest

from repro.core import PanicConfig, PanicNic
from repro.noc.pktbuffer import DESCRIPTOR_BITS, PacketBuffer, PacketBufferError
from repro.packet import KvOpcode, KvRequest, build_kv_request_frame, parse_frame
from repro.sim import Simulator
from repro.sim.clock import MHZ


class TestPacketBuffer:
    def test_store_read_release(self, sim):
        buf = PacketBuffer(sim)
        handle = buf.store(b"payload")
        assert buf.read(handle) == b"payload"
        assert buf.used_bytes == 7
        buf.release(handle)
        assert buf.used_bytes == 0
        assert buf.live_handles == 0

    def test_refcounting(self, sim):
        buf = PacketBuffer(sim)
        handle = buf.store(b"shared")
        buf.retain(handle)
        buf.release(handle)
        assert buf.read(handle) == b"shared"  # still alive
        buf.release(handle)
        with pytest.raises(PacketBufferError):
            buf.read(handle)

    def test_capacity_enforced(self, sim):
        buf = PacketBuffer(sim, capacity_bytes=10)
        buf.store(b"x" * 8)
        with pytest.raises(PacketBufferError):
            buf.store(b"y" * 4)

    def test_rewrite_adjusts_usage(self, sim):
        buf = PacketBuffer(sim, capacity_bytes=100)
        handle = buf.store(b"x" * 50)
        buf.rewrite(handle, b"y" * 10)
        assert buf.used_bytes == 10
        assert buf.read(handle) == b"y" * 10
        with pytest.raises(PacketBufferError):
            buf.rewrite(handle, b"z" * 200)

    def test_high_watermark(self, sim):
        buf = PacketBuffer(sim)
        a = buf.store(b"x" * 100)
        b = buf.store(b"y" * 50)
        buf.release(a)
        assert buf.high_watermark == 150

    def test_access_delay_scales_with_bytes(self, sim):
        buf = PacketBuffer(sim, ports=1, port_bytes_per_cycle=64)
        small = buf.access_delay_ps(64)
        sim2 = Simulator()
        buf2 = PacketBuffer(sim2, ports=1, port_bytes_per_cycle=64)
        large = buf2.access_delay_ps(6400)
        assert large == 100 * small

    def test_port_contention_serializes(self, sim):
        buf = PacketBuffer(sim, ports=1)
        first = buf.access_delay_ps(640)
        second = buf.access_delay_ps(640)
        assert second == 2 * first

    def test_more_ports_more_parallelism(self, sim):
        buf = PacketBuffer(sim, ports=2)
        first = buf.access_delay_ps(640)
        second = buf.access_delay_ps(640)  # takes the second port
        assert second == first

    def test_bad_handle_rejected(self, sim):
        buf = PacketBuffer(sim)
        with pytest.raises(PacketBufferError):
            buf.release(99)

    def test_invalid_params(self, sim):
        with pytest.raises(ValueError):
            PacketBuffer(sim, name="bad1", capacity_bytes=0)
        with pytest.raises(ValueError):
            PacketBuffer(sim, name="bad2", ports=0)


class TestPointerModeNic:
    def build(self, sim, mode):
        nic = PanicNic(sim, PanicConfig(ports=1, payload_mode=mode),
                       name=f"panic_{mode}")
        nic.control.enable_kv_cache()
        return nic

    def test_pointer_mode_end_to_end(self, sim):
        nic = self.build(sim, "pointer")
        nic.offload("kvcache").cache_put(b"k", b"v")
        nic.inject(build_kv_request_frame(KvRequest(KvOpcode.GET, 1, 1, b"k")))
        sim.run()
        response = parse_frame(nic.transmitted[0].data).kv_response()
        assert response.value == b"v"

    def test_pointer_mode_frees_buffer_after_delivery(self, sim):
        nic = self.build(sim, "pointer")
        delivered = []
        nic.host.software_handler = lambda p, q: delivered.append(p)
        from repro.packet import build_udp_frame, Packet

        frame = build_udp_frame(
            src_mac="02:00:00:00:00:01", dst_mac="02:00:00:00:00:02",
            src_ip="10.0.0.1", dst_ip="10.0.0.2",
            src_port=1, dst_port=2, payload=b"data",
        )
        nic.inject(Packet(frame))
        sim.run()
        assert len(delivered) == 1
        assert nic.payload_buffer.live_handles == 0
        assert nic.payload_buffer.allocations.value == 1

    def test_pointer_mode_shrinks_noc_load(self):
        loads = {}
        for mode in ("full", "pointer"):
            sim = Simulator()
            nic = self.build(sim, mode)
            from repro.packet import build_udp_frame, Packet

            for i in range(10):
                frame = build_udp_frame(
                    src_mac="02:00:00:00:00:01",
                    dst_mac="02:00:00:00:00:02",
                    src_ip="10.0.0.1", dst_ip="10.0.0.2",
                    src_port=1, dst_port=2,
                    payload=bytes(1000), identification=i,
                )
                nic.inject(Packet(frame))
            sim.run()
            loads[mode] = sum(c.bits_sent.value for c in nic.mesh.channels)
        assert loads["pointer"] < loads["full"] / 3

    def test_full_mode_has_no_buffer(self, sim):
        nic = self.build(sim, "full")
        assert nic.payload_buffer is None

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            PanicConfig(payload_mode="telepathy")
