"""Tests for repro.telemetry: span tracing, probes, exporters, and the
equivalence contracts (traced == untraced; fast == slow; mono == sharded).
"""

import json

import pytest

from repro.core.config import PanicConfig
from repro.core.panic import PanicNic
from repro.packet import build_udp_frame
from repro.packet.packet import MessageKind, Packet
from repro.sim.clock import NS, US
from repro.sim.kernel import Simulator
from repro.sim.rng import SeededRng
from repro.telemetry import PacketTracer, TelemetryConfig
from repro.telemetry.export import (
    chrome_trace_events,
    format_timeline,
    shard_window_counters,
    write_chrome_trace,
)


def _frame(payload_bytes=200, dscp=1, src_port=1000):
    return build_udp_frame(
        src_mac="02:00:00:00:00:01", dst_mac="02:00:00:00:00:02",
        src_ip="10.0.0.1", dst_ip="10.0.0.2",
        src_port=src_port, dst_port=9, dscp=dscp,
        payload=bytes(payload_bytes),
    )


def _run_chain(telemetry, fast_path=True, frames=20, gap_ps=700,
               queue_capacity=None, overflow="raise", seed=0):
    """One-port NIC pushing frames through a 3-offload chain."""
    sim = Simulator()
    nic = PanicNic(sim, PanicConfig(
        ports=1, offloads=("ipsec", "compression", "checksum"),
        fast_path=fast_path, queue_capacity=queue_capacity,
        overflow=overflow, telemetry=telemetry, seed=seed,
    ))
    nic.control.route_dscp(1, ["ipsec", "compression", "checksum"])
    frame = _frame()
    for i in range(frames):
        sim.schedule_at(i * gap_ps, nic.inject,
                        Packet(frame, MessageKind.ETHERNET))
    sim.run()
    return sim, nic


class TestTracerUnit:
    def _tracer(self, **kw):
        return PacketTracer(TelemetryConfig(**kw), SeededRng(1), name="n")

    def _packet(self):
        return Packet(_frame(), MessageKind.ETHERNET)

    def test_sample_every_one_traces_all(self):
        tracer = self._tracer(sample_every=1)
        for _ in range(5):
            assert tracer.maybe_trace(self._packet(), 0) is not None
        assert tracer.seen == tracer.sampled == 5

    def test_sample_every_zero_without_predicate_traces_none(self):
        tracer = self._tracer(sample_every=0)
        for _ in range(5):
            assert tracer.maybe_trace(self._packet(), 0) is None
        assert tracer.sampled == 0
        assert tracer.seen == 5

    def test_flow_predicate_triggers_without_sampling(self):
        config = TelemetryConfig(
            sample_every=0,
            flow_predicate=lambda p: len(p.data) > 100,
        )
        tracer = PacketTracer(config, SeededRng(1))
        big = Packet(_frame(200), MessageKind.ETHERNET)
        small = Packet(b"x" * 40, MessageKind.ETHERNET)
        assert tracer.maybe_trace(big, 0) is not None
        assert tracer.maybe_trace(small, 0) is None

    def test_already_traced_packet_returns_existing_ctx(self):
        tracer = self._tracer(sample_every=1)
        packet = self._packet()
        ctx = tracer.maybe_trace(packet, 0)
        assert tracer.maybe_trace(packet, 5) is ctx
        assert tracer.seen == 1  # the re-offer is not a new arrival

    def test_deterministic_sampling_same_seed(self):
        """Same seed => same sampled ordinal set, independent of run."""
        picks = []
        for _ in range(2):
            tracer = self._tracer(sample_every=3)
            picks.append([
                i for i in range(60)
                if tracer.maybe_trace(self._packet(), i) is not None
            ])
        assert picks[0] == picks[1]
        assert 0 < len(picks[0]) < 60  # actually a sample, not all/none

    def test_ring_bound_counts_drops(self):
        tracer = PacketTracer(
            TelemetryConfig(sample_every=1, max_spans=4), SeededRng(1))
        ctx = tracer.maybe_trace(self._packet(), 0)
        for i in range(10):
            tracer.instant(ctx, "x", "c", i)
        assert len(tracer.spans) == 4
        assert tracer.dropped_spans == 7  # ingress + 10 emitted, 4 kept

    def test_end_engine_is_idempotent(self):
        tracer = self._tracer(sample_every=1)
        ctx = tracer.maybe_trace(self._packet(), 0)
        tracer.begin_engine(ctx, "e", 0, 0, 1, False)
        tracer.end_engine(ctx, 10)
        before = len(tracer.spans)
        tracer.end_engine(ctx, 20)  # e.g. evict callback after close
        assert len(tracer.spans) == before

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TelemetryConfig(sample_every=-1)
        with pytest.raises(ValueError):
            TelemetryConfig(max_spans=0)
        with pytest.raises(ValueError):
            TelemetryConfig(probe_period_ps=-1)


class TestKernelHooks:
    def test_hook_sees_every_event_time(self):
        sim = Simulator()
        seen = []
        sim.add_after_event_hook(seen.append)
        for t in (5, 1, 9):
            sim.schedule_at(t, lambda: None)
        sim.run()
        assert seen == [1, 5, 9]

    def test_hook_removal(self):
        sim = Simulator()
        seen = []
        sim.add_after_event_hook(seen.append)
        sim.remove_after_event_hook(seen.append)
        sim.schedule_at(1, lambda: None)
        sim.run()
        assert seen == []

    def test_hooks_do_not_change_events_fired(self):
        def load(sim):
            def chain(i=0):
                if i < 50:
                    sim.schedule(3, chain, i + 1)
            chain()
            return sim.run()

        plain = load(Simulator())
        hooked_sim = Simulator()
        hooked_sim.add_after_event_hook(lambda now: None)
        assert load(hooked_sim) == plain


class TestTracedUntracedEquivalence:
    @pytest.mark.parametrize("fast_path", [True, False])
    def test_stats_and_timestamps_bit_identical(self, fast_path):
        """The tentpole contract: tracing ON changes nothing observable."""
        _, nic_off = _run_chain(None, fast_path=fast_path)
        _, nic_on = _run_chain(
            TelemetryConfig(sample_every=1, probe_period_ps=1 * US),
            fast_path=fast_path)
        assert nic_on.stats() == nic_off.stats()

    def test_delivery_timestamps_identical_under_pressure(self):
        """Bounded queues + drops: still bit-identical when traced."""
        def arrivals(telemetry):
            sim, nic = _run_chain(telemetry, frames=60, gap_ps=200,
                                  queue_capacity=4,
                                  overflow="backpressure")
            return sim.now, nic.stats()

        assert arrivals(None) == arrivals(TelemetryConfig(sample_every=1))


class TestFastSlowSpanEquivalence:
    def test_span_reports_identical(self):
        """Express cut-through synthesizes the same spans the slow path
        records: canonical reports must match tuple for tuple."""
        _, fast = _run_chain(TelemetryConfig(sample_every=1), fast_path=True)
        _, slow = _run_chain(TelemetryConfig(sample_every=1), fast_path=False)
        rep_fast = fast.telemetry.trace_report()
        rep_slow = slow.telemetry.trace_report()
        assert rep_fast == rep_slow
        assert len(rep_fast) > 0

    def test_span_reports_identical_under_contention(self):
        """Back-to-back frames force express de-speculation mid-flight;
        materialized hops must still line up with slow-path spans."""
        cfg = TelemetryConfig(sample_every=1)
        _, fast = _run_chain(cfg, fast_path=True, frames=40, gap_ps=150)
        _, slow = _run_chain(cfg, fast_path=False, frames=40, gap_ps=150)
        assert fast.telemetry.trace_report() == slow.telemetry.trace_report()


class TestStatusSpans:
    def test_eviction_closes_span_with_status(self):
        """Droppable traffic on a tiny queue: evicted/dropped packets get
        a terminal engine span instead of dangling open."""
        sim = Simulator()
        nic = PanicNic(sim, PanicConfig(
            ports=1, offloads=("compression",), queue_capacity=2,
            telemetry=TelemetryConfig(sample_every=1),
        ))
        nic.control.route_dscp(1, ["compression"])
        nic.control.mark_dscp_droppable(1)
        frame = _frame()
        for i in range(40):
            sim.schedule_at(i * 50, nic.inject,
                            Packet(frame, MessageKind.ETHERNET))
        sim.run()
        statuses = {
            dict(args).get("status")
            for _tid, _seq, kind, _c, _s, _e, args
            in nic.telemetry.trace_report() if kind == "engine"
        }
        dropped = nic.stats()["compression"]["dropped"]
        if dropped:  # workload-dependent, but the contract is span-level
            assert statuses & {"evicted", "dropped_at_enqueue"}
        assert "ok" in statuses


class TestPifoEvictHook:
    def test_on_evict_fires_with_the_evicted_item(self):
        from repro.sched.pifo import PifoQueue

        q = PifoQueue("q", capacity=2)
        evicted = []
        q.on_evict = evicted.append
        q.push("worse", rank=50, droppable=True)
        q.push("better", rank=10, droppable=False)
        # Full; an incoming rank better than the droppable resident
        # evicts it (drop-worst) and the hook observes exactly that item.
        assert q.push("incoming", rank=20, droppable=False)
        assert evicted == ["worse"]
        assert q.dropped.value == 1

    def test_drop_of_incoming_does_not_fire_hook(self):
        from repro.sched.pifo import PifoQueue

        q = PifoQueue("q", capacity=1)
        evicted = []
        q.on_evict = evicted.append
        q.push("resident", rank=10, droppable=False)
        assert not q.push("incoming", rank=20, droppable=True)
        assert evicted == []


class TestProbes:
    def test_probe_cadence_and_series(self):
        _, nic = _run_chain(
            TelemetryConfig(sample_every=0, probe_period_ps=1 * US),
            frames=10, gap_ps=1000 * NS)
        series = nic.telemetry.probes.series()
        depth = series[f"{nic.name}.eth0.pifo_depth"]
        points = depth.items()
        assert len(points) >= 2
        times = [t for t, _v in points]
        assert times == sorted(times)
        # One sample per crossed period: consecutive samples sit in
        # distinct 1us buckets.
        buckets = [t // (1 * US) for t in times]
        assert len(set(buckets)) == len(buckets)

    def test_no_probe_period_installs_no_hook(self):
        sim, nic = _run_chain(TelemetryConfig(sample_every=1))
        assert sim._after_hooks == []
        assert len(nic.telemetry.probes) == 0


class TestSampledDeterminism:
    def test_sampled_set_stable_across_runs(self):
        reports = [
            _run_chain(TelemetryConfig(sample_every=3),
                       frames=60)[1].telemetry.trace_report()
            for _ in range(2)
        ]
        assert reports[0] == reports[1]
        assert len(reports[0]) > 0


class TestShardEquivalence:
    def test_mono_vs_sharded_trace_identical(self):
        from repro.sim.shard import run_monolithic, run_sharded
        from repro.workloads.rack import rack_topology

        topo = rack_topology(nics=4, pattern="fanin", frames=8,
                             telemetry=TelemetryConfig(sample_every=3))
        mono = run_monolithic(topo)
        sharded = run_sharded(topo, workers=4)
        assert mono.trace is not None
        assert mono.trace == sharded.trace
        assert sum(len(spans) for spans in mono.trace.values()) > 0
        # Sampled set is worker-count independent too.
        assert run_sharded(topo, workers=2).trace == mono.trace

    def test_no_telemetry_yields_no_trace(self):
        from repro.sim.shard import run_monolithic
        from repro.workloads.rack import rack_topology

        assert run_monolithic(
            rack_topology(nics=2, frames=2)).trace is None


class TestExport:
    def _traced_nic(self):
        return _run_chain(
            TelemetryConfig(sample_every=1, probe_period_ps=1 * US),
            frames=6)[1]

    def test_chrome_trace_structure(self, tmp_path):
        nic = self._traced_nic()
        path = tmp_path / "trace.json"
        count = write_chrome_trace(
            str(path), {nic.name: nic.telemetry.tracer.sorted_spans()},
            {nic.name: nic.telemetry.probes.series()})
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        assert len(events) == count
        phases = {e["ph"] for e in events}
        assert {"M", "X", "i", "C"} <= phases
        # Every duration event is non-negative and carries span identity.
        for e in events:
            if e["ph"] == "X":
                assert e["dur"] >= 0
                assert "trace_id" in e["args"]
        # One process per NIC, one named thread per component.
        names = [e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "process_name"]
        assert names == [nic.name]

    def test_counter_events_skip_all_zero_series(self):
        nic = self._traced_nic()
        events = chrome_trace_events(
            {nic.name: nic.telemetry.tracer.sorted_spans()},
            {nic.name: nic.telemetry.probes.series()})
        counter_names = {e["name"] for e in events if e["ph"] == "C"}
        # Plenty of mesh channels never see traffic in this workload.
        assert counter_names
        assert len(counter_names) < len(nic.telemetry.probes.series())

    def test_timeline_renders_components(self):
        nic = self._traced_nic()
        text = format_timeline(nic.telemetry.tracer.sorted_spans(), limit=2)
        assert "packet trace 0:" in text
        assert "ingress" in text and "host" in text
        assert "more traced packets" in text

    def test_timeline_empty(self):
        assert format_timeline([]) == "no spans recorded"


class TestCli:
    def test_trace_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "trace.json"
        assert main(["trace", "--frames", "4",
                     "--trace-out", str(out), "--timeline", "1"]) == 0
        printed = capsys.readouterr().out
        assert "traced 4/4 frames" in printed
        assert "packet trace 0:" in printed
        doc = json.loads(out.read_text())
        assert doc["traceEvents"]


class TestShardWindowCounters:
    class _Result:
        def __init__(self, window_log):
            self.window_log = window_log

    def test_counter_tracks_per_commit(self, tmp_path):
        result = self._Result([(1000, 0, 0, 0), (5000, 2, 2, 150)])
        events = shard_window_counters(result)
        tracks = {e["name"] for e in events if e["ph"] == "C"}
        assert tracks == {"sync_rounds", "dirty_shards", "rollbacks",
                          "replayed_events"}
        rollbacks = [e for e in events
                     if e["ph"] == "C" and e["name"] == "rollbacks"]
        assert [e["args"]["value"] for e in rollbacks] == [0, 2]
        instants = [e for e in events if e["name"] == "window_commit"]
        assert [e["args"]["commit_ps"] for e in instants] == [1000, 5000]
        # All under one synthetic coordinator process, appendable to a
        # merged rack trace.
        assert len({e["pid"] for e in events}) == 1
        out = tmp_path / "trace.json"
        assert write_chrome_trace(str(out), {}, extra_events=events) \
            == len(events)
        assert json.loads(out.read_text())["traceEvents"] == events

    def test_monolithic_results_emit_nothing(self):
        assert shard_window_counters(self._Result([])) == []
