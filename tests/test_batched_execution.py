"""Batched execution must be invisible in simulated results.

``PanicConfig.batch_execution`` enables the train lane
(:mod:`repro.core.train`): trajectory trains replay a frame's whole
path inside one kernel event, wire rides absorb the per-frame arrival
event, and frame trains vectorize an idle engine's backlog through
``service_many``.  All of it is a pure wall-clock optimisation: the
equivalence contract (DESIGN.md, "Batched execution") is that every
simulated observable -- delivery order, picosecond timestamps, the
full ``PanicNic.stats()`` tree, telemetry traces, sharded rack
reports -- is bit-identical with batching forced on and forced off.

These tests enforce that contract on the scenarios that stress it
hardest (chained contention, armed faults landing mid-train, traced
packets interleaved with rideable ones, same-timestamp control events,
rack shards at several worker counts), and separately prove the lane
actually fires (else it is dead code and the equivalence is vacuous).
"""

import gc
import weakref

import pytest

from repro.core import PanicConfig, PanicNic
from repro.faults import FaultInjector, FaultPlan, attach_health_monitor
from repro.packet import Packet, build_udp_frame
from repro.sim import Simulator
from repro.sim.clock import NS, US
from repro.sim.shard import run_monolithic, run_sharded
from repro.telemetry import TelemetryConfig
from repro.workloads.rack import rack_topology


def _udp_packet(payload, seq, dscp, src_port=7777):
    frame = build_udp_frame(
        src_mac="02:00:00:00:00:01",
        dst_mac="02:00:00:00:00:02",
        src_ip="10.0.0.1",
        dst_ip="10.0.0.2",
        src_port=src_port,
        dst_port=8888,
        payload=payload,
        dscp=dscp,
        identification=seq & 0xFFFF,
    )
    packet = Packet(frame)
    packet.meta.annotations["seq"] = seq
    return packet


def _watch_deliveries(sim, nic):
    """Record (sequence number, delivery timestamp) in delivery order."""
    deliveries = []

    def handler(packet, _queue):
        deliveries.append((packet.meta.annotations.get("seq"), sim.now))

    nic.host.software_handler = handler
    return deliveries


# ----------------------------------------------------------------------
# Scenario runners, parametrized on the batch knob
# ----------------------------------------------------------------------


def run_chaining(batch):
    """Multi-hop chaining with a tight gap: a mix of train-eligible
    uncontended frames, queueing that forces scalar handoffs, and
    same-timestamp races against already-scheduled arrivals."""
    sim = Simulator()
    nic = PanicNic(sim, PanicConfig(
        ports=1,
        offloads=("regex", "checksum", "checksum1"),
        batch_execution=batch,
        offload_params={"regex": {"patterns": [b"x"],
                                  "cycles_per_byte": 0.5}},
    ))
    nic.control.route_dscp(1, ["checksum", "regex", "checksum1"])
    deliveries = _watch_deliveries(sim, nic)
    for i in range(150):
        sim.schedule_at(i * 200_000, nic.inject,
                        _udp_packet(b"y" * 200, seq=i, dscp=1))
    sim.run()
    nic.mesh.assert_drained()
    return deliveries, sim.now, nic.stats()


def run_fault_recovery(batch):
    """Armed crash + health monitor + failover: the fault lands while
    trains are in flight, and the lane must stand down (engine-ready
    checks, heartbeat CONTROL traffic) without perturbing anything."""
    sim = Simulator()
    nic = PanicNic(sim, PanicConfig(
        ports=1,
        offloads=("ipsec", "ipsec1", "compression", "kvcache"),
        seed=3,
        batch_execution=batch,
    ))
    nic.set_backup("ipsec", "ipsec1")
    nic.control.route_dscp(10, ["ipsec"])
    nic.control.route_dscp(12, ["ipsec1"])
    monitor = attach_health_monitor(nic, period_ps=2 * US, timeout_ps=4 * US)
    monitor.start()
    plan = FaultPlan(seed=3).crash_engine(30 * US, "ipsec")
    FaultInjector(nic, plan).arm()
    deliveries = _watch_deliveries(sim, nic)

    def inject(i=0):
        if i >= 200:
            return
        nic.inject(_udp_packet(bytes(120), seq=i, src_port=1000 + i,
                               dscp=10 if i % 2 == 0 else 12))
        sim.schedule(150 * NS, inject, i + 1)

    inject()
    sim.run(until_ps=150 * US)
    monitor.stop()
    sim.run()
    return deliveries, sim.now, nic.stats()


def run_stall_backlog(batch):
    """Stall an engine under load, then recover it: the backlog drains
    through ``try_batch`` (frame trains) when batching is on."""
    sim = Simulator()
    nic = PanicNic(sim, PanicConfig(
        ports=1,
        offloads=("checksum",),
        seed=7,
        batch_execution=batch,
    ))
    nic.control.route_dscp(1, ["checksum"])
    plan = (FaultPlan(seed=7)
            .stall_engine(10 * US, "checksum")
            .recover_engine(80 * US, "checksum"))
    FaultInjector(nic, plan).arm()
    deliveries = _watch_deliveries(sim, nic)
    # Frames 0..29 at a 2 us gap: everything after 10 us queues behind
    # the stalled engine and is still waiting at the 80 us recovery.
    for i in range(30):
        sim.schedule_at(i * 2 * US, nic.inject,
                        _udp_packet(bytes(160), seq=i, dscp=1))
    sim.run()
    nic.mesh.assert_drained()
    return deliveries, sim.now, nic.stats(), nic


def run_traced(batch):
    """Telemetry sampling on: traced packets must go scalar (spans need
    real events) while untraced neighbours keep riding trains, and the
    trace itself must be bit-identical either way."""
    sim = Simulator()
    telemetry = TelemetryConfig(sample_every=4, probe_period_ps=0)
    nic = PanicNic(sim, PanicConfig(
        ports=1,
        offloads=("checksum", "checksum1"),
        seed=11,
        telemetry=telemetry,
        batch_execution=batch,
    ))
    nic.control.route_dscp(1, ["checksum", "checksum1"])
    deliveries = _watch_deliveries(sim, nic)
    for i in range(80):
        sim.schedule_at(i * 500_000, nic.inject,
                        _udp_packet(b"z" * 180, seq=i, dscp=1))
    sim.run()
    nic.mesh.assert_drained()
    trace = nic.telemetry.trace_report()
    return deliveries, sim.now, nic.stats(), trace


def run_control_race(batch):
    """Control-plane reprogramming racing trains at the picosecond.

    A route for DSCP class 2 is installed by an event at exactly frame
    20's injection instant, and a second frame is injected at exactly
    frame 30's instant: same-timestamp FIFO events forbid trains (the
    horizon is None while the lane drains), so both races must resolve
    in scalar schedule order in either mode."""
    sim = Simulator()
    nic = PanicNic(sim, PanicConfig(
        ports=1,
        offloads=("checksum", "checksum1"),
        batch_execution=batch,
    ))
    nic.control.route_dscp(1, ["checksum"])
    deliveries = _watch_deliveries(sim, nic)
    gap = 2 * US
    for i in range(40):
        sim.schedule_at(i * gap, nic.inject,
                        _udp_packet(b"w" * 200, seq=i,
                                    dscp=1 if i % 2 == 0 else 2))
    # Class 2 gains a route mid-stream: odd frames before this instant
    # take the unprogrammed default path, odd frames after it take the
    # two-hop chain -- and the reprogramming event lands at the same
    # timestamp as frame 20's injection.
    sim.schedule_at(20 * gap, nic.control.route_dscp,
                    2, ["checksum", "checksum1"])
    # Two injections at one instant: the second is pending (same-time
    # FIFO) while the first's deferred ride runs, which must refuse.
    sim.schedule_at(30 * gap, nic.inject,
                    _udp_packet(b"w" * 200, seq=100, dscp=1))
    sim.run()
    nic.mesh.assert_drained()
    return deliveries, sim.now, nic.stats()


SCENARIOS = {
    "chaining": run_chaining,
    "fault_recovery": run_fault_recovery,
    "control_race": run_control_race,
}


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_batched_is_bit_identical(scenario):
    run = SCENARIOS[scenario]
    on_deliveries, on_now, on_stats = run(batch=True)
    off_deliveries, off_now, off_stats = run(batch=False)
    # Same packets, same order, same picosecond delivery timestamps.
    assert on_deliveries == off_deliveries
    assert len(on_deliveries) > 0
    # Simulation ends at the same instant.
    assert on_now == off_now
    # Every counter, histogram and meter in the stats tree agrees.
    assert on_stats == off_stats


def test_batched_is_bit_identical_under_stall_backlog():
    on = run_stall_backlog(batch=True)
    off = run_stall_backlog(batch=False)
    assert on[:3] == off[:3]
    assert len(on[0]) == 30


def test_batched_is_bit_identical_with_telemetry():
    on_deliveries, on_now, on_stats, on_trace = run_traced(batch=True)
    off_deliveries, off_now, off_stats, off_trace = run_traced(batch=False)
    assert on_deliveries == off_deliveries
    assert on_now == off_now
    assert on_stats == off_stats
    # The sampled capsule set and every span timestamp agree too.
    assert on_trace == off_trace
    assert len(on_trace) > 0


# ----------------------------------------------------------------------
# The lane must actually fire (else the equivalence above is vacuous)
# ----------------------------------------------------------------------


def test_trains_actually_fire_and_elide_events():
    def run(batch):
        sim = Simulator()
        nic = PanicNic(sim, PanicConfig(
            ports=1, offloads=("checksum", "checksum1"),
            batch_execution=batch,
        ))
        nic.control.route_dscp(1, ["checksum", "checksum1"])
        for i in range(50):
            sim.schedule_at(i * 20_000_000, nic.inject,
                            _udp_packet(b"y" * 200, seq=i, dscp=1))
        sim.run()
        return sim.events_fired, nic

    on_events, on_nic = run(batch=True)
    off_events, off_nic = run(batch=False)
    assert off_nic.train_lane is None
    lane = on_nic.train_lane.stats()
    # Every uncontended frame rides a full trajectory train...
    assert lane["trajectories"] == 50
    assert lane["trajectory_hops"] > 0
    # ...so the batched run fires a small fraction of the events.
    assert on_events < off_events // 3


def test_frame_trains_fire_on_stalled_backlog():
    _, _, _, nic = run_stall_backlog(batch=True)
    lane = nic.train_lane.stats()
    # The post-recovery drain vectorized multi-frame trains through
    # service_many, not just per-frame trajectories.
    assert lane["batches"] > 0
    assert lane["batched_frames"] >= 2 * lane["batches"]


def test_traced_frames_hand_off_but_neighbours_still_ride():
    sim = Simulator()
    telemetry = TelemetryConfig(sample_every=4, probe_period_ps=0)
    nic = PanicNic(sim, PanicConfig(
        ports=1, offloads=("checksum",), seed=11,
        telemetry=telemetry, batch_execution=True,
    ))
    nic.control.route_dscp(1, ["checksum"])
    for i in range(80):
        sim.schedule_at(i * 500_000, nic.inject,
                        _udp_packet(b"z" * 180, seq=i, dscp=1))
    sim.run()
    lane = nic.train_lane.stats()
    # Untraced frames ride; traced ones are refused into scalar events.
    assert 0 < lane["trajectories"] < 80
    assert len(nic.telemetry.trace_report()) > 0


# ----------------------------------------------------------------------
# Sharded racks: batch on/off and mono/sharded all agree
# ----------------------------------------------------------------------


def _rack_reports(batch, workers=None):
    topo = rack_topology(nics=4, frames=6, batch=batch)
    if workers is None:
        return run_monolithic(topo).reports
    return run_sharded(topo, workers=workers).reports


def test_rack_mono_batch_matches_scalar():
    assert _rack_reports(batch=True) == _rack_reports(batch=False)


@pytest.mark.parametrize("workers", [2, 4])
def test_rack_sharded_batch_matches_mono(workers):
    mono = _rack_reports(batch=True)
    sharded = _rack_reports(batch=True, workers=workers)
    assert sorted(sharded) == sorted(mono)
    for name, report in mono.items():
        assert sharded[name]["deliveries"] == report["deliveries"]
        assert sharded[name]["stats"] == report["stats"]


# ----------------------------------------------------------------------
# Lifetime: the lane holds no packet references after the run
# ----------------------------------------------------------------------


class _WeakrefPacket(Packet):
    """Packet is slotted; this adds just enough to hang a weakref on."""

    __slots__ = ("__weakref__",)


def test_lane_releases_packets_after_run():
    sim = Simulator()
    nic = PanicNic(sim, PanicConfig(
        ports=1, offloads=("checksum",), batch_execution=True,
    ))
    nic.control.route_dscp(1, ["checksum"])
    refs = []
    for i in range(10):
        template = _udp_packet(b"r" * 64, seq=i, dscp=1)
        packet = _WeakrefPacket(template.data)
        packet.meta.annotations["seq"] = i
        refs.append(weakref.ref(packet))
        sim.schedule_at(i * 2 * US, nic.inject, packet)
        del template, packet
    sim.run()
    assert nic.train_lane.stats()["trajectories"] > 0
    gc.collect()
    # The lane's memo tables key on scalars, not packets; nothing may
    # pin the frames after their trajectories complete.
    assert all(ref() is None for ref in refs)
