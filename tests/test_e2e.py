"""End-to-end integration: two NICs on a wire, combined feature runs.

These tests exercise whole-system scenarios that cut across every
subpackage at once -- the closest thing to the paper's deployment story.
"""

import pytest

from repro.core import HostKvServer, PanicConfig, PanicNic
from repro.packet import (
    KvOpcode,
    KvRequest,
    KvStatus,
    Packet,
    build_kv_request_frame,
    build_udp_frame,
    parse_frame,
)
from repro.sim import Simulator
from repro.sim.clock import NS, US
from repro.workloads import Wire


def kv_frame_bytes(opcode, tenant, request_id, key, value=b""):
    request = KvRequest(opcode, tenant, request_id, key, value)
    return build_kv_request_frame(request).data


class TestTwoNicWire:
    def build_pair(self, sim, propagation_ps=500 * NS):
        client = PanicNic(sim, PanicConfig(ports=1), name="client")
        server = PanicNic(sim, PanicConfig(ports=1), name="server")
        server.control.enable_kv_cache()
        HostKvServer(server.host)
        wire = Wire(sim, client, server, propagation_ps=propagation_ps)
        return client, server, wire

    def test_client_host_request_served_by_server_nic_cache(self, sim):
        client, server, wire = self.build_pair(sim)
        server.offload("kvcache").cache_put(b"hot", b"from-server-nic")
        responses = []

        def client_rx(packet, queue):
            frame = parse_frame(packet.data)
            if frame.is_kv and frame.payload[0] == KvOpcode.RESPONSE:
                responses.append(frame.kv_response())

        client.host.software_handler = client_rx
        # The client's application posts a request to its own NIC.
        client.host.enqueue_tx(
            kv_frame_bytes(KvOpcode.GET, 1, 77, b"hot"), queue=0
        )
        sim.run()
        assert len(responses) == 1
        assert responses[0].value == b"from-server-nic"
        assert responses[0].request_id == 77
        # The server host CPU never ran: pure NIC-to-NIC round trip.
        assert server.host.interrupts_taken.value == 0
        assert wire.a_to_b.value == 1 and wire.b_to_a.value == 1

    def test_server_host_serves_cache_miss_over_wire(self, sim):
        client, server, wire = self.build_pair(sim)
        server.host.store(b"cold", b"from-server-host")
        responses = []

        def client_rx(packet, queue):
            frame = parse_frame(packet.data)
            if frame.is_kv and frame.payload[0] == KvOpcode.RESPONSE:
                responses.append(frame.kv_response())

        client.host.software_handler = client_rx
        client.host.enqueue_tx(
            kv_frame_bytes(KvOpcode.GET, 1, 88, b"cold"), queue=0
        )
        sim.run()
        assert len(responses) == 1
        assert responses[0].value == b"from-server-host"
        assert server.host.interrupts_taken.value >= 1

    def test_propagation_delay_respected(self):
        rtts = {}
        for prop in (500 * NS, 50 * US):
            sim = Simulator()
            client, server, _wire = self.build_pair(sim, propagation_ps=prop)
            server.offload("kvcache").cache_put(b"k", b"v")
            done = {}

            def client_rx(packet, queue):
                done.setdefault("t", sim.now)

            client.host.software_handler = client_rx
            start = sim.now
            client.host.enqueue_tx(kv_frame_bytes(KvOpcode.GET, 1, 1, b"k"))
            sim.run()
            rtts[prop] = done["t"] - start
        assert rtts[50 * US] - rtts[500 * NS] >= 2 * (50 * US - 500 * NS) * 0.99

    def test_set_then_get_consistency_across_wire(self, sim):
        client, server, _wire = self.build_pair(sim)
        responses = []

        def client_rx(packet, queue):
            frame = parse_frame(packet.data)
            if frame.is_kv and frame.payload[0] == KvOpcode.RESPONSE:
                responses.append(frame.kv_response())

        client.host.software_handler = client_rx
        client.host.enqueue_tx(
            kv_frame_bytes(KvOpcode.SET, 2, 1, b"key", b"written")
        )
        sim.run()
        client.host.enqueue_tx(kv_frame_bytes(KvOpcode.GET, 2, 2, b"key"))
        sim.run()
        assert [r.request_id for r in responses] == [1, 2]
        assert responses[1].value == b"written"
        assert server.host.memory[b"key"] == b"written"


class TestCombinedFeatures:
    def test_pointer_mode_with_backpressure_and_chains(self, sim):
        nic = PanicNic(sim, PanicConfig(
            ports=1,
            offloads=("checksum", "regex"),
            offload_params={"regex": {"patterns": [b"x"]}},
            payload_mode="pointer",
            queue_capacity=4,
            overflow="backpressure",
        ))
        nic.control.route_dscp(1, ["checksum", "regex"])
        delivered = []
        nic.host.software_handler = lambda p, q: delivered.append(p)
        for i in range(30):
            frame = build_udp_frame(
                src_mac="02:00:00:00:00:01", dst_mac="02:00:00:00:00:02",
                src_ip="10.0.0.1", dst_ip="10.0.0.2",
                src_port=1, dst_port=2, payload=bytes(800),
                dscp=1, identification=i,
            )
            nic.inject(Packet(frame))
        sim.run()
        assert len(delivered) == 30
        assert nic.payload_buffer.live_handles == 0
        assert all(e.queue.dropped.value == 0 for e in nic.engines.values())

    def test_ipsec_plus_compression_chain(self, sim):
        """Decrypt, then decompress, then deliver -- a 2-offload chain
        with real transformations at each hop."""
        from repro.engines import IpsecSa, compress

        nic = PanicNic(sim, PanicConfig(
            ports=1, offloads=("ipsec", "compression")))
        nic.control.enable_ipsec_rx()
        ipsec = nic.offload("ipsec")
        ipsec.install_sa(IpsecSa(spi=0x42, key=b"k", tunnel_src="1.1.1.1",
                                 tunnel_dst="2.2.2.2"))
        # After decryption the inner packet (compressed payload) heads
        # through the compression engine for inflation.
        nic.control.route_dscp(9, ["compression"])

        original_payload = b"the quick brown fox " * 40
        inner = build_udp_frame(
            src_mac="02:00:00:00:00:01", dst_mac="02:00:00:00:00:02",
            src_ip="10.0.0.1", dst_ip="10.0.0.2",
            src_port=5, dst_port=6,
            payload=compress(original_payload), dscp=9,
        )
        encrypted = ipsec.encrypt(Packet(inner), 0x42)

        delivered = []
        nic.host.software_handler = lambda p, q: delivered.append(p)
        nic.inject(encrypted)
        sim.run()
        assert len(delivered) == 1
        final = parse_frame(delivered[0].data)
        assert final.payload == original_payload
        assert nic.offload("ipsec").decrypted.value == 1
        assert nic.offload("compression").decompressed.value == 1

    def test_multiport_steering(self, sim):
        """Frames from port 1 get responses back out port 1."""
        nic = PanicNic(sim, PanicConfig(ports=2))
        nic.control.enable_kv_cache()
        nic.offload("kvcache").cache_put(b"k", b"v")
        nic.inject(build_kv_request_frame(KvRequest(KvOpcode.GET, 1, 1, b"k")),
                   port=1)
        nic.inject(build_kv_request_frame(KvRequest(KvOpcode.GET, 1, 2, b"k")),
                   port=0)
        sim.run()
        by_port = {p.meta.egress_port for p in nic.transmitted}
        assert by_port == {0, 1}
