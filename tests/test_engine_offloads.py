"""Functional tests for the offload engines (IPSec, compression, KV
cache, checksum, regex) -- they transform real bytes, so we assert real
round trips, not just counters."""

import pytest

from repro.engines import (
    AhoCorasick,
    ChecksumEngine,
    CompressionEngine,
    CompressionError,
    IpsecEngine,
    IpsecError,
    IpsecSa,
    KvCacheEngine,
    RegexEngine,
    compress,
    decompress,
    keystream,
)
from repro.packet import (
    IP_PROTO_ESP,
    KvOpcode,
    KvRequest,
    KvStatus,
    Packet,
    build_kv_request_frame,
    build_udp_frame,
    parse_frame,
)
from repro.packet.packet import Direction
from repro.sim import Simulator


def udp_packet(payload=b"payload", dscp=0):
    return Packet(
        build_udp_frame(
            src_mac="02:00:00:00:00:01",
            dst_mac="02:00:00:00:00:02",
            src_ip="10.0.0.1",
            dst_ip="10.9.0.2",
            src_port=5555,
            dst_port=6666,
            payload=payload,
            dscp=dscp,
        )
    )


@pytest.fixture
def ipsec(sim):
    engine = IpsecEngine(sim, "ipsec")
    engine.install_sa(
        IpsecSa(spi=0x100, key=b"secret", tunnel_src="1.1.1.1", tunnel_dst="2.2.2.2")
    )
    return engine


class TestIpsec:
    def test_encrypt_decrypt_roundtrip(self, ipsec):
        original = udp_packet(b"top secret payload")
        encrypted = ipsec.encrypt(original, 0x100)
        outer = parse_frame(encrypted.data)
        assert outer.ipv4.protocol == IP_PROTO_ESP
        assert outer.esp.spi == 0x100
        assert b"top secret" not in encrypted.data
        decrypted = ipsec.decrypt(encrypted)
        assert parse_frame(decrypted.data).payload == b"top secret payload"

    def test_tunnel_endpoints_from_sa(self, ipsec):
        encrypted = ipsec.encrypt(udp_packet(), 0x100)
        outer = parse_frame(encrypted.data)
        assert str(outer.ipv4.src) == "1.1.1.1"
        assert str(outer.ipv4.dst) == "2.2.2.2"

    def test_sequence_numbers_increment(self, ipsec):
        first = ipsec.encrypt(udp_packet(), 0x100)
        second = ipsec.encrypt(udp_packet(), 0x100)
        assert parse_frame(first.data).esp.seq == 1
        assert parse_frame(second.data).esp.seq == 2

    def test_same_plaintext_different_ciphertext(self, ipsec):
        a = ipsec.encrypt(udp_packet(b"same"), 0x100)
        b = ipsec.encrypt(udp_packet(b"same"), 0x100)
        assert a.data != b.data  # seq feeds the keystream

    def test_tampered_ciphertext_fails_auth(self, ipsec):
        encrypted = ipsec.encrypt(udp_packet(), 0x100)
        tampered = bytearray(encrypted.data)
        tampered[-10] ^= 0x01
        with pytest.raises(IpsecError):
            ipsec.decrypt(Packet(bytes(tampered)))
        assert ipsec.auth_failures.value == 1

    def test_unknown_spi_rejected(self, ipsec):
        with pytest.raises(IpsecError):
            ipsec.encrypt(udp_packet(), 0x999)

    def test_handle_classifies_esp_for_decrypt(self, ipsec):
        encrypted = ipsec.encrypt(udp_packet(b"x"), 0x100)
        outputs = ipsec.handle(encrypted)
        assert len(outputs) == 1
        assert outputs[0][0].meta.annotations.get("ipsec_decrypted")

    def test_handle_encrypts_on_annotation(self, ipsec):
        packet = udp_packet()
        packet.meta.annotations["ipsec_spi"] = 0x100
        outputs = ipsec.handle(packet)
        assert outputs[0][0].meta.annotations.get("ipsec_encrypted")

    def test_handle_passthrough_for_plain_traffic(self, ipsec):
        packet = udp_packet()
        outputs = ipsec.handle(packet)
        assert outputs[0][0] is packet

    def test_service_time_scales_with_size(self, ipsec):
        small = udp_packet(b"x")
        large = udp_packet(b"x" * 1000)
        assert ipsec.service_time_ps(large) > ipsec.service_time_ps(small)

    def test_keystream_deterministic(self):
        assert keystream(b"k", 1, 2, 64) == keystream(b"k", 1, 2, 64)
        assert keystream(b"k", 1, 2, 64) != keystream(b"k", 1, 3, 64)

    def test_duplicate_sa_rejected(self, ipsec):
        with pytest.raises(ValueError):
            ipsec.install_sa(
                IpsecSa(spi=0x100, key=b"k", tunnel_src="1.1.1.1",
                        tunnel_dst="2.2.2.2")
            )


class TestCompressionCodec:
    @pytest.mark.parametrize(
        "data",
        [
            b"",
            b"a",
            b"abcabcabcabcabcabc",
            b"the quick brown fox " * 50,
            bytes(range(256)),
            b"\x00" * 1000,
        ],
    )
    def test_roundtrip(self, data):
        assert decompress(compress(data)) == data

    def test_repetitive_data_shrinks(self):
        data = b"hello world, " * 100
        assert len(compress(data)) < len(data) // 2

    def test_bad_magic_rejected(self):
        with pytest.raises(CompressionError):
            decompress(b"XXX\x00\x00\x00\x00")

    def test_truncated_stream_rejected(self):
        blob = compress(b"hello hello hello hello")
        with pytest.raises(CompressionError):
            decompress(blob[:-2])

    def test_length_mismatch_detected(self):
        blob = bytearray(compress(b"aaaaaaaaaaaaaaaa"))
        blob[3:7] = (999).to_bytes(4, "big")
        with pytest.raises(CompressionError):
            decompress(bytes(blob))


class TestCompressionEngine:
    def test_compress_annotation_transforms_frame(self, sim):
        engine = CompressionEngine(sim, "comp")
        packet = udp_packet(b"abc " * 100)
        packet.meta.annotations["compress"] = True
        out = engine.handle(packet)[0][0]
        assert out.frame_bytes < packet.frame_bytes
        assert out.meta.annotations.get("compressed")

    def test_decompress_on_magic(self, sim):
        engine = CompressionEngine(sim, "comp")
        packet = udp_packet(b"abc " * 100)
        packet.meta.annotations["compress"] = True
        compressed = engine.handle(packet)[0][0]
        restored = engine.handle(compressed)[0][0]
        assert parse_frame(restored.data).payload == b"abc " * 100

    def test_incompressible_payload_passes_unchanged(self, sim):
        import os

        engine = CompressionEngine(sim, "comp")
        packet = udp_packet(bytes(os.urandom(64)))
        packet.meta.annotations["compress"] = True
        out = engine.handle(packet)[0][0]
        assert out is packet

    def test_non_udp_passthrough(self, sim):
        engine = CompressionEngine(sim, "comp")
        packet = Packet(b"\x00" * 60)
        assert engine.handle(packet)[0][0] is packet

    def test_bytes_saved_counter(self, sim):
        engine = CompressionEngine(sim, "comp")
        packet = udp_packet(b"abc " * 100)
        packet.meta.annotations["compress"] = True
        engine.handle(packet)
        assert engine.bytes_saved.value > 0


class TestKvCacheEngine:
    def test_lru_eviction(self, sim):
        cache = KvCacheEngine(sim, "kv", capacity_bytes=30)
        cache.cache_put(b"a", b"0123456789")  # 11 bytes
        cache.cache_put(b"b", b"0123456789")
        cache.cache_get(b"a")  # refresh a
        cache.cache_put(b"c", b"0123456789")  # evicts b (LRU)
        assert cache.cache_get(b"b") is None
        assert cache.cache_get(b"a") is not None
        assert cache.evictions.value == 1

    def test_capacity_accounting_on_update(self, sim):
        cache = KvCacheEngine(sim, "kv", capacity_bytes=100)
        cache.cache_put(b"k", b"x" * 50)
        cache.cache_put(b"k", b"y" * 10)
        assert cache.used_bytes == 11

    def test_oversized_entry_rejected(self, sim):
        cache = KvCacheEngine(sim, "kv", capacity_bytes=10)
        with pytest.raises(ValueError):
            cache.cache_put(b"k", b"x" * 100)

    def test_get_hit_builds_response(self, sim):
        cache = KvCacheEngine(sim, "kv")
        cache.cache_put(b"key", b"val")
        request = build_kv_request_frame(KvRequest(KvOpcode.GET, 7, 55, b"key"))
        outputs = cache.handle(request)
        response = parse_frame(outputs[0][0].data).kv_response()
        assert response.status == KvStatus.OK
        assert response.value == b"val"
        assert response.request_id == 55
        assert cache.hits.value == 1

    def test_get_response_swaps_addressing(self, sim):
        cache = KvCacheEngine(sim, "kv")
        cache.cache_put(b"key", b"val")
        request = build_kv_request_frame(KvRequest(KvOpcode.GET, 7, 55, b"key"))
        req_frame = parse_frame(request.data)
        out = cache.handle(request)[0][0]
        resp_frame = parse_frame(out.data)
        assert resp_frame.ipv4.dst == req_frame.ipv4.src
        assert resp_frame.udp.dst_port == req_frame.udp.src_port

    def test_get_miss_continues_chain(self, sim):
        cache = KvCacheEngine(sim, "kv")
        request = build_kv_request_frame(KvRequest(KvOpcode.GET, 7, 55, b"nope"))
        outputs = cache.handle(request)
        assert outputs[0][0] is request
        assert cache.misses.value == 1

    def test_set_writes_through_only_hot_keys(self, sim):
        cache = KvCacheEngine(sim, "kv")
        cache.cache_put(b"hot", b"old")
        hot_set = build_kv_request_frame(
            KvRequest(KvOpcode.SET, 7, 1, b"hot", b"new")
        )
        cold_set = build_kv_request_frame(
            KvRequest(KvOpcode.SET, 7, 2, b"cold", b"value")
        )
        cache.handle(hot_set)
        cache.handle(cold_set)
        assert cache.cache_get(b"hot") == b"new"
        assert cache.cache_get(b"cold") is None
        assert cache.writethroughs.value == 1

    def test_delete_invalidates(self, sim):
        cache = KvCacheEngine(sim, "kv")
        cache.cache_put(b"k", b"v")
        request = build_kv_request_frame(KvRequest(KvOpcode.DELETE, 7, 3, b"k"))
        cache.handle(request)
        assert cache.cache_get(b"k") is None

    def test_non_kv_traffic_passthrough(self, sim):
        cache = KvCacheEngine(sim, "kv")
        packet = udp_packet()
        assert cache.handle(packet)[0][0] is packet


class TestChecksumEngine:
    def test_rx_valid_checksum_annotated(self, sim):
        engine = ChecksumEngine(sim, "csum")
        packet = udp_packet()
        out = engine.handle(packet)[0][0]
        assert out.meta.annotations["csum_ok"] is True
        assert engine.verified.value == 1

    def test_rx_corrupted_detected(self, sim):
        engine = ChecksumEngine(sim, "csum")
        raw = bytearray(udp_packet(b"payload!").data)
        raw[-1] ^= 0xFF  # flip payload byte; UDP checksum now wrong
        out = engine.handle(Packet(bytes(raw)))[0][0]
        assert out.meta.annotations["csum_ok"] is False
        assert engine.bad_checksums.value == 1

    def test_tx_regenerates_checksums(self, sim):
        engine = ChecksumEngine(sim, "csum")
        packet = udp_packet(b"data")
        packet.meta.direction = Direction.TX
        out = engine.handle(packet)[0][0]
        assert out.meta.annotations.get("csum_generated")
        out.meta.direction = Direction.RX  # now verify like a receiver
        verify = ChecksumEngine(sim, "csum2")
        checked = verify.handle(out)[0][0]
        assert checked.meta.annotations["csum_ok"] is True

    def test_non_ip_passthrough(self, sim):
        engine = ChecksumEngine(sim, "csum")
        packet = Packet(b"\x00" * 60)
        assert engine.handle(packet)[0][0] is packet


class TestAhoCorasick:
    def test_overlapping_patterns(self):
        ac = AhoCorasick([b"he", b"she", b"his", b"hers"])
        hits = {idx for _end, idx in ac.search(b"ushers")}
        assert hits == {0, 1, 3}  # he, she, hers

    def test_no_match(self):
        assert AhoCorasick([b"xyz"]).search(b"abcabc") == []

    def test_match_positions(self):
        ac = AhoCorasick([b"ab"])
        assert ac.search(b"abab") == [(2, 0), (4, 0)]

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            AhoCorasick([b""])


class TestRegexEngine:
    def test_annotates_matches(self, sim):
        engine = RegexEngine(sim, "dpi", patterns=[b"attack"])
        packet = udp_packet(b"this is an attack payload")
        out = engine.handle(packet)[0][0]
        matches = out.meta.annotations["dpi_matches"]
        assert any(pattern == b"attack" for _end, pattern in matches)

    def test_block_pattern_drops(self, sim):
        engine = RegexEngine(sim, "dpi", block_patterns=[b"EVIL"])
        packet = udp_packet(b"xxEVILxx")
        assert engine.handle(packet) == []
        assert engine.blocked.value == 1

    def test_watch_pattern_does_not_drop(self, sim):
        engine = RegexEngine(
            sim, "dpi", patterns=[b"watch"], block_patterns=[b"EVIL"]
        )
        packet = udp_packet(b"just watch me")
        outputs = engine.handle(packet)
        assert len(outputs) == 1

    def test_no_patterns_passthrough(self, sim):
        engine = RegexEngine(sim, "dpi")
        packet = udp_packet(b"anything")
        assert engine.handle(packet)[0][0] is packet
