"""Shared fixtures for the PANIC reproduction test suite."""

import pytest

from repro.core import PanicConfig, PanicNic
from repro.sim import Simulator


@pytest.fixture
def sim():
    """A fresh simulator."""
    return Simulator()


@pytest.fixture
def nic(sim):
    """A single-port PANIC NIC with the default offload set."""
    return PanicNic(sim, PanicConfig(ports=1, mesh_width=4, mesh_height=4))
