"""The fast path must be invisible in simulated results.

``PanicConfig.fast_path`` enables the kernel fast lanes and the
cut-through NoC ExpressFlights.  Both are pure wall-clock optimisations:
the equivalence contract (see DESIGN.md, "Performance model & fast
path") is that every simulated observable -- delivery order, picosecond
timestamps, the full ``PanicNic.stats()`` tree -- is bit-identical with
the fast path forced on and forced off.  These tests enforce that
contract on the two scenarios that stress it hardest: multi-hop
chaining (maximum cut-through eligibility) and fault recovery (armed
fault injection + crash + failover, where the fast path must stand
down without perturbing anything).
"""

import pytest

from repro.core import PanicConfig, PanicNic
from repro.faults import FaultInjector, FaultPlan, attach_health_monitor
from repro.packet import Packet, build_udp_frame
from repro.sim import Simulator
from repro.sim.clock import NS, US


def _udp_packet(payload, seq, dscp, src_port=7777):
    frame = build_udp_frame(
        src_mac="02:00:00:00:00:01",
        dst_mac="02:00:00:00:00:02",
        src_ip="10.0.0.1",
        dst_ip="10.0.0.2",
        src_port=src_port,
        dst_port=8888,
        payload=payload,
        dscp=dscp,
        identification=seq & 0xFFFF,
    )
    packet = Packet(frame)
    packet.meta.annotations["seq"] = seq
    return packet


def _watch_deliveries(sim, nic):
    """Record (sequence number, delivery timestamp) in delivery order."""
    deliveries = []

    def handler(packet, _queue):
        deliveries.append((packet.meta.annotations.get("seq"), sim.now))

    nic.host.software_handler = handler
    return deliveries


def run_chaining(fast_path):
    sim = Simulator()
    nic = PanicNic(sim, PanicConfig(
        ports=1,
        offloads=("regex", "checksum", "checksum1"),
        fast_path=fast_path,
        offload_params={"regex": {"patterns": [b"x"],
                                  "cycles_per_byte": 0.5}},
    ))
    nic.control.route_dscp(1, ["checksum", "regex", "checksum1"])
    deliveries = _watch_deliveries(sim, nic)
    # Tight gap: a mix of uncontended starts, queueing, and express
    # de-speculation as packets catch up with each other.
    for i in range(150):
        sim.schedule_at(i * 200_000, nic.inject,
                        _udp_packet(b"y" * 200, seq=i, dscp=1))
    sim.run()
    nic.mesh.assert_drained()
    return deliveries, sim.now, nic.stats()


def run_fault_recovery(fast_path):
    sim = Simulator()
    nic = PanicNic(sim, PanicConfig(
        ports=1,
        offloads=("ipsec", "ipsec1", "compression", "kvcache"),
        seed=3,
        fast_path=fast_path,
    ))
    nic.set_backup("ipsec", "ipsec1")
    nic.control.route_dscp(10, ["ipsec"])
    nic.control.route_dscp(12, ["ipsec1"])
    monitor = attach_health_monitor(nic, period_ps=2 * US, timeout_ps=4 * US)
    monitor.start()
    plan = FaultPlan(seed=3).crash_engine(30 * US, "ipsec")
    FaultInjector(nic, plan).arm()
    deliveries = _watch_deliveries(sim, nic)

    def inject(i=0):
        if i >= 200:
            return
        nic.inject(_udp_packet(bytes(120), seq=i, src_port=1000 + i,
                               dscp=10 if i % 2 == 0 else 12))
        sim.schedule(150 * NS, inject, i + 1)

    inject()
    sim.run(until_ps=150 * US)
    monitor.stop()
    sim.run()
    return deliveries, sim.now, nic.stats()


SCENARIOS = {
    "chaining": run_chaining,
    "fault_recovery": run_fault_recovery,
}


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_fast_path_is_bit_identical(scenario):
    run = SCENARIOS[scenario]
    fast_deliveries, fast_now, fast_stats = run(fast_path=True)
    slow_deliveries, slow_now, slow_stats = run(fast_path=False)
    # Same packets, same order, same picosecond delivery timestamps.
    assert fast_deliveries == slow_deliveries
    assert len(fast_deliveries) > 0
    # Simulation ends at the same instant.
    assert fast_now == slow_now
    # Every counter, histogram and meter in the stats tree agrees.
    assert fast_stats == slow_stats


def test_fast_path_fires_fewer_events_on_chaining():
    """The fast path must actually elide kernel events (else it is dead
    code); the equivalence above proves the elision is invisible."""

    def events(fast_path):
        sim = Simulator()
        nic = PanicNic(sim, PanicConfig(
            ports=1, offloads=("checksum", "checksum1"),
            fast_path=fast_path,
        ))
        nic.control.route_dscp(1, ["checksum", "checksum1"])
        for i in range(50):
            sim.schedule_at(i * 20_000_000, nic.inject,
                            _udp_packet(b"y" * 200, seq=i, dscp=1))
        sim.run()
        return sim.events_fired

    assert events(True) < events(False)
