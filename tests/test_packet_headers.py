"""Tests for addresses, checksums and wire-format headers."""

import pytest

from repro.packet import (
    BROADCAST_MAC,
    EthernetHeader,
    EspHeader,
    ETHERTYPE_IPV4,
    HeaderError,
    IP_PROTO_TCP,
    IP_PROTO_UDP,
    IPv4Address,
    Ipv4Header,
    MacAddress,
    TcpHeader,
    UdpHeader,
    crc32,
    internet_checksum,
    verify_internet_checksum,
)


class TestMacAddress:
    def test_from_string_roundtrip(self):
        mac = MacAddress("02:00:00:00:00:2a")
        assert str(mac) == "02:00:00:00:00:2a"
        assert mac.value == 0x02000000002A

    def test_from_bytes_roundtrip(self):
        raw = bytes.fromhex("0200000000ff")
        assert MacAddress(raw).to_bytes() == raw

    def test_broadcast(self):
        assert BROADCAST_MAC.is_broadcast
        assert not MacAddress(0).is_broadcast

    def test_multicast_bit(self):
        assert MacAddress("01:00:5e:00:00:01").is_multicast
        assert not MacAddress("02:00:00:00:00:01").is_multicast

    def test_malformed_string_rejected(self):
        with pytest.raises(ValueError):
            MacAddress("not-a-mac")

    def test_wrong_byte_length_rejected(self):
        with pytest.raises(ValueError):
            MacAddress(b"\x00" * 5)

    def test_out_of_range_int_rejected(self):
        with pytest.raises(ValueError):
            MacAddress(1 << 48)

    def test_equality_and_hash(self):
        a = MacAddress("02:00:00:00:00:01")
        b = MacAddress(0x020000000001)
        assert a == b and hash(a) == hash(b)


class TestIPv4Address:
    def test_from_string_roundtrip(self):
        ip = IPv4Address("192.168.1.200")
        assert str(ip) == "192.168.1.200"

    def test_from_int(self):
        assert str(IPv4Address(0x0A000001)) == "10.0.0.1"

    def test_octet_out_of_range(self):
        with pytest.raises(ValueError):
            IPv4Address("1.2.3.256")

    def test_wrong_part_count(self):
        with pytest.raises(ValueError):
            IPv4Address("1.2.3")

    def test_subnet_membership(self):
        ip = IPv4Address("10.1.2.3")
        assert ip.in_subnet(IPv4Address("10.0.0.0"), 8)
        assert not ip.in_subnet(IPv4Address("10.2.0.0"), 16)
        assert ip.in_subnet(IPv4Address("0.0.0.0"), 0)

    def test_subnet_prefix_validated(self):
        with pytest.raises(ValueError):
            IPv4Address("1.2.3.4").in_subnet(IPv4Address("0.0.0.0"), 33)

    def test_ordering(self):
        assert IPv4Address("1.0.0.1") < IPv4Address("2.0.0.0")


class TestChecksums:
    def test_rfc1071_example(self):
        # Known vector: 0x0001 0xf203 0xf4f5 0xf6f7 -> checksum 0x220d
        data = bytes.fromhex("0001f203f4f5f6f7")
        assert internet_checksum(data) == 0x220D

    def test_verify_roundtrip(self):
        data = b"hello checksum world"
        cksum = internet_checksum(data)
        stamped = data + cksum.to_bytes(2, "big")
        assert verify_internet_checksum(stamped)

    def test_odd_length_padding(self):
        assert internet_checksum(b"\xff") == internet_checksum(b"\xff\x00")

    def test_corruption_detected(self):
        data = bytearray(b"some payload..")
        stamped = bytes(data) + internet_checksum(bytes(data)).to_bytes(2, "big")
        corrupted = bytearray(stamped)
        corrupted[0] ^= 0x40
        assert not verify_internet_checksum(bytes(corrupted))

    def test_crc32_matches_zlib(self):
        import zlib

        for blob in (b"", b"a", b"hello world", bytes(range(256))):
            assert crc32(blob) == zlib.crc32(blob)


class TestEthernetHeader:
    def test_pack_unpack_roundtrip(self):
        eth = EthernetHeader("02:00:00:00:00:02", "02:00:00:00:00:01", 0x0800)
        parsed, rest = EthernetHeader.unpack(eth.pack() + b"payload")
        assert parsed == eth
        assert rest == b"payload"

    def test_length_is_14(self):
        eth = EthernetHeader(MacAddress(1), MacAddress(2))
        assert len(eth.pack()) == 14

    def test_truncated_rejected(self):
        with pytest.raises(HeaderError):
            EthernetHeader.unpack(b"\x00" * 13)

    def test_bad_ethertype_rejected(self):
        with pytest.raises(HeaderError):
            EthernetHeader(MacAddress(0), MacAddress(0), 0x1_0000)


class TestIpv4Header:
    def _header(self, **kwargs):
        defaults = dict(src="10.0.0.1", dst="10.0.0.2", protocol=IP_PROTO_UDP,
                        total_length=40)
        defaults.update(kwargs)
        return Ipv4Header(**defaults)

    def test_pack_unpack_roundtrip(self):
        header = self._header(ttl=17, dscp=9, identification=0xBEEF)
        parsed, rest = Ipv4Header.unpack(header.pack() + b"x")
        assert parsed.src == header.src
        assert parsed.dst == header.dst
        assert parsed.ttl == 17
        assert parsed.dscp == 9
        assert parsed.identification == 0xBEEF
        assert rest == b"x"

    def test_header_checksum_valid(self):
        packed = self._header().pack()
        assert verify_internet_checksum(packed)

    def test_version_validated(self):
        bad = bytearray(self._header().pack())
        bad[0] = (6 << 4) | 5
        with pytest.raises(HeaderError):
            Ipv4Header.unpack(bytes(bad))

    def test_options_unsupported(self):
        bad = bytearray(self._header().pack())
        bad[0] = (4 << 4) | 6
        with pytest.raises(HeaderError):
            Ipv4Header.unpack(bytes(bad) + b"\x00" * 8)

    def test_total_length_validated(self):
        with pytest.raises(HeaderError):
            self._header(total_length=19)

    def test_pseudo_header_layout(self):
        header = self._header()
        pseudo = header.pseudo_header(8)
        assert len(pseudo) == 12
        assert pseudo[9] == IP_PROTO_UDP
        assert int.from_bytes(pseudo[10:12], "big") == 8


class TestUdpTcpEsp:
    def test_udp_roundtrip(self):
        udp = UdpHeader(1234, 80, 20, 0xABCD)
        parsed, rest = UdpHeader.unpack(udp.pack() + b"zz")
        assert parsed == udp
        assert rest == b"zz"

    def test_udp_checksum_valid_over_pseudo_header(self):
        ip = Ipv4Header(src="10.0.0.1", dst="10.0.0.2", total_length=20 + 8 + 5)
        payload = b"hello"
        udp = UdpHeader(1000, 2000, 8 + 5)
        datagram = udp.pack_with_checksum(ip, payload) + payload
        assert verify_internet_checksum(ip.pseudo_header(len(datagram)) + datagram)

    def test_udp_port_validated(self):
        with pytest.raises(HeaderError):
            UdpHeader(70000, 80)

    def test_tcp_roundtrip(self):
        tcp = TcpHeader(5000, 443, seq=7, ack=9, flags=TcpHeader.FLAG_SYN)
        parsed, rest = TcpHeader.unpack(tcp.pack() + b"body")
        assert parsed.src_port == 5000
        assert parsed.seq == 7
        assert parsed.flags == TcpHeader.FLAG_SYN
        assert rest == b"body"

    def test_tcp_options_skipped(self):
        tcp = TcpHeader(1, 2)
        raw = bytearray(tcp.pack())
        raw[12] = (6 << 4)  # data offset 6 words: 4 bytes of options
        parsed, rest = TcpHeader.unpack(bytes(raw) + b"\x01\x01\x01\x01payload")
        assert rest == b"payload"

    def test_tcp_bad_offset_rejected(self):
        tcp = TcpHeader(1, 2)
        raw = bytearray(tcp.pack())
        raw[12] = (4 << 4)
        with pytest.raises(HeaderError):
            TcpHeader.unpack(bytes(raw))

    def test_esp_roundtrip(self):
        esp = EspHeader(spi=0xDEADBEEF, seq=42)
        parsed, rest = EspHeader.unpack(esp.pack() + b"cipher")
        assert parsed == esp
        assert rest == b"cipher"

    def test_esp_range_validated(self):
        with pytest.raises(HeaderError):
            EspHeader(spi=1 << 32, seq=0)
