"""Tests for traffic sources, the KVS workload, DoS flood and traces."""

import pytest

from repro.core import HostKvServer, PanicConfig, PanicNic
from repro.packet import parse_frame
from repro.sim import Simulator
from repro.sim.clock import SEC, US
from repro.sim.rng import SeededRng
from repro.workloads import (
    CbrSource,
    DosFlood,
    KvsWorkload,
    OnOffSource,
    PoissonSource,
    TenantSpec,
    TraceRecorder,
    TraceReplayer,
    simple_udp_factory,
)


class TestSources:
    def collect(self, sim, source_cls, rate_pps=1_000_000, count=10, **kwargs):
        arrivals = []

        def inject(packet):
            arrivals.append((packet, sim.now))
            return sim.now

        source = source_cls(
            sim, "src", inject, simple_udp_factory(), rate_pps=rate_pps,
            count=count, **kwargs
        )
        source.start()
        sim.run()
        return arrivals

    def test_cbr_constant_gaps(self, sim):
        arrivals = self.collect(sim, CbrSource)
        gaps = {b - a for (_p1, a), (_p2, b) in zip(arrivals, arrivals[1:])}
        assert gaps == {SEC // 1_000_000}
        assert len(arrivals) == 10

    def test_poisson_variable_gaps_with_right_mean(self, sim):
        arrivals = self.collect(
            sim, PoissonSource, rate_pps=1_000_000, count=2000,
            rng=SeededRng(5),
        )
        gaps = [b - a for (_p1, a), (_p2, b) in zip(arrivals, arrivals[1:])]
        mean = sum(gaps) / len(gaps)
        assert 0.9 * SEC / 1e6 < mean < 1.1 * SEC / 1e6
        assert len(set(gaps)) > 100  # genuinely variable

    def test_onoff_bursts(self, sim):
        arrivals = self.collect(
            sim, OnOffSource, rate_pps=1_000_000, count=30,
            on_ps=5 * US, off_ps=50 * US,
        )
        gaps = [b - a for (_p1, a), (_p2, b) in zip(arrivals, arrivals[1:])]
        assert max(gaps) > 40 * US  # the off period shows up
        assert min(gaps) == SEC // 1_000_000

    def test_sequence_cookie_increments(self, sim):
        arrivals = self.collect(sim, CbrSource, count=5)
        seqs = [p.meta.annotations["seq"] for p, _t in arrivals]
        assert seqs == [0, 1, 2, 3, 4]

    def test_stop_time_bound(self, sim):
        arrivals = []
        source = CbrSource(
            sim, "src", lambda p: arrivals.append(p) or sim.now,
            simple_udp_factory(), rate_pps=1_000_000, count=None,
            stop_ps=10 * US,
        )
        source.start()
        sim.run()
        assert 5 <= len(arrivals) <= 11

    def test_source_needs_bound(self, sim):
        with pytest.raises(ValueError):
            CbrSource(sim, "bad", lambda p: 0, simple_udp_factory(),
                      rate_pps=1000)

    def test_double_start_rejected(self, sim):
        source = CbrSource(sim, "src", lambda p: 0, simple_udp_factory(),
                           rate_pps=1000, count=1)
        source.start()
        with pytest.raises(RuntimeError):
            source.start()

    def test_factory_payload_floor(self):
        with pytest.raises(ValueError):
            simple_udp_factory(payload_bytes=4)


class TestKvsWorkload:
    def build(self, sim, tenants=None, **kwargs):
        nic = PanicNic(sim, PanicConfig(ports=1))
        HostKvServer(nic.host)
        nic.control.enable_kv_cache()
        specs = tenants or [TenantSpec(1, rate_pps=500_000)]
        workload = KvsWorkload(sim, nic, specs, requests_per_tenant=30, **kwargs)
        workload.populate_store()
        return nic, workload

    def test_all_requests_answered(self, sim):
        nic, workload = self.build(sim)
        workload.start()
        sim.run()
        summary = workload.summary()[1]
        assert summary["requests"] == 30
        assert summary["responses"] == 30
        assert summary["outstanding"] == 0

    def test_latency_collected(self, sim):
        nic, workload = self.build(sim)
        workload.start()
        sim.run()
        summary = workload.summary()[1]
        assert summary["latency_us_p99"] >= summary["latency_us_p50"] > 0

    def test_cache_warming_shortens_latency(self):
        latencies = {}
        for warm in (False, True):
            sim = Simulator()
            nic, workload = self.build(sim)
            if warm:
                workload.warm_nic_cache(nic.offload("kvcache"), hot_keys=50)
            workload.start()
            sim.run()
            latencies[warm] = workload.summary()[1]["latency_us_mean"]
        assert latencies[True] < latencies[False]

    def test_wan_tenant_traffic_is_encrypted(self, sim):
        nic = PanicNic(sim, PanicConfig(ports=1))
        HostKvServer(nic.host)
        nic.control.enable_kv_cache()
        nic.control.enable_ipsec_rx()
        spec = TenantSpec(9, rate_pps=200_000, wan=True)
        workload = KvsWorkload(
            sim, nic, [spec], requests_per_tenant=10,
            ipsec=nic.offload("ipsec"),
        )
        workload.populate_store()
        workload.start()
        sim.run()
        assert nic.offload("ipsec").decrypted.value == 10
        assert workload.summary()[9]["responses"] == 10

    def test_deterministic_under_seed(self):
        def run():
            sim = Simulator()
            nic, workload = self.build(sim, seed=7)
            workload.start()
            sim.run()
            return workload.summary()

        assert run() == run()

    def test_tenant_spec_validation(self):
        with pytest.raises(ValueError):
            TenantSpec(1, rate_pps=0)
        with pytest.raises(ValueError):
            TenantSpec(1, rate_pps=100, get_fraction=1.5)


class TestDosFlood:
    def test_flood_marks_packets(self, sim):
        packets = []
        flood = DosFlood(sim, lambda p: packets.append(p) or sim.now,
                         rate_pps=1_000_000, count=20)
        flood.start()
        sim.run()
        assert len(packets) == 20
        assert all(p.meta.annotations["dos"] for p in packets)
        assert all(parse_frame(p.data).ipv4.dscp == 63 for p in packets)
        assert flood.injected == 20


class TestTraces:
    def test_record_and_replay_preserves_timing(self, sim):
        recorder = TraceRecorder(sim)
        source_arrivals = []

        def record_inject(packet):
            recorder.capture(packet)
            source_arrivals.append(sim.now)
            return sim.now

        source = CbrSource(sim, "src", record_inject, simple_udp_factory(),
                           rate_pps=1_000_000, count=5)
        source.start()
        sim.run()
        assert len(recorder) == 5

        sim2 = Simulator()
        replay_arrivals = []
        replayer = TraceReplayer(
            sim2, recorder.records,
            lambda p: replay_arrivals.append(sim2.now) or sim2.now,
        )
        replayer.start()
        sim2.run()
        source_gaps = [b - a for a, b in zip(source_arrivals, source_arrivals[1:])]
        replay_gaps = [b - a for a, b in zip(replay_arrivals, replay_arrivals[1:])]
        assert source_gaps == replay_gaps

    def test_time_scaling(self, sim):
        recorder = TraceRecorder(sim)
        source = CbrSource(
            sim, "src",
            lambda p: recorder.capture(p) or sim.now,
            simple_udp_factory(), rate_pps=1_000_000, count=3,
        )
        source.start()
        sim.run()
        sim2 = Simulator()
        arrivals = []
        TraceReplayer(
            sim2, recorder.records,
            lambda p: arrivals.append(sim2.now) or sim2.now,
            time_scale=2.0,
        ).start()
        sim2.run()
        assert arrivals[1] - arrivals[0] == 2 * (SEC // 1_000_000)

    def test_annotations_survive(self, sim):
        recorder = TraceRecorder(sim)
        factory = simple_udp_factory()
        packet = factory(0)
        packet.meta.annotations["needs"] = ("ipsec",)
        recorder.capture(packet)
        sim2 = Simulator()
        replayed = []
        TraceReplayer(sim2, recorder.records,
                      lambda p: replayed.append(p) or sim2.now).start()
        sim2.run()
        assert replayed[0].meta.annotations["needs"] == ("ipsec",)
