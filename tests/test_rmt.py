"""Tests for the RMT substrate: PHV, parser, tables, actions, pipeline."""

import pytest

from repro.packet import (
    KvOpcode,
    KvRequest,
    build_kv_request_frame,
    build_udp_frame,
    parse_frame,
)
from repro.rmt import (
    ActionContext,
    ActionError,
    MatchKey,
    MatchKind,
    Phv,
    PhvError,
    Register,
    RmtPipeline,
    RmtProgram,
    Table,
    TableError,
    default_parse_graph,
)
from repro.rmt.action import decode_chain, standard_actions


def udp_frame(payload=b"data", dscp=0, dst_ip="10.0.0.2", src_port=1234):
    return build_udp_frame(
        src_mac="02:00:00:00:00:01",
        dst_mac="02:00:00:00:00:02",
        src_ip="10.0.0.1",
        dst_ip=dst_ip,
        src_port=src_port,
        dst_port=9999,
        payload=payload,
        dscp=dscp,
    )


class TestPhv:
    def test_set_get(self):
        phv = Phv()
        phv.set("ipv4.ttl", 64)
        assert phv.get("ipv4.ttl") == 64

    def test_invalid_field_raises(self):
        with pytest.raises(PhvError):
            Phv().get("nope")

    def test_get_or_default(self):
        assert Phv().get_or("x", 7) == 7

    def test_header_validity(self):
        phv = Phv({"ipv4.src": 1, "ipv4.dst": 2})
        assert phv.header_valid("ipv4")
        phv.invalidate_header("ipv4")
        assert not phv.header_valid("ipv4")

    def test_invalidate_single_field(self):
        phv = Phv({"a.b": 1})
        phv.invalidate("a.b")
        assert not phv.is_valid("a.b")
        phv.invalidate("a.b")  # idempotent

    def test_type_enforcement(self):
        with pytest.raises(TypeError):
            Phv().set("x", 1.5)

    def test_copy_independent(self):
        phv = Phv({"x": 1})
        clone = phv.copy()
        clone.set("x", 2)
        assert phv.get("x") == 1


class TestParser:
    def test_parses_udp(self):
        phv = default_parse_graph().parse(udp_frame(dscp=11))
        assert phv.get("eth.type") == 0x0800
        assert phv.get("ipv4.dscp") == 11
        assert phv.get("udp.dst_port") == 9999
        assert phv.get("meta.payload") == b"data"

    def test_parses_kv(self):
        packet = build_kv_request_frame(KvRequest(KvOpcode.GET, 5, 9, b"key"))
        phv = default_parse_graph().parse(packet.data)
        assert phv.get("kv.opcode") == int(KvOpcode.GET)
        assert phv.get("kv.tenant") == 5
        assert phv.get("kv.key") == b"key"

    def test_non_kv_udp_has_no_kv_fields(self):
        phv = default_parse_graph().parse(udp_frame())
        assert not phv.is_valid("kv.opcode")

    def test_malformed_packet_sets_parse_error(self):
        phv = default_parse_graph().parse(b"\x00" * 13)  # truncated L2
        assert phv.get_or("meta.parse_error", 0) == 1

    def test_mac_padding_trimmed_by_ip_length(self):
        frame = udp_frame(payload=b"x")
        padded = frame + bytes(64 - len(frame))
        phv = default_parse_graph().parse(padded)
        assert phv.get("meta.payload") == b"x"


class TestTable:
    def test_exact_match(self):
        table = Table("t", [MatchKey("f")])
        table.add([5], "hit_action")
        phv = Phv({"f": 5})
        assert table.lookup(phv) == ("hit_action", {}, True)

    def test_exact_miss_gets_default(self):
        table = Table("t", [MatchKey("f")], default_action="dflt",
                      default_params={"a": 1})
        assert table.lookup(Phv({"f": 9})) == ("dflt", {"a": 1}, False)

    def test_invalid_field_is_miss(self):
        table = Table("t", [MatchKey("f")])
        table.add([5], "x")
        assert table.lookup(Phv())[2] is False

    def test_ternary_priority(self):
        table = Table("t", [MatchKey("f", MatchKind.TERNARY)])
        table.add([(0x10, 0xF0)], "low", priority=1)
        table.add([(0x12, 0xFF)], "high", priority=10)
        assert table.lookup(Phv({"f": 0x12}))[0] == "high"
        assert table.lookup(Phv({"f": 0x15}))[0] == "low"

    def test_lpm_longest_prefix_wins(self):
        table = Table("t", [MatchKey("ip", MatchKind.LPM)])
        table.add([(0x0A000000, 8)], "slash8", priority=8)
        table.add([(0x0A010000, 16)], "slash16", priority=16)
        assert table.lookup(Phv({"ip": 0x0A010203}))[0] == "slash16"
        assert table.lookup(Phv({"ip": 0x0A990203}))[0] == "slash8"

    def test_lpm_zero_prefix_matches_all(self):
        table = Table("t", [MatchKey("ip", MatchKind.LPM)])
        table.add([(0, 0)], "any")
        assert table.lookup(Phv({"ip": 12345}))[0] == "any"

    def test_range_match(self):
        table = Table("t", [MatchKey("port", MatchKind.RANGE)])
        table.add([(1000, 2000)], "in_range")
        assert table.lookup(Phv({"port": 1500}))[0] == "in_range"
        assert table.lookup(Phv({"port": 2001}))[2] is False

    def test_composite_key(self):
        table = Table(
            "t", [MatchKey("a"), MatchKey("b", MatchKind.RANGE)]
        )
        table.add([7, (0, 10)], "both")
        assert table.lookup(Phv({"a": 7, "b": 5}))[0] == "both"
        assert table.lookup(Phv({"a": 8, "b": 5}))[2] is False

    def test_duplicate_exact_entry_rejected(self):
        table = Table("t", [MatchKey("f")])
        table.add([1], "x")
        with pytest.raises(TableError):
            table.add([1], "y")

    def test_entry_arity_checked(self):
        table = Table("t", [MatchKey("a"), MatchKey("b")])
        with pytest.raises(TableError):
            table.add([1], "x")

    def test_capacity_enforced(self):
        table = Table("t", [MatchKey("f")], max_entries=2)
        table.add([1], "x")
        table.add([2], "x")
        with pytest.raises(TableError):
            table.add([3], "x")

    def test_remove_entry(self):
        table = Table("t", [MatchKey("f")])
        table.add([1], "x")
        table.remove([1])
        assert table.lookup(Phv({"f": 1}))[2] is False
        with pytest.raises(TableError):
            table.remove([1])

    def test_hit_counter(self):
        table = Table("t", [MatchKey("f")])
        entry = table.add([1], "x")
        table.lookup(Phv({"f": 1}))
        table.lookup(Phv({"f": 1}))
        assert entry.hits == 2

    def test_needs_at_least_one_key(self):
        with pytest.raises(TableError):
            Table("t", [])


class TestActions:
    def _ctx(self):
        return ActionContext(registers={"r": Register("r", 4)})

    def test_set_and_copy_field(self):
        actions = standard_actions()
        phv = Phv({"src": 9})
        actions["set_field"](phv, self._ctx(), field="dst", value=1)
        actions["copy_field"](phv, self._ctx(), src="src", dst="dst2")
        assert phv.get("dst") == 1 and phv.get("dst2") == 9

    def test_chain_encode_decode(self):
        actions = standard_actions()
        phv = Phv()
        actions["set_chain"](phv, self._ctx(), chain=[3, 5])
        actions["push_chain"](phv, self._ctx(), engine=9)
        assert decode_chain(phv.get("meta.chain")) == [3, 5, 9]

    def test_set_slack_is_absolute_deadline(self):
        actions = standard_actions()
        ctx = ActionContext(now_ps=1000)
        phv = Phv()
        actions["set_slack"](phv, ctx, slack_ps=500)
        assert phv.get("meta.slack_deadline_ps") == 1500

    def test_count_register(self):
        actions = standard_actions()
        ctx = self._ctx()
        for _ in range(3):
            actions["count"](Phv(), ctx, register="r", index=2)
        assert ctx.register("r").read(2) == 3

    def test_load_balance_round_robins(self):
        actions = standard_actions()
        ctx = self._ctx()
        picks = []
        for _ in range(5):
            phv = Phv()
            actions["load_balance"](phv, ctx, register="r", ways=3)
            picks.append(phv.get("meta.rx_queue"))
        assert picks == [0, 1, 2, 0, 1]

    def test_hash_select_stable_and_bounded(self):
        actions = standard_actions()
        phv1 = Phv({"ipv4.src": 111, "udp.src_port": 5})
        phv2 = Phv({"ipv4.src": 111, "udp.src_port": 5})
        actions["hash_select"](phv1, self._ctx(), fields=["ipv4.src", "udp.src_port"], ways=4)
        actions["hash_select"](phv2, self._ctx(), fields=["ipv4.src", "udp.src_port"], ways=4)
        assert phv1.get("meta.rx_queue") == phv2.get("meta.rx_queue")
        assert 0 <= phv1.get("meta.rx_queue") < 4

    def test_decrement_ttl_drops_at_zero(self):
        actions = standard_actions()
        phv = Phv({"ipv4.ttl": 1})
        actions["decrement_ttl"](phv, self._ctx())
        assert phv.get("meta.drop") == 1

    def test_register_bounds(self):
        reg = Register("r", 2)
        with pytest.raises(IndexError):
            reg.read(2)
        with pytest.raises(ValueError):
            Register("bad", 0)

    def test_unknown_register_raises(self):
        with pytest.raises(ActionError):
            ActionContext().register("ghost")

    def test_decode_chain_odd_length_rejected(self):
        with pytest.raises(ActionError):
            decode_chain(b"\x00")


class TestPipeline:
    def test_stages_run_in_order(self):
        program = RmtProgram("p")
        t1 = program.add_table("first", [MatchKey("udp.dst_port")])
        t1.add([9999], "set_field", {"field": "meta.mark", "value": 1})
        t2 = program.add_table("second", [MatchKey("meta.mark")])
        t2.add([1], "set_field", {"field": "meta.mark2", "value": 2})
        pipe = RmtPipeline(program)
        phv = pipe.process(udp_frame())
        assert phv.get("meta.mark2") == 2

    def test_drop_short_circuits(self):
        program = RmtProgram("p")
        t1 = program.add_table("dropper", [MatchKey("udp.dst_port")])
        t1.add([9999], "drop")
        t2 = program.add_table("after", [MatchKey("udp.dst_port")])
        t2.add([9999], "set_field", {"field": "meta.after", "value": 1})
        pipe = RmtPipeline(program)
        phv = pipe.process(udp_frame())
        assert phv.get("meta.drop") == 1
        assert not phv.is_valid("meta.after")

    def test_requires_guard_skips_stage(self):
        program = RmtProgram("p")
        table = program.add_table(
            "kv_only", [MatchKey("kv.opcode")], requires="kv.opcode"
        )
        table.add([1], "set_field", {"field": "meta.kv", "value": 1})
        pipe = RmtPipeline(program)
        phv = pipe.process(udp_frame())  # not KV
        assert not phv.is_valid("meta.kv")

    def test_metadata_seeding(self):
        program = RmtProgram("p")
        pipe = RmtPipeline(program)
        phv = pipe.process(udp_frame(), metadata={"ingress_port": 2})
        assert phv.get("meta.ingress_port") == 2

    def test_unknown_action_raises(self):
        program = RmtProgram("p")
        table = program.add_table("t", [MatchKey("udp.dst_port")])
        table.add([9999], "not_an_action")
        with pytest.raises(ActionError):
            RmtPipeline(program).process(udp_frame())

    def test_duplicate_action_name_rejected(self):
        program = RmtProgram("p")
        with pytest.raises(ActionError):
            program.add_action("drop", lambda phv, ctx: None)

    def test_duplicate_register_rejected(self):
        program = RmtProgram("p")
        program.add_register("r", 1)
        with pytest.raises(ActionError):
            program.add_register("r", 1)

    def test_table_lookup_by_name(self):
        program = RmtProgram("p")
        table = program.add_table("mine", [MatchKey("x")])
        assert program.table("mine") is table
        with pytest.raises(KeyError):
            program.table("ghost")

    def test_deparse_rewrites_ttl(self):
        program = RmtProgram("p")
        table = program.add_table("ttl", [MatchKey("udp.dst_port")])
        table.add([9999], "decrement_ttl")
        pipe = RmtPipeline(program)
        frame = udp_frame()
        phv = pipe.process(frame)
        out = RmtPipeline.deparse(phv, frame)
        assert parse_frame(out).ipv4.ttl == 63
        # Everything else survives.
        assert parse_frame(out).payload == b"data"

    def test_deparse_passthrough_without_l2(self):
        phv = Phv()
        assert RmtPipeline.deparse(phv, b"raw") == b"raw"
