"""Unit tests for the external Wire, plus example-script smoke tests."""

import runpy
import sys

import pytest

from repro.core import PanicConfig, PanicNic
from repro.packet import Packet, build_udp_frame
from repro.sim import Simulator
from repro.sim.clock import NS
from repro.workloads import Wire


def frame(ident=0):
    return build_udp_frame(
        src_mac="02:00:00:00:00:01", dst_mac="02:00:00:00:00:02",
        src_ip="10.0.0.1", dst_ip="10.0.0.2",
        src_port=1, dst_port=2, payload=b"x", identification=ident,
    )


class TestWireUnit:
    def build(self, sim, **kwargs):
        a = PanicNic(sim, PanicConfig(ports=1), name="a")
        b = PanicNic(sim, PanicConfig(ports=1), name="b")
        wire = Wire(sim, a, b, **kwargs)
        return a, b, wire

    def test_a_to_b_delivery(self, sim):
        a, b, wire = self.build(sim)
        received = []
        b.host.software_handler = lambda p, q: received.append(p)
        a.host.enqueue_tx(frame())
        sim.run()
        assert len(received) == 1
        assert wire.a_to_b.value == 1

    def test_fresh_packet_identity_across_wire(self, sim):
        a, b, wire = self.build(sim)
        received = []
        b.host.software_handler = lambda p, q: received.append(p)
        a.host.enqueue_tx(frame())
        sim.run()
        packet = received[0]
        # Same bytes, fresh metadata lifecycle on the receiving NIC.
        assert packet.meta.nic_arrival_ps is not None
        assert packet.meta.ingress_port == 0

    def test_negative_propagation_rejected(self, sim):
        a = PanicNic(sim, PanicConfig(ports=1), name="na")
        b = PanicNic(sim, PanicConfig(ports=1), name="nb")
        with pytest.raises(ValueError):
            Wire(sim, a, b, propagation_ps=-1)

    def test_port_filter(self, sim):
        """A cable on port 1 ignores traffic leaving port 0."""
        a = PanicNic(sim, PanicConfig(ports=2), name="pa")
        b = PanicNic(sim, PanicConfig(ports=1), name="pb")
        wire = Wire(sim, a, b, port_a=1)
        received = []
        b.host.software_handler = lambda p, q: received.append(p)
        # TX defaults to port 0, which this cable does not serve.
        a.host.enqueue_tx(frame())
        sim.run()
        assert received == []
        assert wire.a_to_b.value == 0


class TestExampleScripts:
    """Run the fast example scripts end to end (they self-assert)."""

    @pytest.mark.parametrize("script", ["quickstart", "custom_offload"])
    def test_example_runs(self, script, capsys):
        runpy.run_path(f"examples/{script}.py", run_name="__main__")
        out = capsys.readouterr().out
        assert out  # printed something sensible
