"""Tests for the discrete-event kernel."""

import pytest

from repro.sim import Component, SimError, Simulator
from repro.sim.clock import Clock, MHZ, NS, format_time


class TestScheduling:
    def test_events_fire_in_time_order(self, sim):
        fired = []
        sim.schedule(300, fired.append, "c")
        sim.schedule(100, fired.append, "a")
        sim.schedule(200, fired.append, "b")
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_equal_timestamps_fire_in_scheduling_order(self, sim):
        fired = []
        for label in "abcde":
            sim.schedule(50, fired.append, label)
        sim.run()
        assert fired == list("abcde")

    def test_now_advances_to_event_time(self, sim):
        times = []
        sim.schedule(123, lambda: times.append(sim.now))
        sim.run()
        assert times == [123]
        assert sim.now == 123

    def test_nested_scheduling_from_callback(self, sim):
        fired = []

        def outer():
            fired.append(("outer", sim.now))
            sim.schedule(10, inner)

        def inner():
            fired.append(("inner", sim.now))

        sim.schedule(5, outer)
        sim.run()
        assert fired == [("outer", 5), ("inner", 15)]

    def test_schedule_negative_delay_rejected(self, sim):
        with pytest.raises(SimError):
            sim.schedule(-1, lambda: None)

    def test_schedule_at_past_rejected(self, sim):
        sim.schedule(100, lambda: None)
        sim.run()
        with pytest.raises(SimError):
            sim.schedule_at(50, lambda: None)

    def test_zero_delay_event_fires(self, sim):
        fired = []
        sim.schedule(0, fired.append, 1)
        sim.run()
        assert fired == [1]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        event = sim.schedule(10, fired.append, "x")
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self, sim):
        event = sim.schedule(10, lambda: None)
        event.cancel()
        event.cancel()
        assert sim.run() == 0

    def test_cancel_one_of_many(self, sim):
        fired = []
        sim.schedule(10, fired.append, "keep1")
        victim = sim.schedule(10, fired.append, "gone")
        sim.schedule(10, fired.append, "keep2")
        victim.cancel()
        sim.run()
        assert fired == ["keep1", "keep2"]


class TestRunControl:
    def test_run_until_stops_at_boundary(self, sim):
        fired = []
        sim.schedule(100, fired.append, "early")
        sim.schedule(500, fired.append, "late")
        sim.run(until_ps=200)
        assert fired == ["early"]
        assert sim.now == 200

    def test_run_until_advances_clock_without_events(self, sim):
        sim.run(until_ps=1000)
        assert sim.now == 1000

    def test_run_until_includes_boundary_event(self, sim):
        fired = []
        sim.schedule(200, fired.append, "boundary")
        sim.run(until_ps=200)
        assert fired == ["boundary"]

    def test_max_events_limits_execution(self, sim):
        fired = []
        for i in range(10):
            sim.schedule(i + 1, fired.append, i)
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_step_returns_false_when_empty(self, sim):
        assert sim.step() is False

    def test_events_fired_counter(self, sim):
        for i in range(5):
            sim.schedule(i, lambda: None)
        sim.run()
        assert sim.events_fired == 5


class TestComponents:
    def test_register_and_lookup(self, sim):
        comp = Component(sim, "thing")
        assert sim.component("thing") is comp

    def test_duplicate_name_rejected(self, sim):
        Component(sim, "dup")
        with pytest.raises(SimError):
            Component(sim, "dup")

    def test_unknown_component_lookup_raises(self, sim):
        with pytest.raises(SimError):
            sim.component("ghost")

    def test_component_schedule_uses_sim_clock(self, sim):
        comp = Component(sim, "c")
        fired = []
        comp.schedule(42, lambda: fired.append(comp.now))
        sim.run()
        assert fired == [42]


class TestClock:
    def test_default_is_500mhz(self):
        clock = Clock()
        assert clock.period_ps == 2000

    def test_cycles_to_ps_rounds_up(self):
        clock = Clock(500 * MHZ)
        assert clock.cycles_to_ps(1) == 2000
        assert clock.cycles_to_ps(1.5) == 3000
        assert clock.cycles_to_ps(0.001) == 2

    def test_ps_to_cycles_floors(self):
        clock = Clock(500 * MHZ)
        assert clock.ps_to_cycles(1999) == 0
        assert clock.ps_to_cycles(2000) == 1
        assert clock.ps_to_cycles(4001) == 2

    def test_next_edge(self):
        clock = Clock(500 * MHZ)
        assert clock.next_edge(0) == 0
        assert clock.next_edge(1) == 2000
        assert clock.next_edge(2000) == 2000
        assert clock.next_edge(2001) == 4000

    def test_invalid_frequency_rejected(self):
        with pytest.raises(ValueError):
            Clock(0)
        with pytest.raises(ValueError):
            Clock(-1)

    def test_negative_cycles_rejected(self):
        with pytest.raises(ValueError):
            Clock().cycles_to_ps(-1)

    def test_format_time_units(self):
        assert format_time(500) == "500 ps"
        assert format_time(1500) == "1.500 ns"
        assert format_time(2_500_000) == "2.500 us"
