"""Link-local loss recovery: repair protocol, hold buffer, determinism.

Unit tests script the fault outcomes directly so every repair-path
branch (NACK + retransmit, give-up, outage, bypass, in-order handoff)
is pinned; end-to-end tests arm real wires via
``FaultPlan.link_local`` and hold the headline claim: with sub-RTT wire
repair, the host transport's retransmission machinery goes quiet.
"""

from repro.faults.plan import FaultPlan
from repro.faults.rack import wire_target
from repro.reliability.linklayer import LinkLayer
from repro.reliability.rack import reliable_rack_topology
from repro.sim.clock import NS, US
from repro.sim.shard import run_monolithic, run_sharded
from repro.telemetry import TelemetryConfig

PROP = 500 * NS


class ScriptedFaults:
    """A LinkFaults stand-in replaying a scripted outcome sequence."""

    def __init__(self, outcomes):
        self.label = "wire0.test"
        self.outcomes = list(outcomes)
        self.process_calls = 0

    def judge(self, data):
        outcome = self.outcomes.pop(0)
        return outcome, (data if outcome == "ok" else None)

    def process(self, data):
        self.process_calls += 1
        return self.judge(data)[1]


def _layer(outcomes, **kw):
    return LinkLayer(ScriptedFaults(outcomes), PROP, **kw)


class TestRepairPath:
    def test_clean_frame_crosses_at_propagation(self):
        ll = _layer(["ok"])
        assert ll.transmit(b"f", 0) == (b"f", PROP)
        stats = ll.stats()
        assert stats["protected"] == 1
        assert stats["nacks"] == stats["retransmits"] == 0

    def test_drop_is_nacked_and_retransmitted(self):
        ll = _layer(["drop", "ok"], detect_ps=1000 * NS,
                    turnaround_ps=50 * NS)
        out = ll.transmit(b"f", 0)
        assert out is not None
        data, handoff = out
        assert data == b"f"
        # Retransmission leaves after the receiver's gap timer fired and
        # the NACK crossed back: 2 x prop + detect + turnaround later.
        assert handoff == 2 * PROP + 1000 * NS + 50 * NS + PROP
        stats = ll.stats()
        assert stats["nacks"] == stats["retransmits"] == 1
        assert stats["repaired"] == 1

    def test_corruption_repairs_faster_than_drop(self):
        # CRC detection is immediate; only the NACK round trip is paid.
        corrupt = _layer(["corrupt", "ok"]).transmit(b"f", 0)[1]
        drop = _layer(["drop", "ok"]).transmit(b"f", 0)[1]
        assert corrupt < drop

    def test_repair_budget_exhaustion_gives_up(self):
        ll = _layer(["drop"] * 3, max_repair=2)
        assert ll.transmit(b"f", 0) is None
        stats = ll.stats()
        assert stats["gave_up"] == 1
        assert stats["retransmits"] == 2  # budget, not attempts
        assert stats["repaired"] == 0

    def test_outage_is_not_repaired(self):
        ll = _layer(["down"])
        assert ll.transmit(b"f", 0) is None
        stats = ll.stats()
        assert stats["nacks"] == 0 and stats["gave_up"] == 0

    def test_in_order_handoff_holds_later_clean_frames(self):
        ll = _layer(["drop", "ok", "ok"])
        _data, repaired_handoff = ll.transmit(b"a", 0)
        # A clean frame sent just after must not overtake the repair.
        _data, clean_handoff = ll.transmit(b"b", 10 * NS)
        assert clean_handoff == repaired_handoff
        assert ll.stats()["handoff_held"] == 1

    def test_hold_buffer_full_bypasses_protection(self):
        ll = _layer(["ok", "ok"], hold_frames=1)
        ll.transmit(b"a", 0)  # occupies the only slot until its ACK
        out = ll.transmit(b"b", 10 * NS)
        assert out is not None  # scripted "ok": it survived unprotected
        stats = ll.stats()
        assert stats["bypassed"] == 1
        assert stats["protected"] == 1
        assert ll.faults.process_calls == 1

    def test_slots_release_after_coalesced_ack(self):
        ll = _layer(["ok", "ok"], hold_frames=1,
                    ack_coalesce_ps=500 * NS)
        _data, handoff = ll.transmit(b"a", 0)
        release = handoff + PROP + 500 * NS
        assert ll.transmit(b"b", release) is not None
        assert ll.stats()["bypassed"] == 0

    def test_occupancy_peak_tracks_inflight_frames(self):
        ll = _layer(["ok"] * 4, hold_frames=8)
        for i in range(4):
            ll.transmit(b"f", i * 10 * NS)
        assert ll.stats()["occupancy_peak"] == 4


def _loss_plan(link_local, nics=4, drop_p=0.01, corrupt_p=0.005, seed=3):
    plan = FaultPlan(seed=seed)
    for i in range(nics):
        for j in range(i + 1, nics):
            plan.wire_loss(0, wire_target(i, j),
                           drop_p=drop_p, corrupt_p=corrupt_p)
            if link_local:
                plan.link_local(0, wire_target(i, j))
    return plan


class TestEndToEndLinkLocal:
    def test_link_local_strictly_dominates_gbn_on_retransmits(self):
        # The ISSUE's acceptance bar: at 1% wire loss, go-back-N with
        # link-local repair must strictly beat plain go-back-N on host
        # retransmit count -- losses heal on the wire, below the RTO.
        retx = {}
        for link_local in (False, True):
            result = run_monolithic(
                reliable_rack_topology(nics=4, pattern="fanin", frames=30),
                fault_plan=_loss_plan(link_local),
            )
            retx[link_local] = sum(
                r["stats"]["reliability"]["retransmits"]
                for r in result.reports.values()
            )
            if link_local:
                repaired = sum(
                    s.get("linklayer", {}).get("repaired", 0)
                    for s in result.wire_stats.values()
                )
                assert repaired > 0
        assert retx[False] > 0
        assert retx[True] < retx[False]

    def test_repair_preserves_exactly_once_in_order(self):
        result = run_monolithic(
            reliable_rack_topology(nics=3, pattern="fanin", frames=20),
            fault_plan=_loss_plan(True, nics=3, drop_p=0.05,
                                  corrupt_p=0.02),
        )
        report = result.reports["nic0"]
        for src in (1, 2):
            assert [seq for s, seq, _t, _q in report["deliveries"]
                    if s == src] == list(range(20))

    def test_linklayer_stats_nest_under_wire_stats(self):
        result = run_monolithic(
            reliable_rack_topology(nics=2, frames=10),
            fault_plan=_loss_plan(True, nics=2, drop_p=0.1),
        )
        armed = [s for s in result.wire_stats.values() if "linklayer" in s]
        assert armed, "link_local plan must surface linklayer stats"
        assert any(s["linklayer"]["repaired"] for s in armed)
        for stats in armed:
            block = stats["linklayer"]
            for key in ("protected", "nacks", "retransmits", "repaired",
                        "gave_up", "bypassed", "handoff_held",
                        "occupancy_peak"):
                assert key in block

    def test_mono_equals_sharded_with_link_local_repair(self):
        def topo():
            return reliable_rack_topology(nics=4, pattern="fanin",
                                          frames=20)

        mono = run_monolithic(
            topo(), fault_plan=_loss_plan(True, drop_p=0.05))
        for workers in (2, 3):
            sharded = run_sharded(
                topo(), workers=workers,
                fault_plan=_loss_plan(True, drop_p=0.05))
            assert mono.reports == sharded.reports
            assert mono.wire_stats == sharded.wire_stats

    def test_flap_still_aborts_through_link_local(self):
        # Outages are explicitly not the link layer's job: a cut wire
        # must still surface DeliveryFailed via the host transport.
        plan = (_loss_plan(True, nics=3, drop_p=0.0)
                .wire_down(0, wire_target(0, 1)))
        result = run_monolithic(
            reliable_rack_topology(nics=3, pattern="fanin", frames=5),
            fault_plan=plan,
        )
        assert result.reports["nic1"]["failures"]


class TestLinkLayerTelemetry:
    def test_ll_instants_recorded_alongside_rel_instants(self):
        plan = (FaultPlan(seed=5)
                .wire_loss(0, wire_target(0, 1),
                           drop_p=0.15, corrupt_p=0.1)
                .link_local(0, wire_target(0, 1)))
        result = run_monolithic(
            reliable_rack_topology(
                nics=2, frames=25,
                telemetry=TelemetryConfig(sample_every=0),
            ),
            fault_plan=plan,
        )
        kinds = {
            span[2]
            for name in result.reports
            for span in result.reports[name].get("trace", ())
        }
        assert "ll_nack" in kinds
        assert "ll_retransmit" in kinds
        assert "ll_handoff" in kinds
