"""Edge-case coverage across subsystems: pointer-mode interplay,
chained-engine loops, PCIe coalescing boundaries, crossbar-backed
engines, config corner cases."""

import pytest

from repro.core import PanicConfig, PanicNic
from repro.engines import ChecksumEngine, IpsecEngine, IpsecSa
from repro.noc import Crossbar, Endpoint
from repro.packet import (
    KvOpcode,
    KvRequest,
    Packet,
    PanicHeader,
    build_kv_request_frame,
    build_udp_frame,
    parse_frame,
)
from repro.sim import Simulator
from repro.sim.clock import US


def udp(payload=b"x", dscp=0):
    return Packet(build_udp_frame(
        src_mac="02:00:00:00:00:01", dst_mac="02:00:00:00:00:02",
        src_ip="10.0.0.1", dst_ip="10.0.0.2",
        src_port=1, dst_port=2, payload=payload, dscp=dscp,
    ))


class TestPointerModeInterplay:
    def test_pointer_mode_with_ipsec_decrypt(self, sim):
        """A transformed (decrypted) payload still clears its buffer
        handle when DMA'd to the host."""
        nic = PanicNic(sim, PanicConfig(
            ports=1, offloads=("ipsec",), payload_mode="pointer"))
        nic.control.enable_ipsec_rx()
        ipsec = nic.offload("ipsec")
        ipsec.install_sa(IpsecSa(spi=5, key=b"k", tunnel_src="1.1.1.1",
                                 tunnel_dst="2.2.2.2"))
        encrypted = ipsec.encrypt(udp(b"secret"), 5)
        delivered = []
        nic.host.software_handler = lambda p, q: delivered.append(p)
        nic.inject(Packet(encrypted.data))
        sim.run()
        assert len(delivered) == 1
        assert parse_frame(delivered[0].data).payload == b"secret"
        assert nic.payload_buffer.live_handles == 0

    def test_pointer_mode_cache_hit_response(self, sim):
        """The cache's synthesized response (full, not buffered) leaves
        fine while the request's handle is cleaned up."""
        nic = PanicNic(sim, PanicConfig(
            ports=1, offloads=("kvcache",), payload_mode="pointer"))
        nic.control.enable_kv_cache()
        nic.offload("kvcache").cache_put(b"k", b"v")
        nic.inject(build_kv_request_frame(KvRequest(KvOpcode.GET, 1, 1, b"k")))
        sim.run()
        assert len(nic.transmitted) == 1
        # The original request's payload never reached DMA or TX; its
        # handle leaks by design of this test?  No: the cache-hit path
        # abandons the request, so the handle must be reclaimed by the
        # response leaving or remain accounted.  Assert we know exactly.
        assert nic.payload_buffer.live_handles <= 1


class TestChainLoopback:
    def test_chain_visiting_same_engine_twice(self, sim, nic):
        """A chain [checksum, checksum] loops through one engine twice."""
        nic2 = PanicNic(sim, PanicConfig(ports=1, offloads=("checksum",)),
                        name="panic_loop")
        addr = nic2.offload("checksum").address
        nic2.control.route_dscp(1, [addr, addr])
        delivered = []
        nic2.host.software_handler = lambda p, q: delivered.append(p)
        packet = udp(dscp=1)
        nic2.inject(packet)
        sim.run()
        assert len(delivered) == 1
        visits = [hop for hop in packet.trail if "checksum" in hop]
        assert len(visits) == 2


class TestPcieCoalescing:
    def test_exact_threshold_boundary(self, sim):
        nic = PanicNic(sim, PanicConfig(ports=1, coalesce_count=4))
        for i in range(8):
            nic.inject(udp(payload=bytes([i])))
        sim.run()
        # 8 completions at threshold 4: exactly 2 interrupts.
        assert nic.pcie.interrupts.value == 2
        assert nic.pcie.pending_completions == 0

    def test_remainder_flushed_by_timeout(self, sim):
        nic = PanicNic(sim, PanicConfig(ports=1, coalesce_count=4,
                                        coalesce_timeout_ps=5 * US))
        for i in range(5):
            nic.inject(udp(payload=bytes([i])))
        sim.run()
        # 4 by count, 1 by timeout.
        assert nic.pcie.interrupts.value == 2


class TestCrossbarBackedEngines:
    def test_engines_work_over_crossbar(self, sim):
        """Engines speak the same port protocol over the crossbar."""
        xbar = Crossbar(sim, ports=2, freq_derating=0.0)
        csum = ChecksumEngine(sim, "xb.csum")
        csum.bind_port(xbar.bind(csum))

        class Sink(Endpoint):
            def __init__(self):
                self.got = []

            def receive(self, message):
                self.got.append(message.packet)

        sink = Sink()
        xbar.bind(sink)
        packet = udp()
        packet.panic = PanicHeader(chain=[sink.address])
        csum._loopback(packet)
        sim.run()
        assert len(sink.got) == 1
        assert sink.got[0].meta.annotations["csum_ok"] is True


class TestConfigCorners:
    def test_minimum_viable_mesh(self, sim):
        nic = PanicNic(sim, PanicConfig(
            ports=1, mesh_width=2, mesh_height=2, offloads=()))
        delivered = []
        nic.host.software_handler = lambda p, q: delivered.append(p)
        nic.inject(udp())
        sim.run()
        assert len(delivered) == 1

    def test_offload_params_reach_engine(self, sim):
        nic = PanicNic(sim, PanicConfig(
            ports=1, offloads=("kvcache",),
            offload_params={"kvcache": {"capacity_bytes": 128}}))
        assert nic.offload("kvcache").capacity_bytes == 128

    def test_placement_conflict_detected(self, sim):
        with pytest.raises(ValueError):
            PanicNic(sim, PanicConfig(
                ports=1, placement={"dma": (0, 0)}))  # eth0's tile

    def test_seed_changes_host_jitter_stream(self):
        def jitters(seed):
            sim = Simulator()
            nic = PanicNic(sim, PanicConfig(ports=1, seed=seed),
                           name=f"panic_seed{seed}")
            return [nic.host.memory_latency_ps() for _ in range(5)]

        assert jitters(1) != jitters(2)
        assert jitters(3) == jitters(3)
