"""Shared helpers for the benchmark/experiment harness.

Every bench reproduces one paper artifact (table, figure, or named
claim), prints the reproduced numbers next to the paper's, and asserts
the qualitative *shape* (who wins, by roughly what factor).
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Sequence

from repro.packet import Packet, build_udp_frame
from repro.sim.kernel import total_events_fired

#: Where bench timings accumulate.  Every ``run_once`` call records its
#: wall-clock seconds and events fired here, so the whole benchmark
#: suite feeds the perf trajectory for free.  Override the path with
#: ``REPRO_BENCH_JSON``; set it to the empty string to disable.
_DEFAULT_BENCH_JSON = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_suite.json",
)


def record_bench(name: str, wall_seconds: float, events_fired: int) -> None:
    """Merge one bench's timing into the shared bench-JSON file."""
    path = os.environ.get("REPRO_BENCH_JSON", _DEFAULT_BENCH_JSON)
    if not path:
        return
    try:
        with open(path) as fh:
            data = json.load(fh)
    except (OSError, ValueError):
        data = {"bench": "suite_trajectory"}
    benches = data.setdefault("benches", {})
    benches[name] = {
        "wall_seconds": round(wall_seconds, 6),
        "events_fired": events_fired,
        "events_per_sec": (
            round(events_fired / wall_seconds) if wall_seconds > 0 else None
        ),
    }
    with open(path, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def plain_udp_packet(
    payload: bytes = b"data",
    src_ip: str = "10.0.0.1",
    dst_ip: str = "10.0.0.2",
    src_port: int = 7777,
    dst_port: int = 8888,
    dscp: int = 0,
    seq: int = 0,
) -> Packet:
    """A plain (non-KV) UDP test frame."""
    frame = build_udp_frame(
        src_mac="02:00:00:00:00:01",
        dst_mac="02:00:00:00:00:02",
        src_ip=src_ip,
        dst_ip=dst_ip,
        src_port=src_port,
        dst_port=dst_port,
        payload=payload,
        dscp=dscp,
        identification=seq & 0xFFFF,
    )
    packet = Packet(frame)
    packet.meta.annotations["seq"] = seq
    return packet


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing.

    Simulation experiments are deterministic; repeating them only burns
    wall-clock, so every bench uses one round / one iteration.  The
    wall-clock seconds and kernel events fired are also recorded into
    the shared bench-JSON file (see :func:`record_bench`).
    """
    name = getattr(benchmark, "name", None) or getattr(
        fn, "__name__", "anonymous")
    events_before = total_events_fired()
    start = time.perf_counter()
    result = benchmark.pedantic(fn, rounds=1, iterations=1)
    record_bench(
        name,
        time.perf_counter() - start,
        total_events_fired() - events_before,
    )
    return result
