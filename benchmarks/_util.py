"""Shared helpers for the benchmark/experiment harness.

Every bench reproduces one paper artifact (table, figure, or named
claim), prints the reproduced numbers next to the paper's, and asserts
the qualitative *shape* (who wins, by roughly what factor).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.packet import Packet, build_udp_frame


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def plain_udp_packet(
    payload: bytes = b"data",
    src_ip: str = "10.0.0.1",
    dst_ip: str = "10.0.0.2",
    src_port: int = 7777,
    dst_port: int = 8888,
    dscp: int = 0,
    seq: int = 0,
) -> Packet:
    """A plain (non-KV) UDP test frame."""
    frame = build_udp_frame(
        src_mac="02:00:00:00:00:01",
        dst_mac="02:00:00:00:00:02",
        src_ip=src_ip,
        dst_ip=dst_ip,
        src_port=src_port,
        dst_port=dst_port,
        payload=payload,
        dscp=dscp,
        identification=seq & 0xFFFF,
    )
    packet = Packet(frame)
    packet.meta.annotations["seq"] = seq
    return packet


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing.

    Simulation experiments are deterministic; repeating them only burns
    wall-clock, so every bench uses one round / one iteration.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
