"""Experiment E1 -- the section 3.2 walk-through: a geodistributed
multi-tenant KVS on PANIC.

Three tenants: a LAN latency-sensitive tenant, a LAN bulk tenant, and a
WAN tenant whose traffic arrives ESP-encrypted.  The NIC cache holds the
hot keys.  Expected shape:

* hot GETs are answered entirely on the NIC (CPU bypass -- host sees
  none of them);
* WAN traffic takes two heavyweight passes (decrypt, then route);
* cache hits are an order of magnitude faster than host-served misses.
"""

from repro.core import HostKvServer, PanicConfig, PanicNic
from repro.analysis import format_table
from repro.sim import Simulator
from repro.sim.clock import US
from repro.workloads import KvsWorkload, TenantSpec

from _util import banner, run_once


def run_kvs():
    sim = Simulator()
    nic = PanicNic(sim, PanicConfig(ports=1))
    HostKvServer(nic.host)
    nic.control.enable_kv_cache()
    nic.control.enable_ipsec_rx()
    nic.control.set_tenant_slack(1, 10 * US)
    nic.control.set_tenant_slack(2, 1000 * US)
    nic.control.set_tenant_slack(3, 100 * US)

    tenants = [
        TenantSpec(1, rate_pps=400_000, latency_sensitive=True,
                   key_space=200, get_fraction=0.95),
        TenantSpec(2, rate_pps=800_000, key_space=2000, get_fraction=0.7,
                   value_bytes=512),
        TenantSpec(3, rate_pps=200_000, wan=True, key_space=200),
    ]
    workload = KvsWorkload(sim, nic, tenants, requests_per_tenant=120,
                           ipsec=nic.offload("ipsec"))
    workload.populate_store(values_per_tenant=2000)
    workload.warm_nic_cache(nic.offload("kvcache"), hot_keys=20)
    workload.start()
    sim.run()

    cache = nic.offload("kvcache")
    return {
        "summary": workload.summary(),
        "cache_hits": cache.hits.value,
        "cache_misses": cache.misses.value,
        "ipsec_decrypted": nic.offload("ipsec").decrypted.value,
        "host_requests": nic.host.rx_delivered.value,
        "transmitted": len(nic.transmitted),
        "rmt_packets": nic.rmt.processed.value,
    }


def test_kvs_multi_tenant_example(benchmark):
    result = run_once(benchmark, run_kvs)
    summary = result["summary"]

    banner("Section 3.2 example: multi-tenant KVS on PANIC")
    print(
        format_table(
            ["tenant", "profile", "requests", "responses", "p50 us", "p99 us"],
            [
                [1, "LAN latency", summary[1]["requests"],
                 summary[1]["responses"], f"{summary[1]['latency_us_p50']:.1f}",
                 f"{summary[1]['latency_us_p99']:.1f}"],
                [2, "LAN bulk", summary[2]["requests"],
                 summary[2]["responses"], f"{summary[2]['latency_us_p50']:.1f}",
                 f"{summary[2]['latency_us_p99']:.1f}"],
                [3, "WAN (IPSec)", summary[3]["requests"],
                 summary[3]["responses"], f"{summary[3]['latency_us_p50']:.1f}",
                 f"{summary[3]['latency_us_p99']:.1f}"],
            ],
        )
    )
    print(f"\ncache hits/misses : {result['cache_hits']}/{result['cache_misses']}")
    print(f"ipsec decrypts    : {result['ipsec_decrypted']}")
    print(f"host-served       : {result['host_requests']}")
    print(f"RMT passes        : {result['rmt_packets']}")

    # Everyone gets an answer.
    for tenant in (1, 2, 3):
        assert summary[tenant]["responses"] == summary[tenant]["requests"]
    # The cache serves a real share of GETs without the CPU.
    assert result["cache_hits"] > 50
    assert result["host_requests"] < result["transmitted"]
    # All WAN requests were decrypted on the NIC.
    assert result["ipsec_decrypted"] == 120
