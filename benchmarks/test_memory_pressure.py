"""Experiment E5 -- sections 4.3 and 6: memory pressure and lossy drops.

"PANIC introduces mechanisms unavailable in other designs that can be
used to intelligently drop packets when memory pressure is a limiting
factor" -- the per-engine PIFO drops *droppable* (attack-class) messages
first and never drops lossless ones.

Setup: a bounded DMA-engine queue, a slow (contended) host, a DoS flood
classified droppable by the RMT program (``mark_dscp_droppable``), and a
legitimate lossless tenant.  Expected shape: all legitimate packets are
delivered; drops land exclusively on the flood.
"""

from repro.core import PanicConfig, PanicNic
from repro.analysis import format_table
from repro.sim import Simulator
from repro.sim.clock import US
from repro.workloads import DosFlood, KvsWorkload, TenantSpec
from repro.workloads.dos import DOS_DSCP

from _util import banner, run_once

LEGIT = 1


def run_pressure(queue_capacity):
    sim = Simulator()
    nic = PanicNic(
        sim, PanicConfig(ports=1, queue_capacity=queue_capacity)
    )
    nic.host.contention_ps = 2 * US  # slow DMA: queues build
    nic.control.set_tenant_slack(LEGIT, 50 * US)
    nic.control.mark_dscp_droppable(DOS_DSCP)

    delivered = {"legit": 0, "dos": 0}

    def on_delivery(packet, queue):
        if packet.meta.annotations.get("dos"):
            delivered["dos"] += 1
        elif packet.meta.tenant == LEGIT:
            delivered["legit"] += 1

    nic.host.software_handler = on_delivery
    workload = KvsWorkload(
        sim, nic,
        [TenantSpec(LEGIT, rate_pps=300_000, key_space=100,
                    get_fraction=0.0, value_bytes=64)],
        requests_per_tenant=100,
    )
    flood = DosFlood(sim, nic.inject, rate_pps=3_000_000, count=400)
    workload.start()
    flood.start()
    sim.run()

    dma_drops = nic.dma.queue.dropped.value
    total_drops = sum(e.queue.dropped.value for e in nic.engines.values())
    return {
        "legit_delivered": delivered["legit"],
        "dos_delivered": delivered["dos"],
        "dos_injected": flood.injected,
        "dma_drops": dma_drops,
        "total_drops": total_drops,
        "dma_queue_peak": nic.dma.queue.max_occupancy,
    }


def test_memory_pressure_drops_attack_traffic_only(benchmark):
    def run():
        return {
            "bounded (cap 16)": run_pressure(queue_capacity=16),
            "unbounded": run_pressure(queue_capacity=None),
        }

    results = run_once(benchmark, run)

    banner("Sec 4.3/6: bounded engine queues under a DoS flood "
           "(legit tenant lossless, flood droppable)")
    rows = []
    for label, r in results.items():
        rows.append([
            label, r["legit_delivered"], "100",
            f"{r['dos_delivered']}/{r['dos_injected']}",
            r["total_drops"], r["dma_queue_peak"],
        ])
    print(format_table(
        ["config", "legit delivered", "legit sent", "DoS delivered/sent",
         "drops", "DMA queue peak"],
        rows,
    ))

    bounded = results["bounded (cap 16)"]
    unbounded = results["unbounded"]
    # Every legitimate (lossless) packet survives in both configs.
    assert bounded["legit_delivered"] == 100
    assert unbounded["legit_delivered"] == 100
    # Bounded queues shed flood traffic; the drops are real and land
    # only on droppable messages (legit loss would have raised).
    assert bounded["total_drops"] > 0
    assert bounded["dos_delivered"] < bounded["dos_injected"]
    # Without bounds nothing is dropped but the queue balloons.
    assert unbounded["total_drops"] == 0
    assert unbounded["dma_queue_peak"] > bounded["dma_queue_peak"]
