"""Ablation A3 -- section 6: pass whole packets or pointers?

"Should entire packets always be passed from engines, or are there times
when it is better to instead pass pointers to packet data located in a
common packet buffer?"

We measure both designs on a chain workload with large payloads:

* **full mode** -- frames ride the mesh at full size every hop;
* **pointer mode** -- payloads park in a shared packet buffer; only
  32-byte descriptors ride the mesh, but every payload-touching engine
  pays for buffer-port access.

Expected trade-off: pointer mode slashes mesh load (an order of
magnitude for KB payloads over multi-hop chains), while the shared
buffer's ports become the new contention point -- a 1-port buffer is
measurably slower than a 4-port one under the same load.
"""

from repro.analysis import format_table
from repro.core import PanicConfig, PanicNic
from repro.sim import Simulator
from repro.sim.clock import US

from _util import banner, plain_udp_packet, run_once

N_PACKETS = 40
PAYLOAD = 1000
CHAIN = ["checksum", "regex"]


def run_mode(payload_mode, pktbuf_ports=2):
    sim = Simulator()
    nic = PanicNic(
        sim,
        PanicConfig(
            ports=1,
            offloads=("regex", "checksum"),
            offload_params={"regex": {"patterns": [b"x"]}},
            payload_mode=payload_mode,
            pktbuf_ports=pktbuf_ports,
        ),
    )
    nic.control.route_dscp(1, CHAIN)
    done = []
    nic.host.software_handler = lambda p, q: done.append(sim.now)
    for i in range(N_PACKETS):
        sim.schedule_at(
            i * 100_000, nic.inject,
            plain_udp_packet(payload=bytes(PAYLOAD), seq=i, dscp=1),
        )
    sim.run()
    assert len(done) == N_PACKETS
    mesh_bits = sum(c.bits_sent.value for c in nic.mesh.channels)
    makespan_us = max(done) / US
    buffer_stats = None
    if nic.payload_buffer is not None:
        buffer_stats = {
            "accesses": nic.payload_buffer.accesses.value,
            "high_watermark": nic.payload_buffer.high_watermark,
            "leaked": nic.payload_buffer.live_handles,
        }
    return mesh_bits, makespan_us, buffer_stats


def test_pointer_vs_full_payload(benchmark):
    def run():
        return {
            "full": run_mode("full"),
            "pointer (2 ports)": run_mode("pointer", pktbuf_ports=2),
            "pointer (1 port)": run_mode("pointer", pktbuf_ports=1),
        }

    results = run_once(benchmark, run)

    banner("Sec 6 ablation: whole packets vs pointers + shared buffer "
           f"({N_PACKETS} x {PAYLOAD}B payloads through a 2-offload chain)")
    rows = []
    for label, (bits, makespan, buf) in results.items():
        rows.append([label, f"{bits / 8 / 1024:.0f} KiB",
                     f"{makespan:.1f}",
                     buf["accesses"] if buf else "-",
                     f"{buf['high_watermark']}B" if buf else "-"])
    print(format_table(
        ["mode", "mesh traffic", "makespan (us)", "buffer accesses",
         "buffer peak"],
        rows,
    ))

    full_bits = results["full"][0]
    ptr_bits = results["pointer (2 ports)"][0]
    # Descriptors instead of KB frames: mesh load collapses.
    assert ptr_bits < full_bits / 5
    # The buffer never leaks and sees real traffic.
    buf = results["pointer (2 ports)"][2]
    assert buf["leaked"] == 0
    assert buf["accesses"] > N_PACKETS
    # The trade-off: fewer buffer ports -> more contention -> slower.
    assert (results["pointer (1 port)"][1]
            >= results["pointer (2 ports)"][1])
