"""Experiment E8 -- load/latency characterization of the PANIC NIC.

The conclusion claims PANIC "is able to scale performance with
increasing line-rates"; the standard way to show a fabric holds up is
the load-latency curve: offered load as a fraction of what the RX path
sustains, against mean NIC-side delivery latency.  The curve must be
flat at low load and turn up toward saturation -- and the knee must sit
near the high end, not at 50%.

Workload: IMIX frames (7:4:1 blend of 64/570/1500 B) into one port.
"""

from repro.analysis import format_table
from repro.core import PanicConfig, PanicNic
from repro.sim import Simulator
from repro.sim.clock import SEC, US
from repro.sim.rng import SeededRng
from repro.workloads import PoissonSource
from repro.workloads.generator import imix_factory

from _util import banner, run_once

N_PACKETS = 300


def measure_capacity_pps() -> float:
    """Empirical RX service capacity: saturate and divide."""
    sim = Simulator()
    nic = PanicNic(sim, PanicConfig(ports=1))
    done = []
    nic.host.software_handler = lambda p, q: done.append(
        p.meta.annotations["host_rx_ps"]
    )
    factory = imix_factory(rng=SeededRng(7))
    for i in range(200):
        nic.inject(factory(i))  # back-to-back burst: wire paces at 100G
    sim.run()
    span = max(done) - min(done)
    return (len(done) - 1) * SEC / span


def run_load(load_fraction: float, service_pps: float) -> float:
    sim = Simulator()
    nic = PanicNic(sim, PanicConfig(ports=1))
    latencies = []

    def on_delivery(packet, queue):
        # NIC-side latency: wire arrival -> DMA write into host memory.
        # (Measuring to *software* would be dominated by interrupt
        # coalescing, which shrinks with load -- a different, real
        # effect, but not the queueing curve under test.)
        written = packet.meta.annotations.get("host_rx_ps")
        if written is not None and packet.meta.nic_arrival_ps is not None:
            latencies.append((written - packet.meta.nic_arrival_ps) / US)

    nic.host.software_handler = on_delivery
    source = PoissonSource(
        sim, "load.src", nic.inject,
        imix_factory(rng=SeededRng(2)),
        rate_pps=service_pps * load_fraction,
        rng=SeededRng(3),
        count=N_PACKETS,
    )
    source.start()
    sim.run()
    assert len(latencies) == N_PACKETS
    return sum(latencies) / len(latencies)


def test_load_latency_curve(benchmark):
    loads = (0.2, 0.5, 0.8, 0.95)

    def run():
        capacity = measure_capacity_pps()
        return capacity, {load: run_load(load, capacity) for load in loads}

    capacity, curve = run_once(benchmark, run)

    banner("Load vs latency: IMIX traffic into one 100G port "
           f"(RX service capacity measured at {capacity / 1e6:.1f} Mpps)")
    print(format_table(
        ["offered load", "mean NIC latency (us)"],
        [[f"{load:.0%}", f"{lat:.2f}"] for load, lat in curve.items()],
    ))

    values = [curve[load] for load in loads]
    # Latency grows with load...
    assert values == sorted(values)
    # ...stays flat through mid loads (no premature saturation)...
    assert curve[0.5] < 2.5 * curve[0.2]
    # ...and the saturation knee shows up by 95%.
    assert curve[0.95] > 1.5 * curve[0.5]
