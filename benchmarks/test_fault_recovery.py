"""Experiment: graceful degradation under a mid-run engine crash.

The robustness claim behind PANIC's decoupled design: because chains are
data (a header computed by the RMT pipeline, steered by per-engine
lookup tables), losing an engine is a *control-plane* event -- recompute
the chains around the dead tile and the datapath keeps flowing.  We
measure that directly:

* **baseline**: two IPSec lanes share the load of two traffic classes;
* **crash + failover**: one lane dies a third of the way in; the
  mesh-resident health monitor detects the dead tile via heartbeat
  timeout and re-steers everything onto the surviving lane.

Acceptance: the crashed run retains >= 50% of baseline deliveries, the
mesh fully drains (0 in-flight messages -- no wedged credits), and two
runs of the same seeded :class:`FaultPlan` produce identical stats.
"""

from repro.analysis import format_table
from repro.core.config import PanicConfig
from repro.core.panic import PanicNic
from repro.faults import FaultInjector, FaultPlan, attach_health_monitor
from repro.sim import Simulator
from repro.sim.clock import NS, US

from _util import banner, plain_udp_packet, run_once

N_FRAMES = 400
GAP_PS = 150 * NS
CRASH_AT = 30 * US
HORIZON = 250 * US


def run_scenario(crash: bool, seed: int = 3):
    sim = Simulator()
    nic = PanicNic(sim, PanicConfig(
        ports=1,
        offloads=("ipsec", "ipsec1", "compression", "kvcache"),
        seed=seed,
    ))
    nic.set_backup("ipsec", "ipsec1")
    nic.control.route_dscp(10, ["ipsec"])
    nic.control.route_dscp(12, ["ipsec1"])
    monitor = attach_health_monitor(nic, period_ps=2 * US, timeout_ps=4 * US)
    monitor.start()
    if crash:
        plan = FaultPlan(seed=seed).crash_engine(CRASH_AT, "ipsec")
        FaultInjector(nic, plan).arm()

    def inject(i: int = 0) -> None:
        if i >= N_FRAMES:
            return
        packet = plain_udp_packet(
            payload=bytes(120), src_port=1000 + i,
            dscp=10 if i % 2 == 0 else 12, seq=i,
        )
        nic.inject(packet)
        sim.schedule(GAP_PS, inject, i + 1)

    inject()
    sim.run(until_ps=HORIZON)
    monitor.stop()
    sim.run()  # drain everything still in flight

    stats = nic.stats()
    return {
        "delivered": stats["host"]["rx_delivered"],
        "primary_processed": stats["ipsec"]["processed"],
        "backup_processed": stats["ipsec1"]["processed"],
        "blackholed": stats["faults"]["blackholed"],
        "failovers": stats["faults"]["failovers"],
        "watchdog_fires": stats["faults"]["watchdog_fires"],
        "in_flight": nic.mesh.in_flight,
        "stats": stats,
    }


def test_crash_failover_degrades_gracefully(benchmark):
    def run():
        return {
            "baseline": run_scenario(crash=False),
            "crash+failover": run_scenario(crash=True),
            "crash repeat": run_scenario(crash=True),
        }

    results = run_once(benchmark, run)
    baseline = results["baseline"]
    crashed = results["crash+failover"]
    repeat = results["crash repeat"]

    banner("Fault recovery: 1 of 2 IPSec lanes dies at 30 us")
    rows = [
        [label,
         int(r["delivered"]),
         int(r["primary_processed"]),
         int(r["backup_processed"]),
         int(r["blackholed"]),
         int(r["watchdog_fires"]),
         r["in_flight"]]
        for label, r in results.items()
    ]
    print(format_table(
        ["scenario", "delivered", "ipsec", "ipsec1", "black-holed",
         "watchdog", "in flight"],
        rows,
    ))
    retained = crashed["delivered"] / baseline["delivered"]
    print(f"\nthroughput retained after crash: {retained:.1%}")

    # Baseline is clean: no faults, everything delivered.
    assert baseline["delivered"] == N_FRAMES
    assert baseline["failovers"] == 0

    # The crash was detected and failed over exactly once.
    assert crashed["watchdog_fires"] == 1
    assert crashed["failovers"] == 1
    # Only the detection-window packets were lost; the backup carried
    # the rest, retaining at least half the baseline throughput.
    assert retained >= 0.5
    assert crashed["delivered"] + crashed["blackholed"] >= N_FRAMES
    # Losslessness outside the dead tile: nothing wedged in the mesh.
    assert baseline["in_flight"] == 0
    assert crashed["in_flight"] == 0

    # Determinism: the same plan + seed reproduces identical stats.
    assert crashed["stats"] == repeat["stats"]
