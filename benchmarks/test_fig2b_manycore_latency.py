"""Experiment F2b -- section 2.3.2 / Figure 2b: manycore NICs pay ~10 us
of embedded-core orchestration latency per packet; PANIC's logical
switch forwards between engines with no CPU in the loop.

Workload: a single unloaded packet that needs one hardware offload
(checksum), measured from wire arrival to host delivery.

Paper's shape: manycore >= 10 us (Firestone et al.'s number); PANIC's
path is RMT parse + mesh hops + engine service, well under a microsecond
of NIC-side work (host DMA dominates its total).
"""

from repro.analysis import format_comparison
from repro.baselines import ManycoreNic
from repro.core import PanicConfig, PanicNic
from repro.engines import ChecksumEngine
from repro.sim import Simulator
from repro.sim.clock import US

from _util import banner, plain_udp_packet, run_once


def manycore_latency_us() -> float:
    sim = Simulator()
    nic = ManycoreNic(
        sim,
        [("checksum", ChecksumEngine(sim, "mc.csum"))],
        orchestration_ps=10 * US,  # the paper's figure
    )
    packet = plain_udp_packet()
    packet.meta.annotations["needs"] = ("checksum",)
    nic.inject(packet)
    sim.run()
    # NIC-side latency: wire arrival to host-memory delivery (the
    # interrupt/software path is identical for every NIC and excluded).
    return packet.meta.annotations["host_rx_ps"] / US


def panic_latency_us() -> float:
    sim = Simulator()
    nic = PanicNic(sim, PanicConfig(ports=1, offloads=("checksum",)))
    nic.control.route_dscp(1, ["checksum"])
    packet = plain_udp_packet(dscp=1)
    nic.inject(packet)
    sim.run()
    return packet.meta.annotations["host_rx_ps"] / US


def test_fig2b_orchestration_latency(benchmark):
    def run():
        return {
            "manycore": manycore_latency_us(),
            "panic": panic_latency_us(),
        }

    results = run_once(benchmark, run)

    banner("Fig 2b / sec 2.3.2: unloaded single-packet NIC latency (us), "
           "one offload in the chain")
    print(format_comparison("latency", results, unit="us"))

    # The paper's number: a core adds 10 us or more.
    assert results["manycore"] >= 10.0
    # PANIC needs no core: at least ~10x lower.
    assert results["panic"] < results["manycore"] / 10
