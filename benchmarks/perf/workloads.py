"""Canonical wall-clock workloads for the kernel perf harness.

Every workload builds a PANIC NIC, drives a deterministic packet load
through it, and reports how much *wall-clock* the event loop burned next
to how much *simulated* work it retired.  The same workload runs with
the fast path on (``PanicConfig.fast_path=True``: kernel fast lanes +
cut-through NoC ExpressFlights) and off (pure per-hop slow path); the
simulated results are bit-identical either way (see
``tests/test_fast_path_equivalence.py``), so any wall-clock difference
is pure simulator overhead.

Workloads mirror the repo's canonical scenarios:

``chaining_uncontended``
    The headline multi-hop chaining workload: a five-engine offload
    chain with generous inter-packet gaps, so every NoC traversal is
    uncontended and eligible for cut-through.  This is where the fast
    path collapses the most per-hop events.
``chaining_contended``
    The same two-offload chain as ``benchmarks/test_chaining.py`` at a
    tight packet gap: queues form, express flights de-speculate, and
    the slow path carries most hops.  Measures fast-path overhead when
    it *cannot* win.
``isolation``
    The slack-scheduler isolation scenario (contended DMA, a bandwidth
    hog vs. a latency-sensitive tenant) from
    ``benchmarks/test_isolation_slack.py``.
``fault_recovery``
    The crash + heartbeat-failover scenario from
    ``benchmarks/test_fault_recovery.py`` -- armed fault injection
    forces the NoC fast path to stand down on the faulted lanes.

Every workload also takes ``batch`` (``PanicConfig.batch_execution``):
on top of the fast path, the kernel coalesces whole frame trajectories
and same-chain frame trains into single events (``repro.core.train``),
again bit-identical to the scalar run.

Each runner returns a dict with ``wall_seconds`` (event-loop time),
``events_fired``, ``sim_ps`` (final simulated time), ``bits_delivered``
(frame bits handed to host software) and ``deliveries``.
"""

from __future__ import annotations

import time
from typing import Callable, Dict

from repro.core import PanicConfig, PanicNic
from repro.faults import FaultInjector, FaultPlan, attach_health_monitor
from repro.packet import Packet, build_udp_frame
from repro.sim import Simulator
from repro.sim.clock import MS, NS, US
from repro.workloads import KvsWorkload, TenantSpec


def _udp_packet(payload: bytes, seq: int, dscp: int = 0,
                src_port: int = 7777) -> Packet:
    frame = build_udp_frame(
        src_mac="02:00:00:00:00:01",
        dst_mac="02:00:00:00:00:02",
        src_ip="10.0.0.1",
        dst_ip="10.0.0.2",
        src_port=src_port,
        dst_port=8888,
        payload=payload,
        dscp=dscp,
        identification=seq & 0xFFFF,
    )
    packet = Packet(frame)
    packet.meta.annotations["seq"] = seq
    return packet


def _timed_run(sim: Simulator, bits: Dict[str, int]) -> dict:
    start = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - start
    return {
        "wall_seconds": wall,
        "events_fired": sim.events_fired,
        "sim_ps": sim.now,
        "bits_delivered": bits["bits"],
        "deliveries": bits["count"],
    }


def _count_deliveries(nic: PanicNic) -> Dict[str, int]:
    bits = {"bits": 0, "count": 0}

    def handler(packet, _queue):
        bits["bits"] += packet.frame_bytes * 8
        bits["count"] += 1

    nic.host.software_handler = handler
    return bits


def chaining_uncontended(fast_path: bool = True, seed: int = 1,
                         frames: int = 400, telemetry=None,
                         batch: bool = False) -> dict:
    """Deep five-engine chain, one packet in flight at a time."""
    sim = Simulator()
    chain = ["checksum", "checksum1", "checksum2", "checksum3", "checksum4"]
    nic = PanicNic(sim, PanicConfig(
        ports=1, offloads=tuple(chain), seed=seed, fast_path=fast_path,
        telemetry=telemetry, batch_execution=batch,
    ))
    nic.control.route_dscp(1, chain)
    bits = _count_deliveries(nic)
    gap = 20_000_000  # 20 us: each packet finishes before the next arrives
    for i in range(frames):
        sim.schedule_at(i * gap, nic.inject,
                        _udp_packet(b"y" * 200, seq=i, dscp=1))
    return _timed_run(sim, bits)


def chaining_contended(fast_path: bool = True, seed: int = 1,
                       frames: int = 400, batch: bool = False) -> dict:
    """Two-offload chain at a tight gap: queues form, cut-through yields."""
    sim = Simulator()
    nic = PanicNic(sim, PanicConfig(
        ports=1, offloads=("regex", "checksum"), seed=seed,
        fast_path=fast_path, batch_execution=batch,
        offload_params={"regex": {"patterns": [b"x"],
                                  "cycles_per_byte": 0.5}},
    ))
    nic.control.route_dscp(1, ["regex", "checksum"])
    bits = _count_deliveries(nic)
    for i in range(frames):
        sim.schedule_at(i * 200_000, nic.inject,
                        _udp_packet(b"y" * 200, seq=i, dscp=1))
    return _timed_run(sim, bits)


def isolation(fast_path: bool = True, seed: int = 1,
              frames: int = 100, batch: bool = False) -> dict:
    """Slack scheduling under a DMA hog (benchmarks/test_isolation_slack)."""
    sim = Simulator()
    nic = PanicNic(sim, PanicConfig(ports=1, seed=seed, fast_path=fast_path,
                                    batch_execution=batch))
    nic.host.contention_ps = 2 * US
    nic.control.set_tenant_slack(1, 10 * US)
    nic.control.set_tenant_slack(2, 10 * MS)
    bits = _count_deliveries(nic)
    tenants = [
        TenantSpec(1, rate_pps=50_000, latency_sensitive=True,
                   key_space=50, get_fraction=1.0),
        TenantSpec(2, rate_pps=2_000_000, key_space=500,
                   get_fraction=0.0, value_bytes=1024),
    ]
    KvsWorkload(sim, nic, tenants, requests_per_tenant=frames).start()
    return _timed_run(sim, bits)


def fault_recovery(fast_path: bool = True, seed: int = 3,
                   frames: int = 400, batch: bool = False) -> dict:
    """Mid-run engine crash + heartbeat failover (test_fault_recovery)."""
    sim = Simulator()
    nic = PanicNic(sim, PanicConfig(
        ports=1, offloads=("ipsec", "ipsec1", "compression", "kvcache"),
        seed=seed, fast_path=fast_path, batch_execution=batch,
    ))
    nic.set_backup("ipsec", "ipsec1")
    nic.control.route_dscp(10, ["ipsec"])
    nic.control.route_dscp(12, ["ipsec1"])
    monitor = attach_health_monitor(nic, period_ps=2 * US, timeout_ps=4 * US)
    monitor.start()
    plan = FaultPlan(seed=seed).crash_engine(30 * US, "ipsec")
    FaultInjector(nic, plan).arm()
    bits = _count_deliveries(nic)

    def inject(i: int = 0) -> None:
        if i >= frames:
            return
        nic.inject(_udp_packet(bytes(120), seq=i, src_port=1000 + i,
                               dscp=10 if i % 2 == 0 else 12))
        sim.schedule(150 * NS, inject, i + 1)

    inject()
    start = time.perf_counter()
    sim.run(until_ps=250 * US)
    monitor.stop()
    sim.run()  # drain in-flight work after the horizon
    wall = time.perf_counter() - start
    return {
        "wall_seconds": wall,
        "events_fired": sim.events_fired,
        "sim_ps": sim.now,
        "bits_delivered": bits["bits"],
        "deliveries": bits["count"],
    }


#: Registry consumed by run_kernel_bench / sweep.  Order matters only
#: for display.
WORKLOADS: Dict[str, Callable[..., dict]] = {
    "chaining_uncontended": chaining_uncontended,
    "chaining_contended": chaining_contended,
    "isolation": isolation,
    "fault_recovery": fault_recovery,
}
