"""The stable on-disk schema for perf-harness results.

Every ``BENCH_*.json`` this directory produces shares one envelope,
version-tagged so CI and downstream tooling can parse it without
guessing at per-harness layouts:

.. code-block:: json

    {
      "schema": "repro-bench/2",
      "bench": "<harness name>",
      "generated": "<ISO-8601 UTC>",
      "host": {"python": "...", "machine": "...", "cores": 8},
      "params": {"...": "harness invocation parameters"},
      "workloads": {"<name>": {"...": "full per-workload detail"}},
      "series": [
        {"workload": "<name>", "metric": "<metric>", "value": 1.23}
      ]
    }

``workloads`` keeps each harness's full nested detail (free-form, may
grow fields).  ``series`` is the stable part: a flat list of
``(workload, metric, value)`` triples with numeric values only -- plot
scripts and the CI floor check read *only* ``series`` and ``params``.
Schema history: ``repro-bench/1`` was the tagless ad-hoc layout written
before this module existed.
"""

from __future__ import annotations

import json
import os
import platform
from datetime import datetime, timezone
from typing import Dict, List

SCHEMA = "repro-bench/2"


def envelope(bench: str, params: Dict, workloads: Dict,
             series: List[Dict]) -> Dict:
    """Assemble one schema-conforming result payload."""
    for point in series:
        if set(point) != {"workload", "metric", "value"}:
            raise ValueError(f"malformed series point: {point}")
        if not isinstance(point["value"], (int, float)):
            raise ValueError(f"non-numeric series value: {point}")
    return {
        "schema": SCHEMA,
        "bench": bench,
        "generated": datetime.now(timezone.utc).isoformat(
            timespec="seconds"),
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cores": os.cpu_count(),
        },
        "params": params,
        "workloads": workloads,
        "series": series,
    }


def write_json(path: str, payload: Dict) -> None:
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {path}")
