"""Wall-clock perf harness: see run_kernel_bench.py and sweep.py."""
