"""Wall-clock perf harness for the simulation kernel fast path.

Runs the canonical workloads (see :mod:`workloads`) three times each --
fast path off (the per-hop reference slow path), fast path on (kernel
fast lanes + cut-through ExpressFlights), and batched (fast path +
``PanicConfig.batch_execution``: trajectory/frame trains with
vectorized per-frame work) -- and writes ``BENCH_kernel.json``.

Metrics per workload
--------------------
``speedup_wall``
    slow wall-clock / fast wall-clock, best-of-``--repeats`` each side.
``events_per_sec``
    **Normalized** events/sec: *reference* (slow-path) event count
    divided by *fast-path* wall time.  The fast path deliberately fires
    fewer Python-level events for the same simulated work, so dividing
    its own (smaller) event count by its wall time would understate the
    win; normalizing to the reference count makes events/sec a pure
    wall-clock speed metric on a fixed workload, comparable across
    kernels.  ``events_per_sec_raw`` (fast events / fast wall) is also
    recorded.
``speedup_wall_batched`` / ``events_per_sec_batched``
    The same two metrics for the batched run (reference event count
    over the batched wall), plus ``events_per_sec_batched_raw``.
``sim_gbps_per_wall_sec``
    Simulated gigabits delivered to host software per wall-clock second
    of fast-path simulation.

Usage::

    PYTHONPATH=src python benchmarks/perf/run_kernel_bench.py \
        --out BENCH_kernel.json [--workloads a,b] [--frames N] \
        [--repeats K] [--floor benchmarks/perf/floor.json] \
        [--profile N] [--int-overhead]

``--floor`` compares each workload's ``events_per_sec`` (and, when the
floor file lists them, ``events_per_sec_batched``) against a checked-in
floor and exits non-zero on a regression beyond ``--tolerance``
(default 0.30, i.e. fail below 70% of the floor).  The floor is
deliberately conservative (set well under developer-laptop numbers) so
slow CI runners don't flap; the 30% tolerance then guards against
order-of-magnitude regressions, not noise.

``--profile N`` additionally runs each workload once more (batched)
under :mod:`cProfile` and embeds the top-``N`` functions by cumulative
time in the output JSON under ``profiles`` -- the artifact to read when
chasing where batched wall time goes.

``--int-overhead`` additionally measures side-channel INT (armed
sources/sinks, zero wire growth) against an INT-free run on a small
monolithic fanin rack and -- with ``--floor`` -- gates the median paired
overhead against ``int_overhead_max_frac`` (the documented armed-INT
budget, looser than the 5% idle-telemetry gate because armed INT does
real per-hop work).

Output follows the versioned ``repro-bench/2`` envelope (see
:mod:`bench_schema`): full per-workload detail under ``workloads``, and
the four metrics above additionally flattened into the stable
``series`` list that plots and CI read.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from bench_schema import envelope, write_json
from workloads import WORKLOADS


def measure(name: str, fast_path: bool, seed: int, frames: Optional[int],
            repeats: int, batch: bool = False) -> dict:
    """Best-of-``repeats`` run of one workload (determinism makes the
    minimum the right statistic: all variance is OS noise)."""
    kwargs = {"fast_path": fast_path, "seed": seed, "batch": batch}
    if frames is not None:
        kwargs["frames"] = frames
    best = None
    for _ in range(repeats):
        result = WORKLOADS[name](**kwargs)
        if best is None or result["wall_seconds"] < best["wall_seconds"]:
            best = result
    return best


def _check_identical(name: str, reference: dict, candidate: dict,
                     label: str) -> None:
    if (reference["sim_ps"], reference["deliveries"],
            reference["bits_delivered"]) != (
            candidate["sim_ps"], candidate["deliveries"],
            candidate["bits_delivered"]):
        raise AssertionError(
            f"{name}: {label} simulated results diverged from the "
            "reference -- run tests/test_fast_path_equivalence.py / "
            "tests/test_batched_execution.py"
        )


def bench_workload(name: str, seed: int, frames: Optional[int],
                   repeats: int) -> dict:
    slow = measure(name, False, seed, frames, repeats)
    fast = measure(name, True, seed, frames, repeats)
    batched = measure(name, True, seed, frames, repeats, batch=True)
    _check_identical(name, slow, fast, "fast-path")
    _check_identical(name, slow, batched, "batched")
    fast_wall = fast["wall_seconds"]
    batched_wall = batched["wall_seconds"]
    return {
        "seed": seed,
        "fast": fast,
        "slow": slow,
        "batched": batched,
        "speedup_wall": round(slow["wall_seconds"] / fast_wall, 3),
        "events_per_sec": round(slow["events_fired"] / fast_wall),
        "events_per_sec_raw": round(fast["events_fired"] / fast_wall),
        "sim_gbps_per_wall_sec": round(
            fast["bits_delivered"] / 1e9 / fast_wall, 3),
        # Batched-lane metrics, normalized the same way: the reference
        # (slow-path) event count over the batched wall.
        "speedup_wall_batched": round(
            slow["wall_seconds"] / batched_wall, 3),
        "events_per_sec_batched": round(
            slow["events_fired"] / batched_wall),
        "events_per_sec_batched_raw": round(
            batched["events_fired"] / batched_wall),
    }


def profile_workload(name: str, seed: int, frames: Optional[int],
                     top: int, batch: bool = True) -> dict:
    """cProfile one batched run; return the top-``top`` rows by
    cumulative time as JSON-friendly dicts."""
    import cProfile
    import pstats

    kwargs = {"fast_path": True, "seed": seed, "batch": batch}
    if frames is not None:
        kwargs["frames"] = frames
    workload = WORKLOADS[name]
    workload(**kwargs)  # warm parse/verdict memos, match the bench
    profiler = cProfile.Profile()
    profiler.enable()
    workload(**kwargs)
    profiler.disable()
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative")
    rows = []
    for func in stats.fcn_list[:top]:  # (file, line, name) in sort order
        cc, nc, tt, ct, _callers = stats.stats[func]
        filename, line, funcname = func
        rows.append({
            "function": f"{filename}:{line}({funcname})",
            "ncalls": nc,
            "primitive_calls": cc,
            "tottime": round(tt, 6),
            "cumtime": round(ct, 6),
        })
    return {
        "workload": name,
        "batch": batch,
        "top": top,
        "total_calls": stats.total_calls,
        "total_tt": round(stats.total_tt, 6),
        "rows": rows,
    }


def bench_telemetry_overhead(seed: int, frames: Optional[int],
                             repeats: int) -> dict:
    """Disabled-telemetry overhead on the uncontended chain.

    Measures an *enabled-but-idle* TelemetryConfig (sample_every=0, no
    probes) against telemetry=None: that is the worst honest case for
    the "near-zero overhead when off" claim, since every instrumented
    path pays its tracer None/ctx check.

    The 5% gate needs more signal than the smoke flags provide (at
    ``--frames 100 --repeats 2`` the run-to-run noise alone exceeds
    5%), so this sub-bench enforces its own minimums (300 frames, 7
    rounds) and reports the *median of per-round paired ratios*: each
    round runs off-then-on back to back, so shared-runner load drift
    hits both sides of a ratio equally, and the median discards the
    rounds a scheduler hiccup poisoned.
    """
    from repro.telemetry import TelemetryConfig

    kwargs = {"fast_path": True, "seed": seed,
              "frames": max(frames or 400, 300)}
    idle = TelemetryConfig(sample_every=0, probe_period_ps=0)
    workload = WORKLOADS["chaining_uncontended"]
    ratios = []
    last_off = last_on = None
    for _ in range(max(repeats, 7)):
        off = workload(telemetry=None, **kwargs)
        on = workload(telemetry=idle, **kwargs)
        ratios.append(on["wall_seconds"] / off["wall_seconds"])
        last_off, last_on = off, on
    if (last_off["sim_ps"], last_off["deliveries"],
            last_off["bits_delivered"]) != (
            last_on["sim_ps"], last_on["deliveries"],
            last_on["bits_delivered"]):
        raise AssertionError(
            "telemetry-enabled run diverged from the disabled run -- "
            "run tests/test_telemetry.py"
        )
    ratios.sort()
    overhead = ratios[len(ratios) // 2] - 1.0
    return {
        "workload": "chaining_uncontended",
        "rounds": len(ratios),
        "ratio_spread": [round(ratios[0], 4), round(ratios[-1], 4)],
        "overhead_frac": round(overhead, 4),
    }


def bench_int_overhead(seed: int, frames: Optional[int],
                       repeats: int) -> dict:
    """Side-channel INT overhead on a small monolithic fanin rack.

    Measures ``IntConfig()`` (side-channel carriage -- the default,
    observation-only mode) against ``int_=None`` on a 3-NIC incast:
    unlike the idle-telemetry case, armed INT does real per-packet work
    on every hop (state normalization at inject, an enqueue tap, a hop
    record at transmit, the sink pop), so its budget is necessarily
    looser than the 5% idle gate -- ``int_overhead_max_frac`` in
    ``floor.json`` documents it.  Same methodology as
    :func:`bench_telemetry_overhead`: paired off/on rounds, median of
    per-round ratios, and a bit-identical-deliveries assertion (the
    side channel must not perturb simulated results).
    """
    from repro.sim.clock import NS
    from repro.sim.shard import run_monolithic
    from repro.telemetry.config import IntConfig
    from repro.workloads.rack import rack_topology

    rack_frames = max(frames or 400, 240)

    def topo(int_):
        return rack_topology(
            nics=3, pattern="fanin", frames=rack_frames,
            gap_ps=1000 * NS, propagation_ps=8000 * NS, seed=seed,
            int_=int_,
        )

    ratios = []
    last_off = last_on = None
    for _ in range(max(repeats, 9)):
        off = run_monolithic(topo(None))
        on = run_monolithic(topo(IntConfig()))
        ratios.append(on.wall_seconds / off.wall_seconds)
        last_off, last_on = off, on
    def strip_int(report):
        # The postcard list and the per-NIC stats()["int"] summary exist
        # only on the armed side; everything else must be bit-identical.
        out = {k: v for k, v in report.items() if k != "int"}
        out["stats"] = {
            k: v for k, v in report["stats"].items() if k != "int"}
        return out

    if ({n: strip_int(r) for n, r in last_on.reports.items()}
            != {n: strip_int(r) for n, r in last_off.reports.items()}):
        raise AssertionError(
            "side-channel INT run diverged from the INT-off run -- "
            "run tests/test_int.py"
        )
    ratios.sort()
    overhead = ratios[len(ratios) // 2] - 1.0
    postcards = sum(
        len(report.get("int", ())) for report in last_on.reports.values())
    return {
        "workload": "rack_fanin_3nic",
        "rounds": len(ratios),
        "frames": rack_frames,
        "postcards": postcards,
        "ratio_spread": [round(ratios[0], 4), round(ratios[-1], 4)],
        "overhead_frac": round(overhead, 4),
    }


def check_floor(results: dict, floor_path: str, tolerance: float,
                telemetry: Optional[dict] = None,
                int_overhead: Optional[dict] = None) -> int:
    with open(floor_path) as fh:
        floor = json.load(fh)
    failures = 0
    for metric in ("events_per_sec", "events_per_sec_batched"):
        for name, bounds in floor.get(metric, {}).items():
            if name not in results:
                continue
            got = results[name][metric]
            allowed = bounds * (1.0 - tolerance)
            status = "ok" if got >= allowed else "REGRESSION"
            print(f"floor check {name} [{metric}]: {got:,.0f} events/s "
                  f"vs floor {bounds:,.0f} (min allowed {allowed:,.0f}) "
                  f"-> {status}")
            if got < allowed:
                failures += 1
    max_overhead = floor.get("telemetry_overhead_max_frac")
    if telemetry is not None and max_overhead is not None:
        got = telemetry["overhead_frac"]
        status = "ok" if got <= max_overhead else "REGRESSION"
        print(f"floor check telemetry_idle: {got:+.2%} overhead vs max "
              f"{max_overhead:.0%} -> {status}")
        if got > max_overhead:
            failures += 1
    max_int = floor.get("int_overhead_max_frac")
    if int_overhead is not None and max_int is not None:
        got = int_overhead["overhead_frac"]
        status = "ok" if got <= max_int else "REGRESSION"
        print(f"floor check int_idle: {got:+.2%} overhead vs max "
              f"{max_int:.0%} -> {status}")
        if got > max_int:
            failures += 1
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_kernel.json")
    parser.add_argument("--workloads", default="all",
                        help="comma-separated subset of: "
                             + ",".join(WORKLOADS))
    parser.add_argument("--frames", type=int, default=None,
                        help="override per-workload frame count")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--floor", default=None,
                        help="floor JSON to regress events/sec against")
    parser.add_argument("--tolerance", type=float, default=0.30)
    parser.add_argument("--profile", type=int, default=0, metavar="N",
                        help="also cProfile one batched run per workload "
                             "and embed the top-N functions by cumulative "
                             "time in the output JSON")
    parser.add_argument("--int-overhead", action="store_true",
                        help="also measure side-channel INT overhead on a "
                             "small monolithic rack and gate it against "
                             "floor.json's int_overhead_max_frac")
    args = parser.parse_args(argv)

    names = (list(WORKLOADS) if args.workloads == "all"
             else [n.strip() for n in args.workloads.split(",") if n.strip()])
    unknown = [n for n in names if n not in WORKLOADS]
    if unknown:
        parser.error(f"unknown workloads: {unknown}")

    results = {}
    for name in names:
        results[name] = bench_workload(
            name, args.seed, args.frames, args.repeats)
        r = results[name]
        print(f"{name}: {r['speedup_wall']}x wall speedup, "
              f"{r['events_per_sec']:,} events/s (normalized), "
              f"{r['speedup_wall_batched']}x batched "
              f"({r['events_per_sec_batched']:,} events/s), "
              f"{r['sim_gbps_per_wall_sec']} sim-Gb per wall-second")

    telemetry = None
    if "chaining_uncontended" in names:
        telemetry = bench_telemetry_overhead(
            args.seed, args.frames, args.repeats)
        print(f"telemetry idle overhead: {telemetry['overhead_frac']:+.2%} "
              "wall (enabled-but-idle vs none)")

    int_overhead = None
    if args.int_overhead:
        int_overhead = bench_int_overhead(
            args.seed, args.frames, args.repeats)
        print(f"INT side-channel overhead: "
              f"{int_overhead['overhead_frac']:+.2%} wall "
              f"({int_overhead['postcards']} postcards on the "
              f"{int_overhead['frames']}-frame fanin rack)")

    series = [
        {"workload": name, "metric": metric, "value": results[name][metric]}
        for name in results
        for metric in ("speedup_wall", "events_per_sec",
                       "events_per_sec_raw", "sim_gbps_per_wall_sec",
                       "speedup_wall_batched", "events_per_sec_batched",
                       "events_per_sec_batched_raw")
    ]
    if telemetry is not None:
        series.append({"workload": "telemetry_idle",
                       "metric": "overhead_frac",
                       "value": telemetry["overhead_frac"]})
    if int_overhead is not None:
        series.append({"workload": "int_idle",
                       "metric": "overhead_frac",
                       "value": int_overhead["overhead_frac"]})
    payload = envelope(
        bench="kernel_fast_path",
        params={"repeats": args.repeats, "seed": args.seed,
                "frames": args.frames, "workloads": names},
        workloads=results,
        series=series,
    )
    if telemetry is not None:
        payload["telemetry_overhead"] = telemetry
    if int_overhead is not None:
        payload["int_overhead"] = int_overhead
    if args.profile:
        payload["profiles"] = {
            name: profile_workload(name, args.seed, args.frames,
                                   args.profile)
            for name in names
        }
    write_json(args.out, payload)

    if args.floor:
        failures = check_floor(results, args.floor, args.tolerance,
                               telemetry=telemetry,
                               int_overhead=int_overhead)
        if failures:
            print(f"{failures} workload(s) under the perf floor",
                  file=sys.stderr)
            return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
