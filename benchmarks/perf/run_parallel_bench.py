"""Wall-clock perf harness for the sharded rack runner.

Runs the 4-NIC all-pairs incast (see :mod:`repro.workloads.rack`) once
monolithically and once sharded per requested worker count, asserts the
sharded reports are bit-identical to the monolithic ones (the DESIGN.md
section 10 contract), and writes ``BENCH_parallel.json`` in the stable
``repro-bench/2`` envelope (see :mod:`bench_schema`).

Series metrics per worker count ``w`` (workload key ``rack_incast_w{w}``)
-------------------------------------------------------------------------
``events_per_sec``
    Total simulation events (identical across modes, asserted) divided
    by that run's wall time.
``speedup_wall``
    Monolithic wall-clock / sharded wall-clock, best-of-``--repeats``
    each side.  Genuine parallelism needs as many idle cores as
    workers; on smaller machines the numbers are still written, just
    not meaningful as speedups.
``sync_rounds``
    Conservative-window barrier rounds the sharded run took.

The monolithic baseline is recorded as workload ``rack_incast_mono``.

Usage::

    PYTHONPATH=src python benchmarks/perf/run_parallel_bench.py \
        --out BENCH_parallel.json [--workers 1,2,4] [--nics 4] \
        [--frames 240] [--repeats 2] [--floor benchmarks/perf/floor.json]

``--floor`` compares the *monolithic* ``events_per_sec`` against the
checked-in ``parallel_events_per_sec`` floor and exits non-zero below
``(1 - tolerance) * floor``.  The floor is single-process on purpose:
speedup depends on the runner's core count, so gating on it would flap
on small CI machines, while single-core event throughput only regresses
when the code slows down.

``--trace-out PATH`` additionally runs the incast once sharded across
the largest worker count *with telemetry enabled* and writes the
coordinator-merged spans as Chrome trace-event JSON (an artifact CI
uploads).  The perf measurements above stay telemetry-free.
"""

from __future__ import annotations

import argparse
import json
import sys

from bench_schema import envelope, write_json

from repro.sim.clock import NS
from repro.sim.shard import run_monolithic, run_sharded
from repro.workloads.rack import rack_topology


def _best(run, repeats):
    best = None
    for _ in range(repeats):
        result = run()
        if best is None or result.wall_seconds < best.wall_seconds:
            best = result
    return best


def check_floor(mono_rate: float, floor_path: str, tolerance: float) -> int:
    with open(floor_path) as fh:
        floor = json.load(fh)
    bounds = floor.get("parallel_events_per_sec", {}).get(
        "rack_incast_mono")
    if bounds is None:
        print(f"no rack_incast_mono floor in {floor_path}; skipping")
        return 0
    allowed = bounds * (1.0 - tolerance)
    status = "ok" if mono_rate >= allowed else "REGRESSION"
    print(f"floor check rack_incast_mono: {mono_rate:,.0f} events/s vs "
          f"floor {bounds:,.0f} (min allowed {allowed:,.0f}) -> {status}")
    return 0 if mono_rate >= allowed else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_parallel.json")
    parser.add_argument("--workers", default="1,2,4",
                        help="comma-separated worker counts to shard over")
    parser.add_argument("--nics", type=int, default=4)
    parser.add_argument("--frames", type=int, default=240)
    parser.add_argument("--gap-ns", type=int, default=1000)
    parser.add_argument("--prop-ns", type=int, default=8000,
                        help="wire propagation = the sync lookahead; "
                             "longer wires mean fewer barrier rounds")
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--floor", default=None,
                        help="floor JSON to regress events/sec against")
    parser.add_argument("--tolerance", type=float, default=0.30)
    parser.add_argument("--trace-out", default=None,
                        help="also write a merged telemetry trace.json "
                             "from a sharded telemetry-enabled run")
    args = parser.parse_args(argv)
    worker_counts = [int(w) for w in args.workers.split(",") if w.strip()]

    topo = rack_topology(
        nics=args.nics, frames=args.frames, gap_ps=args.gap_ns * NS,
        propagation_ps=args.prop_ns * NS, seed=args.seed,
    )
    mono = _best(lambda: run_monolithic(topo), args.repeats)
    mono_rate = mono.events_fired / mono.wall_seconds
    print(f"monolithic: {mono.events_fired} events in "
          f"{mono.wall_seconds:.3f}s ({mono_rate:,.0f} events/s)")

    workloads = {
        "rack_incast_mono": {
            "mode": "monolithic",
            "events_fired": mono.events_fired,
            "wall_seconds": mono.wall_seconds,
        },
    }
    series = [{"workload": "rack_incast_mono", "metric": "events_per_sec",
               "value": round(mono_rate)}]
    for workers in worker_counts:
        sharded = _best(lambda: run_sharded(topo, workers=workers),
                        args.repeats)
        for name, report in mono.reports.items():
            if sharded.reports[name] != report:
                raise AssertionError(
                    f"{workers}-worker run diverged on {name} -- "
                    "run tests/test_shard_equivalence.py")
        speedup = mono.wall_seconds / sharded.wall_seconds
        rate = sharded.events_fired / sharded.wall_seconds
        key = f"rack_incast_w{workers}"
        print(f"{key}: {speedup:.2f}x wall speedup, {rate:,.0f} events/s, "
              f"{sharded.rounds} sync rounds "
              f"(lookahead {sharded.lookahead_ps / 1000:.0f}ns)")
        workloads[key] = {
            "mode": "sharded",
            "workers": workers,
            "events_fired": sharded.events_fired,
            "wall_seconds": sharded.wall_seconds,
            "rounds": sharded.rounds,
            "lookahead_ps": sharded.lookahead_ps,
        }
        series += [
            {"workload": key, "metric": "events_per_sec",
             "value": round(rate)},
            {"workload": key, "metric": "speedup_wall",
             "value": round(speedup, 3)},
            {"workload": key, "metric": "sync_rounds",
             "value": sharded.rounds},
        ]

    if args.trace_out:
        from repro.telemetry import TelemetryConfig
        from repro.telemetry.export import write_chrome_trace

        traced_topo = rack_topology(
            nics=args.nics, frames=args.frames, gap_ps=args.gap_ns * NS,
            propagation_ps=args.prop_ns * NS, seed=args.seed,
            telemetry=TelemetryConfig(sample_every=4),
        )
        traced = run_sharded(traced_topo, workers=max(worker_counts))
        count = write_chrome_trace(args.trace_out, traced.trace or {})
        print(f"wrote {count} merged trace events from the "
              f"{max(worker_counts)}-worker run to {args.trace_out}")

    payload = envelope(
        bench="rack_shard_parallel",
        params={
            "nics": args.nics, "frames": args.frames,
            "gap_ns": args.gap_ns, "prop_ns": args.prop_ns,
            "seed": args.seed, "repeats": args.repeats,
            "workers": worker_counts,
        },
        workloads=workloads,
        series=series,
    )
    write_json(args.out, payload)

    if args.floor:
        if check_floor(mono_rate, args.floor, args.tolerance):
            print("monolithic rack throughput under the perf floor",
                  file=sys.stderr)
            return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
