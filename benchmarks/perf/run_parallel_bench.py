"""Wall-clock perf harness for the sharded rack runner.

Runs a rack-row incast (see :mod:`repro.workloads.rack` -- 32 NICs by
default, tag flow identity) once monolithically and once sharded per
requested worker count and window protocol, asserts every sharded run is
bit-identical to the monolithic one (the DESIGN.md section 10 contract,
speculative included), and writes ``BENCH_parallel.json`` in the stable
``repro-bench/2`` envelope (see :mod:`bench_schema`).

Series metrics per worker count ``w`` and protocol
--------------------------------------------------
Conservative runs use workload key ``rack_incast_w{w}``, speculative
runs ``rack_incast_w{w}_spec``:

``events_per_sec``
    Total simulation events (identical across modes, asserted) divided
    by that run's wall time.
``speedup_wall``
    Monolithic wall-clock / sharded wall-clock, best-of-``--repeats``
    each side.
``sync_rounds``
    Coordinator synchronization rounds the run took (speculation's whole
    point is fewer of these).
``rollbacks`` / ``replayed_events``
    Speculative only: checkpoints abandoned and events re-fired during
    deterministic replay.
``capsules_replayed`` / ``rollback_wall_seconds``
    Speculative only: duplicate cross-shard capsules the replays
    re-emitted (and the barrier dropped), and wall seconds the woken
    checkpoint parents spent replaying.  The per-round horizon
    trajectory lands in the workload entry as ``horizon_history``.

The monolithic baseline is workload ``rack_incast_mono``; with
``--batched``, a batch-execution (PR7 train lane) pair is recorded as
``rack_incast_mono_batched`` and ``rack_incast_w{max}_batched``, each
equivalence-checked against the batched monolithic run.

Advisory runs
-------------
Genuine parallelism needs as many idle cores as workers.  Whenever
``os.cpu_count() < workers`` the run's workload entry is marked
``"advisory": true`` and ``--min-speedup`` is skipped for it: the
numbers are still written (the equivalence gate still binds -- it is
host-independent), they just are not meaningful as speedups, and an
under-provisioned CI runner must not fail the floor on them.

Usage::

    PYTHONPATH=src python benchmarks/perf/run_parallel_bench.py \
        --out BENCH_parallel.json [--workers 1,2,4] [--nics 32] \
        [--modes conservative,speculative] [--frames 8] [--repeats 2] \
        [--floor benchmarks/perf/floor.json] [--min-speedup 2.5]

``--floor`` compares the *monolithic* ``events_per_sec`` against the
checked-in ``parallel_events_per_sec`` floor and exits non-zero below
``(1 - tolerance) * floor``.  The floor is single-process on purpose:
speedup depends on the runner's core count, so gating on it would flap
on small CI machines, while single-core event throughput only regresses
when the code slows down.  ``--min-speedup X`` additionally requires the
best sharded run at the largest worker count to clear ``X``-times the
monolithic wall clock -- skipped (with a printed note) when that worker
count is advisory on this host.

``--trace-out PATH`` additionally runs the incast once sharded across
the largest worker count *with telemetry enabled* and writes the
coordinator-merged spans plus the shard-coordinator window-churn counter
track (sync_rounds / rollbacks / replayed_events, see
:func:`repro.telemetry.export.shard_window_counters`) as Chrome
trace-event JSON (an artifact CI uploads).  The perf measurements above
stay telemetry-free.

``--profile N`` additionally runs the monolithic baseline and the
largest worker count once per mode with the kernel's per-component
wall-time profiler (:meth:`~repro.sim.kernel.Simulator.set_profile`)
and embeds, under ``profiles``, the top-``N`` components by wall time
plus each shard's busy seconds -- the artifact to read when chasing
shard imbalance.  Profiled runs are separate (the perf_counter wrap
would taint the speedup numbers) but equivalence-checked.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from bench_schema import envelope, write_json

from repro.sim.clock import NS
from repro.sim.shard import run_monolithic, run_sharded
from repro.workloads.rack import rack_topology

MODES = ("conservative", "speculative")


def _best(run, repeats):
    best = None
    for _ in range(repeats):
        result = run()
        if best is None or result.wall_seconds < best.wall_seconds:
            best = result
    return best


def _assert_equivalent(mono, sharded, label: str) -> None:
    for name, report in mono.reports.items():
        if sharded.reports[name] != report:
            raise AssertionError(
                f"{label} diverged from monolithic on {name} -- "
                "run tests/test_shard_equivalence.py / "
                "tests/test_speculative.py")
    if sharded.wire_stats != mono.wire_stats:
        raise AssertionError(f"{label} diverged on wire_stats")


def check_floor(mono_rate: float, floor_path: str, tolerance: float) -> int:
    with open(floor_path) as fh:
        floor = json.load(fh)
    bounds = floor.get("parallel_events_per_sec", {}).get(
        "rack_incast_mono")
    if bounds is None:
        print(f"no rack_incast_mono floor in {floor_path}; skipping")
        return 0
    allowed = bounds * (1.0 - tolerance)
    status = "ok" if mono_rate >= allowed else "REGRESSION"
    print(f"floor check rack_incast_mono: {mono_rate:,.0f} events/s vs "
          f"floor {bounds:,.0f} (min allowed {allowed:,.0f}) -> {status}")
    return 0 if mono_rate >= allowed else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_parallel.json")
    parser.add_argument("--workers", default="1,2,4",
                        help="comma-separated worker counts to shard over")
    parser.add_argument("--modes", default="conservative,speculative",
                        help="comma-separated window protocols to measure")
    parser.add_argument("--nics", type=int, default=32)
    parser.add_argument("--frames", type=int, default=8)
    parser.add_argument("--gap-ns", type=int, default=1000)
    parser.add_argument("--prop-ns", type=int, default=8000,
                        help="wire propagation = the sync lookahead; "
                             "longer wires mean fewer barrier rounds")
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--batched", action="store_true", default=True,
                        help="also measure the batch-execution train lane "
                             "through the shard workers (default)")
    parser.add_argument("--no-batched", dest="batched",
                        action="store_false")
    parser.add_argument("--floor", default=None,
                        help="floor JSON to regress events/sec against")
    parser.add_argument("--tolerance", type=float, default=0.30)
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        help="require this wall speedup at the largest "
                             "worker count (skipped when advisory)")
    parser.add_argument("--trace-out", default=None,
                        help="also write a merged telemetry trace.json "
                             "from a sharded telemetry-enabled run")
    parser.add_argument("--profile", type=int, default=0, metavar="N",
                        help="also run mono + the largest worker count once "
                             "per mode with the kernel wall-time profiler "
                             "and embed the top-N components per shard in "
                             "the output JSON (perf numbers above stay "
                             "unprofiled)")
    args = parser.parse_args(argv)
    worker_counts = [int(w) for w in args.workers.split(",") if w.strip()]
    modes = [m.strip() for m in args.modes.split(",") if m.strip()]
    for mode in modes:
        if mode not in MODES:
            parser.error(f"unknown mode {mode!r}; expected one of {MODES}")
    cores = os.cpu_count() or 1

    def make_topo(batch=False, telemetry=None):
        return rack_topology(
            nics=args.nics, frames=args.frames, gap_ps=args.gap_ns * NS,
            propagation_ps=args.prop_ns * NS, seed=args.seed,
            batch=batch, telemetry=telemetry,
        )

    topo = make_topo()
    mono = _best(lambda: run_monolithic(topo), args.repeats)
    mono_rate = mono.events_fired / mono.wall_seconds
    print(f"monolithic: {mono.events_fired} events in "
          f"{mono.wall_seconds:.3f}s ({mono_rate:,.0f} events/s)")

    workloads = {
        "rack_incast_mono": {
            "mode": "monolithic",
            "events_fired": mono.events_fired,
            "wall_seconds": mono.wall_seconds,
        },
    }
    series = [{"workload": "rack_incast_mono", "metric": "events_per_sec",
               "value": round(mono_rate)}]
    best_speedup_at_max = 0.0
    max_workers = max(worker_counts)
    for workers in worker_counts:
        advisory = workers > cores
        for mode in modes:
            speculative = mode == "speculative"
            sharded = _best(
                lambda: run_sharded(topo, workers=workers,
                                    speculative=speculative),
                args.repeats)
            _assert_equivalent(mono, sharded,
                               f"{workers}-worker {mode} run")
            speedup = mono.wall_seconds / sharded.wall_seconds
            rate = sharded.events_fired / sharded.wall_seconds
            key = f"rack_incast_w{workers}" + (
                "_spec" if speculative else "")
            note = " [advisory: host has %d core(s)]" % cores \
                if advisory else ""
            print(f"{key}: {speedup:.2f}x wall speedup, "
                  f"{rate:,.0f} events/s, {sharded.rounds} sync rounds, "
                  f"{sharded.rollbacks} rollbacks "
                  f"(lookahead {sharded.lookahead_ps / 1000:.0f}ns)"
                  + note)
            workloads[key] = {
                "mode": "sharded",
                "protocol": mode,
                "workers": workers,
                "advisory": advisory,
                "events_fired": sharded.events_fired,
                "wall_seconds": sharded.wall_seconds,
                "rounds": sharded.rounds,
                "lookahead_ps": sharded.lookahead_ps,
                "rollbacks": sharded.rollbacks,
                "replayed_events": sharded.replayed_events,
                "discarded_events": sharded.discarded_events,
                "capsules_replayed": sharded.capsules_replayed,
                "rollback_wall_seconds": round(
                    sharded.rollback_wall_seconds, 6),
                "horizon_history": list(sharded.horizon_history),
            }
            series += [
                {"workload": key, "metric": "events_per_sec",
                 "value": round(rate)},
                {"workload": key, "metric": "speedup_wall",
                 "value": round(speedup, 3)},
                {"workload": key, "metric": "sync_rounds",
                 "value": sharded.rounds},
            ]
            if speculative:
                series += [
                    {"workload": key, "metric": "rollbacks",
                     "value": sharded.rollbacks},
                    {"workload": key, "metric": "replayed_events",
                     "value": sharded.replayed_events},
                    {"workload": key, "metric": "capsules_replayed",
                     "value": sharded.capsules_replayed},
                    {"workload": key, "metric": "rollback_wall_seconds",
                     "value": round(sharded.rollback_wall_seconds, 6)},
                ]
            if workers == max_workers:
                best_speedup_at_max = max(best_speedup_at_max, speedup)

    if args.batched:
        batched_topo = make_topo(batch=True)
        mono_b = _best(lambda: run_monolithic(batched_topo), args.repeats)
        rate_b = mono_b.events_fired / mono_b.wall_seconds
        print(f"monolithic batched: {mono_b.events_fired} events in "
              f"{mono_b.wall_seconds:.3f}s ({rate_b:,.0f} events/s)")
        workloads["rack_incast_mono_batched"] = {
            "mode": "monolithic", "batched": True,
            "events_fired": mono_b.events_fired,
            "wall_seconds": mono_b.wall_seconds,
        }
        series.append({"workload": "rack_incast_mono_batched",
                       "metric": "events_per_sec",
                       "value": round(rate_b)})
        speculative = "speculative" in modes
        sharded_b = _best(
            lambda: run_sharded(batched_topo, workers=max_workers,
                                speculative=speculative),
            args.repeats)
        _assert_equivalent(mono_b, sharded_b,
                           f"{max_workers}-worker batched run")
        speedup_b = mono_b.wall_seconds / sharded_b.wall_seconds
        srate_b = sharded_b.events_fired / sharded_b.wall_seconds
        key = f"rack_incast_w{max_workers}_batched"
        advisory = max_workers > cores
        print(f"{key}: {speedup_b:.2f}x wall speedup, "
              f"{srate_b:,.0f} events/s, {sharded_b.rounds} sync rounds"
              + (" [advisory]" if advisory else ""))
        workloads[key] = {
            "mode": "sharded", "batched": True,
            "protocol": "speculative" if speculative else "conservative",
            "workers": max_workers,
            "advisory": advisory,
            "events_fired": sharded_b.events_fired,
            "wall_seconds": sharded_b.wall_seconds,
            "rounds": sharded_b.rounds,
            "rollbacks": sharded_b.rollbacks,
        }
        series += [
            {"workload": key, "metric": "events_per_sec",
             "value": round(srate_b)},
            {"workload": key, "metric": "speedup_wall",
             "value": round(speedup_b, 3)},
            {"workload": key, "metric": "sync_rounds",
             "value": sharded_b.rounds},
        ]

    if args.trace_out:
        from repro.telemetry import TelemetryConfig
        from repro.telemetry.export import (
            shard_window_counters,
            write_chrome_trace,
        )

        traced_topo = make_topo(
            telemetry=TelemetryConfig(sample_every=4))
        traced = run_sharded(traced_topo, workers=max_workers,
                             speculative="speculative" in modes)
        count = write_chrome_trace(
            args.trace_out, traced.trace or {},
            extra_events=shard_window_counters(traced))
        print(f"wrote {count} merged trace events from the "
              f"{max_workers}-worker run to {args.trace_out}")

    profiles = None
    if args.profile:
        # Separate profiled pass: the perf_counter wrap in the kernel
        # disqualifies these walls from the speedup numbers above, but
        # simulated results stay bit-identical (asserted).
        profiles = {}

        def profile_entry(result):
            return {
                "wall_seconds": round(result.wall_seconds, 4),
                "top": [[round(sec, 6), calls, name]
                        for sec, calls, name
                        in (result.profile or [])[:args.profile]],
                "shards": {
                    str(shard): {
                        "busy_seconds": round(entry["busy_seconds"], 4),
                        "top": [[round(sec, 6), calls, name]
                                for sec, calls, name
                                in entry["profile"][:args.profile]],
                    }
                    for shard, entry in (result.shard_profiles or {}).items()
                },
            }

        mono_p = run_monolithic(topo, profile=True)
        _assert_equivalent(mono, mono_p, "profiled monolithic run")
        profiles["rack_incast_mono"] = profile_entry(mono_p)
        for mode in modes:
            speculative = mode == "speculative"
            sharded_p = run_sharded(topo, workers=max_workers,
                                    speculative=speculative, profile=True)
            _assert_equivalent(mono, sharded_p,
                               f"profiled {max_workers}-worker {mode} run")
            key = f"rack_incast_w{max_workers}" + (
                "_spec" if speculative else "")
            entry = profile_entry(sharded_p)
            if speculative:
                entry["rollback_wall_seconds"] = round(
                    sharded_p.rollback_wall_seconds, 6)
            profiles[key] = entry
            busy = {s: e["busy_seconds"]
                    for s, e in entry["shards"].items()}
            spread = (max(busy.values()) - min(busy.values())
                      if busy else 0.0)
            print(f"profile {key}: per-shard busy seconds {busy} "
                  f"(imbalance {spread:.3f}s)")
            for sec, calls, name in entry["top"][:3]:
                print(f"  {sec:8.4f}s {calls:>8} calls  {name}")

    payload = envelope(
        bench="rack_shard_parallel",
        params={
            "nics": args.nics, "frames": args.frames,
            "gap_ns": args.gap_ns, "prop_ns": args.prop_ns,
            "seed": args.seed, "repeats": args.repeats,
            "workers": worker_counts, "modes": modes,
            "batched": args.batched, "cores": cores,
        },
        workloads=workloads,
        series=series,
    )
    if profiles is not None:
        payload["profiles"] = profiles
    write_json(args.out, payload)

    failed = 0
    if args.floor and check_floor(mono_rate, args.floor, args.tolerance):
        print("monolithic rack throughput under the perf floor",
              file=sys.stderr)
        failed = 2
    if args.min_speedup > 0:
        if max_workers > cores:
            print(f"min-speedup check skipped: {max_workers} workers on "
                  f"{cores} core(s) -- advisory run")
        elif best_speedup_at_max < args.min_speedup:
            print(f"best speedup at {max_workers} workers "
                  f"{best_speedup_at_max:.2f}x under the "
                  f"{args.min_speedup:.2f}x floor", file=sys.stderr)
            failed = failed or 3
        else:
            print(f"min-speedup check ok: {best_speedup_at_max:.2f}x >= "
                  f"{args.min_speedup:.2f}x at {max_workers} workers")
    return failed


if __name__ == "__main__":
    sys.exit(main())
