"""Multi-seed, multi-config perf sweep on all cores.

Fans every (workload, seed, fast_path) combination out with
:func:`repro.sim.shard.parallel_map` -- the same pipe-fed worker pool
the sharded rack runner uses -- each combination being an independent
deterministic simulation, and writes one aggregated JSON with
per-combination wall times plus per-workload speedup summaries across
seeds.

Usage::

    PYTHONPATH=src python benchmarks/perf/sweep.py \
        --seeds 1,2,3 [--workloads a,b] [--frames N] [--jobs 8] \
        [--out BENCH_sweep.json]
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from workloads import WORKLOADS

from repro.sim.shard import parallel_map


def _run_combo(combo):
    """Worker: one (workload, seed, fast_path, frames) simulation."""
    name, seed, fast_path, frames = combo
    kwargs = {"fast_path": fast_path, "seed": seed}
    if frames is not None:
        kwargs["frames"] = frames
    result = WORKLOADS[name](**kwargs)
    return {"workload": name, "seed": seed, "fast_path": fast_path, **result}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_sweep.json")
    parser.add_argument("--seeds", default="1,2,3")
    parser.add_argument("--workloads", default="all")
    parser.add_argument("--frames", type=int, default=None)
    parser.add_argument("--jobs", type=int, default=os.cpu_count())
    args = parser.parse_args(argv)

    names = (list(WORKLOADS) if args.workloads == "all"
             else [n.strip() for n in args.workloads.split(",") if n.strip()])
    unknown = [n for n in names if n not in WORKLOADS]
    if unknown:
        parser.error(f"unknown workloads: {unknown}")
    seeds = [int(s) for s in args.seeds.split(",") if s.strip()]

    combos = [
        (name, seed, fast_path, args.frames)
        for name in names
        for seed in seeds
        for fast_path in (False, True)
    ]
    runs = parallel_map(_run_combo, combos, jobs=args.jobs)

    summary = {}
    for name in names:
        speedups = []
        for seed in seeds:
            by_fast = {
                r["fast_path"]: r for r in runs
                if r["workload"] == name and r["seed"] == seed
            }
            speedups.append(
                by_fast[False]["wall_seconds"] / by_fast[True]["wall_seconds"]
            )
        summary[name] = {
            "seeds": seeds,
            "speedup_wall_min": round(min(speedups), 3),
            "speedup_wall_mean": round(sum(speedups) / len(speedups), 3),
            "speedup_wall_max": round(max(speedups), 3),
        }
        print(f"{name}: speedup across seeds {seeds}: "
              f"min {summary[name]['speedup_wall_min']}x / "
              f"mean {summary[name]['speedup_wall_mean']}x / "
              f"max {summary[name]['speedup_wall_max']}x")

    with open(args.out, "w") as fh:
        json.dump({"bench": "kernel_fast_path_sweep", "jobs": args.jobs,
                   "runs": runs, "summary": summary},
                  fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
