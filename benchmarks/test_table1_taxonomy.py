"""Experiment T1 -- Table 1: the offload taxonomy.

Reproduces the paper's Table 1 verbatim from the encoded taxonomy and
checks that this library's engines cover every axis of it (the paper's
"PANIC supports arbitrary types of offloads" claim, made concrete).
"""

from repro.analysis import format_table
from repro.engines import coverage, table1_rows

from _util import banner, run_once


def test_table1_taxonomy(benchmark):
    def run():
        return table1_rows(), coverage()

    paper_rows, engine_rows = run_once(benchmark, run)

    banner("Table 1: offload types used by prior work (paper, transcribed)")
    print(format_table(["Project", "Offload Type"], paper_rows))
    banner("Taxonomy coverage by this library's engines")
    print(format_table(["Engine", "Offload Type"], engine_rows))

    assert len(paper_rows) == 11
    # Every axis value appears somewhere in the engine set.
    joined = " ".join(classification for _e, classification in engine_rows)
    for axis_value in ("Application", "Infrastructure", "Inline",
                       "CPU-bypass", "Computation", "Memory", "Network"):
        assert axis_value in joined, f"engines cover no {axis_value} offload"
