"""Experiment F2c -- section 2.3.3 / Figure 2c: RMT-only NICs steer at
line rate but cannot host payload offloads; PANIC hosts them as engines.

Two measurements:

1. capability: every payload offload raises UnsupportedOffloadError on
   the RMT NIC, while the same offload names resolve to live engines on
   PANIC (and a KV GET is actually served from the NIC).
2. what the RMT NIC *can* do it does at line rate: steering throughput
   equals F * P admissions.
"""

from repro.baselines import RmtNic, UnsupportedOffloadError
from repro.core import PanicConfig, PanicNic
from repro.core.pipeline_programs import DIR_RX
from repro.packet import KvOpcode, KvRequest, build_kv_request_frame, parse_frame
from repro.rmt import MatchKey, RmtProgram
from repro.sim import Simulator
from repro.sim.clock import SEC

from _util import banner, plain_udp_packet, run_once

PAYLOAD_OFFLOADS = ("ipsec", "compression", "kvcache", "rdma", "regex")


def rmt_capability():
    sim = Simulator()
    program = RmtProgram("flexnic")
    steer = program.add_table(
        "steer", [MatchKey("meta.direction")], requires="udp.src_port"
    )
    steer.add([DIR_RX], "hash_select",
              {"fields": ["ipv4.src", "udp.src_port"], "ways": 4})
    nic = RmtNic(sim, program)
    refused = []
    for offload in PAYLOAD_OFFLOADS:
        try:
            nic.attach_offload(offload)
        except UnsupportedOffloadError:
            refused.append(offload)
    return refused


def rmt_steering_pps(packets=500):
    sim = Simulator()
    program = RmtProgram("flexnic")
    steer = program.add_table(
        "steer", [MatchKey("meta.direction")], requires="udp.src_port"
    )
    steer.add([DIR_RX], "hash_select",
              {"fields": ["ipv4.src", "udp.src_port"], "ways": 4})
    nic = RmtNic(sim, program, pipelines=2, line_rate_bps=1e15)
    times = []
    nic.host.software_handler = lambda p, q: times.append(sim.now)
    for i in range(packets):
        nic.inject(plain_udp_packet(seq=i, src_port=1 + i % 60000))
    sim.run()
    assert len(times) == packets
    return nic.throughput_pps


def panic_hosts_offloads():
    sim = Simulator()
    nic = PanicNic(sim, PanicConfig(ports=1))
    nic.control.enable_kv_cache()
    nic.offload("kvcache").cache_put(b"k", b"served-on-nic")
    nic.inject(build_kv_request_frame(KvRequest(KvOpcode.GET, 1, 1, b"k")))
    sim.run()
    hosted = [name for name in PAYLOAD_OFFLOADS if name in nic.engines]
    response = parse_frame(nic.transmitted[0].data).kv_response()
    return hosted, response.value


def test_fig2c_rmt_offload_limits(benchmark):
    def run():
        return rmt_capability(), rmt_steering_pps(), panic_hosts_offloads()

    refused, steering_pps, (hosted, value) = run_once(benchmark, run)

    banner("Fig 2c / sec 2.3.3: RMT-only NIC capability surface")
    print(f"RMT NIC refuses payload offloads : {', '.join(refused)}")
    print(f"RMT NIC steering throughput      : {steering_pps / 1e6:.0f} Mpps (F*P)")
    print(f"PANIC hosts the same offloads    : {', '.join(hosted)}")
    print(f"PANIC served KV GET from the NIC : {value!r}")

    assert set(refused) == set(PAYLOAD_OFFLOADS)
    assert set(hosted) >= {"ipsec", "compression", "kvcache", "rdma"}
    assert value == b"served-on-nic"
    assert steering_pps == 1e9  # 2 pipelines at 500 MHz
