"""Experiment E10 -- section 3.1.2: "Neighboring engines may be
configured to independently process messages or be chained to form a
longer pipeline.  This design allows for flexible trade-offs between
pipeline depth and parallelism, with more pipelines leading to more
throughput."

We sweep the two axes over the same silicon budget (two RMT engine
tiles) and measure admission throughput and per-packet latency:

* parallel: two independent pipelines (P=2, depth 1) -- double
  throughput, base latency;
* chained: one deep pipeline (P=1, depth 2) -- base throughput, double
  latency, but twice the stage budget for bigger programs.
"""

from repro.analysis import format_table
from repro.engines import RmtPipelineEngine
from repro.noc import Endpoint, Mesh, MeshConfig
from repro.rmt import MatchKey, RmtProgram
from repro.sim import Simulator
from repro.sim.clock import SEC, US

from _util import banner, plain_udp_packet, run_once

PACKETS = 400


class Sink(Endpoint):
    def receive(self, message):
        pass


def run_config(pipelines: int, chained: int):
    sim = Simulator()
    mesh = Mesh(sim, MeshConfig(width=2, height=1, channel_bits=1024))
    program = RmtProgram("sweep")
    for i in range(6):
        program.add_table(f"t{i}", [MatchKey("udp.dst_port")])
    admissions = []

    def handler(packet, phv):
        admissions.append(sim.now)
        return [(packet, 1)]

    engine = RmtPipelineEngine(
        sim, "rmt", program, pipelines=pipelines,
        chained_engines=chained, decision_handler=handler,
    )
    engine.bind_port(mesh.bind(engine, 0, 0))
    mesh.bind(Sink(), 1, 0)
    for i in range(PACKETS):
        engine._loopback(plain_udp_packet(seq=i))
    sim.run()
    span = admissions[-1] - admissions[0]
    throughput_mpps = (PACKETS - 1) * SEC / span / 1e6
    return throughput_mpps, engine.latency_ps / 1000


def test_depth_vs_parallelism(benchmark):
    def run():
        return {
            "2 parallel pipelines (P=2)": run_config(2, 1),
            "1 chained pipeline (depth 2)": run_config(1, 2),
        }

    results = run_once(benchmark, run)

    banner("Sec 3.1.2: RMT engine depth vs parallelism "
           "(same two-tile budget)")
    print(format_table(
        ["configuration", "throughput (Mpps)", "latency (ns)",
         "stage budget"],
        [
            ["2 parallel pipelines", f"{results['2 parallel pipelines (P=2)'][0]:.0f}",
             f"{results['2 parallel pipelines (P=2)'][1]:.0f}", "6"],
            ["1 chained pipeline", f"{results['1 chained pipeline (depth 2)'][0]:.0f}",
             f"{results['1 chained pipeline (depth 2)'][1]:.0f}", "12"],
        ],
    ))

    parallel_tp, parallel_lat = results["2 parallel pipelines (P=2)"]
    chained_tp, chained_lat = results["1 chained pipeline (depth 2)"]
    # More pipelines -> more throughput (exactly 2x here).
    assert parallel_tp == 2 * chained_tp
    # Chaining -> more depth: double the latency.
    assert chained_lat == 2 * parallel_lat
