"""Seeded chaos harness for the reliable rack (the CI invariant gate).

Generates one random :class:`~repro.faults.plan.FaultPlan` per seed
(lossy/corrupting wires, link flaps, engine slowdowns and crashes), runs
the reliable rack incast under it monolithically *and* sharded -- once
per requested transport config -- and asserts the delivery invariants of
DESIGN.md section 12:

1. no committed frame lost (everything cumulatively ACKed reached the
   receiving host),
2. no duplicate delivered to the host,
3. per-flow accounting closes (``sent == acked + failed``, failures
   surfaced as ``DeliveryFailed`` records),
4. mono == sharded bit-identical reports and wire stats,
5. replay-from-seed determinism.

Configs (``--transports``, comma list): ``gbn`` (go-back-N, fixed RTO),
``sr`` (selective repeat with SACK + adaptive RTO), ``gbn+ll``/``sr+ll``
(either transport with link-local repair armed on every wire), and
``lb`` (the load-balanced rack: live drains and backend NIC crashes
under the VIP, gated on the affinity and zero-committed-loss
invariants).  The same seed faces the same fault weather under each
transport config, so the per-config summaries are a controlled
recovery-strategy comparison.

Goodput gates are **per config**: ``floor.json`` next to this script
maps each gated config to its per-seed floor (configs absent from the
map are ungated), and a dip is a CI failure even though it breaks no
invariant.  ``--floor`` overrides the whole map with one float applied
to link-local configs only (the legacy knob).

Writes ``BENCH_chaos.json`` in the stable ``repro-bench/2`` envelope.
Series metrics per seed and config (workload key
``chaos_seed{n}_{config}``): ``invariants_ok`` (0/1), ``goodput``,
``retransmits``, ``rto_fired``, ``delivery_failures``, ``ll_repaired``,
``fct_mean_ps``.  Exits non-zero when any invariant -- or the goodput
floor -- is violated, which is the whole point of the CI job.

Usage::

    PYTHONPATH=src python benchmarks/chaos/run_chaos.py \
        --out BENCH_chaos.json [--seeds 0,1,2,3,4] [--nics 4] \
        [--frames 30] [--workers 2] [--pattern fanin] \
        [--transports gbn,sr,gbn+ll,sr+ll,lb] [--speculative] \
        [--floor 0.95] [--trace-out trace.json]

``--trace-out`` additionally reruns the first seed/config with
telemetry enabled (same fault weather -- the plan regenerates from the
seed) and writes the coordinator-merged Perfetto trace; the gated runs
themselves stay telemetry-free.

The same engine backs ``python -m repro chaos`` for interactive use.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "perf")
)
from bench_schema import envelope, write_json  # noqa: E402

from repro.reliability.chaos import run_chaos  # noqa: E402

#: Floor config shipped next to this script; CI reads the floor from it
#: so the gate value is versioned with the code it gates.
FLOOR_FILE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          "floor.json")


def parse_seeds(text: str):
    """``"0,1,2"`` or ``"0..9"`` -> list of ints."""
    if ".." in text:
        first, last = text.split("..", 1)
        return list(range(int(first), int(last) + 1))
    return [int(part) for part in text.split(",") if part]


def default_floors() -> dict:
    """The per-config ``{config: floor}`` map shipped in floor.json."""
    with open(FLOOR_FILE) as fh:
        return {config: float(floor)
                for config, floor in json.load(fh)["floors"].items()}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_chaos.json",
                        help="result JSON path")
    parser.add_argument("--seeds", default="0,1,2,3,4",
                        help="comma list or first..last range of seeds")
    parser.add_argument("--nics", type=int, default=4)
    parser.add_argument("--frames", type=int, default=30,
                        help="frames per directed flow")
    parser.add_argument("--workers", type=int, default=2,
                        help="shard worker processes for the sharded leg")
    parser.add_argument("--pattern", choices=("fanin", "symmetric"),
                        default="fanin")
    parser.add_argument("--transports", default="gbn",
                        help="comma list of configs: gbn, sr, gbn+ll, "
                             "sr+ll, lb")
    parser.add_argument("--floor", type=float, default=None,
                        help="override the per-config floor.json map with "
                             "one float gating link-local configs only")
    parser.add_argument("--speculative", action="store_true",
                        help="run the sharded legs with speculative "
                             "windows + capsule rollback")
    parser.add_argument("--no-failover", action="store_true",
                        help="run without the spare checksum lane + "
                             "health monitor")
    parser.add_argument("--no-replay", action="store_true",
                        help="skip the third (replay determinism) run")
    parser.add_argument("--trace-out", default=None,
                        help="also write a merged Perfetto trace.json from "
                             "a telemetry-enabled rerun of the first "
                             "seed/config (the gated runs stay untraced)")
    args = parser.parse_args(argv)

    seeds = parse_seeds(args.seeds)
    configs = tuple(part for part in args.transports.split(",") if part)
    floor = args.floor if args.floor is not None else default_floors()

    def progress(case):
        verdict = "pass" if case["passed"] else "FAIL"
        print(f"seed {case['seed']:>3} [{case['config']:>6}]: {verdict}  "
              f"goodput={case['goodput']:.3f}  faults={case['events']}  "
              f"retx={case['retransmits']}  "
              f"ll_repair={case['linklayer']['repaired']}  "
              f"aborts={case['delivery_failures']}")
        for violation in case["violations"]:
            print(f"  ! {violation}")

    report = run_chaos(
        seeds, nics=args.nics, pattern=args.pattern, frames=args.frames,
        workers=args.workers, check_replay=not args.no_replay,
        progress=progress, configs=configs,
        failover=not args.no_failover, goodput_floor=floor,
        speculative=args.speculative,
    )

    series = []
    workloads = {}
    for case in report["cases"]:
        key = f"chaos_seed{case['seed']}_{case['config']}"
        workloads[key] = case
        for metric, value in (
            ("invariants_ok", int(case["passed"])),
            ("goodput", case["goodput"]),
            ("retransmits", case["retransmits"]),
            ("rto_fired", case["rto_fired"]),
            ("delivery_failures", case["delivery_failures"]),
            ("ll_repaired", case["linklayer"]["repaired"]),
            ("fct_mean_ps", case["fct_mean_ps"]),
        ):
            series.append(
                {"workload": key, "metric": metric, "value": value})
    for config, summary in report["by_config"].items():
        for metric in ("goodput_min", "goodput_mean", "retransmits",
                       "rto_fired", "fct_mean_ps", "ll_repaired"):
            series.append({"workload": f"chaos_batch_{config}",
                           "metric": metric, "value": summary[metric]})
    series.append({"workload": "chaos_batch", "metric": "goodput_min",
                   "value": report["goodput_min"]})
    series.append({"workload": "chaos_batch", "metric": "all_pass",
                   "value": int(report["passed"])})
    series.append({"workload": "chaos_batch", "metric": "floor_ok",
                   "value": int(report["floor_ok"])})

    write_json(args.out, envelope(
        "chaos", dict(report["params"], replay=not args.no_replay),
        workloads, series,
    ))

    if args.trace_out:
        from repro.reliability.chaos import write_chaos_trace
        count = write_chaos_trace(
            args.trace_out, seeds[0], nics=args.nics, pattern=args.pattern,
            frames=args.frames, workers=args.workers, config=configs[0],
            failover=not args.no_failover,
        )
        print(f"wrote {count} trace events from seed {seeds[0]} "
              f"[{configs[0]}] to {args.trace_out}")

    for config, summary in report["by_config"].items():
        print(f"[{config:>6}] goodput min/mean {summary['goodput_min']:.3f}"
              f"/{summary['goodput_mean']:.3f}  "
              f"retx {summary['retransmits']}  "
              f"rto {summary['rto_fired']}  "
              f"ll_repair {summary['ll_repaired']}  "
              f"fct_mean {summary['fct_mean_ps'] / 1e6:.1f} us")
    print(f"goodput min/mean: {report['goodput_min']:.3f} / "
          f"{report['goodput_mean']:.3f}")
    failed = False
    if not report["passed"]:
        print(f"INVARIANT VIOLATIONS on seeds {report['failed_seeds']}",
              file=sys.stderr)
        failed = True
    if not report["floor_ok"]:
        for breach in report["floor_failures"]:
            print(f"GOODPUT FLOOR BREACH seed {breach['seed']} "
                  f"[{breach['config']}]: {breach['goodput']:.3f} < "
                  f"{breach['floor']:.2f}", file=sys.stderr)
        failed = True
    if failed:
        return 1
    floors_text = (", ".join(f"{c}>={f:.2f}"
                             for c, f in sorted(floor.items())
                             if c in configs) or "none"
                   if isinstance(floor, dict) else f"{floor:.2f}")
    print(f"all invariants hold on {len(seeds)} seeds x "
          f"{len(configs)} configs (floors: {floors_text})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
