"""Seeded chaos harness for the reliable rack (the CI invariant gate).

Generates one random :class:`~repro.faults.plan.FaultPlan` per seed
(lossy/corrupting wires, link flaps, engine slowdowns and crashes), runs
the reliable rack incast under it monolithically *and* sharded, and
asserts the delivery invariants of DESIGN.md section 12:

1. no committed frame lost (everything cumulatively ACKed reached the
   receiving host),
2. no duplicate delivered to the host,
3. per-flow accounting closes (``sent == acked + failed``, failures
   surfaced as ``DeliveryFailed`` records),
4. mono == sharded bit-identical reports and wire stats,
5. replay-from-seed determinism.

Writes ``BENCH_chaos.json`` in the stable ``repro-bench/2`` envelope.
Series metrics per seed (workload key ``chaos_seed{n}``):
``invariants_ok`` (0/1), ``goodput``, ``retransmits``,
``delivery_failures``.  Exits non-zero when any invariant is violated,
which is the whole point of the CI job.

Usage::

    PYTHONPATH=src python benchmarks/chaos/run_chaos.py \
        --out BENCH_chaos.json [--seeds 0,1,2,3,4] [--nics 4] \
        [--frames 30] [--workers 2] [--pattern fanin]

The same engine backs ``python -m repro chaos`` for interactive use.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "perf")
)
from bench_schema import envelope, write_json  # noqa: E402

from repro.reliability.chaos import run_chaos  # noqa: E402


def parse_seeds(text: str):
    """``"0,1,2"`` or ``"0..9"`` -> list of ints."""
    if ".." in text:
        first, last = text.split("..", 1)
        return list(range(int(first), int(last) + 1))
    return [int(part) for part in text.split(",") if part]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_chaos.json",
                        help="result JSON path")
    parser.add_argument("--seeds", default="0,1,2,3,4",
                        help="comma list or first..last range of seeds")
    parser.add_argument("--nics", type=int, default=4)
    parser.add_argument("--frames", type=int, default=30,
                        help="frames per directed flow")
    parser.add_argument("--workers", type=int, default=2,
                        help="shard worker processes for the sharded leg")
    parser.add_argument("--pattern", choices=("fanin", "symmetric"),
                        default="fanin")
    parser.add_argument("--no-replay", action="store_true",
                        help="skip the third (replay determinism) run")
    args = parser.parse_args(argv)

    seeds = parse_seeds(args.seeds)

    def progress(case):
        verdict = "pass" if case["passed"] else "FAIL"
        print(f"seed {case['seed']:>3}: {verdict}  "
              f"goodput={case['goodput']:.3f}  faults={case['events']}  "
              f"retx={case['retransmits']}  "
              f"aborts={case['delivery_failures']}")
        for violation in case["violations"]:
            print(f"  ! {violation}")

    report = run_chaos(
        seeds, nics=args.nics, pattern=args.pattern, frames=args.frames,
        workers=args.workers, check_replay=not args.no_replay,
        progress=progress,
    )

    series = []
    workloads = {}
    for case in report["cases"]:
        key = f"chaos_seed{case['seed']}"
        workloads[key] = case
        for metric, value in (
            ("invariants_ok", int(case["passed"])),
            ("goodput", case["goodput"]),
            ("retransmits", case["retransmits"]),
            ("delivery_failures", case["delivery_failures"]),
        ):
            series.append(
                {"workload": key, "metric": metric, "value": value})
    series.append({"workload": "chaos_batch", "metric": "goodput_min",
                   "value": report["goodput_min"]})
    series.append({"workload": "chaos_batch", "metric": "all_pass",
                   "value": int(report["passed"])})

    write_json(args.out, envelope(
        "chaos", dict(report["params"], replay=not args.no_replay),
        workloads, series,
    ))

    print(f"goodput min/mean: {report['goodput_min']:.3f} / "
          f"{report['goodput_mean']:.3f}")
    if not report["passed"]:
        print(f"INVARIANT VIOLATIONS on seeds {report['failed_seeds']}",
              file=sys.stderr)
        return 1
    print(f"all invariants hold on {len(seeds)} seeds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
