"""Experiment F1 -- Figure 1: the logical PANIC architecture.

Every message flows: engine -> (parse/route via RMT) -> per-engine
scheduling queue -> engine, with the logical switch and scheduler
implemented *distributed* across engines.  This bench drives one message
through every logical element and verifies the architecture diagram's
invariants on the observed trail and timing.
"""

from repro.core import PanicConfig, PanicNic
from repro.packet import KvOpcode, KvRequest, build_kv_request_frame, parse_frame
from repro.sim import Simulator
from repro.sim.clock import US

from _util import banner, run_once


def run_flow():
    sim = Simulator()
    nic = PanicNic(sim, PanicConfig(ports=2))
    nic.control.enable_kv_cache()
    nic.offload("kvcache").cache_put(b"k", b"v")
    request = build_kv_request_frame(KvRequest(KvOpcode.GET, 1, 1, b"k"))
    nic.inject(request, port=1)
    sim.run()
    response = nic.transmitted[0]
    return {
        "request_trail": request.trail,
        "response_trail": response.trail,
        "egress_port": response.meta.egress_port,
        "rmt_decisions": nic.rmt.decisions.value,
        "mesh_in_flight": nic.mesh.in_flight,
        "chain": request.panic.chain if request.panic else None,
        "deadline": request.panic.slack_ps if request.panic else None,
    }


def test_fig1_logical_architecture(benchmark):
    result = run_once(benchmark, run_flow)

    banner("Fig 1: one GET through the logical switch and scheduler")
    print("request trail :", " -> ".join(result["request_trail"]))
    print("response trail:", " -> ".join(result["response_trail"]))
    print("chain header  :", result["chain"])
    print("slack deadline:", result["deadline"], "ps")
    print("RMT decisions :", result["rmt_decisions"])

    # Ethernet port -> RMT -> offload engine, per Figure 1.
    assert result["request_trail"][0] == "panic.eth1"
    assert result["request_trail"][1] == "panic.rmt"
    assert "panic.kvcache" in result["request_trail"]
    # The response re-enters the pipeline and leaves at the ingress port.
    assert result["response_trail"] == ["panic.rmt", "panic.eth1"]
    assert result["egress_port"] == 1
    # The RMT pipeline computed a chain and a slack deadline.
    assert result["chain"] is not None and len(result["chain"]) >= 1
    assert result["deadline"] > 0
    # Nothing is stuck in the fabric afterwards (lossless + drained).
    assert result["mesh_in_flight"] == 0
