"""Experiment T2 -- Table 2: PPS needed for line rate, and the section
4.2 feasibility argument (F*P must cover it).

The analytical rows must match the paper (within its rounding), and a
simulated RMT pipeline engine must empirically achieve F*P admissions.
"""

from repro.analysis import (
    format_table,
    min_frame_pps,
    rmt_pipeline_pps,
    sustainable_rmt_passes,
    table2_rows,
)
from repro.engines import RmtPipelineEngine
from repro.noc import Mesh, MeshConfig
from repro.packet import Packet
from repro.rmt import RmtProgram
from repro.sim import Simulator
from repro.sim.clock import MHZ, SEC

from _util import banner, plain_udp_packet, run_once


def measured_rmt_pps(pipelines: int, packets: int = 2000) -> float:
    """Empirical admission rate of the RMT engine at P pipelines."""
    sim = Simulator()
    mesh = Mesh(sim, MeshConfig(width=2, height=1, channel_bits=1024))
    times = []

    def handler(packet, phv):
        times.append(sim.now)
        return [(packet, 1)]

    engine = RmtPipelineEngine(
        sim, "rmt", RmtProgram("empty"), pipelines=pipelines,
        decision_handler=handler,
    )
    engine.bind_port(mesh.bind(engine, 0, 0))

    class _Sink:
        address = -1

        def receive(self, message):
            pass

    from repro.noc import Endpoint

    class Sink(Endpoint):
        def receive(self, message):
            pass

    mesh.bind(Sink(), 1, 0)
    for i in range(packets):
        engine._loopback(plain_udp_packet(seq=i))
    sim.run()
    span = times[-1] - times[0]
    return (packets - 1) * SEC / span


def test_table2_line_rate_pps(benchmark):
    rows = run_once(benchmark, table2_rows)

    banner("Table 2: PPS for line-rate forwarding of minimal packets")
    print(
        format_table(
            ["Line-rate", "# Eth Ports", "PPS (model)", "PPS (paper)"],
            [
                [f"{r.line_rate_gbps}Gbps", r.ports,
                 f"{r.pps_mpps:.1f}Mpps", f"{r.paper_mpps}Mpps"]
                for r in rows
            ],
        )
    )
    for row in rows:
        assert abs(row.pps_mpps - row.paper_mpps) / row.paper_mpps < 0.01


def test_section42_rmt_throughput_feasibility(benchmark):
    def run():
        return {p: measured_rmt_pps(p, packets=1000) for p in (1, 2, 4)}

    measured = run_once(benchmark, run)

    banner("Section 4.2: RMT pipeline throughput is F * P")
    rows = []
    for pipelines, pps in measured.items():
        expected = rmt_pipeline_pps(500 * MHZ, pipelines)
        rows.append([pipelines, f"{pps / 1e6:.0f}Mpps",
                     f"{expected / 1e6:.0f}Mpps"])
        assert pps == pytest_approx(expected)
    print(format_table(["pipelines (P)", "measured", "F*P model"], rows))

    # The paper's headline: two 500 MHz pipelines (1000 Mpps) can give
    # every packet of a 2x100G NIC (595 Mpps) at least one pass...
    needed = min_frame_pps(100e9, 2)
    assert rmt_pipeline_pps(500 * MHZ, 2) > needed
    # ...but NOT two passes -- hence the need for PANIC's lightweight
    # per-engine lookup tables instead of per-hop RMT traversals.
    assert sustainable_rmt_passes(500 * MHZ, 2, 100e9, 2) < 2.0
    print(
        f"\n2x100G needs {needed / 1e6:.0f} Mpps; two pipelines give 1000 "
        f"Mpps -> {sustainable_rmt_passes(500 * MHZ, 2, 100e9, 2):.2f} "
        "passes/packet (so per-offload RMT switching is infeasible)"
    )


def pytest_approx(value, rel=0.02):
    import pytest

    return pytest.approx(value, rel=rel)
