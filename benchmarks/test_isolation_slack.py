"""Experiment E2 -- section 3.1.3 + 3.2: the slack-based logical
scheduler isolates latency-sensitive tenants from bandwidth hogs that
share an engine.

Setup: the DMA engine is slow (host memory contention, section 3.2) and
a bulk tenant floods it, building a deep queue.  A latency-sensitive
tenant sends sparse requests.  Metric: NIC-side delivery latency (wire
arrival -> host memory) per tenant -- exactly the path where "dependent
accesses required to process a high priority message are able to bypass
other pending DMA requests".

Compared schedulers: (a) FIFO -- everyone gets the same slack, so the
per-engine PIFO degenerates to arrival order; (b) slack -- the sensitive
tenant's deadline is 10 us, the hog's 10 ms.

Paper's shape: slack collapses the sensitive tenant's tail toward its
unloaded value while the hog loses nothing (work conservation).  This
doubles as the scheduler ablation called out in DESIGN.md.
"""

from repro.core import PanicConfig, PanicNic
from repro.analysis import format_table
from repro.sim import Simulator
from repro.sim.clock import MS, US
from repro.sim.stats import Histogram
from repro.workloads import KvsWorkload, TenantSpec

from _util import banner, run_once

SENSITIVE, HOG = 1, 2


def run_isolation(use_slack: bool):
    sim = Simulator()
    nic = PanicNic(sim, PanicConfig(ports=1))
    # Contended host memory: every DMA op is slow (section 3.2).
    nic.host.contention_ps = 2 * US
    if use_slack:
        nic.control.set_tenant_slack(SENSITIVE, 10 * US)
        nic.control.set_tenant_slack(HOG, 10 * MS)
    else:
        nic.control.set_tenant_slack(SENSITIVE, 100 * US)
        nic.control.set_tenant_slack(HOG, 100 * US)

    delivery = {SENSITIVE: Histogram("sens"), HOG: Histogram("hog")}

    def on_delivery(packet, queue):
        tenant = packet.meta.tenant
        if tenant in delivery and packet.meta.nic_arrival_ps is not None:
            delivery[tenant].record(
                (sim.now - packet.meta.nic_arrival_ps) / US
            )

    nic.host.software_handler = on_delivery
    # No KV server: requests terminate in host memory; we measure the
    # RX path, which is where the shared DMA engine sits.
    tenants = [
        TenantSpec(SENSITIVE, rate_pps=50_000, latency_sensitive=True,
                   key_space=50, get_fraction=1.0),
        TenantSpec(HOG, rate_pps=2_000_000, key_space=500,
                   get_fraction=0.0, value_bytes=1024),
    ]
    workload = KvsWorkload(sim, nic, tenants, requests_per_tenant=100)
    workload.start()
    sim.run()
    return {
        "sensitive_p50_us": delivery[SENSITIVE].percentile(50),
        "sensitive_p99_us": delivery[SENSITIVE].percentile(99),
        "hog_delivered": delivery[HOG].count,
        "hog_p50_us": delivery[HOG].percentile(50),
    }


def test_isolation_slack_vs_fifo(benchmark):
    def run():
        return {
            "fifo": run_isolation(use_slack=False),
            "slack": run_isolation(use_slack=True),
        }

    results = run_once(benchmark, run)
    fifo, slack = results["fifo"], results["slack"]

    banner("Sec 3.1.3: slack scheduler vs FIFO under a bandwidth hog "
           "(shared, contended DMA engine); NIC-side delivery latency")
    print(
        format_table(
            ["scheduler", "sensitive p50 (us)", "sensitive p99 (us)",
             "hog p50 (us)", "hog delivered"],
            [
                ["FIFO", f"{fifo['sensitive_p50_us']:.1f}",
                 f"{fifo['sensitive_p99_us']:.1f}",
                 f"{fifo['hog_p50_us']:.1f}", fifo["hog_delivered"]],
                ["slack", f"{slack['sensitive_p50_us']:.1f}",
                 f"{slack['sensitive_p99_us']:.1f}",
                 f"{slack['hog_p50_us']:.1f}", slack["hog_delivered"]],
            ],
        )
    )

    # The headline: slack slashes the sensitive tenant's tail latency.
    assert slack["sensitive_p99_us"] < fifo["sensitive_p99_us"] / 2
    # Work conservation: the hog still gets everything delivered.
    assert slack["hog_delivered"] == fifo["hog_delivered"] == 100
