"""Ablation A4 -- section 6: "How should different engines be placed in
this topology?"

We compare three placements of the reference engine set on a 4x4 mesh --
worst-case (heavy communicators at opposite corners), the default
Figure-3c layout, and the annealed optimizer's output -- on (a) the
analytic traffic-weighted hop count, and (b) measured mean NIC-side
latency of a KVS cache-hit workload.

Expected shape: optimizer <= default << worst, and the measured latency
tracks the analytic hop count.
"""

from repro.analysis import format_table
from repro.core import PanicConfig, PanicNic
from repro.noc.placement import (
    annealed_placement,
    expected_hops,
    reference_traffic,
)
from repro.packet import KvOpcode, KvRequest, build_kv_request_frame
from repro.sim import Simulator
from repro.sim.clock import US

from _util import banner, run_once

OFFLOADS = ("ipsec", "compression", "kvcache", "rdma")
ENGINES = ["eth0", "rmt", "dma", "pcie", *OFFLOADS]
FIXED = {"eth0": (0, 0), "dma": (3, 0), "pcie": (3, 1)}
TRAFFIC = reference_traffic(OFFLOADS, ports=1, cache_hit_rate=0.9)

#: Heavy communicators flung to opposite corners.
WORST = {
    "eth0": (0, 0), "dma": (3, 0), "pcie": (3, 1),
    "rmt": (3, 3), "kvcache": (0, 3),
    "ipsec": (2, 2), "compression": (1, 2), "rdma": (2, 1),
}

#: The builder's default Figure-3c layout, written out explicitly.
DEFAULT = {
    "eth0": (0, 0), "dma": (3, 0), "pcie": (3, 1),
    "rmt": (1, 0), "ipsec": (2, 0), "compression": (1, 1),
    "kvcache": (2, 1), "rdma": (0, 1),
}


def measured_hit_latency(placement) -> float:
    """Mean NIC latency of 60 cache-hit GETs under a placement."""
    sim = Simulator()
    nic = PanicNic(sim, PanicConfig(ports=1, offloads=OFFLOADS,
                                    placement=placement))
    nic.control.enable_kv_cache()
    nic.offload("kvcache").cache_put(b"hot", b"v" * 64)
    for i in range(60):
        sim.schedule_at(
            i * 100_000, nic.inject,
            build_kv_request_frame(KvRequest(KvOpcode.GET, 1, i, b"hot")),
        )
    sim.run()
    assert len(nic.transmitted) == 60
    lats = [
        p.meta.nic_departure_ps - p.meta.nic_arrival_ps
        for p in nic.transmitted
        if p.meta.nic_arrival_ps is not None
    ]
    return sum(lats) / len(lats) / US


def test_placement_optimizer(benchmark):
    def run():
        optimized = annealed_placement(
            ENGINES, TRAFFIC, 4, 4, fixed=FIXED, seed=11, iterations=3000
        )
        rows = {}
        for label, placement in (
            ("worst-case", WORST),
            ("default (Fig 3c)", DEFAULT),
            ("annealed", optimized),
        ):
            rows[label] = (
                expected_hops(placement, TRAFFIC),
                measured_hit_latency(placement),
            )
        return rows

    rows = run_once(benchmark, run)

    banner("Sec 6 ablation: engine placement on a 4x4 mesh "
           "(KVS cache-hit workload)")
    print(format_table(
        ["placement", "analytic hops (weighted)", "measured latency (us)"],
        [[label, f"{hops:.2f}", f"{lat:.2f}"]
         for label, (hops, lat) in rows.items()],
    ))

    worst_hops, worst_lat = rows["worst-case"]
    default_hops, default_lat = rows["default (Fig 3c)"]
    optimized_hops, optimized_lat = rows["annealed"]
    # The optimizer at least matches the hand layout and clearly beats
    # the adversarial one, in both the model and the measurement.
    assert optimized_hops <= default_hops + 1e-9
    assert optimized_hops < worst_hops
    assert optimized_lat < worst_lat
    # The analytic objective predicts the measured ordering.
    assert (optimized_lat <= default_lat + 0.3) and (default_lat < worst_lat)
