"""Experiment E11 -- section 3.1.3: weighted fair sharing via slack.

"[The logical scheduler must] ensure that messages from different
applications, containers, and VMs share on-NIC resources according to
some high-level policy.  Although simple, this approach is able to
implement any arbitrary local scheduling algorithm."

We program a 4:1 weighted-fair policy (via virtual-finish-time slack,
the Universal Packet Scheduling construction) and flood the contended
DMA engine with two backlogged tenants.  During the contention window
the delivery ratio must track the weights; under FIFO it tracks the
arrival ratio (1:1) instead.
"""

from repro.analysis import format_table
from repro.core import PanicConfig, PanicNic
from repro.sim import Simulator
from repro.sim.clock import US
from repro.workloads import KvsWorkload, TenantSpec

from _util import banner, run_once

HEAVY, LIGHT = 1, 2
REQUESTS = 150


def run_policy(use_wfq: bool):
    sim = Simulator()
    nic = PanicNic(sim, PanicConfig(ports=1))
    nic.host.contention_ps = 3 * US  # DMA is the contended resource
    if use_wfq:
        # cost_ps approximates the bottleneck (DMA) service time: the
        # virtual clock must outpace arrivals for backlog to matter.
        nic.control.enable_wfq({HEAVY: 4.0, LIGHT: 1.0}, cost_ps=4 * US)
    else:
        nic.control.set_tenant_slack(HEAVY, 100 * US)
        nic.control.set_tenant_slack(LIGHT, 100 * US)

    deliveries = {HEAVY: [], LIGHT: []}
    nic.host.software_handler = (
        lambda p, q: deliveries.get(p.meta.tenant, []).append(sim.now)
    )
    # Both tenants offer identical, saturating load.
    tenants = [
        TenantSpec(HEAVY, rate_pps=2_000_000, get_fraction=0.0,
                   key_space=100, value_bytes=200),
        TenantSpec(LIGHT, rate_pps=2_000_000, get_fraction=0.0,
                   key_space=100, value_bytes=200),
    ]
    workload = KvsWorkload(sim, nic, tenants, requests_per_tenant=REQUESTS)
    workload.start()
    sim.run()
    # Measure shares inside the contention window: until the first
    # tenant finishes, both are backlogged.
    first_done = min(max(deliveries[HEAVY]), max(deliveries[LIGHT]))
    heavy_share = sum(1 for t in deliveries[HEAVY] if t <= first_done)
    light_share = sum(1 for t in deliveries[LIGHT] if t <= first_done)
    return heavy_share, light_share


def test_weighted_fair_sharing(benchmark):
    def run():
        return {
            "fifo (equal slack)": run_policy(False),
            "wfq 4:1": run_policy(True),
        }

    results = run_once(benchmark, run)

    banner("Sec 3.1.3: weighted fair sharing on the contended DMA engine "
           "(two saturating tenants)")
    rows = []
    for label, (heavy, light) in results.items():
        rows.append([label, heavy, light, f"{heavy / max(1, light):.2f}"])
    print(format_table(
        ["policy", "tenant-1 served", "tenant-2 served",
         "ratio (target 4.0 for WFQ)"],
        rows,
    ))

    fifo_heavy, fifo_light = results["fifo (equal slack)"]
    wfq_heavy, wfq_light = results["wfq 4:1"]
    # FIFO tracks arrivals: roughly even.
    assert 0.6 <= fifo_heavy / fifo_light <= 1.6
    # WFQ tracks weights: heavily skewed toward the 4x tenant.
    assert wfq_heavy / wfq_light >= 2.5
