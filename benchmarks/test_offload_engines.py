"""Experiment E7 -- section 2.1's claim that "all different types [of
offloads] are potentially useful": per-engine functional+performance
characterization.

One bench per functional offload family, each measuring the engine's
real transformation plus the throughput its cost model yields -- the
numbers the chain-length and line-rate analyses consume.
"""

from repro.analysis import format_table
from repro.engines import (
    ChecksumEngine,
    CompressionEngine,
    IpsecEngine,
    IpsecSa,
    KvCacheEngine,
    RateLimiterEngine,
    RegexEngine,
)
from repro.packet import (
    KvOpcode,
    KvRequest,
    Packet,
    build_kv_request_frame,
    build_udp_frame,
)
from repro.sim import Simulator
from repro.sim.clock import SEC, US

from _util import banner, run_once

PAYLOAD = (b"The quick brown fox jumps over the lazy dog. " * 30)[:1024]


def frame(payload=PAYLOAD):
    return Packet(build_udp_frame(
        src_mac="02:00:00:00:00:01", dst_mac="02:00:00:00:00:02",
        src_ip="10.0.0.1", dst_ip="10.0.0.2",
        src_port=7, dst_port=8, payload=payload,
    ))


def engine_goodput_gbps(engine, packet):
    """Bytes/sec the engine's cost model sustains on this packet."""
    service_ps = engine.service_time_ps(packet)
    return packet.frame_bytes * 8 * SEC / service_ps / 1e9


def test_offload_engine_characterization(benchmark):
    def run():
        sim = Simulator()
        rows = []

        ipsec = IpsecEngine(sim, "c.ipsec")
        ipsec.install_sa(IpsecSa(spi=1, key=b"k", tunnel_src="1.1.1.1",
                                 tunnel_dst="2.2.2.2"))
        packet = frame()
        encrypted = ipsec.encrypt(packet, 1)
        decrypted = ipsec.decrypt(encrypted)
        assert decrypted.data[14:] == packet.data[14:]
        rows.append(["ipsec", f"{engine_goodput_gbps(ipsec, packet):.1f}",
                     "ESP roundtrip verified"])

        comp = CompressionEngine(sim, "c.comp")
        packet = frame()
        packet.meta.annotations["compress"] = True
        compressed = comp.handle(packet)[0][0]
        ratio = compressed.frame_bytes / frame().frame_bytes
        restored = comp.handle(compressed)[0][0]
        assert restored.frame_bytes == frame().frame_bytes
        rows.append(["compression", f"{engine_goodput_gbps(comp, frame()):.1f}",
                     f"ratio {ratio:.2f} on text"])

        cache = KvCacheEngine(sim, "c.kv")
        cache.cache_put(b"key", b"x" * 256)
        get = build_kv_request_frame(KvRequest(KvOpcode.GET, 1, 1, b"key"))
        response = cache.handle(get)[0][0]
        assert response.meta.annotations.get("cache_hit")
        rows.append(["kvcache", f"{engine_goodput_gbps(cache, get):.1f}",
                     "LRU hit served"])

        dpi = RegexEngine(sim, "c.dpi", patterns=[b"fox", b"dog"])
        packet = frame()
        out = dpi.handle(packet)[0][0]
        matches = len(out.meta.annotations["dpi_matches"])
        rows.append(["regex (DPI)", f"{engine_goodput_gbps(dpi, packet):.1f}",
                     f"{matches} matches found"])

        csum = ChecksumEngine(sim, "c.csum")
        packet = frame()
        out = csum.handle(packet)[0][0]
        assert out.meta.annotations["csum_ok"]
        rows.append(["checksum", f"{engine_goodput_gbps(csum, packet):.1f}",
                     "IPv4+UDP verified"])

        limiter = RateLimiterEngine(sim, "c.rl")
        limiter.set_rate(1, rate_bps=10e9)
        rows.append(["ratelimit", "policy-defined",
                     "token-bucket pacing"])
        return rows

    rows = run_once(benchmark, run)
    banner("Sec 2.1: offload engine characterization "
           f"({len(PAYLOAD)}B payload)")
    print(format_table(["engine", "goodput (Gbps, cost model)", "functional check"],
                       rows))
    assert len(rows) == 6
