"""Experiment E6 -- section 6: lossless flow control vs lossy drops.

"What is the best way to simultaneously provide lossless forwarding ...
while also providing lossy forwarding ...?  What is the best way to
provide flow control for lossless forwarding so that neither the
heavyweight RMT pipeline nor the on-chip network are ever stalled by a
slow or overloaded engine?"

We overload one slow engine and compare the two mechanisms this library
implements:

* **backpressure** (lossless): the full engine refuses deliveries; the
  congestion tree spreads into router buffers and stalls the upstream
  path -- nothing is lost, but unrelated traffic sharing those links
  slows down (the stall the paper worries about, now measurable);
* **droppable** (lossy): the engine queue sheds the overload instead,
  and bystander traffic is untouched.

Metrics: victim (bystander) mean latency, messages lost, peak mesh
occupancy.
"""

from repro.analysis import format_table
from repro.engines.base import Engine
from repro.noc import Endpoint, Mesh, MeshConfig
from repro.packet import Packet, PanicHeader
from repro.sim import Simulator
from repro.sim.clock import US

from _util import banner, run_once

N_HOT = 40       # messages aimed at the slow engine
N_VICTIM = 20    # bystander messages crossing the same column


class Sink(Endpoint):
    def __init__(self, sim):
        self.sim = sim
        self.got = []

    def receive(self, message):
        self.got.append((message.packet, self.sim.now))


class SlowEngine(Engine):
    def service_time_ps(self, packet):
        return self.clock.cycles_to_ps(1000)  # 2 us per message


def run_mode(droppable: bool):
    """Column 1 hosts the slow engine; victims cross 0,1 -> 2,1."""
    sim = Simulator()
    mesh = Mesh(sim, MeshConfig(width=3, height=2, credits=2))
    feeder = Sink(sim)
    feeder_port = mesh.bind(feeder, 0, 0)
    slow = SlowEngine(sim, "slow", queue_capacity=2, overflow="backpressure")
    slow.bind_port(mesh.bind(slow, 1, 0))
    drain = Sink(sim)
    mesh.bind(drain, 2, 0)
    victim_src = Sink(sim)
    victim_port = mesh.bind(victim_src, 0, 1)
    victim_dst = Sink(sim)
    mesh.bind(victim_dst, 2, 1)

    hot_dst = mesh.address_of(1, 0)
    drain_addr = mesh.address_of(2, 0)
    victim_addr = mesh.address_of(2, 1)

    for i in range(N_HOT):
        packet = Packet(b"\x00" * 256)
        packet.panic = PanicHeader(chain=[drain_addr], droppable=droppable)
        sim.schedule_at(i * 50_000, feeder_port.send, packet, hot_dst)
    victim_times = []
    for i in range(N_VICTIM):
        packet = Packet(b"\x00" * 256)
        packet.panic = PanicHeader(chain=[])
        packet.meta.annotations["t0"] = i * 100_000
        sim.schedule_at(i * 100_000, victim_port.send, packet, victim_addr)
    peak_in_flight = 0

    def sample():
        nonlocal peak_in_flight
        peak_in_flight = max(peak_in_flight, mesh.in_flight)
        if sim.pending_events > 1:
            sim.schedule(10_000, sample)

    sim.schedule(0, sample)
    sim.run()

    victim_lat = [
        (t - p.meta.annotations["t0"]) / US for p, t in victim_dst.got
    ]
    delivered_hot = len(drain.got)
    dropped = slow.queue.dropped.value
    return {
        "victim_mean_us": sum(victim_lat) / len(victim_lat),
        "hot_delivered": delivered_hot,
        "hot_dropped": dropped,
        "peak_mesh_occupancy": peak_in_flight,
    }


def test_backpressure_vs_lossy(benchmark):
    def run():
        return {
            "lossless backpressure": run_mode(droppable=False),
            "lossy drops": run_mode(droppable=True),
        }

    results = run_once(benchmark, run)

    banner("Sec 6: overloading one engine -- congestion spreading "
           "(lossless) vs shedding (lossy)")
    rows = []
    for label, r in results.items():
        rows.append([label, f"{r['victim_mean_us']:.2f}",
                     f"{r['hot_delivered']}/{N_HOT}",
                     r["hot_dropped"], r["peak_mesh_occupancy"]])
    print(format_table(
        ["mode", "bystander mean (us)", "hot delivered", "hot dropped",
         "peak mesh occupancy"],
        rows,
    ))

    lossless = results["lossless backpressure"]
    lossy = results["lossy drops"]
    # Lossless delivers everything; the congestion tree fills the mesh.
    assert lossless["hot_delivered"] == N_HOT
    assert lossless["hot_dropped"] == 0
    assert lossless["peak_mesh_occupancy"] > lossy["peak_mesh_occupancy"]
    # Lossy sheds overload and keeps the fabric clear.
    assert lossy["hot_dropped"] > 0
    assert lossy["hot_delivered"] + lossy["hot_dropped"] == N_HOT
