"""Experiment E9 -- the DCQCN congestion-control loop on PANIC engines.

Table 1 lists DCQCN among the offloads a programmable NIC must host.
This bench runs the full closed loop across two PANIC NICs on a cable:

  sender host --> [ratelimit] --> wire --> [ecnmark -> dma] --> receiver
       ^                                                           |
       |   CNP <-- [dcqcn engine] <-- wire <-- CNP (host responder)|
       +-----------------------------------------------------------+

The receiver's DMA path is slow (contended host memory); without
congestion control the sender's burst piles up in the receiver's DMA
queue.  With the loop enabled, CE marks trigger CNPs, the sender's
DCQCN engine cuts the rate limiter, and the receiver queue stays
bounded -- at the cost of a longer (paced) transfer.
"""

from repro.analysis import format_table
from repro.core import PanicConfig, PanicNic
from repro.engines.dcqcn import CnpResponder
from repro.packet import KvOpcode, KvRequest, build_kv_request_frame
from repro.sim import Simulator
from repro.sim.clock import US
from repro.workloads import Wire

from _util import banner, run_once

FLOW_TENANT = 7
N_FRAMES = 300
BATCH = 8
BATCH_GAP_PS = 15 * US
VALUE_BYTES = 800


def run_loop(enabled: bool):
    sim = Simulator()
    sender = PanicNic(sim, PanicConfig(
        ports=1, offloads=("ratelimit", "dcqcn")), name="sender")
    receiver = PanicNic(sim, PanicConfig(
        ports=1, offloads=("ecnmark",),
        offload_params={"ecnmark": {"k_min": 3, "k_max": 10}},
        coalesce_count=2,  # responsive notification point
    ), name="receiver")
    Wire(sim, sender, receiver)

    receiver.host.contention_ps = 3 * US  # the congestion point
    delivered = []
    receiver.host.software_handler = lambda p, q: delivered.append(sim.now)

    if enabled:
        # Receiver: mark the flow through the AQM before the DMA engine,
        # and respond to CE with CNPs.
        receiver.control.route_tenant(FLOW_TENANT, ["ecnmark"])
        CnpResponder(receiver.host, min_gap_ps=20 * US)
        # Sender: shape the flow on TX; steer returning CNPs to DCQCN.
        sender.control.route_tenant_tx(FLOW_TENANT, ["ratelimit"])
        sender.offload("ratelimit").set_rate(
            FLOW_TENANT, rate_bps=100e9, burst_bytes=16384
        )
        from repro.engines.dcqcn import CNP_UDP_PORT

        sender.control.route_udp_port(CNP_UDP_PORT, ["dcqcn"],
                                      append_dma=False)

    # The sender's application streams ECT-marked SETs in paced batches,
    # so congestion feedback can influence later batches.
    def post_batch(start: int) -> None:
        for i in range(start, min(start + BATCH, N_FRAMES)):
            frame = build_kv_request_frame(
                KvRequest(KvOpcode.SET, FLOW_TENANT, i, b"k%03d" % i,
                          b"v" * VALUE_BYTES),
                ecn=2,  # ECT(0): ECN-capable transport
            ).data
            sender.host.tx_rings[0].append(frame)
        sender.pcie.ring_doorbell(0)

    for batch_start in range(0, N_FRAMES, BATCH):
        sim.schedule_at(batch_start // BATCH * BATCH_GAP_PS,
                        post_batch, batch_start)

    min_rate = [100e9]
    if enabled:
        limiter = sender.offload("ratelimit")

        def sample_rate():
            bucket = limiter.bucket(FLOW_TENANT)
            if bucket is not None:
                min_rate[0] = min(min_rate[0], bucket.rate_bps)
            if len(delivered) < N_FRAMES:
                sim.schedule(10 * US, sample_rate)

        sim.schedule(0, sample_rate)
    sim.run()

    result = {
        "delivered": len(delivered),
        "receiver_dma_peak": receiver.dma.queue.max_occupancy,
        "makespan_us": (max(delivered) - min(delivered)) / US,
    }
    if enabled:
        result["ce_marked"] = receiver.offload("ecnmark").marked.value
        result["cnps"] = sender.offload("dcqcn").cnps.value
        result["min_rate_gbps"] = min_rate[0] / 1e9
    return result


def test_dcqcn_closed_loop(benchmark):
    def run():
        return {
            "no congestion control": run_loop(False),
            "dcqcn loop": run_loop(True),
        }

    results = run_once(benchmark, run)
    off, on = results["no congestion control"], results["dcqcn loop"]

    banner("DCQCN closed loop across two PANIC NICs "
           f"({N_FRAMES} x {VALUE_BYTES}B burst into a slow receiver)")
    print(format_table(
        ["config", "delivered", "rx DMA queue peak", "makespan (us)",
         "CE marks", "CNPs", "min rate (Gbps)"],
        [
            ["off", off["delivered"], off["receiver_dma_peak"],
             f"{off['makespan_us']:.0f}", "-", "-", "-"],
            ["on", on["delivered"], on["receiver_dma_peak"],
             f"{on['makespan_us']:.0f}", on["ce_marked"], on["cnps"],
             f"{on['min_rate_gbps']:.2f}"],
        ],
    ))

    # Everything is delivered either way (lossless fabric).
    assert off["delivered"] == on["delivered"] == N_FRAMES
    # The loop actually closed: marks happened, CNPs flowed, rate cut.
    assert on["ce_marked"] > 0
    assert on["cnps"] > 0
    assert on["min_rate_gbps"] < 50.0
    # And it did its job: receiver congestion shrank markedly.
    assert on["receiver_dma_peak"] < off["receiver_dma_peak"] * 0.7
