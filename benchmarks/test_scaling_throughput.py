"""Experiment E3 -- section 4.2 + conclusion: PANIC "is able to scale
performance with increasing line-rates, number of offload engines, and
offload chain lengths given reasonable clock frequencies and bit widths".

Three sweeps over the analytical models, each validated at one point by
simulation elsewhere in the suite:

1. line-rate sweep     -- required RMT pipelines stay small (<= 3) up to
                          2x100G;
2. chain-length sweep  -- sustainable chain length vs channel width and
                          mesh size (Table 3's trend lines);
3. pipeline sweep      -- RMT pps scales linearly in P (F*P).
"""

from repro.analysis import (
    format_table,
    min_frame_pps,
    required_rmt_pipelines,
    rmt_pipeline_pps,
)
from repro.noc import MeshAnalysis
from repro.sim.clock import MHZ

from _util import banner, run_once

LINE_RATES = ((10, 2), (25, 2), (40, 2), (100, 1), (100, 2))


def sweep():
    line_rows = []
    for rate_gbps, ports in LINE_RATES:
        pps = min_frame_pps(rate_gbps * 1e9, ports)
        needed = required_rmt_pipelines(rate_gbps * 1e9, ports, 500 * MHZ)
        line_rows.append((rate_gbps, ports, pps / 1e6, needed))

    chain_rows = []
    for k in (4, 6, 8, 10):
        for bits in (64, 128, 256):
            analysis = MeshAnalysis(k, k, bits, 500 * MHZ)
            chain_rows.append(
                (k, bits, analysis.chain_length(100e9, 2))
            )

    pipeline_rows = [
        (p, rmt_pipeline_pps(500 * MHZ, p) / 1e6) for p in (1, 2, 3, 4)
    ]
    return line_rows, chain_rows, pipeline_rows


def test_scaling_with_line_rate_engines_chains(benchmark):
    line_rows, chain_rows, pipeline_rows = run_once(benchmark, sweep)

    banner("Sec 4.2: scaling sweeps")
    print(format_table(
        ["line rate", "ports", "line-rate Mpps", "RMT pipelines needed"],
        [[f"{r}G", p, f"{mpps:.0f}", n] for r, p, mpps, n in line_rows],
        title="(1) line-rate scaling",
    ))
    print()
    print(format_table(
        ["mesh", "channel bits", "chain length @ 2x100G"],
        [[f"{k}x{k}", bits, f"{cl:.2f}"] for k, bits, cl in chain_rows],
        title="(2) chain-length scaling",
    ))
    print()
    print(format_table(
        ["pipelines P", "RMT Mpps (F*P)"],
        [[p, f"{mpps:.0f}"] for p, mpps in pipeline_rows],
        title="(3) pipeline parallelism",
    ))

    # (1) Modest parallelism suffices at every line rate in the sweep.
    assert all(needed <= 2 for *_rest, needed in line_rows)
    # Required pipelines grow monotonically with offered pps.
    needs = [needed for *_r, needed in line_rows]
    assert needs == sorted(needs)

    # (2) Chain length grows with mesh size and channel width.
    by_key = {(k, bits): cl for k, bits, cl in chain_rows}
    assert by_key[(8, 64)] > by_key[(6, 64)] > by_key[(4, 64)]
    assert by_key[(6, 256)] > by_key[(6, 128)] > by_key[(6, 64)]
    # A 10x10 mesh with 256-bit channels supports very long chains.
    assert by_key[(10, 256)] > 20

    # (3) F*P linearity.
    base = pipeline_rows[0][1]
    for p, mpps in pipeline_rows:
        assert mpps == base * p
