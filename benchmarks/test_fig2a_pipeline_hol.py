"""Experiment F2a -- section 2.3.1 / Figure 2a: pipeline NICs suffer
head-of-line blocking from slow offloads; PANIC does not.

Workload: 50 packets, every 10th is DPI-class (DSCP 1, large payload,
needs a slow regex scan); the rest need nothing.  Metric: p99
NIC-traversal latency of the *untouched* packets.

Paper's shape: on the pipeline NIC the untouched packets queue behind
DPI work (high p99); bypass logic mitigates; PANIC switches untouched
packets straight RMT -> DMA, so their latency is flat and small.
"""

from repro.analysis import format_comparison
from repro.baselines import PipelineNic
from repro.core import PanicConfig, PanicNic
from repro.engines import ChecksumEngine, RegexEngine
from repro.sim import Simulator
from repro.sim.clock import US

from _util import banner, plain_udp_packet, run_once

N_PACKETS = 50
DPI_EVERY = 10
GAP_PS = 100_000  # 100 ns injection gap


def _traffic(baseline_markers: bool):
    """Packets with seq annotations; DPI-class ones carry DSCP 1."""
    out = []
    for i in range(N_PACKETS):
        needs_dpi = i % DPI_EVERY == 0
        payload = b"scan me " * 150 if needs_dpi else b"fast"
        packet = plain_udp_packet(
            payload=payload, seq=i, dscp=1 if needs_dpi else 0,
            src_port=7000 + (i % 16),
        )
        if needs_dpi and baseline_markers:
            packet.meta.annotations["needs"] = ("regex",)
        out.append((packet, needs_dpi))
    return out


def _collect_victim_p99(sim, nic, baseline_markers):
    done = {}
    nic.host.software_handler = (
        lambda p, q: done.__setitem__(p.meta.annotations["seq"], sim.now)
    )
    victims = []
    for i, (packet, needs_dpi) in enumerate(_traffic(baseline_markers)):
        sim.schedule_at(i * GAP_PS, nic.inject, packet)
        if not needs_dpi:
            victims.append((packet.meta.annotations["seq"], i * GAP_PS))
    sim.run()
    lat = sorted(done[seq] - t0 for seq, t0 in victims)
    return lat[int(len(lat) * 0.99) - 1] / US


def victim_p99_pipeline(bypass: bool) -> float:
    sim = Simulator()
    line = [
        ("regex", RegexEngine(sim, "dpi", patterns=[b"scan"],
                              cycles_per_byte=40.0)),
        ("checksum", ChecksumEngine(sim, "csum")),
    ]
    nic = PipelineNic(sim, line, bypass_enabled=bypass)
    return _collect_victim_p99(sim, nic, baseline_markers=True)


def victim_p99_panic() -> float:
    sim = Simulator()
    nic = PanicNic(
        sim,
        PanicConfig(
            ports=1,
            offloads=("regex", "checksum"),
            offload_params={
                "regex": {"patterns": [b"scan"], "cycles_per_byte": 40.0}
            },
        ),
    )
    # The RMT program classifies DPI traffic by DSCP and chains it
    # through the regex engine; everything else flows RMT -> DMA.
    nic.control.route_dscp(1, ["regex"])
    return _collect_victim_p99(sim, nic, baseline_markers=False)


def test_fig2a_hol_blocking(benchmark):
    def run():
        return {
            "pipeline (no bypass)": victim_p99_pipeline(bypass=False),
            "pipeline (bypass)": victim_p99_pipeline(bypass=True),
            "panic": victim_p99_panic(),
        }

    results = run_once(benchmark, run)

    banner("Fig 2a / sec 2.3.1: p99 latency of packets needing NO offload"
           " (us) while 10% of traffic needs slow DPI")
    print(format_comparison("victim p99 latency", results, unit="us"))

    # Paper shape: HOL blocking makes the no-bypass pipeline far worse
    # than PANIC; bypass logic mitigates it.
    assert results["pipeline (no bypass)"] > 5 * results["panic"]
    assert results["pipeline (bypass)"] < results["pipeline (no bypass)"] / 2
