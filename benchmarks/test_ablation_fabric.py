"""Ablation A2 -- mesh vs single crossbar, and the unified network
(section 3.1.2 and the section 3.1 footnote).

(1) Mesh vs crossbar.  A behavioural simulation cannot show wire length
directly, so the crossbar model derates its clock with port count (the
physical penalty of a large flat switch).  The architectural consequence
the paper leans on is scaling: mesh bisection grows with the topology
while a crossbar's per-port bandwidth shrinks as the switch grows.

(2) Unified vs split networks.  The footnote argues one network of width
2W beats two dedicated networks of width W: when one traffic class is
idle, its wires are idle too.  We run an asymmetric load (all packet
traffic, no DMA-class traffic) over both provisionings of the same mesh
and compare makespan.
"""

from repro.analysis import format_table
from repro.noc import Crossbar, Endpoint, Mesh, MeshAnalysis, MeshConfig
from repro.sim import Simulator
from repro.sim.clock import MHZ, SEC

from _util import banner, plain_udp_packet, run_once


class CountingSink(Endpoint):
    def __init__(self):
        self.received = 0
        self.last_ps = 0

    def receive(self, message):
        self.received += 1


def crossbar_vs_mesh_scaling():
    """Analytic aggregate bandwidth as the engine count grows."""
    rows = []
    for engines in (8, 16, 36, 64):
        k = int(engines ** 0.5)
        if k * k < engines:
            k += 1
        mesh = MeshAnalysis(max(2, k), max(2, k), 64, 500 * MHZ)
        mesh_bw = mesh.capacity_bps
        # Crossbar: port bandwidth at the derated clock, times ports.
        derated = 500 * MHZ / (1.0 + 0.05 * (engines - 1))
        xbar_bw = engines * 64 * derated
        rows.append((engines, mesh_bw / 1e9, xbar_bw / 1e9))
    return rows


def split_vs_unified(messages=400):
    """Makespan of an all-packet burst on a unified 128-bit mesh vs the
    same burst confined to one 64-bit plane of a split design."""
    results = {}
    for label, bits in (("unified 128b", 128), ("split 2x64b", 64)):
        sim = Simulator()
        mesh = Mesh(sim, MeshConfig(width=4, height=4, channel_bits=bits))
        sinks = {}
        ports = {}
        for y in range(4):
            for x in range(4):
                sink = CountingSink()
                ports[(x, y)] = mesh.bind(sink, x, y)
                sinks[(x, y)] = sink
        # One-class burst: packet traffic corner-to-corner rows.
        n = 0
        for i in range(messages):
            src = (i % 4, 0)
            dst = ((i * 7) % 4, 3)
            ports[src].send(plain_udp_packet(payload=bytes(240), seq=i),
                            mesh.address_of(*dst))
            n += 1
        sim.run()
        assert sum(s.received for s in sinks.values()) == n
        results[label] = sim.now / 1e6  # us
    return results


def test_ablation_fabric_choices(benchmark):
    def run():
        return crossbar_vs_mesh_scaling(), split_vs_unified()

    scaling, unified = run_once(benchmark, run)

    banner("Ablation: mesh vs crossbar aggregate bandwidth (analytic)")
    print(format_table(
        ["engines", "mesh capacity (Gbps)", "crossbar capacity (Gbps)"],
        [[e, f"{m:.0f}", f"{x:.0f}"] for e, m, x in scaling],
    ))
    banner("Ablation: unified vs split on-chip network "
           "(single-class burst makespan)")
    print(format_table(
        ["provisioning", "makespan (us)"],
        [[label, f"{us:.1f}"] for label, us in unified.items()],
    ))

    # The mesh out-provisions the crossbar at every size, and the gap
    # widens with engine count (the crossbar's derated clock caps its
    # aggregate bandwidth while mesh bisection keeps growing).
    gaps = [m - x for _e, m, x in scaling]
    assert all(m > x for _e, m, x in scaling)
    assert gaps == sorted(gaps)
    assert scaling[-1][1] > 2 * scaling[-1][2]  # 64 engines: mesh >> xbar

    # Unified network finishes the one-class burst ~2x faster: the other
    # class's wires are not idle (section 3.1 footnote).
    assert unified["unified 128b"] < unified["split 2x64b"] / 1.6
