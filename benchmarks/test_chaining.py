"""Experiment E4 -- section 2.3.1: dynamic chaining.

Pipeline NICs fix the offload order in silicon; a flow needing offloads
in a different order must recirculate, burning a full extra traversal of
on-NIC bandwidth per wrong-order pair.  PANIC's logical switch routes
each packet along its own chain, so order costs only mesh hops.

Workload: every packet needs the same two offloads (checksum then DPI)
but the pipeline's physical order is [DPI, checksum].  Metrics: total
completion time for a burst, and recirculation count.

Paper's shape: the pipeline pays ~2x traversals (recirculates every
packet); PANIC's time is flat regardless of chain order.
"""

from repro.analysis import format_table
from repro.baselines import PipelineNic
from repro.core import PanicConfig, PanicNic
from repro.engines import ChecksumEngine, RegexEngine
from repro.sim import Simulator
from repro.sim.clock import US

from _util import banner, plain_udp_packet, run_once

N_PACKETS = 40
GAP_PS = 200_000


def pipeline_run(order):
    """Run a burst needing offloads in ``order`` through a [regex,
    checksum] line; returns (mean_latency_us, recircs, stage_visits)."""
    sim = Simulator()
    line = [
        ("regex", RegexEngine(sim, "dpi", patterns=[b"x"],
                              cycles_per_byte=0.5)),
        ("checksum", ChecksumEngine(sim, "csum")),
    ]
    nic = PipelineNic(sim, line)
    latencies = []
    nic.host.software_handler = lambda p, q: latencies.append(
        sim.now - p.meta.nic_arrival_ps
    )
    for i in range(N_PACKETS):
        packet = plain_udp_packet(payload=b"y" * 200, seq=i)
        packet.meta.annotations["needs"] = order
        sim.schedule_at(i * GAP_PS, nic.inject, packet)
    sim.run()
    assert len(latencies) == N_PACKETS
    visits = sum(
        stage.serviced.value + stage.passed_through.value
        for stage in nic.stages
    )
    mean_us = sum(latencies) / len(latencies) / US
    return mean_us, nic.recirculations.value, visits


def panic_run(order):
    sim = Simulator()
    nic = PanicNic(
        sim,
        PanicConfig(ports=1, offloads=("regex", "checksum"),
                    offload_params={"regex": {"patterns": [b"x"],
                                              "cycles_per_byte": 0.5}}),
    )
    nic.control.route_dscp(1, list(order))
    latencies = []
    nic.host.software_handler = lambda p, q: latencies.append(
        sim.now - p.meta.nic_arrival_ps
    )
    for i in range(N_PACKETS):
        packet = plain_udp_packet(payload=b"y" * 200, seq=i, dscp=1)
        sim.schedule_at(i * GAP_PS, nic.inject, packet)
    sim.run()
    assert len(latencies) == N_PACKETS
    return sum(latencies) / len(latencies) / US


def test_dynamic_chaining_vs_recirculation(benchmark):
    def run():
        return {
            "pipeline_in_order": pipeline_run(("regex", "checksum")),
            "pipeline_reversed": pipeline_run(("checksum", "regex")),
            "panic_in_order": (panic_run(("regex", "checksum")), 0, 0),
            "panic_reversed": (panic_run(("checksum", "regex")), 0, 0),
        }

    results = run_once(benchmark, run)

    banner("Sec 2.3.1: chain order vs physical layout "
           f"({N_PACKETS}-packet burst, both offloads required)")
    print(
        format_table(
            ["system", "chain order", "mean latency (us)",
             "recirculations", "stage traversals"],
            [
                ["pipeline", "matches line",
                 f"{results['pipeline_in_order'][0]:.2f}",
                 results["pipeline_in_order"][1],
                 results["pipeline_in_order"][2]],
                ["pipeline", "reversed",
                 f"{results['pipeline_reversed'][0]:.2f}",
                 results["pipeline_reversed"][1],
                 results["pipeline_reversed"][2]],
                ["panic", "matches line",
                 f"{results['panic_in_order'][0]:.2f}", 0, "n/a"],
                ["panic", "reversed",
                 f"{results['panic_reversed'][0]:.2f}", 0, "n/a"],
            ],
        )
    )

    in_order = results["pipeline_in_order"]
    reversed_ = results["pipeline_reversed"]
    # Wrong order: one recirculation per packet, doubling on-NIC
    # traversal bandwidth -- "if enough packets are recirculated, the
    # NIC may not be able to process packets at line-rate" (sec 2.3.1):
    # effective line capacity is halved.
    assert reversed_[1] == N_PACKETS
    assert in_order[1] == 0
    assert reversed_[2] == 2 * in_order[2]
    effective_capacity = in_order[2] / reversed_[2]
    print(f"\npipeline effective capacity with reversed chains: "
          f"{effective_capacity:.0%} of line rate")
    assert effective_capacity == 0.5
    # And per-packet latency strictly suffers too.
    assert reversed_[0] > in_order[0]
    # PANIC: chain order is free (within 20%: different mesh paths).
    panic_a = results["panic_in_order"][0]
    panic_b = results["panic_reversed"][0]
    assert abs(panic_a - panic_b) / panic_a < 0.2
