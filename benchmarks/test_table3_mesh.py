"""Experiment T3 -- Table 3: mesh bisection bandwidth and sustainable
offload-chain length.

Part 1 recomputes every row analytically (must match the paper exactly).
Part 2 validates the analytical capacity empirically: a simulated 6x6
mesh under uniform random traffic sustains offered load below the
model's capacity and saturates (builds backlog / stretches delivery)
above it.
"""

import pytest

from repro.analysis import format_table
from repro.noc import Endpoint, Mesh, MeshConfig, MeshAnalysis, table3_rows
from repro.noc.analysis import TABLE3_PAPER
from repro.sim import Simulator
from repro.sim.clock import MHZ, SEC
from repro.sim.rng import SeededRng

from _util import banner, plain_udp_packet, run_once


class CountingSink(Endpoint):
    def __init__(self):
        self.received = 0

    def receive(self, message):
        self.received += 1


def uniform_mesh_run(k: int, channel_bits: int, load_fraction: float,
                     messages: int = 3000, frame_bytes: int = 64):
    """Offer uniform random traffic at ``load_fraction`` of the model's
    all-to-all capacity; return (delivered_fraction, makespan_stretch).

    ``makespan_stretch`` is total-finish-time / injection-window: ~1 when
    the fabric keeps up, >> 1 when it saturates.
    """
    sim = Simulator()
    mesh = Mesh(sim, MeshConfig(width=k, height=k, channel_bits=channel_bits))
    analysis = MeshAnalysis(k, k, channel_bits, 500 * MHZ)
    sinks = {}
    ports = {}
    for y in range(k):
        for x in range(k):
            sink = CountingSink()
            ports[(x, y)] = mesh.bind(sink, x, y)
            sinks[(x, y)] = sink

    bits_per_message = frame_bytes * 8
    offered_bps = analysis.capacity_bps * load_fraction
    # Aggregate inter-injection gap across all sources.
    gap_ps = int(bits_per_message * SEC / offered_bps)
    rng = SeededRng(7)
    coords = list(ports)
    when = 0
    for i in range(messages):
        src = coords[rng.randint(0, len(coords) - 1)]
        dst = coords[rng.randint(0, len(coords) - 1)]
        while dst == src:
            dst = coords[rng.randint(0, len(coords) - 1)]
        packet = plain_udp_packet(payload=bytes(22), seq=i)
        sim.schedule_at(when, ports[src].send, packet, mesh.address_of(*dst))
        when += gap_ps
    injection_window = when
    sim.run()
    delivered = sum(s.received for s in sinks.values())
    stretch = sim.now / injection_window
    return delivered / messages, stretch


def test_table3_analytical_rows(benchmark):
    rows = run_once(benchmark, table3_rows)

    banner("Table 3: on-NIC topology throughput and chain length")
    print(
        format_table(
            ["Line-rate", "Freq", "Bit Width", "Topo",
             "Bisec BW (model/paper)", "Chain Len (model/paper)"],
            [
                [f"{r.line_rate_gbps}Gbps x{r.ports}", f"{r.freq_mhz}MHz",
                 r.channel_bits, r.topo,
                 f"{r.bisection_gbps:.0f} / {paper_bw:.0f} Gbps",
                 f"{r.chain_length:.2f} / {paper_chain:.2f}"]
                for r, (paper_bw, paper_chain) in zip(rows, TABLE3_PAPER)
            ],
        )
    )
    for row, (paper_bw, paper_chain) in zip(rows, TABLE3_PAPER):
        assert row.bisection_gbps == pytest.approx(paper_bw)
        assert row.chain_length == pytest.approx(paper_chain, abs=0.005)


def test_table3_mesh_capacity_validated_by_simulation(benchmark):
    def run():
        under = uniform_mesh_run(6, 64, load_fraction=0.6)
        over = uniform_mesh_run(6, 64, load_fraction=2.0)
        return under, over

    (under_frac, under_stretch), (over_frac, over_stretch) = run_once(
        benchmark, run
    )

    banner("Table 3 validation: simulated 6x6 mesh vs analytical capacity")
    print(
        format_table(
            ["offered load (x capacity)", "delivered", "makespan stretch"],
            [["0.6x", f"{under_frac * 100:.1f}%", f"{under_stretch:.2f}"],
             ["2.0x", f"{over_frac * 100:.1f}%", f"{over_stretch:.2f}"]],
        )
    )
    # Lossless: everything is always delivered eventually...
    assert under_frac == 1.0 and over_frac == 1.0
    # ...but below capacity the fabric keeps up with injection, while
    # well above capacity the run takes much longer than the window.
    assert under_stretch < 1.2
    assert over_stretch > 1.5
