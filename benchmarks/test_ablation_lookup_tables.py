"""Ablation A1 -- lightweight per-engine lookup tables (section 3.1.2).

"Lightweight lookup tables reduce the load on the heavyweight RMT
pipeline" -- without them, every hop of an offload chain would re-enter
the heavyweight pipeline.  Section 4.2 works out the consequence: with
two pipelines and two 100G ports there is only ~1.68 passes/packet of
RMT headroom, so per-hop RMT switching cannot even sustain one-offload
chains at line rate.

We ablate by comparing (a) chained routing -- the reference design,
chain carried in the message header, matched by local tables -- against
(b) hop-by-hop routing -- the RMT pipeline named as the next hop after
every engine.  Metrics: heavyweight passes per packet and the analytic
line-rate headroom each mode leaves.
"""

from repro.analysis import format_table, min_frame_pps, rmt_pipeline_pps
from repro.core import PanicConfig, PanicNic
from repro.sim import Simulator
from repro.sim.clock import MHZ

from _util import banner, plain_udp_packet, run_once

N_PACKETS = 30
CHAIN = ["checksum", "regex"]


def run_mode(hop_by_hop: bool):
    sim = Simulator()
    nic = PanicNic(
        sim,
        PanicConfig(ports=1, offloads=("regex", "checksum"),
                    offload_params={"regex": {"patterns": [b"x"]}}),
    )
    if hop_by_hop:
        # Ablated: after every engine, return to the heavyweight
        # pipeline, which then issues the next single-hop chain.
        rmt = nic.rmt.address
        chain = []
        for hop in CHAIN:
            chain.extend([nic.offload(hop).address, rmt])
        chain.append(nic.dma.address)
        nic.control.route_dscp(1, chain, append_dma=False)
    else:
        nic.control.route_dscp(1, CHAIN)
    done = []
    nic.host.software_handler = lambda p, q: done.append(p)
    for i in range(N_PACKETS):
        sim.schedule_at(i * 100_000, nic.inject,
                        plain_udp_packet(seq=i, dscp=1))
    sim.run()
    assert len(done) == N_PACKETS
    return nic.rmt.processed.value / N_PACKETS


def test_ablation_lightweight_lookup_tables(benchmark):
    def run():
        return {
            "chained (lookup tables)": run_mode(hop_by_hop=False),
            "hop-by-hop (ablated)": run_mode(hop_by_hop=True),
        }

    results = run_once(benchmark, run)

    line_pps = min_frame_pps(100e9, 2)
    rmt_pps = rmt_pipeline_pps(500 * MHZ, 2)
    banner("Ablation: lightweight lookup tables vs per-hop RMT switching "
           f"(2-offload chain, 2x100G budget = {rmt_pps / line_pps:.2f} "
           "RMT passes/packet)")
    rows = []
    for label, passes in results.items():
        sustainable = rmt_pps / line_pps >= passes
        rows.append([label, f"{passes:.2f}",
                     "yes" if sustainable else "NO"])
    print(format_table(
        ["routing mode", "RMT passes/packet", "line rate sustainable?"],
        rows,
    ))

    chained = results["chained (lookup tables)"]
    ablated = results["hop-by-hop (ablated)"]
    # The reference design needs one pass; the ablation needs one per hop.
    assert chained == 1.0
    assert ablated >= 3.0
    # Section 4.2's punchline: only the chained mode fits the RMT budget.
    budget = rmt_pps / line_pps
    assert chained <= budget < ablated
