"""Live backend migration under the 32-NIC incast (the CI ``lb-smoke``
gate).

Serves a VIP from the RMT pipeline of one NIC in a 32-NIC all-pairs
rack -- 1 load balancer, 4 backends, 27 clients on payload-tag flow
ids -- and drains one of the four backends mid-traffic with the
make-before-break epoch protocol (DESIGN.md section 17).  A planned
drain must be invisible to the transport layer:

* **goodput >= the floor** (default from ``benchmarks/perf/floor.json``
  key ``lb_goodput_min``): every client flow completes; pinned flows
  finish on the draining backend, post-drain flows hash into the
  survivors;
* **zero committed loss + no affinity violation**: the chaos harness's
  lb invariant checker runs on every leg;
* **mono == sharded** at each requested worker count (conservative
  windows; ``--speculative`` flips the protocol).

A second, drain-free run of the same rack gives the quiet baseline, so
the flow-completion-time tail *during table churn* reads off directly
(EXPERIMENTS.md E17).  Writes ``BENCH_lb.json`` in the stable
``repro-bench/2`` envelope.  Series metrics: per-scenario ``goodput``,
``invariants_ok``, ``p50_fct_us``/``p99_fct_us``, ``churn_p99_fct_us``
(flows whose active window overlaps the drain instant),
``steered_frames_per_sec``, ``aborted_flows``, and per-worker-count
``bit_identical`` flags.  Exits non-zero when any gate fails.

Usage::

    PYTHONPATH=src python benchmarks/lb/run_lb_bench.py \
        --out BENCH_lb.json [--nics 32] [--backends 4] [--frames 30] \
        [--drain-backend 2] [--drain-at-us 150] [--workers 2,4] \
        [--slots 2048] [--floor 0.99] [--speculative]
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "perf")
)
from bench_schema import envelope, write_json  # noqa: E402

from repro.lb.rack import lb_layout, lb_rack_topology  # noqa: E402
from repro.reliability.chaos import _check_lb_case  # noqa: E402
from repro.sim.clock import US  # noqa: E402
from repro.sim.shard import run_monolithic, run_sharded  # noqa: E402

#: Throughput floors live with the perf gates; the lb key rides along.
FLOOR_FILE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          "..", "perf", "floor.json")

#: Affinity slots for the 32-NIC shape.  27 concurrent client flows
#: collide in the default 256-slot table (direct indexing, no
#: chaining); 2048 is the smallest power of two where every shipped
#: client key lands in its own slot (tests/test_lb.py pins this).
DEFAULT_SLOTS = 2048


def default_floor() -> float:
    with open(FLOOR_FILE) as fh:
        return float(json.load(fh)["lb_goodput_min"])


def percentile(values, frac: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(frac * len(ordered)))
    return float(ordered[index])


def run_scenario(*, nics: int, backends: int, frames: int, gap_us: int,
                 stagger_us: int, slots: int, drain, monitor_stop_us: int,
                 worker_counts, speculative: bool) -> dict:
    """One full scenario: mono run + sharded equivalence legs."""
    def topology():
        return lb_rack_topology(
            nics=nics, n_backends=backends, frames=frames,
            gap_ps=gap_us * US, stagger_ps=stagger_us * US,
            slots=slots, drain=drain,
            monitor_stop_ps=monitor_stop_us * US,
        )

    mono = run_monolithic(topology())
    legs = {}
    for workers in worker_counts:
        shard = run_sharded(topology(), workers=workers,
                            speculative=speculative)
        violations = _check_lb_case(mono, shard, None, backends)
        legs[workers] = {
            "bit_identical": mono.reports == shard.reports
            and mono.wire_stats == shard.wire_stats,
            "violations": violations,
            "wall_seconds": shard.wall_seconds,
        }
    if not worker_counts:
        legs[0] = {"bit_identical": True,
                   "violations": _check_lb_case(mono, None, None, backends),
                   "wall_seconds": mono.wall_seconds}

    _, clients = lb_layout(nics, backends)
    first_client = clients[0]
    fcts = {}          # client index -> (start_ps, completed_ps)
    aborted = 0
    for c in clients:
        report = mono.reports[f"nic{c}"]
        start_ps = (c - first_client) * stagger_us * US
        aborted += len(report["failures"])
        for _dst, completed_ps in report["fct"].items():
            fcts[c] = (start_ps, completed_ps)
    durations_us = [(done - start) / US for start, done in fcts.values()]
    churn_us = [(done - start) / US for start, done in fcts.values()
                if drain and start <= drain[1] <= done]
    sent = sum(r.get("sent", 0) for r in mono.reports.values())
    delivered = sum(len(r.get("deliveries", ()))
                    for r in mono.reports.values())
    steering = mono.reports["nic0"]["steering"]
    last_done_ps = max((done for _s, done in fcts.values()), default=0)
    return {
        "goodput": delivered / sent if sent else 1.0,
        "sent": sent,
        "delivered": delivered,
        "aborted_flows": aborted,
        "completed_flows": len(fcts),
        "p50_fct_us": percentile(durations_us, 0.50),
        "p99_fct_us": percentile(durations_us, 0.99),
        "churn_flows": len(churn_us),
        "churn_p99_fct_us": percentile(churn_us, 0.99),
        "steered_frames": steering["stats"]["steered"],
        "steered_frames_per_sec": (
            steering["stats"]["steered"] / (last_done_ps * 1e-12)
            if last_done_ps else 0.0),
        "epoch": steering["epoch"],
        "gc_removed": steering["gc_removed"],
        "affinity": steering["stats"],
        "mono_wall_seconds": mono.wall_seconds,
        "legs": {str(w): leg for w, leg in legs.items()},
        "invariants_ok": all(not leg["violations"] for leg in legs.values()),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_lb.json")
    parser.add_argument("--nics", type=int, default=32)
    parser.add_argument("--backends", type=int, default=4)
    parser.add_argument("--frames", type=int, default=30,
                        help="frames per client flow")
    parser.add_argument("--gap-us", type=int, default=2,
                        help="inter-frame gap per client, us")
    parser.add_argument("--stagger-us", type=int, default=10,
                        help="client start stagger, us")
    parser.add_argument("--slots", type=int, default=DEFAULT_SLOTS,
                        help="affinity table slots")
    parser.add_argument("--drain-backend", type=int, default=2)
    parser.add_argument("--drain-at-us", type=int, default=150,
                        help="planned drain instant, us (mid-traffic)")
    parser.add_argument("--workers", default="2,4",
                        help="comma list of shard worker counts to gate "
                             "bit-identical against mono ('' = mono only)")
    parser.add_argument("--speculative", action="store_true",
                        help="shard with speculative windows")
    parser.add_argument("--floor", type=float, default=None,
                        help="migration goodput floor "
                             "(default: perf/floor.json lb_goodput_min)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="skip the quiet (drain-free) baseline run")
    args = parser.parse_args(argv)

    floor = args.floor if args.floor is not None else default_floor()
    worker_counts = [int(w) for w in args.workers.split(",") if w]
    # Probes must outlive the staggered traffic so a mid-run drain is
    # observed by a live monitor on every leg.
    _, clients = lb_layout(args.nics, args.backends)
    horizon_us = (len(clients) * args.stagger_us
                  + args.frames * args.gap_us + 100)
    common = dict(
        nics=args.nics, backends=args.backends, frames=args.frames,
        gap_us=args.gap_us, stagger_us=args.stagger_us, slots=args.slots,
        monitor_stop_us=horizon_us, worker_counts=worker_counts,
        speculative=args.speculative,
    )

    print(f"lb bench: {args.nics} NICs ({args.backends} backends, "
          f"{len(clients)} clients x {args.frames} frames), drain "
          f"nic{args.drain_backend} @ {args.drain_at_us} us, workers "
          f"{worker_counts or ['mono']}")
    scenarios = {
        "lb_migration": run_scenario(
            drain=(args.drain_backend, args.drain_at_us * US), **common),
    }
    if not args.no_baseline:
        scenarios["lb_quiet"] = run_scenario(drain=None, **common)

    series = []
    for name, s in scenarios.items():
        for metric in ("goodput", "p50_fct_us", "p99_fct_us",
                       "churn_p99_fct_us", "steered_frames_per_sec",
                       "aborted_flows", "gc_removed"):
            series.append({"workload": name, "metric": metric,
                           "value": s[metric]})
        series.append({"workload": name, "metric": "invariants_ok",
                       "value": int(s["invariants_ok"])})
        for workers, leg in s["legs"].items():
            series.append({"workload": f"{name}_{workers}w",
                           "metric": "bit_identical",
                           "value": int(leg["bit_identical"])})

    write_json(args.out, envelope(
        "lb",
        {"nics": args.nics, "backends": args.backends,
         "frames": args.frames, "gap_us": args.gap_us,
         "stagger_us": args.stagger_us, "slots": args.slots,
         "drain_backend": args.drain_backend,
         "drain_at_us": args.drain_at_us, "workers": worker_counts,
         "speculative": args.speculative, "floor": floor},
        scenarios, series,
    ))

    failed = []
    mig = scenarios["lb_migration"]
    print(f"migration: goodput {mig['goodput']:.4f} (floor {floor:.2f}), "
          f"p99 FCT {mig['p99_fct_us']:.1f} us "
          f"(churn-window p99 {mig['churn_p99_fct_us']:.1f} us over "
          f"{mig['churn_flows']} flows), "
          f"{mig['steered_frames_per_sec'] / 1e6:.2f}M frames/s steered")
    if "lb_quiet" in scenarios:
        quiet = scenarios["lb_quiet"]
        print(f"quiet    : goodput {quiet['goodput']:.4f}, "
              f"p99 FCT {quiet['p99_fct_us']:.1f} us")
    for name, s in scenarios.items():
        if s["goodput"] < floor:
            failed.append(f"{name}: goodput {s['goodput']:.4f} < {floor}")
        if not s["invariants_ok"]:
            for leg in s["legs"].values():
                for violation in leg["violations"]:
                    failed.append(f"{name}: {violation}")
        for workers, leg in s["legs"].items():
            if not leg["bit_identical"]:
                failed.append(f"{name}: {workers}-worker sharded run "
                              f"diverged from mono")
    if failed:
        for line in failed:
            print(f"GATE FAILURE {line}", file=sys.stderr)
        return 1
    print(f"all gates hold: goodput >= {floor}, zero committed loss, "
          f"no affinity violations, bit-identical at "
          f"{worker_counts or ['mono']} workers")
    return 0


if __name__ == "__main__":
    sys.exit(main())
