"""Experiment F3 -- Figure 3: PANIC's component anatomy.

Checks the constructed NIC against the figure: (a) every engine tile has
a router, local lookup table and scheduling queue; (b) the RMT engine is
a parser + M+A stages + deparser with configurable pipeline parallelism
and chaining; (c) the tiles sit on a 2D mesh whose edges host the
external interfaces (Ethernet, DMA/PCIe), as drawn in Figure 3c.
"""

from repro.core import PanicConfig, PanicNic
from repro.engines.rmt_engine import DEPARSER_CYCLES, PARSER_CYCLES
from repro.sim import Simulator

from _util import banner, run_once


def build():
    sim = Simulator()
    nic = PanicNic(
        sim,
        PanicConfig(ports=2, mesh_width=4, mesh_height=4,
                    rmt_pipelines=2, rmt_chained_engines=2),
    )
    return sim, nic


def test_fig3_component_anatomy(benchmark):
    sim, nic = run_once(benchmark, build)

    banner("Fig 3: engine anatomy and placement")
    rows = []
    for key, engine in sorted(nic.engines.items()):
        x, y = nic.mesh.coords_of(engine.address)
        rows.append(f"  {key:12s} tile ({x},{y}) addr {engine.address}")
    print("\n".join(rows))

    # (a) Every engine: router (via mesh bind), lookup table, PIFO queue.
    for engine in nic.engines.values():
        assert engine.port is not None
        assert engine.lookup_table is not None
        assert engine.queue is not None

    # (b) RMT engine structure: parser + stages + deparser, latency and
    # throughput as configured (sections 3.1.2 / 4.2).
    rmt = nic.rmt
    stages = rmt.pipeline.program.num_stages
    expected_cycles = (PARSER_CYCLES + stages + DEPARSER_CYCLES) * 2
    assert rmt.latency_ps == rmt.clock.cycles_to_ps(expected_cycles)
    assert rmt.throughput_pps == rmt.clock.freq_hz * 2

    # (c) External interfaces on mesh edges (Figure 3c): Ethernet ports
    # on the west column, DMA/PCIe on the east column.
    for i in range(2):
        x, _y = nic.mesh.coords_of(nic.engines[f"eth{i}"].address)
        assert x == 0
    for key in ("dma", "pcie"):
        x, _y = nic.mesh.coords_of(nic.engines[key].address)
        assert x == nic.config.mesh_width - 1

    # Lookup tables all default to the heavyweight pipeline (sec 3.1.2).
    for key, engine in nic.engines.items():
        if key != "rmt":
            assert engine.lookup_table.default_next == rmt.address
