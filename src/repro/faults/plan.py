"""Declarative, seed-reproducible fault schedules.

A :class:`FaultPlan` is a list of timed fault events plus a seed.  It is
pure data: building a plan touches nothing; a
:class:`~repro.faults.injector.FaultInjector` arms it against a NIC.  Two
runs armed with equal plans (same events, same seed) inject bit-identical
faults, so fault experiments are as reproducible as fault-free ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.sim.clock import format_time

#: Fault event kinds (the ``FaultEvent.kind`` vocabulary).
CRASH = "crash"
STALL = "stall"
SLOW = "slow"
RECOVER = "recover"
LINK_CORRUPT = "link_corrupt"
LINK_DROP = "link_drop"
PIFO_CORRUPT = "pifo_corrupt"
WIRE_DOWN = "wire_down"
WIRE_UP = "wire_up"
WIRE_LOSS = "wire_loss"
WIRE_LINKLAYER = "wire_linklayer"
NIC_DOWN = "nic_down"
NIC_UP = "nic_up"

KINDS = (CRASH, STALL, SLOW, RECOVER, LINK_CORRUPT, LINK_DROP, PIFO_CORRUPT,
         WIRE_DOWN, WIRE_UP, WIRE_LOSS, WIRE_LINKLAYER, NIC_DOWN, NIC_UP)

#: Kinds targeting an *external* wire between two NICs (rack scope).
#: These cannot be armed by a single-NIC :class:`FaultInjector`; use
#: :mod:`repro.faults.rack` through ``run_monolithic``/``run_sharded``.
WIRE_KINDS = (WIRE_DOWN, WIRE_UP, WIRE_LOSS, WIRE_LINKLAYER)

#: Kinds targeting a *whole NIC* rather than one of its engines.  In a
#: single-NIC plan the target is the literal ``"self"``; in a rack plan
#: it is the bare NIC name (``"nic2"``), resolved by
#: :func:`repro.faults.rack.resolve_rack_plan`.
NIC_KINDS = (NIC_DOWN, NIC_UP)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: *what* happens to *whom* at *when*.

    ``target`` is an engine key (``"ipsec"``) for engine/PIFO faults and a
    full channel name (``"panic.mesh.ch_0_0_east"``) for link faults.
    """

    at_ps: int
    kind: str
    target: str
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.at_ps < 0:
            raise ValueError(f"fault time must be >= 0, got {self.at_ps}")
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; known: {KINDS}")

    def describe(self) -> str:
        extra = ""
        if self.params:
            extra = " " + ", ".join(
                f"{k}={v}" for k, v in sorted(self.params.items())
            )
        return f"@{format_time(self.at_ps)} {self.kind} {self.target}{extra}"


class FaultPlan:
    """A builder for timed fault schedules.

    All methods return ``self`` for chaining::

        plan = (FaultPlan(seed=7)
                .crash_engine(30 * US, "ipsec")
                .corrupt_link(50 * US, "panic.mesh.inj_0_0", offset=20))
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._events: List[FaultEvent] = []

    # -- engine faults ---------------------------------------------------

    def crash_engine(self, at_ps: int, engine: str) -> "FaultPlan":
        """Kill a tile: queued and future traffic is black-holed."""
        return self._add(at_ps, CRASH, engine)

    def stall_engine(self, at_ps: int, engine: str) -> "FaultPlan":
        """Wedge a tile: it accepts messages but never serves them."""
        return self._add(at_ps, STALL, engine)

    def slow_engine(self, at_ps: int, engine: str, factor: float) -> "FaultPlan":
        """Multiply a tile's service time by ``factor`` (> 1 degrades)."""
        if factor <= 0:
            raise ValueError(f"slowdown factor must be > 0, got {factor}")
        return self._add(at_ps, SLOW, engine, factor=factor)

    def recover_engine(self, at_ps: int, engine: str) -> "FaultPlan":
        """Clear an injected engine fault and resume service."""
        return self._add(at_ps, RECOVER, engine)

    # -- link faults -----------------------------------------------------

    def corrupt_link(
        self, at_ps: int, channel: str, bits: int = 1,
        offset: Optional[int] = None,
    ) -> "FaultPlan":
        """Flip ``bits`` payload bits in the next transfer on ``channel``.

        ``offset`` pins the flips inside one payload byte, which makes
        checksum-detection tests deterministic; without it, bit positions
        are drawn from the plan's seeded RNG.
        """
        if bits < 1:
            raise ValueError(f"must corrupt at least one bit, got {bits}")
        return self._add(at_ps, LINK_CORRUPT, channel, bits=bits, offset=offset)

    def drop_on_link(
        self, at_ps: int, channel: str, leak_credit: bool = True
    ) -> "FaultPlan":
        """Vanish the next transfer on ``channel`` mid-flight.

        With ``leak_credit`` the consumed credit never returns -- the
        classic leak that eventually wedges a lossless mesh, which the
        diagnostics in :meth:`repro.noc.mesh.Mesh.stuck_report` surface.
        """
        return self._add(at_ps, LINK_DROP, channel, leak_credit=leak_credit)

    # -- scheduler faults ------------------------------------------------

    def corrupt_pifo(self, at_ps: int, engine: str) -> "FaultPlan":
        """Scramble the ranks of everything queued in a tile's PIFO."""
        return self._add(at_ps, PIFO_CORRUPT, engine)

    # -- whole-NIC faults ------------------------------------------------
    #
    # Targets name the NIC itself: the literal ``"self"`` in a
    # single-NIC plan, the bare NIC name (``"nic2"``) in a rack plan.
    # Unlike engine crashes, a downed NIC goes *dark at its MACs*: every
    # arriving frame is dropped at ingress and every frame reaching a
    # transmit MAC vanishes, both with accounting
    # (``stats()["faults"]["dark_rx_drops"/"dark_tx_drops"]``).  This is
    # what a backend crash looks like from the rest of the rack -- the
    # failure the load balancer's health monitor must detect.

    def nic_down(self, at_ps: int, nic: str = "self") -> "FaultPlan":
        """Power a NIC's MACs off: dark to the rack until
        :meth:`nic_up`."""
        return self._add(at_ps, NIC_DOWN, nic)

    def nic_up(self, at_ps: int, nic: str = "self") -> "FaultPlan":
        """Restore a NIC downed by :meth:`nic_down`."""
        return self._add(at_ps, NIC_UP, nic)

    def flap_nic(self, down_ps: int, up_ps: int,
                 nic: str = "self") -> "FaultPlan":
        """Convenience: a dark interval ``[down_ps, up_ps)``."""
        if up_ps <= down_ps:
            raise ValueError(
                f"flap must come back up after it goes down "
                f"({down_ps} .. {up_ps})"
            )
        return self.nic_down(down_ps, nic).nic_up(up_ps, nic)

    # -- external wire faults (rack scope) -------------------------------
    #
    # Targets name a cable between two rack NICs: ``wire_<i>_<j>`` where
    # ``i < j`` index the NICs in topology declaration order (see
    # :func:`repro.faults.rack.wire_target`).  Engine/link kinds in a
    # rack plan take ``"<nic>:<target>"`` instead (e.g. ``"nic0:ipsec"``).

    def wire_down(self, at_ps: int, wire: str) -> "FaultPlan":
        """Cut a cable: every frame offered to it vanishes until
        :meth:`wire_up`.  Frames already in flight still arrive (the
        photons left before the backhoe)."""
        return self._add(at_ps, WIRE_DOWN, wire)

    def wire_up(self, at_ps: int, wire: str) -> "FaultPlan":
        """Restore a cable cut by :meth:`wire_down`."""
        return self._add(at_ps, WIRE_UP, wire)

    def flap_wire(self, down_ps: int, up_ps: int, wire: str) -> "FaultPlan":
        """Convenience: a down interval ``[down_ps, up_ps)``."""
        if up_ps <= down_ps:
            raise ValueError(
                f"flap must come back up after it goes down "
                f"({down_ps} .. {up_ps})"
            )
        return self.wire_down(down_ps, wire).wire_up(up_ps, wire)

    def wire_loss(
        self, at_ps: int, wire: str,
        drop_p: float = 0.01, corrupt_p: float = 0.0,
    ) -> "FaultPlan":
        """Make a cable lossy from ``at_ps`` on: each transmitted frame
        is independently dropped with ``drop_p`` or bit-corrupted with
        ``corrupt_p``, drawn from a per-wire-direction fork of the
        plan's seed (so runs replay identically at any shard count).
        Probabilities of 0 restore a clean wire."""
        for label, p in (("drop_p", drop_p), ("corrupt_p", corrupt_p)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{label} must be in [0, 1], got {p}")
        return self._add(at_ps, WIRE_LOSS, wire,
                         drop_p=drop_p, corrupt_p=corrupt_p)

    def link_local(
        self, at_ps: int, wire: str,
        hold_frames: Optional[int] = None,
        max_repair: Optional[int] = None,
    ) -> "FaultPlan":
        """Arm LinkGuardian-style sub-RTT repair on both directions of a
        cable from ``at_ps`` on: the receiver NACKs dropped/corrupted
        frames, the sender retransmits from a bounded ``hold_frames``
        hold buffer (up to ``max_repair`` times per frame), and repaired
        frames hand off to the next hop in order.  See
        :mod:`repro.reliability.linklayer`."""
        params = {}
        if hold_frames is not None:
            if hold_frames < 1:
                raise ValueError(
                    f"hold_frames must be >= 1, got {hold_frames}")
            params["hold_frames"] = hold_frames
        if max_repair is not None:
            if max_repair < 1:
                raise ValueError(
                    f"max_repair must be >= 1, got {max_repair}")
            params["max_repair"] = max_repair
        return self._add(at_ps, WIRE_LINKLAYER, wire, **params)

    # -- introspection ---------------------------------------------------

    def events(self) -> List[FaultEvent]:
        """All events, time-sorted (stable for equal timestamps)."""
        return sorted(self._events, key=lambda e: e.at_ps)

    def describe(self) -> str:
        if not self._events:
            return "fault plan: empty"
        lines = [f"fault plan (seed={self.seed}, {len(self._events)} events):"]
        lines += [f"  {event.describe()}" for event in self.events()]
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self._events)

    def _add(self, at_ps: int, kind: str, target: str, **params) -> "FaultPlan":
        self._events.append(FaultEvent(int(at_ps), kind, target, params))
        return self
