"""Deterministic fault injection and recovery for PANIC simulations.

Three pieces compose a fault experiment:

* :class:`FaultPlan` -- a pure-data, seed-carrying schedule of timed
  faults (engine crash/stall/slowdown, link bit-corruption, flit loss
  with credit leak, PIFO rank scrambles);
* :class:`FaultInjector` -- arms a plan against a
  :class:`~repro.core.panic.PanicNic`, drawing every stochastic choice
  from per-event forks of the plan's seed so runs replay identically;
* :class:`HealthMonitor` -- a mesh-resident watchdog that heartbeats
  engine tiles over the NoC and, on timeout, drives the NIC's failover
  (lookup-table remap + RMT chain recomputation).

See ``examples/fault_tolerance.py`` for the end-to-end flow.
"""

from repro.faults.injector import FaultInjector
from repro.faults.monitor import HealthMonitor, attach_health_monitor
from repro.faults.plan import FaultEvent, FaultPlan
from repro.faults.rack import (
    RackTargetError,
    arm_rack_faults,
    resolve_rack_plan,
    wire_target,
)

__all__ = [
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "HealthMonitor",
    "attach_health_monitor",
    "RackTargetError",
    "arm_rack_faults",
    "resolve_rack_plan",
    "wire_target",
]
