"""Heartbeat health monitoring and failure-driven recovery.

The :class:`HealthMonitor` occupies a free mesh tile like any other
engine and probes the watched engines with zero-byte CONTROL packets.
Probes ride the mesh, the target's PIFO, and its service loop before the
echo comes back (see :meth:`repro.engines.base.Engine._echo_heartbeat`),
so a reply proves the whole tile is live -- router, queue, and engine.
A probe outstanding past the timeout fires the watchdog: the monitor
declares the engine failed and asks the NIC to recompute routes around
it (:meth:`repro.core.panic.PanicNic.handle_engine_failure`).

Detection latency is bounded by ``timeout_ps`` plus one ``period_ps``
(the watchdog is evaluated at tick granularity).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.noc.message import NocMessage
from repro.noc.router import Endpoint
from repro.packet.packet import MessageKind, Packet
from repro.sim.clock import US
from repro.sim.kernel import Component, Event
from repro.sim.stats import Counter, LatencyTracker


class HealthMonitor(Component, Endpoint):
    """Mesh-resident watchdog for engine tiles.

    Parameters
    ----------
    nic:
        The NIC whose engines are watched (and asked to fail over).
    engines:
        Engine keys to probe; defaults to the configured offloads -- the
        engines with failover semantics.  Fixed-function tiles (MACs,
        DMA, PCIe, RMT) can be added explicitly.
    period_ps, timeout_ps:
        Probe interval and the outstanding-probe age at which the
        watchdog declares the engine dead.
    """

    def __init__(
        self,
        nic,
        engines: Optional[Iterable[str]] = None,
        period_ps: int = 2 * US,
        timeout_ps: int = 4 * US,
        name: Optional[str] = None,
    ):
        Component.__init__(self, nic.sim, name or f"{nic.name}.monitor")
        if period_ps <= 0 or timeout_ps <= 0:
            raise ValueError("heartbeat period and timeout must be positive")
        self.nic = nic
        self.period_ps = period_ps
        self.timeout_ps = timeout_ps
        watch = list(engines) if engines is not None else list(nic.config.offloads)
        for key in watch:
            nic.offload(key)  # fail fast on typos
        self._watch: List[str] = watch
        self._key_of: Dict[int, str] = {
            nic.offload(key).address: key for key in watch
        }
        #: engine key -> (sequence number, send time) of the live probe.
        self._outstanding: Dict[str, Tuple[int, int]] = {}
        #: engine key -> detection time of a declared failure.
        self.failed_at: Dict[str, int] = {}
        self._seq = 0
        self._tick_event: Optional[Event] = None
        self._running = False
        self.port = None  # set when bound to the mesh
        self.heartbeats_sent = Counter(f"{self.name}.heartbeats_sent")
        self.echoes_received = Counter(f"{self.name}.echoes_received")
        self.watchdog_fires = Counter(f"{self.name}.watchdog_fires")
        self.failures_detected = Counter(f"{self.name}.failures_detected")
        self.rtt = LatencyTracker(f"{self.name}.rtt")

    def bind_port(self, port) -> None:
        self.port = port

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Begin probing.  The first probes go out immediately."""
        if self.port is None:
            raise RuntimeError(
                f"{self.name}: not bound to the mesh; use attach_health_monitor"
            )
        if self._running:
            return
        self._running = True
        self._tick_event = self.schedule(0, self._tick)

    def stop(self) -> None:
        """Stop probing and cancel the pending tick.

        Without a stop the periodic tick keeps the event heap alive
        forever, so ``sim.run()`` with no horizon would never return.
        """
        self._running = False
        if self._tick_event is not None:
            self._tick_event.cancel()
            self._tick_event = None
        self._outstanding.clear()

    def clear(self, key: str) -> None:
        """Forget a declared failure (e.g. after the engine recovered)."""
        self.failed_at.pop(key, None)
        self._outstanding.pop(key, None)

    # ------------------------------------------------------------------
    # Probe loop
    # ------------------------------------------------------------------

    def _tick(self) -> None:
        self._tick_event = None
        if not self._running:
            return
        for key in self._watch:
            if key in self.failed_at:
                continue
            outstanding = self._outstanding.get(key)
            if outstanding is not None:
                _seq, sent_ps = outstanding
                if self.now - sent_ps >= self.timeout_ps:
                    self.watchdog_fires.add()
                    self._declare_failed(key)
                # Probe still in flight (or just timed out): don't pile
                # a second one onto a slow or wedged engine.
                continue
            self._probe(key)
        if self._running:
            self._tick_event = self.schedule(self.period_ps, self._tick)

    def _probe(self, key: str) -> None:
        self._seq += 1
        probe = Packet(b"", MessageKind.CONTROL)
        probe.meta.annotations["hb_reply_to"] = self.address
        probe.meta.annotations["hb_seq"] = self._seq
        self._outstanding[key] = (self._seq, self.now)
        self.heartbeats_sent.add()
        self.port.send(probe, self.nic.offload(key).address)

    def _declare_failed(self, key: str) -> None:
        self.failures_detected.add()
        self.failed_at[key] = self.now
        self._outstanding.pop(key, None)
        self.nic.handle_engine_failure(key)

    # ------------------------------------------------------------------
    # Endpoint interface (echo reception)
    # ------------------------------------------------------------------

    def receive(self, message: NocMessage) -> None:
        annotations = message.packet.meta.annotations
        source = annotations.get("hb_echo_from")
        key = self._key_of.get(source)
        if key is None:
            return
        self.echoes_received.add()
        outstanding = self._outstanding.get(key)
        if outstanding is None:
            return  # stale echo (engine already declared failed, or reset)
        seq, sent_ps = outstanding
        if annotations.get("hb_seq") != seq:
            return
        self.rtt.observe(sent_ps, self.now)
        del self._outstanding[key]

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, float]:
        return {
            "heartbeats_sent": self.heartbeats_sent.value,
            "echoes_received": self.echoes_received.value,
            "watchdog_fires": self.watchdog_fires.value,
            "failures_detected": self.failures_detected.value,
        }


def attach_health_monitor(
    nic,
    engines: Optional[Iterable[str]] = None,
    period_ps: int = 2 * US,
    timeout_ps: int = 4 * US,
) -> HealthMonitor:
    """Bind a :class:`HealthMonitor` to a free mesh tile of ``nic``.

    Sets ``nic.monitor`` (so fault counters appear in ``nic.stats()``)
    and returns the monitor; call :meth:`HealthMonitor.start` to begin
    probing and :meth:`HealthMonitor.stop` before draining the sim.
    """
    free = nic.mesh.unbound_tiles()
    if not free:
        raise RuntimeError(
            f"{nic.name}: no free mesh tile for the health monitor; "
            "use a larger mesh"
        )
    monitor = HealthMonitor(
        nic, engines=engines, period_ps=period_ps, timeout_ps=timeout_ps
    )
    x, y = free[-1]
    port = nic.mesh.bind(monitor, x, y)
    monitor.bind_port(port)
    nic.monitor = monitor
    return monitor
