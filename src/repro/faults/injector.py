"""Arms a :class:`~repro.faults.plan.FaultPlan` against a running NIC.

The injector translates plan events into concrete mutations of the
simulation -- engine ``fail()``/``recover()`` calls, channel one-shot
corruption/drop arming, PIFO rank scrambles -- scheduled at their exact
timestamps.  Every stochastic choice (which bit flips, which rank a
corrupted entry gets) comes from a per-event fork of the plan's seeded
RNG, so the same plan replays identically.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.engines.base import FAULT_CRASH, FAULT_STALL
from repro.faults.plan import (
    CRASH,
    FaultEvent,
    FaultPlan,
    LINK_CORRUPT,
    LINK_DROP,
    NIC_DOWN,
    NIC_KINDS,
    NIC_UP,
    PIFO_CORRUPT,
    RECOVER,
    SLOW,
    STALL,
    WIRE_KINDS,
)
from repro.sim.rng import SeededRng
from repro.sim.stats import Counter

#: Kinds whose target is an engine key resolved through ``nic.offload``.
_ENGINE_KINDS = (CRASH, STALL, SLOW, RECOVER, PIFO_CORRUPT)
#: Kinds whose target is a NoC channel resolved through ``nic.mesh``.
_CHANNEL_KINDS = (LINK_CORRUPT, LINK_DROP)


class FaultInjector:
    """Schedules a plan's events into a NIC's simulator.

    Parameters
    ----------
    nic:
        The :class:`~repro.core.panic.PanicNic` under test.
    plan:
        The fault schedule.  Engine targets are resolved through
        ``nic.offload``; channel targets through ``nic.mesh.channel`` --
        both are validated when :meth:`arm` is called, so a typo'd plan
        fails loudly at arm time rather than silently never firing (or
        exploding mid-run at the event's timestamp).
    """

    def __init__(self, nic, plan: FaultPlan):
        self.nic = nic
        self.plan = plan
        self.rng = SeededRng(plan.seed)
        self.injected = Counter("faults.injected")
        #: (time_ps, kind, target) of every applied event, for reports.
        self.applied: List[Tuple[int, str, str]] = []
        self._armed = False

    def validate(self, event: FaultEvent) -> None:
        """Resolve the event's target now; raise if it does not exist.

        Wire kinds are rejected outright: an external cable is not part
        of any single NIC, so those events need the rack-level arming in
        :mod:`repro.faults.rack` (via ``run_monolithic``/``run_sharded``).
        """
        if event.kind in WIRE_KINDS:
            raise ValueError(
                f"{event.kind!r} targets an external wire; arm the plan "
                f"through repro.faults.rack (run_monolithic/run_sharded "
                f"fault_plan=...), not a single-NIC FaultInjector"
            )
        if event.kind in NIC_KINDS:
            if event.target != "self":
                raise ValueError(
                    f"{event.kind!r} in a single-NIC plan targets the "
                    f"literal 'self' (rack plans use the bare NIC name, "
                    f"armed through repro.faults.rack), got "
                    f"{event.target!r}"
                )
        elif event.kind in _ENGINE_KINDS:
            self.nic.offload(event.target)
        elif event.kind in _CHANNEL_KINDS:
            self.nic.mesh.channel(event.target)

    def schedule_event(self, event: FaultEvent, rng: SeededRng) -> None:
        """Validate and schedule one event with an explicit RNG fork.

        The rack armer calls this directly so that fork salts stay keyed
        by the *plan-global* event index whatever subset of events lands
        on this NIC's shard.
        """
        self.validate(event)
        self.nic.sim.schedule_at(event.at_ps, self._apply, event, rng)

    def arm(self) -> None:
        """Schedule every plan event.  Call once, before running."""
        if self._armed:
            raise RuntimeError("fault plan already armed")
        self._armed = True
        for index, event in enumerate(self.plan.events()):
            self.schedule_event(event, self.rng.fork(f"fault{index}"))

    # ------------------------------------------------------------------

    def _apply(self, event: FaultEvent, rng: SeededRng) -> None:
        kind = event.kind
        if kind == CRASH:
            self.nic.offload(event.target).fail(FAULT_CRASH)
        elif kind == STALL:
            self.nic.offload(event.target).fail(FAULT_STALL)
        elif kind == SLOW:
            self.nic.offload(event.target).slowdown = event.params["factor"]
        elif kind == RECOVER:
            self.nic.offload(event.target).recover()
            if self.nic.monitor is not None:
                self.nic.monitor.clear(event.target)
        elif kind == LINK_CORRUPT:
            self.nic.mesh.channel(event.target).inject_corruption(
                rng, bits=event.params["bits"], offset=event.params["offset"]
            )
        elif kind == LINK_DROP:
            self.nic.mesh.channel(event.target).inject_drop(
                leak_credit=event.params["leak_credit"]
            )
        elif kind == PIFO_CORRUPT:
            self.nic.offload(event.target).queue.corrupt_ranks(rng)
        elif kind == NIC_DOWN:
            self.nic.set_power(False)
        elif kind == NIC_UP:
            self.nic.set_power(True)
        else:  # pragma: no cover - FaultEvent validates kinds
            raise ValueError(f"unknown fault kind {kind!r}")
        self.injected.add()
        self.applied.append((self.nic.sim.now, kind, event.target))
