"""Rack-scoped fault arming: one plan, armed identically in both
execution modes.

A rack fault plan extends the single-NIC vocabulary with two target
forms:

* ``"<nic>:<target>"`` -- an engine/channel fault scoped to one NIC of
  the topology (``"nic0:ipsec"``, ``"nic2:panic.mesh.inj_0_0"``);
* ``"wire_<i>_<j>"`` -- an external cable between NICs ``i`` and ``j``
  (indices in topology declaration order), the target of the
  ``WIRE_DOWN``/``WIRE_UP``/``WIRE_LOSS`` kinds;
* ``"<nic>"`` (bare) -- a whole NIC, the target of the
  ``NIC_DOWN``/``NIC_UP`` kinds (the NIC goes dark at its MACs).

:func:`resolve_rack_plan` validates the plan against a topology without
building anything; :func:`arm_rack_faults` schedules the events into a
live simulation.  ``run_monolithic`` passes every NIC and both ends of
every :class:`~repro.workloads.wire.Wire`; a shard worker passes only
its local NICs, intra-shard wires, and
:class:`~repro.workloads.wire.ShardBoundary` halves -- each process
arms exactly the subset it hosts, with RNG forks salted by the
*plan-global* event index and the wire direction, so the fault
trajectory is bit-identical at any worker count.
"""

from __future__ import annotations

from typing import Callable, Dict, List, NamedTuple, Optional, Tuple

from repro.core.topology import LinkSpec, RackTopology
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    FaultEvent,
    FaultPlan,
    NIC_KINDS,
    WIRE_DOWN,
    WIRE_KINDS,
    WIRE_LINKLAYER,
    WIRE_LOSS,
    WIRE_UP,
)
from repro.sim.rng import SeededRng


class RackTargetError(ValueError):
    """A rack plan names a NIC or wire the topology does not have."""


def wire_target(a: int, b: int) -> str:
    """The canonical fault target for the cable between rack NICs ``a``
    and ``b`` (declaration-order indices): ``wire_<min>_<max>``."""
    if a == b:
        raise RackTargetError(f"a wire needs two distinct NICs, got {a}")
    return f"wire_{min(a, b)}_{max(a, b)}"


def wire_direction_label(index: int, link: LinkSpec, end: str) -> str:
    """Mode-independent name for one transmit direction of link
    ``index``: the monolithic and sharded runs both account (and emit
    telemetry) under this label."""
    if end == "a":
        return f"wire{index}.{link.nic_a}->{link.nic_b}"
    return f"wire{index}.{link.nic_b}->{link.nic_a}"


def resolve_wire_target(target: str, topology: RackTopology) -> int:
    """``"wire_<i>_<j>"`` -> the index of the matching topology link."""
    parts = target.split("_")
    if len(parts) != 3 or parts[0] != "wire":
        raise RackTargetError(
            f"wire target must look like 'wire_<i>_<j>', got {target!r}"
        )
    try:
        a, b = int(parts[1]), int(parts[2])
    except ValueError:
        raise RackTargetError(
            f"wire target indices must be integers, got {target!r}"
        ) from None
    count = len(topology.nics)
    if not (0 <= a < count and 0 <= b < count):
        raise RackTargetError(
            f"{target!r} references NIC indices outside 0..{count - 1}"
        )
    names = {topology.nics[a].name, topology.nics[b].name}
    for index, link in enumerate(topology.links):
        if {link.nic_a, link.nic_b} == names:
            return index
    raise RackTargetError(
        f"{target!r}: no cable between {sorted(names)} in the topology"
    )


def split_nic_target(target: str) -> Tuple[str, str]:
    """``"nic0:ipsec"`` -> ``("nic0", "ipsec")``."""
    nic, sep, local = target.partition(":")
    if not sep or not nic or not local:
        raise RackTargetError(
            f"rack fault targets are '<nic>:<target>', got {target!r}"
        )
    return nic, local


#: One resolved plan entry: the plan-global event index, the event, and
#: either ("wire", link_index) or ("nic", nic_name, local_event).
ResolvedEvent = Tuple[int, FaultEvent, tuple]


def resolve_rack_plan(
    plan: FaultPlan, topology: RackTopology
) -> List[ResolvedEvent]:
    """Validate every event's target against the topology.

    Raises :class:`RackTargetError` for unknown NICs/wires or malformed
    targets.  Engine and channel existence inside a NIC is checked at
    arm time by :meth:`FaultInjector.validate` (the engines only exist
    once the NIC is built).
    """
    known = {spec.name for spec in topology.nics}
    resolved: List[ResolvedEvent] = []
    for index, event in enumerate(plan.events()):
        if event.kind in WIRE_KINDS:
            link_index = resolve_wire_target(event.target, topology)
            resolved.append((index, event, ("wire", link_index)))
        elif event.kind in NIC_KINDS:
            # Whole-NIC faults name the NIC bare; the local event
            # targets the injector's own NIC ("self").
            if event.target not in known:
                raise RackTargetError(
                    f"{event.target!r}: no NIC named {event.target!r} in "
                    f"the topology (have {sorted(known)})"
                )
            local_event = FaultEvent(event.at_ps, event.kind, "self",
                                     event.params)
            resolved.append((index, event, ("nic", event.target,
                                            local_event)))
        else:
            nic, local = split_nic_target(event.target)
            if nic not in known:
                raise RackTargetError(
                    f"{event.target!r}: no NIC named {nic!r} in the "
                    f"topology (have {sorted(known)})"
                )
            local_event = FaultEvent(event.at_ps, event.kind, local,
                                     event.params)
            resolved.append((index, event, ("nic", nic, local_event)))
    return resolved


class WireEnd(NamedTuple):
    """Arming adapter for one transmit direction of one cable: a
    monolithic :class:`Wire` contributes both ends, a shard worker's
    :class:`ShardBoundary` exactly one."""

    set_loss: Callable[[float, float, SeededRng], None]
    set_down: Callable[[bool], None]
    set_linklayer: Callable[[dict], None]


def wire_ends(wire, index: int) -> Dict[Tuple[int, str], WireEnd]:
    """Both directions of a monolithic (or intra-shard) ``Wire``."""
    return {
        (index, "a"): WireEnd(
            lambda d, c, r: wire.set_loss("a", d, c, r), wire.set_down,
            lambda params: wire.set_linklayer("a", params)),
        (index, "b"): WireEnd(
            lambda d, c, r: wire.set_loss("b", d, c, r), wire.set_down,
            lambda params: wire.set_linklayer("b", params)),
    }


def boundary_end(boundary, index: int, end: str) -> Dict[Tuple[int, str], WireEnd]:
    """The locally-transmitting direction of a cross-shard boundary."""
    return {(index, end): WireEnd(boundary.set_loss, boundary.set_down,
                                  boundary.set_linklayer)}


class RackFaultSession:
    """Everything armed by :func:`arm_rack_faults` in one process:
    per-NIC injectors (fault counters + applied logs) and the wire
    events this process scheduled."""

    def __init__(self) -> None:
        self.injectors: Dict[str, FaultInjector] = {}
        #: (at_ps, kind, target) of every wire event armed locally.
        self.wire_events: List[Tuple[int, str, str]] = []


def arm_rack_faults(
    plan: Optional[FaultPlan],
    topology: RackTopology,
    sim,
    nics: Dict[str, object],
    ends: Dict[Tuple[int, str], WireEnd],
) -> RackFaultSession:
    """Arm the subset of ``plan`` hosted by this process.

    ``nics`` maps local NIC names to built NICs; ``ends`` maps
    ``(link_index, end)`` to arming adapters for locally-transmitting
    wire directions.  Events for NICs/directions not present here are
    skipped -- the process hosting them arms them instead.  Every RNG
    fork is salted with the plan-global event index (and, for wires,
    the direction), so the union over processes reproduces the
    monolithic trajectory exactly.
    """
    session = RackFaultSession()
    if plan is None or not len(plan):
        return session
    base = SeededRng(plan.seed)
    for gidx, event, resolution in resolve_rack_plan(plan, topology):
        if resolution[0] == "wire":
            link_index = resolution[1]
            for (idx, end), adapter in sorted(ends.items()):
                if idx != link_index:
                    continue
                session.wire_events.append(
                    (event.at_ps, event.kind, event.target))
                if event.kind == WIRE_DOWN:
                    sim.schedule_at(event.at_ps, adapter.set_down, True)
                elif event.kind == WIRE_UP:
                    sim.schedule_at(event.at_ps, adapter.set_down, False)
                elif event.kind == WIRE_LOSS:
                    rng = base.fork(f"wire{link_index}.{end}.ev{gidx}")
                    sim.schedule_at(
                        event.at_ps, adapter.set_loss,
                        event.params["drop_p"], event.params["corrupt_p"],
                        rng,
                    )
                elif event.kind == WIRE_LINKLAYER:
                    sim.schedule_at(
                        event.at_ps, adapter.set_linklayer,
                        dict(event.params),
                    )
        else:
            _, nic_name, local_event = resolution
            nic = nics.get(nic_name)
            if nic is None:
                continue  # lives on another shard
            injector = session.injectors.get(nic_name)
            if injector is None:
                injector = FaultInjector(nic, plan)
                session.injectors[nic_name] = injector
            injector.schedule_event(local_event, base.fork(f"fault{gidx}"))
    return session
