"""Per-packet span recording.

A :class:`PacketTracer` follows sampled packets through one NIC and
records :class:`Span` entries: engine occupancy (enqueue through service
end, with the PIFO rank and queue depth observed at enqueue), per-channel
NoC hops, and point events (ingress, egress, host delivery, drops,
refusals).  The trace context rides on
``packet.meta.annotations["__trace__"]`` -- :class:`~repro.noc.message.
NocMessage` is a slots dataclass and cannot carry extra state, and the
annotations dict already travels with the packet through every engine.

Determinism contract
--------------------

* Tracing must be **invisible**: a traced run produces bit-identical
  ``PanicNic.stats()`` and delivery timestamps to an untraced one.  The
  tracer therefore never schedules events, never touches the NIC's
  primary RNG (sampling draws from a forked stream), and only *observes*
  state the simulation already computes.
* Span identity must be **mode-independent**: ``trace_id`` is the
  per-NIC sampled-packet ordinal (injection arrival order is identical
  between monolithic and sharded execution) and ``seq`` is the per-trace
  emission ordinal (the per-packet causal order, identical between the
  slow path and cut-through express flights, which synthesize hop spans
  in route order -- exactly the slow path's completion order).  Global
  counters (packet ids, kernel sequence numbers) never appear in spans:
  they differ across execution modes.
* The canonical report form is a **sorted list of plain tuples**
  (:meth:`PacketTracer.report`), so two runs whose emission *order*
  differed mid-flight (express retro-accounting) still compare equal.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, NamedTuple, Optional, Tuple

from repro.telemetry.config import TelemetryConfig

#: Annotation key carrying the live TraceCtx on a packet.
TRACE_KEY = "__trace__"


class Span(NamedTuple):
    """One recorded interval (or instant, when ``start_ps == end_ps``)."""

    trace_id: int       # per-NIC ordinal of the sampled packet
    seq: int            # per-trace emission ordinal (causal order)
    kind: str           # "engine" | "hop" | "ingress" | "egress" | ...
    component: str      # engine / channel / host name
    start_ps: int
    end_ps: int
    args: Tuple         # ((key, value), ...) span-kind specific detail


class TraceCtx:
    """Mutable per-packet trace state (one per sampled packet)."""

    __slots__ = ("trace_id", "seq", "hop", "open_component", "open_start",
                 "open_args", "service_start")

    def __init__(self, trace_id: int):
        self.trace_id = trace_id
        self.seq = 0
        #: Chain hop ordinal: incremented per engine the packet enters.
        self.hop = 0
        # Currently open engine span (at most one: a packet sits in one
        # scheduling queue / service lane at a time).
        self.open_component: Optional[str] = None
        self.open_start = 0
        self.open_args: Tuple = ()
        self.service_start = -1


class PacketTracer:
    """Records spans for sampled packets of one NIC.

    Parameters
    ----------
    config:
        The :class:`~repro.telemetry.config.TelemetryConfig`.
    rng:
        A dedicated :class:`~repro.sim.rng.SeededRng` stream (the NIC
        forks ``"telemetry"``), so sampling consumes no draws from any
        stream the simulation itself uses.
    name:
        The owning NIC's name; used to synthesize port component names
        for ingress instants.
    """

    def __init__(self, config: TelemetryConfig, rng, name: str = "nic"):
        self.config = config
        self.rng = rng
        self.name = name
        self.spans: Deque[Span] = deque(maxlen=config.max_spans)
        self.dropped_spans = 0
        self.seen = 0
        self.sampled = 0
        self._next_trace_id = 0

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    def maybe_trace(self, packet, now: int, port: int = 0) -> Optional[TraceCtx]:
        """Decide (deterministically) whether to trace an injected packet.

        Called from ``PanicNic.inject`` in per-NIC arrival order -- the
        one ordering that is identical between monolithic and sharded
        execution -- so the RNG draw sequence, and therefore the sampled
        capsule set, is the same for every worker count.  The draw
        happens for *every* offered packet (when sampling is on), keeping
        the stream aligned regardless of predicate hits.
        """
        ann = packet.meta.annotations
        existing = ann.get(TRACE_KEY)
        if existing is not None:
            return existing
        self.seen += 1
        config = self.config
        take = (config.sample_every > 0
                and self.rng.randint(1, config.sample_every) == 1)
        if not take and config.flow_predicate is not None:
            take = bool(config.flow_predicate(packet))
        if not take:
            return None
        ctx = TraceCtx(self._next_trace_id)
        self._next_trace_id += 1
        self.sampled += 1
        ann[TRACE_KEY] = ctx
        self.instant(ctx, "ingress", f"{self.name}.eth{port}", now,
                     (("port", port),))
        return ctx

    def flow_ctx(self) -> TraceCtx:
        """Allocate a trace context not tied to any sampled packet.

        Host-side protocol machinery (e.g. the reliable transport) uses
        one to record control events -- retransmits, RTO firings, flow
        aborts -- as instants on the NIC's timeline.  Must be called
        during construction, never mid-run: construction order is
        identical between execution modes, so the allocated ``trace_id``
        stays mode-independent.
        """
        ctx = TraceCtx(self._next_trace_id)
        self._next_trace_id += 1
        return ctx

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------

    def _emit(self, ctx: TraceCtx, kind: str, component: str,
              start_ps: int, end_ps: int, args: Tuple) -> None:
        spans = self.spans
        if len(spans) == spans.maxlen:
            self.dropped_spans += 1
        spans.append(Span(ctx.trace_id, ctx.seq, kind, component,
                          start_ps, end_ps, args))
        ctx.seq += 1

    def instant(self, ctx: TraceCtx, kind: str, component: str,
                now: int, args: Tuple = ()) -> None:
        """A point event (zero-duration span)."""
        self._emit(ctx, kind, component, now, now, args)

    def hop(self, ctx: TraceCtx, channel: str, start_ps: int,
            end_ps: int) -> None:
        """One NoC channel traversal (serialization window)."""
        self._emit(ctx, "hop", channel, start_ps, end_ps, ())

    def begin_engine(self, ctx: TraceCtx, component: str, now: int,
                     queue_depth: int, rank, droppable: bool) -> None:
        """The packet entered an engine's scheduling queue.

        ``queue_depth`` is the PIFO occupancy *before* this push and
        ``rank`` the slack deadline the PIFO orders by.  The span stays
        open until service completes (or the packet is evicted, dropped,
        or blackholed).
        """
        ctx.hop += 1
        ctx.open_component = component
        ctx.open_start = now
        ctx.open_args = (
            ("queue_depth", queue_depth),
            ("rank", rank),
            ("droppable", droppable),
            ("chain_hop", ctx.hop),
        )
        ctx.service_start = -1

    def end_engine(self, ctx: TraceCtx, now: int, status: str = "ok") -> None:
        """Close the open engine span (idempotent when none is open)."""
        component = ctx.open_component
        if component is None:
            return
        ctx.open_component = None
        args = ctx.open_args + (
            ("service_start_ps", ctx.service_start),
            ("status", status),
        )
        self._emit(ctx, "engine", component, ctx.open_start, now, args)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def sorted_spans(self) -> List[Span]:
        """Spans ordered by (trace_id, start, seq) -- timeline order."""
        return sorted(self.spans,
                      key=lambda s: (s.trace_id, s.start_ps, s.seq))

    def report(self) -> List[tuple]:
        """Canonical picklable form: sorted plain tuples.

        Sorted by the unique ``(trace_id, seq)`` prefix, so reports from
        runs with different mid-flight emission order (fast path vs slow
        path, sharded vs monolithic) compare equal exactly when the
        recorded telemetry is equal.
        """
        return sorted(tuple(span) for span in self.spans)

    def summary(self) -> dict:
        return {
            "seen": self.seen,
            "sampled": self.sampled,
            "spans": len(self.spans),
            "dropped_spans": self.dropped_spans,
        }

    def __repr__(self) -> str:
        return (f"PacketTracer({self.name!r}, sampled={self.sampled}/"
                f"{self.seen}, spans={len(self.spans)})")
