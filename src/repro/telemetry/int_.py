"""In-band network telemetry (INT) for the PANIC data plane.

The paper's thesis is that the NIC *is* an RMT switch, and the canonical
observability feature of a programmable RMT switch is INT: the data
plane itself stamps per-hop state into packets instead of an external
observer sampling it.  Every NIC carrying an
:class:`~repro.telemetry.config.IntConfig` becomes an INT node:

* **source / transit** -- each Ethernet frame traversing the NIC
  accumulates one :data:`hop record <RECORD_STRUCT>` --
  ``(nic_id, hop, ingress_ps, egress_ps, pifo_depth, engine_depth)`` --
  finalized when the MAC starts serializing the frame onto the wire.
  ``pifo_depth`` is the RMT scheduling-queue occupancy observed at the
  frame's first RMT enqueue on this NIC; ``engine_depth`` the maximum
  queue depth it saw across every engine on its chain.
* **sink** -- a frame terminating at the host pops its accumulated
  stack, appends the sink hop, and emits a flow *postcard*
  ``(deliver_ps, queue, path, records)`` retained (bounded) on the sink
  NIC's :class:`IntAgent`.

Carriage has two modes (``IntConfig.inband``):

* **side-channel** (default): the stack rides simulator metadata --
  ``packet.meta.annotations["__int__"]`` inside a NIC, the
  ``int_state`` field of a :class:`~repro.workloads.wire.PacketCapsule`
  between NICs.  Frame bytes are untouched; the simulated timeline is
  bit-identical to an INT-free run.
* **in-band**: the stack is *real payload bytes* -- a trailer
  (:func:`encode_stack`) appended after the UDP datagram at MAC egress
  and stripped at the sink host.  Frame growth is felt end to end: wire
  occupancy, serialization time at every subsequent MAC, and NoC
  transfer cost all grow with hop count.  The trailer sits beyond the
  IPv4 total length / UDP length, so existing L3/L4 checksums stay
  valid; the trailer carries its own internet checksum over the record
  bytes instead.

Determinism contract
--------------------

Every value in a record is simulated state (timestamps, queue depths,
static ids), every hook fires at an instant whose per-NIC order is
identical between monolithic and sharded execution, and postcards are
reported as a **sorted list of plain tuples** -- so INT reports are
bit-identical at any worker count, in both conservative and speculative
window protocols, with tracing telemetry on or off.  Frames carrying a
live INT stack refuse batched trains (like traced frames), so the
depth observations and MAC egress instants are always genuine.
"""

from __future__ import annotations

import struct
from typing import Dict, Iterable, List, Optional, Tuple

from repro.sim.clock import US
from repro.sim.stats import TimeSeries
from repro.telemetry.config import IntConfig

#: Annotation key carrying the live per-packet INT state inside a NIC
#: (an :class:`IntState`), or the carried record stack between NICs (a
#: plain tuple, seeded by the wire via ``_refresh_packet``).
INT_KEY = "__int__"

#: One hop record: nic_id(2) hop(2) ingress_ps(8) egress_ps(8)
#: pifo_depth(4, signed; -1 = never hit an RMT queue) engine_depth(4).
RECORD_STRUCT = struct.Struct("<HHqqii")

#: Trailer footer: magic(4) record_count(2) internet_checksum(2).
FOOTER_STRUCT = struct.Struct("<IHH")

#: ``"INT1"`` little-endian.
TRAILER_MAGIC = 0x31544E49


def _internet_checksum(blob: bytes) -> int:
    """RFC 1071 ones'-complement sum over ``blob`` (zero-padded)."""
    if len(blob) & 1:
        blob += b"\x00"
    total = 0
    for (word,) in struct.iter_unpack("!H", blob):
        total += word
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def encode_stack(records: Tuple[tuple, ...]) -> bytes:
    """Serialize a hop-record stack into the in-band trailer bytes."""
    blob = b"".join(RECORD_STRUCT.pack(*record) for record in records)
    checksum = _internet_checksum(blob)
    return blob + FOOTER_STRUCT.pack(TRAILER_MAGIC, len(records), checksum)


def parse_stack(data: bytes) -> Optional[Tuple[Tuple[tuple, ...], int, bool]]:
    """Find and decode an in-band trailer at the end of ``data``.

    Returns ``(records, trailer_len, valid)``; ``None`` when no
    plausible trailer is present (wrong magic, or the declared record
    count does not fit the frame).  ``valid=False`` flags a trailer
    whose internet checksum fails -- e.g. a fault flipped a bit in the
    record region -- in which case ``records`` is empty but
    ``trailer_len`` still covers the damaged region so the sink can
    strip it deterministically.
    """
    if len(data) < FOOTER_STRUCT.size:
        return None
    magic, count, checksum = FOOTER_STRUCT.unpack(
        data[-FOOTER_STRUCT.size:])
    if magic != TRAILER_MAGIC:
        return None
    trailer_len = FOOTER_STRUCT.size + count * RECORD_STRUCT.size
    if trailer_len > len(data):
        return None
    blob = data[-trailer_len:-FOOTER_STRUCT.size]
    if _internet_checksum(blob) != checksum:
        return (), trailer_len, False
    records = tuple(RECORD_STRUCT.iter_unpack(blob))
    return records, trailer_len, True


class IntState:
    """Mutable per-packet INT state while the packet is inside one NIC."""

    __slots__ = ("records", "inband", "inband_len", "pifo_depth",
                 "engine_depth")

    def __init__(self, records: Tuple[tuple, ...] = (),
                 inband: bool = False, inband_len: int = 0):
        #: Finalized records from prior hops (immutable tuple-of-tuples).
        self.records = records
        self.inband = inband
        #: Bytes of trailer currently appended to ``packet.data``.
        self.inband_len = inband_len
        #: RMT scheduling-queue depth at this hop's first RMT enqueue.
        self.pifo_depth = -1
        #: Max engine queue depth observed on this hop's chain.
        self.engine_depth = 0

    @property
    def carry(self) -> Optional[Tuple[tuple, ...]]:
        """What an external wire must ship in its metadata side-channel.

        In-band stacks travel as frame bytes, so the wire carries
        nothing; side-channel stacks ship the record tuple (picklable,
        so :class:`~repro.workloads.wire.PacketCapsule` can cross shard
        boundaries with it).
        """
        return None if self.inband else self.records


class IntAgent:
    """The INT source/transit/sink role of one NIC.

    Installed by :class:`~repro.core.panic.PanicNic` when its config
    carries an enabled :class:`~repro.telemetry.config.IntConfig`:
    every engine's ``_int_tap``, every Ethernet port's ``_int_agent``,
    and the host's ``_int_sink`` point here.  All hooks only *observe*
    simulated state (plus, in-band, grow/strip the frame bytes the
    simulation is already carrying); the agent never schedules events
    and never draws from any RNG.
    """

    def __init__(self, nic, config: IntConfig, node_id: int,
                 rmt_names: Iterable[str] = ()):
        self.nic = nic
        self.config = config
        self.node_id = node_id
        self.inband = config.inband
        self.max_hops = config.max_hops
        #: Engine names whose scheduling queue is "the PIFO" for
        #: ``pifo_depth`` (the NIC's RMT tiles).
        self.rmt_names = frozenset(rmt_names)
        self._postcards: List[tuple] = []
        self.dropped_postcards = 0
        self.frames_seen = 0
        self.hops_recorded = 0
        self.hops_suppressed = 0
        self.parse_errors = 0

    # ------------------------------------------------------------------
    # Hop lifecycle
    # ------------------------------------------------------------------

    def on_inject(self, packet) -> None:
        """A frame arrived from an external wire (``PanicNic.inject``).

        Normalizes whatever carriage delivered the prior-hop stack --
        a side-channel tuple seeded by the wire, or an in-band trailer
        in the frame bytes -- into a live :class:`IntState`.
        """
        from repro.packet.packet import MessageKind

        if packet.kind is not MessageKind.ETHERNET:
            return
        ann = packet.meta.annotations
        carried = ann.get(INT_KEY)
        if isinstance(carried, IntState):
            return
        self.frames_seen += 1
        records: Tuple[tuple, ...] = ()
        inband_len = 0
        if isinstance(carried, tuple):
            records = carried
        if self.inband:
            parsed = parse_stack(packet.data)
            if parsed is not None:
                records, inband_len, valid = parsed
                if not valid:
                    self.parse_errors += 1
        ann[INT_KEY] = IntState(records, self.inband, inband_len)

    def on_enqueue(self, engine, packet, depth: int) -> None:
        """A frame entered an engine's scheduling queue (``_int_tap``).

        ``depth`` is the queue occupancy *before* this push.  The first
        RMT enqueue fixes the hop's ``pifo_depth``; every enqueue feeds
        the ``engine_depth`` high-water mark.  A TX frame born on this
        NIC (host doorbell) gets its state lazily here.
        """
        from repro.packet.packet import MessageKind

        if packet.kind is not MessageKind.ETHERNET:
            return
        ann = packet.meta.annotations
        state = ann.get(INT_KEY)
        if not isinstance(state, IntState):
            state = IntState((), self.inband, 0)
            ann[INT_KEY] = state
            self.frames_seen += 1
        if depth > state.engine_depth:
            state.engine_depth = depth
        if state.pifo_depth < 0 and engine.name in self.rmt_names:
            state.pifo_depth = depth

    def _hop_record(self, packet, state: IntState, egress_ps: int) -> tuple:
        meta = packet.meta
        ingress = meta.nic_arrival_ps
        if ingress is None:
            ingress = meta.created_ps
        return (self.node_id, len(state.records), ingress, egress_ps,
                state.pifo_depth, state.engine_depth)

    def on_transmit(self, packet, now: int) -> None:
        """The MAC is about to serialize the frame onto the wire.

        Finalizes this hop's record and pushes it onto the stack;
        in-band mode re-encodes the trailer *before* the MAC computes
        the serialization window, so the grown frame pays its own wire
        time.
        """
        from repro.packet.packet import MessageKind

        if packet.kind is not MessageKind.ETHERNET:
            return
        ann = packet.meta.annotations
        state = ann.get(INT_KEY)
        if not isinstance(state, IntState):
            state = IntState((), self.inband, 0)
            ann[INT_KEY] = state
            self.frames_seen += 1
        if len(state.records) >= self.max_hops:
            self.hops_suppressed += 1
        else:
            state.records = state.records + (
                self._hop_record(packet, state, now),)
            self.hops_recorded += 1
        if self.inband:
            data = packet.data
            if state.inband_len:
                data = data[:-state.inband_len]
            trailer = encode_stack(state.records)
            packet.data = data + trailer
            state.inband_len = len(trailer)

    def on_host_deliver(self, packet, queue: int, now: int) -> None:
        """The frame reached the host RX ring: pop the stack (sink).

        Appends the sink hop, strips the in-band trailer (the host sees
        the original frame bytes), and retains the postcard.
        """
        from repro.packet.packet import MessageKind

        if packet.kind is not MessageKind.ETHERNET:
            return
        ann = packet.meta.annotations
        state = ann.pop(INT_KEY, None)
        if isinstance(state, tuple):
            carried = IntState(state, self.inband, 0)
            state = carried
        if not isinstance(state, IntState):
            return
        records = state.records
        if len(records) >= self.max_hops:
            self.hops_suppressed += 1
        else:
            records = records + (self._hop_record(packet, state, now),)
            self.hops_recorded += 1
        if state.inband_len:
            packet.data = packet.data[:-state.inband_len]
            state.inband_len = 0
        path = tuple(record[0] for record in records)
        if len(self._postcards) >= self.config.max_postcards:
            self.dropped_postcards += 1
            return
        self._postcards.append((now, queue, path, records))

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def postcards(self) -> List[tuple]:
        """Canonical picklable form: sorted plain tuples.

        Sorted on ``(deliver_ps, queue, path, records)`` so reports from
        monolithic and sharded runs compare equal exactly when the
        recorded telemetry is equal.
        """
        return sorted(self._postcards)

    def summary(self) -> dict:
        return {
            "node_id": self.node_id,
            "inband": self.inband,
            "frames_seen": self.frames_seen,
            "hops_recorded": self.hops_recorded,
            "hops_suppressed": self.hops_suppressed,
            "postcards": len(self._postcards),
            "dropped_postcards": self.dropped_postcards,
            "parse_errors": self.parse_errors,
        }

    def __repr__(self) -> str:
        return (f"IntAgent(node={self.node_id}, "
                f"{'inband' if self.inband else 'side-channel'}, "
                f"postcards={len(self._postcards)})")


def node_name(node_id: int) -> str:
    return f"nic{node_id}"


def flow_name(flow: Tuple[int, int]) -> str:
    return f"{node_name(flow[0])}->{node_name(flow[1])}"


class IntCollector:
    """Rack-level aggregation of sink postcards.

    Feed it every sink NIC's sorted postcard list (:meth:`ingest`) and
    it computes the rack's flight record: per-flow path traces and
    path-change events, per-hop latency breakdowns, queue-depth
    watermarks as bounded :class:`~repro.sim.stats.TimeSeries`, and
    threshold-crossing microburst detections that name the responsible
    flows.  Everything is derived from the (deterministic, sorted)
    postcard stream, so two collectors fed equal postcards report
    equal.
    """

    def __init__(self, microburst_depth: int = 8,
                 burst_gap_ps: int = 10 * US,
                 series_cap: int = 4096):
        if microburst_depth <= 0:
            raise ValueError(
                f"microburst_depth must be positive, got {microburst_depth}")
        self.microburst_depth = microburst_depth
        self.burst_gap_ps = burst_gap_ps
        self.series_cap = series_cap
        #: ``(deliver_ps, sink, queue, path, records)`` in ingest order.
        self.postcards: List[tuple] = []
        #: Per-node queue-depth gauge (one point per hop record).
        self.depth_series: Dict[int, TimeSeries] = {}
        #: Per-node hop-latency gauge (one point per hop record).
        self.latency_series: Dict[int, TimeSeries] = {}

    def ingest(self, sink: str, postcards: Iterable[tuple]) -> None:
        for deliver_ps, queue, path, records in postcards:
            self.postcards.append((deliver_ps, sink, queue, path, records))
            for record in records:
                node = record[0]
                depths = self.depth_series.get(node)
                if depths is None:
                    depths = self.depth_series[node] = TimeSeries(
                        f"{node_name(node)}.engine_depth", "frames",
                        self.series_cap)
                    self.latency_series[node] = TimeSeries(
                        f"{node_name(node)}.hop_latency", "ps",
                        self.series_cap)
                depths.record(record[2], record[5])
                self.latency_series[node].record(
                    record[3], record[3] - record[2])

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------

    @staticmethod
    def _flow(path: Tuple[int, ...]) -> Tuple[int, int]:
        return (path[0], path[-1]) if path else (-1, -1)

    def flows(self) -> Dict[Tuple[int, int], dict]:
        """Per-flow summary: postcards, current path, mean/max e2e."""
        out: Dict[Tuple[int, int], dict] = {}
        for deliver_ps, _sink, _queue, path, records in sorted(
                self.postcards):
            flow = self._flow(path)
            row = out.setdefault(flow, {
                "postcards": 0, "path": path, "paths": [],
                "e2e_ps": [],
            })
            row["postcards"] += 1
            row["path"] = path
            if path not in row["paths"]:
                row["paths"].append(path)
            if records:
                row["e2e_ps"].append(deliver_ps - records[0][2])
        for row in out.values():
            lat = row.pop("e2e_ps")
            row["e2e_mean_ps"] = int(sum(lat) / len(lat)) if lat else 0
            row["e2e_max_ps"] = max(lat) if lat else 0
        return out

    def path_changes(self) -> List[dict]:
        """Flows whose hop-by-hop path differed between postcards."""
        current: Dict[Tuple[int, int], Tuple[int, ...]] = {}
        changes: List[dict] = []
        for deliver_ps, _sink, _queue, path, _records in sorted(
                self.postcards):
            flow = self._flow(path)
            previous = current.get(flow)
            if previous is not None and previous != path:
                changes.append({
                    "at_ps": deliver_ps,
                    "flow": flow_name(flow),
                    "old_path": tuple(node_name(n) for n in previous),
                    "new_path": tuple(node_name(n) for n in path),
                })
            current[flow] = path
        return changes

    def hop_stats(self) -> Dict[str, dict]:
        """Per-node latency breakdown and queue-depth watermarks."""
        out: Dict[str, dict] = {}
        for node in sorted(self.depth_series):
            latencies = [v for _t, v in self.latency_series[node].items()]
            depths = [v for _t, v in self.depth_series[node].items()]
            pifo_max = max(
                (record[4] for postcard in self.postcards
                 for record in postcard[4] if record[0] == node),
                default=-1)
            out[node_name(node)] = {
                "hops": len(latencies),
                "latency_mean_ps": (int(sum(latencies) / len(latencies))
                                    if latencies else 0),
                "latency_max_ps": max(latencies) if latencies else 0,
                "engine_depth_watermark": max(depths) if depths else 0,
                "pifo_depth_watermark": pifo_max,
            }
        return out

    def microbursts(self) -> List[dict]:
        """Threshold-crossing bursts, with the responsible flows named.

        A crossing is one hop record whose ``engine_depth`` reached
        ``microburst_depth``; crossings on one node closer together
        than ``burst_gap_ps`` merge into one burst event.
        """
        crossings: Dict[int, List[tuple]] = {}
        for _deliver_ps, _sink, _queue, path, records in self.postcards:
            flow = self._flow(path)
            for record in records:
                if record[5] >= self.microburst_depth:
                    crossings.setdefault(record[0], []).append(
                        (record[2], record[5], flow))
        bursts: List[dict] = []
        for node in sorted(crossings):
            burst = None
            for at_ps, depth, flow in sorted(crossings[node]):
                if (burst is not None
                        and at_ps - burst["end_ps"] <= self.burst_gap_ps):
                    burst["end_ps"] = max(burst["end_ps"], at_ps)
                    burst["peak_depth"] = max(burst["peak_depth"], depth)
                    burst["events"] += 1
                    burst["_flows"].add(flow)
                else:
                    burst = {
                        "node": node_name(node),
                        "start_ps": at_ps, "end_ps": at_ps,
                        "peak_depth": depth, "events": 1,
                        "_flows": {flow},
                    }
                    bursts.append(burst)
        for burst in bursts:
            burst["flows"] = sorted(
                flow_name(flow) for flow in burst.pop("_flows"))
        return sorted(bursts, key=lambda b: (b["start_ps"], b["node"]))

    def report(self) -> dict:
        """One picklable dict with every derived view (the CLI output)."""
        return {
            "postcards": len(self.postcards),
            "flows": {
                flow_name(flow): {
                    **{k: v for k, v in row.items()
                       if k not in ("path", "paths")},
                    "path": tuple(node_name(n) for n in row["path"]),
                    "paths_seen": len(row["paths"]),
                }
                for flow, row in sorted(self.flows().items())
            },
            "hops": self.hop_stats(),
            "path_changes": self.path_changes(),
            "microbursts": self.microbursts(),
            "microburst_depth": self.microburst_depth,
        }


def format_int_report(report: dict) -> str:
    """Human-readable one-screen rendering of a collector report."""
    lines = [f"INT flight record: {report['postcards']} postcards, "
             f"{len(report['flows'])} flows"]
    lines.append("")
    lines.append("  flow            path                 postcards  "
                 "e2e mean/max (us)")
    for name, row in report["flows"].items():
        path = ">".join(row["path"])
        lines.append(
            f"  {name:<15} {path:<20} {row['postcards']:>9}  "
            f"{row['e2e_mean_ps'] / 1e6:.2f}/{row['e2e_max_ps'] / 1e6:.2f}")
    lines.append("")
    lines.append("  node    hops  latency mean/max (us)  "
                 "depth watermark (engine/pifo)")
    for name, row in report["hops"].items():
        lines.append(
            f"  {name:<7} {row['hops']:>4}  "
            f"{row['latency_mean_ps'] / 1e6:>10.2f}/"
            f"{row['latency_max_ps'] / 1e6:.2f}  "
            f"{row['engine_depth_watermark']:>15}/"
            f"{row['pifo_depth_watermark']}")
    lines.append("")
    if report["microbursts"]:
        lines.append(f"  microbursts (engine depth >= "
                     f"{report['microburst_depth']}):")
        for burst in report["microbursts"]:
            window = (burst["end_ps"] - burst["start_ps"]) / 1e6
            lines.append(
                f"    {burst['node']} @ {burst['start_ps'] / 1e6:.2f}us "
                f"({window:.2f}us window, peak depth "
                f"{burst['peak_depth']}, {burst['events']} crossings) "
                f"flows: {', '.join(burst['flows'])}")
    else:
        lines.append(f"  no microbursts (engine depth never reached "
                     f"{report['microburst_depth']})")
    if report["path_changes"]:
        lines.append("  path changes:")
        for change in report["path_changes"]:
            lines.append(
                f"    {change['flow']} @ {change['at_ps'] / 1e6:.2f}us: "
                f"{'>'.join(change['old_path'])} -> "
                f"{'>'.join(change['new_path'])}")
    return "\n".join(lines)
