"""Trace exporters: Chrome trace-event JSON and plain-text timelines.

``write_chrome_trace`` emits the Trace Event Format consumed by Perfetto
(https://ui.perfetto.dev) and chrome://tracing: one *process* per NIC,
one *thread* (track) per component, complete ("X") events for engine and
hop spans, instant ("i") events for point records, and counter ("C")
tracks for probe time-series.  Timestamps are microseconds (floats), so
picosecond sim time keeps sub-ns resolution.

``format_timeline`` renders a human-readable per-packet walk for the
``python -m repro trace`` CLI.  ``merge_trace_reports`` assembles the
coordinator-side merged trace from per-NIC rack reports (sharded or
monolithic -- span ids are mode-independent, so the merge is a plain
collection keyed by NIC name).
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence

#: ps -> Chrome-trace microseconds.
_PS_PER_US = 1e6

#: Span kinds rendered as duration ("X") events even when synthesized
#: spans collapse to zero length; everything else becomes an instant.
_DURATION_KINDS = ("engine", "hop")


def _span_fields(span) -> tuple:
    """Accept Span namedtuples or the plain tuples of a report."""
    trace_id, seq, kind, component, start_ps, end_ps, args = span
    return trace_id, seq, kind, component, start_ps, end_ps, args


def chrome_trace_events(
    spans_by_nic: Dict[str, Sequence],
    series_by_nic: Optional[Dict[str, Dict[str, object]]] = None,
) -> List[dict]:
    """Build the ``traceEvents`` list: one pid per NIC, one tid per
    component, plus counter tracks for any probe series."""
    events: List[dict] = []
    for pid, nic in enumerate(sorted(spans_by_nic)):
        events.append({
            "ph": "M", "pid": pid, "name": "process_name",
            "args": {"name": nic},
        })
        tids: Dict[str, int] = {}
        for span in spans_by_nic[nic]:
            trace_id, seq, kind, component, start_ps, end_ps, args = (
                _span_fields(span))
            tid = tids.get(component)
            if tid is None:
                tid = tids[component] = len(tids)
                events.append({
                    "ph": "M", "pid": pid, "tid": tid,
                    "name": "thread_name", "args": {"name": component},
                })
            span_args = dict(args)
            span_args["trace_id"] = trace_id
            span_args["seq"] = seq
            if kind in _DURATION_KINDS:
                events.append({
                    "ph": "X", "pid": pid, "tid": tid,
                    "name": kind, "cat": kind,
                    "ts": start_ps / _PS_PER_US,
                    "dur": (end_ps - start_ps) / _PS_PER_US,
                    "args": span_args,
                })
            else:
                events.append({
                    "ph": "i", "pid": pid, "tid": tid,
                    "name": kind, "cat": "instant", "s": "t",
                    "ts": start_ps / _PS_PER_US,
                    "args": span_args,
                })
        if series_by_nic:
            for name, series in sorted(
                    (series_by_nic.get(nic) or {}).items()):
                points = series.items()
                if not any(value for _t, value in points):
                    continue  # all-zero gauges only clutter the UI
                for t_ps, value in points:
                    events.append({
                        "ph": "C", "pid": pid, "name": name,
                        "ts": t_ps / _PS_PER_US,
                        "args": {"value": value},
                    })
    return events


#: Synthetic Chrome-trace pid for the shard coordinator's counter
#: tracks -- far above any per-NIC pid chrome_trace_events assigns.
_COORDINATOR_PID = 10_000


def shard_window_counters(result, pid: int = _COORDINATOR_PID) -> List[dict]:
    """Chrome trace events for a sharded run's window churn.

    One synthetic ``shard-coordinator`` process with counter ("C") tracks
    sampled at every commit point: ``sync_rounds`` (monotone round
    count), ``rollbacks`` and ``replayed_events`` (cumulative speculation
    counters), and ``dirty_shards`` (that round's mispredicted shards) --
    plus an instant per round carrying the raw tuple, so Perfetto shows
    exactly where speculation paid off and where it churned.  Empty for
    monolithic results (no ``window_log``).
    """
    window_log = getattr(result, "window_log", None) or []
    if not window_log:
        return []
    events: List[dict] = [{
        "ph": "M", "pid": pid, "name": "process_name",
        "args": {"name": "shard-coordinator"},
    }]
    for round_no, (commit_ps, dirty, rollbacks, replayed) in enumerate(
            window_log, start=1):
        ts = commit_ps / _PS_PER_US
        for name, value in (
            ("sync_rounds", round_no),
            ("dirty_shards", dirty),
            ("rollbacks", rollbacks),
            ("replayed_events", replayed),
        ):
            events.append({
                "ph": "C", "pid": pid, "name": name, "ts": ts,
                "args": {"value": value},
            })
        events.append({
            "ph": "i", "pid": pid, "tid": 0, "name": "window_commit",
            "cat": "instant", "s": "p", "ts": ts,
            "args": {"commit_ps": commit_ps, "dirty_shards": dirty,
                     "rollbacks": rollbacks, "replayed_events": replayed},
        })
    return events


#: Synthetic Chrome-trace pid for the rack-level INT collector tracks.
_INT_COLLECTOR_PID = 20_000


def int_chrome_events(collector, pid: int = _INT_COLLECTOR_PID) -> List[dict]:
    """Chrome trace events for a rack's INT flight record.

    One synthetic ``int-collector`` process: per-node counter ("C")
    tracks for engine queue depth and hop latency (one point per hop
    record, stamped at the hop's ingress/egress), plus an instant per
    detected microburst naming the responsible flows.  Feed the result
    to :func:`write_chrome_trace` via ``extra_events``.
    """
    if not collector.postcards:
        return []
    events: List[dict] = [{
        "ph": "M", "pid": pid, "name": "process_name",
        "args": {"name": "int-collector"},
    }]
    for node in sorted(collector.depth_series):
        depth = collector.depth_series[node]
        latency = collector.latency_series[node]
        for t_ps, value in depth.items():
            events.append({
                "ph": "C", "pid": pid, "name": depth.name,
                "ts": t_ps / _PS_PER_US, "args": {"value": value},
            })
        for t_ps, value in latency.items():
            events.append({
                "ph": "C", "pid": pid, "name": latency.name,
                "ts": t_ps / _PS_PER_US,
                "args": {"value": value / 1000},  # ps -> ns
            })
    for burst in collector.microbursts():
        events.append({
            "ph": "i", "pid": pid, "tid": 0, "name": "microburst",
            "cat": "instant", "s": "p",
            "ts": burst["start_ps"] / _PS_PER_US,
            "args": {"node": burst["node"],
                     "peak_depth": burst["peak_depth"],
                     "events": burst["events"],
                     "window_us": ((burst["end_ps"] - burst["start_ps"])
                                   / _PS_PER_US),
                     "flows": burst["flows"]},
        })
    return events


def merge_int_reports(reports: Dict[str, dict]):
    """Build an :class:`~repro.telemetry.int_.IntCollector`-ready
    mapping ``{sink_nic: postcards}`` out of rack ``report()`` dicts;
    ``None`` when no NIC ran INT.  Postcards are sink-local and sorted,
    so the sharded merge is the same keyed collection as the monolithic
    one (the mono==sharded INT contract rides on this)."""
    merged = {
        name: list(report["int"])
        for name, report in reports.items()
        if isinstance(report, dict) and "int" in report
    }
    return merged or None


def write_chrome_trace(
    path: str,
    spans_by_nic: Dict[str, Sequence],
    series_by_nic: Optional[Dict[str, Dict[str, object]]] = None,
    extra_events: Optional[List[dict]] = None,
) -> int:
    """Write a Perfetto-loadable ``trace.json``; returns the event count.

    ``extra_events`` are appended verbatim after the per-NIC events --
    e.g. :func:`shard_window_counters` for a sharded run's commit track.
    """
    events = chrome_trace_events(spans_by_nic, series_by_nic)
    if extra_events:
        events.extend(extra_events)
    with open(path, "w") as fh:
        json.dump({"traceEvents": events, "displayTimeUnit": "ns"}, fh)
    return len(events)


def _fmt_ns(ps: int) -> str:
    return f"{ps / 1000:.1f}ns"


def format_timeline(spans: Iterable, limit: Optional[int] = None) -> str:
    """Human-readable per-packet walk of ``spans`` (any NIC's report or
    ``sorted_spans()``), at most ``limit`` traces."""
    by_trace: Dict[int, List[tuple]] = {}
    for span in spans:
        fields = _span_fields(span)
        by_trace.setdefault(fields[0], []).append(fields)
    lines: List[str] = []
    for count, trace_id in enumerate(sorted(by_trace)):
        if limit is not None and count >= limit:
            lines.append(
                f"... and {len(by_trace) - limit} more traced packets")
            break
        lines.append(f"packet trace {trace_id}:")
        rows = sorted(by_trace[trace_id], key=lambda f: (f[4], f[1]))
        for _tid, _seq, kind, component, start_ps, end_ps, args in rows:
            detail = " ".join(f"{k}={v}" for k, v in args)
            if end_ps > start_ps:
                lines.append(
                    f"  @{_fmt_ns(start_ps):>12}  {kind:<8} {component}"
                    f"  +{_fmt_ns(end_ps - start_ps)}"
                    + (f"  [{detail}]" if detail else ""))
            else:
                lines.append(
                    f"  @{_fmt_ns(start_ps):>12}  {kind:<8} {component}"
                    + (f"  [{detail}]" if detail else ""))
    return "\n".join(lines) if lines else "no spans recorded"


def merge_trace_reports(reports: Dict[str, dict]) -> Optional[Dict[str, list]]:
    """Collect per-NIC span lists out of rack ``report()`` dicts.

    Returns ``None`` when no NIC carried telemetry.  Span ids are
    mode-independent (see :mod:`repro.telemetry.tracer`), so merging a
    sharded run's per-worker reports is the same keyed collection as the
    monolithic case -- which is exactly what makes the merged traces
    comparable across execution modes.
    """
    merged = {
        name: list(report["trace"])
        for name, report in reports.items()
        if isinstance(report, dict) and "trace" in report
    }
    return merged or None
