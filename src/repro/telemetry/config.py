"""Configuration for the in-sim telemetry layer.

Kept in a leaf module (no imports from the rest of the library) so
:mod:`repro.core.config` can embed a :class:`TelemetryConfig` without an
import cycle, and so the dataclass stays picklable for sharded rack runs
(:mod:`repro.sim.shard` ships NIC builder params to worker processes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional


@dataclass
class TelemetryConfig:
    """Knobs for per-packet tracing and component probes.

    Attaching a ``TelemetryConfig`` to ``PanicConfig.telemetry`` turns
    telemetry on for that NIC; the default ``PanicConfig`` carries
    ``None`` (fully disabled, near-zero overhead -- see DESIGN.md
    section 11 and the ``telemetry_idle`` gate in ``BENCH_kernel``).
    """

    #: Master switch; ``enabled=False`` behaves exactly like carrying no
    #: TelemetryConfig at all (nothing is wired).
    enabled: bool = True

    #: Deterministic 1-in-N packet sampling at ``PanicNic.inject``,
    #: drawn from the NIC's seeded RNG (fork ``"telemetry"``), so the
    #: sampled capsule set is identical across runs *and* across shard
    #: worker counts.  ``0`` disables random sampling (predicate only).
    sample_every: int = 1

    #: Optional flow trigger: ``predicate(packet) -> bool`` traces every
    #: matching packet regardless of sampling.  Must be a module-level
    #: (picklable) function when the config travels to shard workers.
    flow_predicate: Optional[Callable] = None

    #: Ring-buffer bound on retained spans per NIC; the oldest spans are
    #: evicted beyond this (counted in ``PacketTracer.dropped_spans``).
    max_spans: int = 65536

    #: Simulated-time cadence for component probes (gauges), in ps.
    #: ``0`` disables probes entirely -- no kernel hook is installed, so
    #: the event loop keeps its fully inlined drain path.
    probe_period_ps: int = 0

    #: Bound on retained samples per probe time-series.
    probe_max_samples: int = 4096

    def __post_init__(self) -> None:
        if self.sample_every < 0:
            raise ValueError(
                f"sample_every must be >= 0, got {self.sample_every}"
            )
        if self.max_spans <= 0:
            raise ValueError(f"max_spans must be positive, got {self.max_spans}")
        if self.probe_period_ps < 0:
            raise ValueError(
                f"probe_period_ps must be >= 0, got {self.probe_period_ps}"
            )
        if self.probe_max_samples <= 0:
            raise ValueError(
                f"probe_max_samples must be positive, got {self.probe_max_samples}"
            )


@dataclass
class IntConfig:
    """Knobs for in-band network telemetry (``repro.telemetry.int_``).

    Attaching an ``IntConfig`` to ``PanicConfig.int_`` makes the NIC an
    INT node: every Ethernet frame traversing it accumulates one per-hop
    metadata record (ingress/egress timestamps, PIFO depth at enqueue,
    max engine queue depth, NIC id, chain hop), and frames terminating at
    the host pop the accumulated stack into a flow "postcard".

    ``inband=False`` (the default) carries the stack in a metadata
    side-channel: the frame bytes are untouched and the simulated
    timeline is bit-identical to an INT-free run.  ``inband=True``
    carries the stack as real payload bytes -- a trailer appended after
    the UDP datagram at MAC egress -- so frame growth is *felt*: wire
    occupancy, egress/ingress serialization time, and NoC transfer cost
    all grow with hop count, and the trailer carries its own internet
    checksum.  Either way the postcard stream is bit-identical between
    monolithic and sharded execution at any worker count.
    """

    #: Master switch; ``enabled=False`` behaves exactly like carrying no
    #: IntConfig at all (no agent is built, no hooks installed).
    enabled: bool = True

    #: Carry hop records as real payload bytes (a checksummed trailer
    #: appended at MAC egress, stripped at the sink host) instead of the
    #: zero-cost metadata side-channel.
    inband: bool = False

    #: Bound on the per-packet hop stack.  Hops beyond this stop pushing
    #: records (the sink still counts the overflow), so an in-band frame
    #: can never grow without bound on a forwarding loop.
    max_hops: int = 8

    #: Bound on retained postcards per sink NIC; later deliveries are
    #: counted in ``IntAgent.dropped_postcards`` instead of stored.
    max_postcards: int = 65536

    def __post_init__(self) -> None:
        if self.max_hops <= 0:
            raise ValueError(f"max_hops must be positive, got {self.max_hops}")
        if self.max_postcards <= 0:
            raise ValueError(
                f"max_postcards must be positive, got {self.max_postcards}"
            )
