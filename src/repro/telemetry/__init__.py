"""In-sim telemetry: per-packet spans, component probes, trace export.

Attach a :class:`~repro.telemetry.config.TelemetryConfig` to
``PanicConfig.telemetry`` and the NIC builds a :class:`Telemetry`
instance that

* wires a :class:`~repro.telemetry.tracer.PacketTracer` into every
  engine, NoC channel, router, and the host model (spans for sampled
  packets: queueing + service per engine with PIFO rank and depth,
  per-channel hop windows, ingress/egress/host instants, drop and
  eviction records);
* registers the default component gauges (PIFO depth and busy fraction
  per engine, input-buffer depth per router, credit occupancy per
  channel) with a :class:`~repro.telemetry.probes.ProbeRegistry`
  sampled on a simulated-time cadence via the kernel's passive
  after-event hook.

Everything is observation-only: a telemetry-enabled run is bit-identical
to a disabled one in ``stats()`` and timestamps (enforced by
``tests/test_telemetry.py``), and a NIC without telemetry pays only a
``None`` check on the instrumented paths.
"""

from __future__ import annotations

from repro.telemetry.config import TelemetryConfig
from repro.telemetry.probes import ProbeRegistry
from repro.telemetry.tracer import TRACE_KEY, PacketTracer, Span, TraceCtx

__all__ = [
    "PacketTracer",
    "ProbeRegistry",
    "Span",
    "Telemetry",
    "TelemetryConfig",
    "TraceCtx",
    "TRACE_KEY",
]


class Telemetry:
    """Per-NIC telemetry fabric: one tracer + one probe registry."""

    def __init__(self, nic):
        config = nic.config.telemetry
        if config is None:
            raise ValueError(f"{nic.name}: PanicConfig.telemetry is None")
        self.nic = nic
        self.config = config
        # A forked RNG stream: sampling consumes no draws from anything
        # the simulation itself uses, keeping traced runs bit-identical.
        self.tracer = PacketTracer(config, nic.rng.fork("telemetry"),
                                   name=nic.name)
        self.probes = ProbeRegistry(config.probe_period_ps,
                                    config.probe_max_samples)
        self._wire()

    # ------------------------------------------------------------------

    def _wire(self) -> None:
        nic = self.nic
        tracer = self.tracer
        config = self.config
        # Attach component tracers only when a packet can actually be
        # sampled: with sample_every=0 and no predicate, no trace ctx can
        # ever exist, so the per-event ctx lookups would be pure waste --
        # this keeps the enabled-but-idle configuration (what the perf
        # gate measures) at near-zero overhead.
        if config.sample_every > 0 or config.flow_predicate is not None:
            for engine in nic.engines.values():
                engine._tracer = tracer
                engine.queue.on_evict = self._make_on_evict(engine)
            for router in nic.mesh.routers:
                router._tracer = tracer
            for channel in nic.mesh.channels:
                channel._tracer = tracer
            nic.host._tracer = tracer
            nic.on_transmit(self._on_transmit)
        if config.probe_period_ps > 0:
            self._install_default_gauges()
            nic.sim.add_after_event_hook(self.probes.on_event)

    def _make_on_evict(self, engine):
        tracer = self.tracer

        def on_evict(message, _engine=engine) -> None:
            ctx = message.packet.meta.annotations.get(TRACE_KEY)
            if ctx is not None:
                tracer.end_engine(ctx, _engine.now, status="evicted")

        return on_evict

    def _on_transmit(self, packet) -> None:
        ctx = packet.meta.annotations.get(TRACE_KEY)
        if ctx is None:
            return
        port = packet.meta.egress_port
        self.tracer.instant(
            ctx, "egress", f"{self.nic.name}.eth{port}", self.nic.sim.now,
            (("egress_port", port),))

    def _install_default_gauges(self) -> None:
        probes = self.probes
        for engine in self.nic.engines.values():
            probes.add_gauge(
                f"{engine.name}.pifo_depth",
                lambda _e=engine: len(_e.queue), unit="msgs")
            probes.add_gauge(
                f"{engine.name}.busy_frac",
                lambda _e=engine: _e._busy_lanes / _e.lanes, unit="frac")
        for router in self.nic.mesh.routers:
            probes.add_gauge(
                f"{router.name}.buffered",
                lambda _r=router: _r.buffered_messages, unit="msgs")
        for channel in self.nic.mesh.channels:
            probes.add_gauge(
                f"{channel.name}.credit_used",
                lambda _c=channel: _c.credit_deficit, unit="credits")

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def trace_report(self) -> list:
        """Canonical (sorted plain-tuple) span list for this NIC.

        Probe series are deliberately *not* part of the report: sampling
        instants track per-worker event timing, which legitimately
        differs between execution modes; spans carry the
        mode-independent telemetry.
        """
        return self.tracer.report()

    def summary(self) -> dict:
        return self.tracer.summary()
