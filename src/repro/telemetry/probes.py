"""Component probes: gauges sampled on a simulated-time cadence.

A :class:`ProbeRegistry` holds named gauge functions (PIFO depth, engine
busy fraction, channel credit occupancy, router input-queue depth, ...)
and samples them into :class:`~repro.sim.stats.TimeSeries` whenever the
simulation clock crosses a period boundary.

Sampling is driven *passively* from the kernel's after-event hook (see
``Simulator.add_after_event_hook``): probes never schedule events, so
``events_fired``, timestamps, and every simulation statistic stay
bit-identical to an unprobed run.  The cost is that samples land on the
first event *at or after* each period boundary rather than exactly on
it -- fine for gauges, and the only way to observe a discrete-event
world without perturbing it.

Probe series are intentionally **per-worker state**: event timestamps
(and hence sampling instants) legitimately differ between monolithic and
sharded execution, so probe data is excluded from the shard-merged trace
reports that the equivalence tests compare -- only spans are merged.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.sim.stats import TimeSeries


class ProbeRegistry:
    """Named gauges sampled every ``period_ps`` of simulated time."""

    def __init__(self, period_ps: int, max_samples: int = 4096):
        if period_ps < 0:
            raise ValueError(f"probe period must be >= 0, got {period_ps}")
        self.period_ps = period_ps
        self.max_samples = max_samples
        self._probes: List[Tuple[Callable[[], float], TimeSeries]] = []
        # First event at/after time 0 takes the first sample.
        self._due = 0

    def add_gauge(self, name: str, fn: Callable[[], float],
                  unit: str = "") -> TimeSeries:
        """Register ``fn`` to be sampled each period; returns its series."""
        series = TimeSeries(name, unit=unit, max_samples=self.max_samples)
        self._probes.append((fn, series))
        return series

    def on_event(self, now_ps: int) -> None:
        """Kernel after-event hook: sample once per crossed period."""
        if now_ps < self._due:
            return
        period = self.period_ps
        # Snap the next deadline to the period grid so a burst of events
        # inside one period yields one sample, and quiet stretches skip
        # ahead rather than replaying missed periods.
        self._due = now_ps - now_ps % period + period
        for fn, series in self._probes:
            series.record(now_ps, fn())

    def series(self) -> Dict[str, TimeSeries]:
        """All registered series by name."""
        return {series.name: series for _fn, series in self._probes}

    def __len__(self) -> int:
        return len(self._probes)

    def __repr__(self) -> str:
        return (f"ProbeRegistry(period={self.period_ps}ps, "
                f"gauges={len(self._probes)})")
