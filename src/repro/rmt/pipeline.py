"""The match+action pipeline: stages, programs, and the pure dataplane.

An :class:`RmtProgram` bundles a parse graph, an ordered list of stages
(one table each), an action registry and stateful registers -- the moral
equivalent of a compiled P4 program.  :class:`RmtPipeline` executes it as
a pure function: ``process(packet_bytes, metadata, now_ps) -> Phv``.

Timing (the paper's F*P packets per second, one packet per cycle per
pipeline, section 4.2) is layered on by the engine wrapper
(:mod:`repro.engines.rmt_engine`); keeping the dataplane pure makes it
directly unit-testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.packet.addresses import IPv4Address, MacAddress
from repro.packet.headers import (
    EthernetHeader,
    Ipv4Header,
)
from repro.rmt.action import Action, ActionContext, ActionError, Register, standard_actions
from repro.rmt.parser import ParseGraph, default_parse_graph
from repro.rmt.phv import Phv
from repro.rmt.table import MatchKey, Table


@dataclass
class Stage:
    """One pipeline stage holding a single match+action table.

    Real RMT stages can hold several small tables; modelling one table per
    stage keeps the latency accounting simple (stage count == table count)
    without losing expressiveness -- a program needing two tables in one
    stage just declares two stages.
    """

    table: Table
    #: Optional guard: only run this stage when the PHV field is valid.
    requires: Optional[str] = None

    @property
    def name(self) -> str:
        return self.table.name


class RmtProgram:
    """A complete pipeline program (parser + stages + actions + registers)."""

    def __init__(
        self,
        name: str = "program",
        parse_graph: Optional[ParseGraph] = None,
    ):
        self.name = name
        self.parse_graph = parse_graph if parse_graph is not None else default_parse_graph()
        self.stages: List[Stage] = []
        self.actions: Dict[str, Action] = standard_actions()
        self.registers: Dict[str, Register] = {}

    # -- program construction -------------------------------------------

    def add_stage(self, table: Table, requires: Optional[str] = None) -> Table:
        """Append a stage holding ``table``; returns the table for chaining."""
        self.stages.append(Stage(table, requires))
        return table

    def add_table(
        self,
        name: str,
        keys: Sequence[MatchKey],
        default_action: str = "no_op",
        default_params: Optional[Dict[str, Any]] = None,
        requires: Optional[str] = None,
    ) -> Table:
        """Create a table and append it as a new stage."""
        table = Table(name, keys, default_action, default_params)
        return self.add_stage(table, requires)

    def add_action(self, name: str, fn: Action) -> None:
        if name in self.actions:
            raise ActionError(f"action {name!r} already registered")
        self.actions[name] = fn

    def add_register(self, name: str, size: int, initial: int = 0) -> Register:
        if name in self.registers:
            raise ActionError(f"register {name!r} already declared")
        register = Register(name, size, initial)
        self.registers[name] = register
        return register

    def table(self, name: str) -> Table:
        for stage in self.stages:
            if stage.table.name == name:
                return stage.table
        raise KeyError(f"program {self.name!r} has no table {name!r}")

    @property
    def num_stages(self) -> int:
        return len(self.stages)


class RmtPipeline:
    """Executes an :class:`RmtProgram` over packets (pure, untimed)."""

    def __init__(self, program: RmtProgram):
        self.program = program
        self._ctx = ActionContext(registers=program.registers)
        self.packets_processed = 0

    def process(
        self,
        data: bytes,
        metadata: Optional[Dict[str, Any]] = None,
        now_ps: int = 0,
    ) -> Phv:
        """Parse ``data``, run every stage, return the final PHV.

        ``metadata`` seeds ``meta.*`` fields (ingress port, direction...)
        before parsing, mirroring intrinsic metadata in P4.
        """
        phv = Phv()
        if metadata:
            for key, value in metadata.items():
                phv.set(f"meta.{key}", value)
        self.program.parse_graph.parse(data, phv)
        self._ctx.now_ps = now_ps
        for stage in self.program.stages:
            if stage.requires is not None and not phv.is_valid(stage.requires):
                continue
            action_name, params, _hit = stage.table.lookup(phv)
            action = self.program.actions.get(action_name)
            if action is None:
                raise ActionError(
                    f"table {stage.table.name!r} selected unknown action "
                    f"{action_name!r}"
                )
            action(phv, self._ctx, **params)
            if phv.get_or("meta.drop", 0):
                break
        self.packets_processed += 1
        return phv

    # ------------------------------------------------------------------
    # Deparser
    # ------------------------------------------------------------------

    @staticmethod
    def deparse(phv: Phv, original: bytes) -> bytes:
        """Rebuild the frame bytes after actions modified header fields.

        Only Ethernet and IPv4 fields are rewritable by the reference
        programs (TTL, DSCP, addresses); everything beyond the IPv4 header
        is carried through unchanged.  When no L2/L3 fields are valid, the
        original bytes pass through untouched.
        """
        if not phv.header_valid("eth"):
            return original
        eth = EthernetHeader(
            MacAddress(int(phv.get("eth.dst"))),
            MacAddress(int(phv.get("eth.src"))),
            int(phv.get("eth.type")),
        )
        out = eth.pack()
        rest = original[EthernetHeader.LENGTH :]
        if phv.header_valid("ipv4"):
            ipv4 = Ipv4Header(
                src=IPv4Address(int(phv.get("ipv4.src"))),
                dst=IPv4Address(int(phv.get("ipv4.dst"))),
                protocol=int(phv.get("ipv4.proto")),
                total_length=int(phv.get("ipv4.len")),
                ttl=int(phv.get("ipv4.ttl")),
                dscp=int(phv.get("ipv4.dscp")),
                ecn=int(phv.get_or("ipv4.ecn", 0)),
                identification=int(phv.get("ipv4.id")),
            )
            out += ipv4.pack()
            rest = rest[Ipv4Header.LENGTH :]
        return out + rest
