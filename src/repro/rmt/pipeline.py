"""The match+action pipeline: stages, programs, and the pure dataplane.

An :class:`RmtProgram` bundles a parse graph, an ordered list of stages
(one table each), an action registry and stateful registers -- the moral
equivalent of a compiled P4 program.  :class:`RmtPipeline` executes it as
a pure function: ``process(packet_bytes, metadata, now_ps) -> Phv``.

Timing (the paper's F*P packets per second, one packet per cycle per
pipeline, section 4.2) is layered on by the engine wrapper
(:mod:`repro.engines.rmt_engine`); keeping the dataplane pure makes it
directly unit-testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.packet.addresses import IPv4Address, MacAddress
from repro.packet.headers import (
    EthernetHeader,
    Ipv4Header,
)
from repro.rmt.action import Action, ActionContext, ActionError, Register, standard_actions
from repro.rmt.parser import ParseGraph, default_parse_graph
from repro.rmt.phv import Phv
from repro.rmt.table import MatchKey, Table


@dataclass
class Stage:
    """One pipeline stage holding a single match+action table.

    Real RMT stages can hold several small tables; modelling one table per
    stage keeps the latency accounting simple (stage count == table count)
    without losing expressiveness -- a program needing two tables in one
    stage just declares two stages.
    """

    table: Table
    #: Optional guard: only run this stage when the PHV field is valid.
    requires: Optional[str] = None

    @property
    def name(self) -> str:
        return self.table.name


class RmtProgram:
    """A complete pipeline program (parser + stages + actions + registers)."""

    def __init__(
        self,
        name: str = "program",
        parse_graph: Optional[ParseGraph] = None,
    ):
        self.name = name
        self.parse_graph = parse_graph if parse_graph is not None else default_parse_graph()
        self.stages: List[Stage] = []
        self.actions: Dict[str, Action] = standard_actions()
        self.registers: Dict[str, Register] = {}

    # -- program construction -------------------------------------------

    def add_stage(self, table: Table, requires: Optional[str] = None) -> Table:
        """Append a stage holding ``table``; returns the table for chaining."""
        self.stages.append(Stage(table, requires))
        return table

    def add_table(
        self,
        name: str,
        keys: Sequence[MatchKey],
        default_action: str = "no_op",
        default_params: Optional[Dict[str, Any]] = None,
        requires: Optional[str] = None,
    ) -> Table:
        """Create a table and append it as a new stage."""
        table = Table(name, keys, default_action, default_params)
        return self.add_stage(table, requires)

    def add_action(self, name: str, fn: Action) -> None:
        if name in self.actions:
            raise ActionError(f"action {name!r} already registered")
        self.actions[name] = fn

    def add_register(self, name: str, size: int, initial: int = 0) -> Register:
        if name in self.registers:
            raise ActionError(f"register {name!r} already declared")
        register = Register(name, size, initial)
        self.registers[name] = register
        return register

    def table(self, name: str) -> Table:
        for stage in self.stages:
            if stage.table.name == name:
                return stage.table
        raise KeyError(f"program {self.name!r} has no table {name!r}")

    @property
    def num_stages(self) -> int:
        return len(self.stages)


#: Per-stage slot markers in a recorded trajectory (entries are stored as
#: live :class:`~repro.rmt.table.TableEntry` references).
_SKIP = object()      # requires-guard failed: stage did not run
_DEFAULT = object()   # table miss: default action ran
#: Placeholder for a PHV field absent from the flow key.
_ABSENT = object()


class TrajectoryMemo:
    """Flow-keyed cache of full RMT traversals (trajectory replay).

    A packet's *flow key* is the tuple of every match-relevant PHV field
    after parsing: all table key fields plus all ``requires`` guards
    (absent fields are part of the key too, so requires-validity is
    captured).  For a known key the memo replays the recorded per-stage
    slots -- skip, default, or a live table entry -- **re-executing each
    slot's action on the live PHV** instead of re-running the match
    machinery.  Re-execution keeps everything that is not a table match
    exact by construction: time-dependent slack deadlines (``ctx.now_ps``),
    register reads, stateful policies, header rewrites, and drop marking
    all happen precisely as in a full traversal.  Entry hit counters are
    bumped on replay, so control-plane-visible accounting is identical.

    Safety rules:

    * Any :class:`~repro.rmt.table.Table` mutation or
      :class:`~repro.rmt.action.Register` write invalidates the whole
      cache (listeners installed by :meth:`_wire`).  A register write
      *during* a recording marks it dirty, so flows running
      register-writing actions (``count``, ``load_balance``) are simply
      never cached.
    * A recording is abandoned when an action changes a match-relevant
      field mid-traversal (the trajectory would be input-dependent) or
      when the packet is dropped (the slot list would be truncated).
    * Stages whose action fetched a register (``ctx.touched_state``) are
      re-verified on replay: if the replayed action disturbed a relevant
      field, the memo falls back to full lookups for the remaining
      stages.  Residual caveat: a custom action that writes a relevant
      field from hidden (non-register) state, while coincidentally
      preserving the recorded packet's value, could be mis-replayed;
      no standard action does this, and ``tests/test_rmt_memo.py``
      enforces memo-on/off equivalence for the shipped programs.
    """

    def __init__(self, program: RmtProgram, max_entries: int = 4096):
        self.program = program
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self._cache: Dict[tuple, tuple] = {}
        self._uncacheable: set = set()
        self._fields: tuple = ()
        self._wired: set = set()
        self._n_stages = -1
        self._n_registers = -1
        self._dirty = False

    # -- wiring ---------------------------------------------------------

    def _invalidate(self) -> None:
        self._dirty = True
        if self._cache or self._uncacheable:
            self._cache.clear()
            self._uncacheable.clear()
            self.invalidations += 1

    def _wire(self) -> None:
        """(Re)attach invalidation listeners and recompute the flow-key
        field list; called whenever the program gained stages/registers."""
        fields = []
        for stage in self.program.stages:
            if stage.requires is not None and stage.requires not in fields:
                fields.append(stage.requires)
            for key in stage.table.keys:
                if key.field not in fields:
                    fields.append(key.field)
            if id(stage.table) not in self._wired:
                stage.table.on_mutate(self._invalidate)
                self._wired.add(id(stage.table))
        for register in self.program.registers.values():
            if id(register) not in self._wired:
                register.on_mutate(self._invalidate)
                self._wired.add(id(register))
        self._fields = tuple(fields)
        self._absent = (_ABSENT,) * len(self._fields)
        self._n_stages = len(self.program.stages)
        self._n_registers = len(self.program.registers)
        self._cache.clear()
        self._uncacheable.clear()

    def key_of(self, phv: Phv) -> tuple:
        # map() with the parallel defaults tuple keeps the walk in C.
        return tuple(map(phv._fields.get, self._fields, self._absent))

    # -- record / replay ------------------------------------------------

    def process(self, pipeline: "RmtPipeline", phv: Phv) -> None:
        if (len(self.program.stages) != self._n_stages
                or len(self.program.registers) != self._n_registers):
            self._wire()
        key = self.key_of(phv)
        if key in self._uncacheable:
            pipeline._run_stages(phv, 0)
            return
        cached = self._cache.get(key)
        if cached is not None:
            self._replay(pipeline, phv, key, cached)
            self.hits += 1
            return
        self.misses += 1
        self._record(pipeline, phv, key)

    def _replay(
        self, pipeline: "RmtPipeline", phv: Phv, key: tuple, cached: tuple
    ) -> None:
        slots, stateful = cached
        stages = self.program.stages
        actions = self.program.actions
        ctx = pipeline._ctx
        fields = phv._fields
        for index, slot in enumerate(slots):
            if slot is _SKIP:
                continue
            if slot is _DEFAULT:
                # Defaults stay live: default_action has no mutation
                # hook, so it must be re-read every traversal.
                table = stages[index].table
                actions[table.default_action](phv, ctx,
                                              **table.default_params)
                is_stateful = index in stateful
            else:
                # Compiled entry slot: the action function is frozen at
                # record time (register_action refuses replacement);
                # params are read live off the entry, so in-place
                # control-plane updates keep showing through.
                entry, action, is_stateful = slot
                entry.hits += 1
                action(phv, ctx, **entry.params)
            if is_stateful and self.key_of(phv) != key:
                # The stateful action disturbed a match-relevant field:
                # the rest of the trajectory is stale.  The prefix ran
                # exactly as a full traversal would have, so finish with
                # real lookups and drop the cached flow.
                del self._cache[key]
                pipeline._run_stages(phv, index + 1)
                return
            if fields.get("meta.drop"):
                return

    def _record(self, pipeline: "RmtPipeline", phv: Phv, key: tuple) -> None:
        stages = self.program.stages
        actions = self.program.actions
        ctx = pipeline._ctx
        fields = phv._fields
        slots = []
        stateful = set()
        cacheable = True
        self._dirty = False
        for index, stage in enumerate(stages):
            if stage.requires is not None and stage.requires not in fields:
                slots.append(_SKIP)
                continue
            entry = stage.table.match(phv)
            if entry is None:
                slots.append(_DEFAULT)
                action_name = stage.table.default_action
                params = stage.table.default_params
            else:
                entry.hits += 1
                slots.append(entry)
                action_name = entry.action
                params = entry.params
            action = actions.get(action_name)
            if action is None:
                raise ActionError(
                    f"table {stage.table.name!r} selected unknown action "
                    f"{action_name!r}"
                )
            ctx.touched_state = False
            action(phv, ctx, **params)
            if ctx.touched_state:
                stateful.add(index)
            if cacheable and self.key_of(phv) != key:
                # An action rewrote a match-relevant field: this flow's
                # trajectory depends on more than the flow key.
                cacheable = False
                self._uncacheable.add(key)
            if fields.get("meta.drop"):
                cacheable = False  # truncated slot list: never cache
                break
        if cacheable and not self._dirty:
            if len(self._cache) >= self.max_entries:
                self._cache.clear()
            if len(self._uncacheable) >= self.max_entries:
                self._uncacheable.clear()
            compiled = tuple(
                slot if slot is _SKIP or slot is _DEFAULT
                else (slot, actions[slot.action], index in stateful)
                for index, slot in enumerate(slots)
            )
            self._cache[key] = (compiled, frozenset(stateful))


class RmtPipeline:
    """Executes an :class:`RmtProgram` over packets (pure, untimed).

    With ``memo=True`` a :class:`TrajectoryMemo` caches the per-flow
    stage trajectory, skipping the match machinery for repeat flows while
    re-executing every action -- observable behaviour (PHV, hit counters,
    register state, drops) is bit-identical with the memo on or off.
    """

    def __init__(self, program: RmtProgram, memo: bool = False):
        self.program = program
        self._ctx = ActionContext(registers=program.registers)
        self.packets_processed = 0
        self.memo = TrajectoryMemo(program) if memo else None

    def process(
        self,
        data: bytes,
        metadata: Optional[Dict[str, Any]] = None,
        now_ps: int = 0,
    ) -> Phv:
        """Parse ``data``, run every stage, return the final PHV.

        ``metadata`` seeds ``meta.*`` fields (ingress port, direction...)
        before parsing, mirroring intrinsic metadata in P4.
        """
        phv = Phv()
        if metadata:
            fields = phv._fields
            for key, value in metadata.items():
                # Phv.set inline minus the f-string; the type check is
                # delegated to set() only when it would fail, so the
                # error (and everything else) is identical.
                if isinstance(value, (int, bytes)):
                    fields["meta." + key] = value
                else:
                    phv.set("meta." + key, value)
        self.program.parse_graph.parse(data, phv)
        self._ctx.now_ps = now_ps
        if self.memo is not None:
            self.memo.process(self, phv)
        else:
            self._run_stages(phv, 0)
        self.packets_processed += 1
        return phv

    def _run_stages(self, phv: Phv, start: int) -> None:
        """The plain stage loop, from stage ``start`` onward."""
        stages = self.program.stages
        for index in range(start, len(stages)):
            stage = stages[index]
            if stage.requires is not None and not phv.is_valid(stage.requires):
                continue
            action_name, params, _hit = stage.table.lookup(phv)
            action = self.program.actions.get(action_name)
            if action is None:
                raise ActionError(
                    f"table {stage.table.name!r} selected unknown action "
                    f"{action_name!r}"
                )
            action(phv, self._ctx, **params)
            if phv.get_or("meta.drop", 0):
                break

    # ------------------------------------------------------------------
    # Deparser
    # ------------------------------------------------------------------

    @staticmethod
    def deparse(phv: Phv, original: bytes) -> bytes:
        """Rebuild the frame bytes after actions modified header fields.

        Only Ethernet and IPv4 fields are rewritable by the reference
        programs (TTL, DSCP, addresses); everything beyond the IPv4 header
        is carried through unchanged.  When no L2/L3 fields are valid, the
        original bytes pass through untouched.
        """
        if not phv.header_valid("eth"):
            return original
        eth = EthernetHeader(
            MacAddress(int(phv.get("eth.dst"))),
            MacAddress(int(phv.get("eth.src"))),
            int(phv.get("eth.type")),
        )
        out = eth.pack()
        rest = original[EthernetHeader.LENGTH :]
        if phv.header_valid("ipv4"):
            ipv4 = Ipv4Header(
                src=IPv4Address(int(phv.get("ipv4.src"))),
                dst=IPv4Address(int(phv.get("ipv4.dst"))),
                protocol=int(phv.get("ipv4.proto")),
                total_length=int(phv.get("ipv4.len")),
                ttl=int(phv.get("ipv4.ttl")),
                dscp=int(phv.get("ipv4.dscp")),
                ecn=int(phv.get_or("ipv4.ecn", 0)),
                identification=int(phv.get("ipv4.id")),
            )
            out += ipv4.pack()
            rest = rest[Ipv4Header.LENGTH :]
        return out + rest
