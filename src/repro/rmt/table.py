"""Match tables: exact, ternary, longest-prefix and range matching.

A :class:`Table` is a list of entries over a composite key built from PHV
fields.  Exact entries are indexed in a dict for O(1) lookup; ternary /
LPM / range entries fall back to priority order, exactly like a TCAM with
entry priorities.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.rmt.phv import Phv, PhvError


class TableError(ValueError):
    """Raised for malformed table programming."""


class MatchKind(enum.Enum):
    EXACT = "exact"
    TERNARY = "ternary"
    LPM = "lpm"
    RANGE = "range"


@dataclass(frozen=True)
class MatchKey:
    """One component of a table's composite key."""

    field: str
    kind: MatchKind = MatchKind.EXACT


def ternary_match(value: int, mask: int) -> Tuple[int, int]:
    """Helper making ternary patterns explicit at call sites."""
    return (value & mask, mask)


@dataclass
class TableEntry:
    """One table entry: per-key patterns, action name, action arguments.

    Pattern forms by match kind:

    * EXACT   -- the value itself (int or bytes)
    * TERNARY -- ``(value, mask)``
    * LPM     -- ``(prefix, prefix_len)`` over a 32-bit field
    * RANGE   -- ``(low, high)`` inclusive
    """

    patterns: Tuple[Any, ...]
    action: str
    params: Dict[str, Any] = field(default_factory=dict)
    priority: int = 0
    #: Hit counter, mirroring P4 direct counters.
    hits: int = 0


class Table:
    """A match+action table."""

    def __init__(
        self,
        name: str,
        keys: Sequence[MatchKey],
        default_action: str = "no_op",
        default_params: Optional[Dict[str, Any]] = None,
        max_entries: int = 65536,
    ):
        if not keys:
            raise TableError(f"table {name!r} needs at least one match key")
        self.name = name
        self.keys = tuple(keys)
        self.default_action = default_action
        self.default_params = dict(default_params or {})
        self.max_entries = max_entries
        self._exact_index: Dict[Tuple[Any, ...], TableEntry] = {}
        self._scan_entries: List[TableEntry] = []
        self._all_exact = all(k.kind == MatchKind.EXACT for k in self.keys)
        self._listeners: List[Any] = []

    def on_mutate(self, fn) -> None:
        """Register a callback fired on any entry add/remove/clear.

        Used by the flow memo (:class:`repro.rmt.pipeline.TrajectoryMemo`)
        to invalidate cached traversals when the control plane reprograms
        the table."""
        if fn not in self._listeners:
            self._listeners.append(fn)

    def _notify(self) -> None:
        for fn in self._listeners:
            fn()

    # ------------------------------------------------------------------
    # Programming interface (the "control plane")
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self._exact_index) + len(self._scan_entries)

    def add(
        self,
        patterns: Sequence[Any],
        action: str,
        params: Optional[Dict[str, Any]] = None,
        priority: int = 0,
    ) -> TableEntry:
        """Install an entry; returns it (useful for reading hit counts)."""
        if len(patterns) != len(self.keys):
            raise TableError(
                f"table {self.name!r}: entry has {len(patterns)} patterns "
                f"for {len(self.keys)} keys"
            )
        if self.size >= self.max_entries:
            raise TableError(f"table {self.name!r} is full ({self.max_entries})")
        self._validate_patterns(patterns)
        entry = TableEntry(tuple(patterns), action, dict(params or {}), priority)
        if self._all_exact:
            key = tuple(patterns)
            if key in self._exact_index:
                raise TableError(f"table {self.name!r}: duplicate exact entry {key}")
            self._exact_index[key] = entry
        else:
            self._scan_entries.append(entry)
            # Highest priority first; stable for equal priorities.
            self._scan_entries.sort(key=lambda e: -e.priority)
        self._notify()
        return entry

    def remove(self, patterns: Sequence[Any]) -> None:
        key = tuple(patterns)
        if self._all_exact:
            if key not in self._exact_index:
                raise TableError(f"table {self.name!r}: no entry {key}")
            del self._exact_index[key]
            self._notify()
            return
        for i, entry in enumerate(self._scan_entries):
            if entry.patterns == key:
                del self._scan_entries[i]
                self._notify()
                return
        raise TableError(f"table {self.name!r}: no entry {key}")

    def remove_entry(self, entry: TableEntry) -> None:
        """Remove one installed entry by identity (the object returned
        by :meth:`add`).

        :meth:`remove` matches by patterns, which is ambiguous when
        several entries share patterns and differ only by priority --
        exactly the shape of versioned rule epochs (a new epoch masks
        the old one until the control plane garbage-collects it).
        """
        if self._all_exact:
            key = entry.patterns
            if self._exact_index.get(key) is entry:
                del self._exact_index[key]
                self._notify()
                return
        else:
            for i, existing in enumerate(self._scan_entries):
                if existing is entry:
                    del self._scan_entries[i]
                    self._notify()
                    return
        raise TableError(
            f"table {self.name!r}: entry {entry.patterns} not installed"
        )

    def clear(self) -> None:
        self._exact_index.clear()
        self._scan_entries.clear()
        self._notify()

    def entries(self) -> List[TableEntry]:
        """All installed entries (control-plane inspection / rewriting)."""
        return list(self._exact_index.values()) + list(self._scan_entries)

    def _validate_patterns(self, patterns: Sequence[Any]) -> None:
        for key, pattern in zip(self.keys, patterns):
            if key.kind == MatchKind.EXACT:
                if not isinstance(pattern, (int, bytes)):
                    raise TableError(
                        f"table {self.name!r}: exact pattern for {key.field} "
                        f"must be int or bytes"
                    )
            elif key.kind in (MatchKind.TERNARY, MatchKind.LPM, MatchKind.RANGE):
                if not (isinstance(pattern, tuple) and len(pattern) == 2):
                    raise TableError(
                        f"table {self.name!r}: {key.kind.value} pattern for "
                        f"{key.field} must be a 2-tuple"
                    )

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------

    def lookup(self, phv: Phv) -> Tuple[str, Dict[str, Any], bool]:
        """Match the PHV; returns ``(action, params, hit)``.

        A PHV missing any key field is a miss (invalid headers cannot
        match), which falls through to the default action.

        The returned params dict is the entry's *live* parameter store --
        treat it as read-only.  (The pipeline ``**``-unpacks it into the
        action call, which copies; returning a defensive copy here would
        mean two copies per lookup on the per-packet hot path.)
        """
        try:
            values = tuple(phv.get(key.field) for key in self.keys)
        except PhvError:
            return self.default_action, self.default_params, False

        if self._all_exact:
            entry = self._exact_index.get(values)
            if entry is not None:
                entry.hits += 1
                return entry.action, entry.params, True
            return self.default_action, self.default_params, False

        for entry in self._scan_entries:
            if self._entry_matches(entry, values):
                entry.hits += 1
                return entry.action, entry.params, True
        return self.default_action, self.default_params, False

    def match(self, phv: Phv) -> Optional[TableEntry]:
        """Like :meth:`lookup` but returns the matched entry itself (or
        ``None`` on a miss) and does *not* bump its hit counter -- the
        flow memo records entries and does its own hit accounting."""
        try:
            values = tuple(phv.get(key.field) for key in self.keys)
        except PhvError:
            return None
        if self._all_exact:
            return self._exact_index.get(values)
        for entry in self._scan_entries:
            if self._entry_matches(entry, values):
                return entry
        return None

    def _entry_matches(self, entry: TableEntry, values: Tuple[Any, ...]) -> bool:
        for key, pattern, value in zip(self.keys, entry.patterns, values):
            if key.kind == MatchKind.EXACT:
                if value != pattern:
                    return False
            elif key.kind == MatchKind.TERNARY:
                want, mask = pattern
                if not isinstance(value, int):
                    return False
                if (value & mask) != (want & mask):
                    return False
            elif key.kind == MatchKind.LPM:
                prefix, prefix_len = pattern
                if not isinstance(value, int):
                    return False
                if prefix_len == 0:
                    continue
                mask = ((1 << prefix_len) - 1) << (32 - prefix_len)
                if (value & mask) != (prefix & mask):
                    return False
            elif key.kind == MatchKind.RANGE:
                low, high = pattern
                if not isinstance(value, int) or not low <= value <= high:
                    return False
        return True

    def __repr__(self) -> str:
        kinds = "/".join(k.kind.value for k in self.keys)
        return f"Table({self.name!r}, keys={kinds}, entries={self.size})"
