"""The reconfigurable match+action (RMT) pipeline substrate.

PANIC's heavyweight switch brain (Figure 3b): a programmable parser turns
packet bytes into a packet header vector (PHV); a sequence of match+action
stages looks fields up in exact/ternary/LPM/range tables and runs actions
(set fields, build offload chains, compute slack); a deparser writes
modified headers back to bytes.

The substrate is *pure* -- :class:`RmtPipeline.process` is a function from
packet to decisions with no simulated time -- so it can be unit-tested
directly.  Timing (1 packet/cycle/pipeline, latency = stage count) is added
by the engine wrapper in :mod:`repro.engines.rmt_engine`.
"""

from repro.rmt.phv import Phv, PhvError
from repro.rmt.parser import ParseGraph, ParserState, default_parse_graph
from repro.rmt.table import (
    MatchKind,
    MatchKey,
    Table,
    TableEntry,
    TableError,
    ternary_match,
)
from repro.rmt.action import (
    Action,
    ActionContext,
    ActionError,
    Register,
    standard_actions,
)
from repro.rmt.pipeline import RmtPipeline, RmtProgram, Stage
from repro.rmt.snapshot import (
    SnapshotError,
    diff_programs,
    export_program,
    export_table,
    import_program,
)

__all__ = [
    "Action",
    "ActionContext",
    "ActionError",
    "MatchKey",
    "MatchKind",
    "ParseGraph",
    "ParserState",
    "Phv",
    "PhvError",
    "Register",
    "RmtPipeline",
    "RmtProgram",
    "SnapshotError",
    "Stage",
    "Table",
    "TableEntry",
    "TableError",
    "default_parse_graph",
    "diff_programs",
    "export_program",
    "export_table",
    "import_program",
    "standard_actions",
    "ternary_match",
]
