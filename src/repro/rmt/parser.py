"""The programmable packet parser (parse graph).

An RMT parser is a finite state machine: each state extracts one header,
writes its fields into the PHV, and selects the next state from a PHV
field it just extracted (EtherType, IP protocol, UDP port...).  This module
implements that model and ships the default parse graph used by the PANIC
reference program: Ethernet -> IPv4 -> {UDP -> {KV | rack_tag} | TCP | ESP}.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.packet.headers import (
    ETHERTYPE_IPV4,
    IP_PROTO_ESP,
    IP_PROTO_TCP,
    IP_PROTO_UDP,
    RACK_TAG_BYTES,
    RACK_TAG_UDP_PORT,
    EspHeader,
    EthernetHeader,
    HeaderError,
    Ipv4Header,
    TcpHeader,
    UdpHeader,
)
from repro.packet.kv import KV_UDP_PORT, KvOpcode, KvRequest, KvResponse
from repro.rmt.phv import Phv

#: An extraction function: consumes bytes, writes PHV fields, returns the
#: remaining bytes and the value used for next-state selection (or None).
Extractor = Callable[[bytes, Phv], Tuple[bytes, Optional[int]]]

#: Terminal pseudo-state.
ACCEPT = "accept"


@dataclass
class ParserState:
    """One node of the parse graph."""

    name: str
    extractor: Extractor
    #: Map from select value to next state name; ``None`` key is default.
    transitions: Dict[Optional[int], str] = field(default_factory=dict)

    def next_state(self, select: Optional[int]) -> str:
        if select is not None and select in self.transitions:
            return self.transitions[select]
        return self.transitions.get(None, ACCEPT)


class ParseGraph:
    """A programmable parser: a named set of states plus a start state."""

    def __init__(self, start: str):
        self.start = start
        self._states: Dict[str, ParserState] = {}

    def add_state(self, state: ParserState) -> "ParseGraph":
        if state.name in self._states:
            raise ValueError(f"duplicate parser state {state.name!r}")
        self._states[state.name] = state
        return self

    def parse(self, data: bytes, phv: Optional[Phv] = None) -> Phv:
        """Run the FSM over ``data``; returns the populated PHV.

        A :class:`~repro.packet.headers.HeaderError` mid-parse stops the
        walk and marks ``meta.parse_error`` instead of raising: real
        parsers deliver malformed packets to a default queue rather than
        wedging the pipeline.
        """
        if phv is None:
            phv = Phv()
        if (self.start == "ethernet" and len(data) >= 42
                and _fused_default_parse(self._states, data, phv._fields)):
            return phv
        state_name = self.start
        remaining = data
        steps = 0
        while state_name != ACCEPT:
            if steps > len(self._states) + 8:
                raise RuntimeError("parse graph did not terminate (cycle?)")
            steps += 1
            state = self._states.get(state_name)
            if state is None:
                raise ValueError(f"parse graph references unknown state {state_name!r}")
            try:
                remaining, select = state.extractor(remaining, phv)
            except HeaderError as exc:
                phv.set("meta.parse_error", 1)
                phv.set("meta.parse_error_state", state_name.encode())
                break
            state_name = state.next_state(select)
        phv.set("meta.payload", remaining)
        return phv


# ----------------------------------------------------------------------
# Default extractors
# ----------------------------------------------------------------------


def extract_ethernet(data: bytes, phv: Phv) -> Tuple[bytes, Optional[int]]:
    eth, rest = EthernetHeader.unpack(data)
    # The hot extractors write the field store directly: every value here
    # is an int by construction, so Phv.set's type check adds nothing.
    fields = phv._fields
    fields["eth.dst"] = eth.dst.value
    fields["eth.src"] = eth.src.value
    fields["eth.type"] = eth.ethertype
    return rest, eth.ethertype


def extract_ipv4(data: bytes, phv: Phv) -> Tuple[bytes, Optional[int]]:
    ipv4, rest = Ipv4Header.unpack(data)
    fields = phv._fields
    fields["ipv4.src"] = ipv4.src.value
    fields["ipv4.dst"] = ipv4.dst.value
    fields["ipv4.proto"] = ipv4.protocol
    fields["ipv4.ttl"] = ipv4.ttl
    fields["ipv4.dscp"] = ipv4.dscp
    fields["ipv4.ecn"] = ipv4.ecn
    fields["ipv4.len"] = ipv4.total_length
    fields["ipv4.id"] = ipv4.identification
    # Trim MAC padding using the IP length, like a real deparser would.
    l3_payload = ipv4.total_length - Ipv4Header.LENGTH
    if 0 <= l3_payload <= len(rest):
        rest = rest[:l3_payload]
    return rest, ipv4.protocol


def extract_udp(data: bytes, phv: Phv) -> Tuple[bytes, Optional[int]]:
    udp, rest = UdpHeader.unpack(data)
    fields = phv._fields
    fields["udp.src_port"] = udp.src_port
    fields["udp.dst_port"] = udp.dst_port
    fields["udp.len"] = udp.length
    if KV_UDP_PORT in (udp.src_port, udp.dst_port):
        select = KV_UDP_PORT
    elif udp.dst_port == RACK_TAG_UDP_PORT:
        select = RACK_TAG_UDP_PORT
    else:
        select = 0
    return rest, select


def extract_rack_tag(data: bytes, phv: Phv) -> Tuple[bytes, Optional[int]]:
    """Extract the 16-bit rack flow tag leading a RACK_TAG_UDP_PORT
    payload into ``rack.tag``, without consuming it -- the tag is part of
    the payload the host and checksum offload see, exactly like a VXLAN
    VNI rides inside the outer UDP payload."""
    if len(data) < RACK_TAG_BYTES:
        raise HeaderError("rack-tagged payload shorter than the tag shim")
    phv._fields["rack.tag"] = (data[0] << 8) | data[1]
    return data, None


def extract_tcp(data: bytes, phv: Phv) -> Tuple[bytes, Optional[int]]:
    tcp, rest = TcpHeader.unpack(data)
    phv.set("tcp.src_port", tcp.src_port)
    phv.set("tcp.dst_port", tcp.dst_port)
    phv.set("tcp.flags", tcp.flags)
    phv.set("tcp.seq", tcp.seq)
    return rest, None


def extract_esp(data: bytes, phv: Phv) -> Tuple[bytes, Optional[int]]:
    esp, rest = EspHeader.unpack(data)
    phv.set("esp.spi", esp.spi)
    phv.set("esp.seq", esp.seq)
    # Ciphertext beyond the ESP header is opaque to the parser.
    return rest, None


def extract_kv(data: bytes, phv: Phv) -> Tuple[bytes, Optional[int]]:
    """Extract the KV opcode/tenant/key without copying the value."""
    if not data:
        raise HeaderError("empty KV payload")
    opcode = data[0]
    phv.set("kv.opcode", opcode)
    if opcode == KvOpcode.RESPONSE:
        response, rest = KvResponse.unpack(data)
        phv.set("kv.tenant", response.tenant)
        phv.set("kv.request_id", response.request_id)
        phv.set("kv.status", int(response.status))
        return rest, None
    request, rest = KvRequest.unpack(data)
    phv.set("kv.tenant", request.tenant)
    phv.set("kv.request_id", request.request_id)
    phv.set("kv.key", request.key)
    return rest, None


#: Canonical transition maps of the default graph's UDP spine, used both
#: to build it and to recognize it in the fused fast parse below.
_ETH_TRANSITIONS = {ETHERTYPE_IPV4: "ipv4", None: ACCEPT}
_IPV4_TRANSITIONS = {
    IP_PROTO_UDP: "udp",
    IP_PROTO_TCP: "tcp",
    IP_PROTO_ESP: "esp",
    None: ACCEPT,
}
_UDP_TRANSITIONS = {
    KV_UDP_PORT: "kv",
    RACK_TAG_UDP_PORT: "rack_tag",
    None: ACCEPT,
}


def _fused_default_parse(states, data: bytes, fields: dict) -> bool:
    """One-pass Ethernet/IPv4/UDP walk for the default graph's spine.

    The per-state FSM walk above costs three extractor calls, three
    header ``unpack``s and the address objects they build -- all to
    produce fifteen PHV integers whose wire offsets are fixed once the
    frame is known to be plain non-KV UDP-in-IPv4.  This reads them
    directly.  Eligibility is re-checked per call (the three spine
    states must carry the stock extractors and transition maps, so a
    reprogrammed graph never takes the shortcut), every header
    validation the FSM would apply is replicated as a pure read, and
    any mismatch -- other EtherType or protocol, IPv4 options, KV
    traffic, truncation -- returns False before writing a single field,
    leaving the FSM to produce its exact result (including the
    ``meta.parse_error`` paths).  Field write order matches the FSM's.
    """
    eth_s = states.get("ethernet")
    ipv4_s = states.get("ipv4")
    udp_s = states.get("udp")
    tag_s = states.get("rack_tag")
    if (eth_s is None or ipv4_s is None or udp_s is None or tag_s is None
            or eth_s.extractor is not extract_ethernet
            or ipv4_s.extractor is not extract_ipv4
            or udp_s.extractor is not extract_udp
            or tag_s.extractor is not extract_rack_tag
            or eth_s.transitions != _ETH_TRANSITIONS
            or ipv4_s.transitions != _IPV4_TRANSITIONS
            or udp_s.transitions != _UDP_TRANSITIONS
            or tag_s.transitions != {None: ACCEPT}):
        return False
    if (data[12] << 8) | data[13] != ETHERTYPE_IPV4:
        return False
    if data[14] != 0x45:  # version 4, IHL 5: the only unpackable shape
        return False
    total_length = (data[16] << 8) | data[17]
    if total_length < 20 or data[23] != IP_PROTO_UDP:
        return False
    rest = data[34:]
    l3_payload = total_length - 20
    if l3_payload <= len(rest):  # extract_ipv4's MAC-padding trim
        rest = rest[:l3_payload]
    if len(rest) < 8:
        return False  # truncated UDP: the FSM's parse_error path
    src_port = (rest[0] << 8) | rest[1]
    dst_port = (rest[2] << 8) | rest[3]
    udp_len = (rest[4] << 8) | rest[5]
    if (udp_len < 8 or src_port == KV_UDP_PORT
            or dst_port == KV_UDP_PORT):
        return False  # bad length / KV traffic: keep walking the FSM
    rack_tagged = dst_port == RACK_TAG_UDP_PORT
    if rack_tagged and len(rest) < 8 + RACK_TAG_BYTES:
        return False  # truncated tag shim: the FSM's parse_error path
    fields["eth.dst"] = int.from_bytes(data[0:6], "big")
    fields["eth.src"] = int.from_bytes(data[6:12], "big")
    fields["eth.type"] = ETHERTYPE_IPV4
    fields["ipv4.src"] = int.from_bytes(data[26:30], "big")
    fields["ipv4.dst"] = int.from_bytes(data[30:34], "big")
    fields["ipv4.proto"] = IP_PROTO_UDP
    fields["ipv4.ttl"] = data[22]
    tos = data[15]
    fields["ipv4.dscp"] = tos >> 2
    fields["ipv4.ecn"] = tos & 0x3
    fields["ipv4.len"] = total_length
    fields["ipv4.id"] = (data[18] << 8) | data[19]
    fields["udp.src_port"] = src_port
    fields["udp.dst_port"] = dst_port
    fields["udp.len"] = udp_len
    if rack_tagged:
        fields["rack.tag"] = (rest[8] << 8) | rest[9]
    fields["meta.payload"] = rest[8:]
    return True


def default_parse_graph() -> ParseGraph:
    """Ethernet -> IPv4 -> {UDP -> KV, TCP, ESP} parse graph."""
    graph = ParseGraph(start="ethernet")
    graph.add_state(
        ParserState("ethernet", extract_ethernet, dict(_ETH_TRANSITIONS))
    )
    graph.add_state(
        ParserState("ipv4", extract_ipv4, dict(_IPV4_TRANSITIONS))
    )
    graph.add_state(
        ParserState("udp", extract_udp, dict(_UDP_TRANSITIONS))
    )
    graph.add_state(ParserState("tcp", extract_tcp, {None: ACCEPT}))
    graph.add_state(ParserState("esp", extract_esp, {None: ACCEPT}))
    graph.add_state(ParserState("kv", extract_kv, {None: ACCEPT}))
    graph.add_state(
        ParserState("rack_tag", extract_rack_tag, {None: ACCEPT})
    )
    return graph
