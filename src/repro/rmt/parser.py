"""The programmable packet parser (parse graph).

An RMT parser is a finite state machine: each state extracts one header,
writes its fields into the PHV, and selects the next state from a PHV
field it just extracted (EtherType, IP protocol, UDP port...).  This module
implements that model and ships the default parse graph used by the PANIC
reference program: Ethernet -> IPv4 -> {UDP -> KV | TCP | ESP}.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.packet.headers import (
    ETHERTYPE_IPV4,
    IP_PROTO_ESP,
    IP_PROTO_TCP,
    IP_PROTO_UDP,
    EspHeader,
    EthernetHeader,
    HeaderError,
    Ipv4Header,
    TcpHeader,
    UdpHeader,
)
from repro.packet.kv import KV_UDP_PORT, KvOpcode, KvRequest, KvResponse
from repro.rmt.phv import Phv

#: An extraction function: consumes bytes, writes PHV fields, returns the
#: remaining bytes and the value used for next-state selection (or None).
Extractor = Callable[[bytes, Phv], Tuple[bytes, Optional[int]]]

#: Terminal pseudo-state.
ACCEPT = "accept"


@dataclass
class ParserState:
    """One node of the parse graph."""

    name: str
    extractor: Extractor
    #: Map from select value to next state name; ``None`` key is default.
    transitions: Dict[Optional[int], str] = field(default_factory=dict)

    def next_state(self, select: Optional[int]) -> str:
        if select is not None and select in self.transitions:
            return self.transitions[select]
        return self.transitions.get(None, ACCEPT)


class ParseGraph:
    """A programmable parser: a named set of states plus a start state."""

    def __init__(self, start: str):
        self.start = start
        self._states: Dict[str, ParserState] = {}

    def add_state(self, state: ParserState) -> "ParseGraph":
        if state.name in self._states:
            raise ValueError(f"duplicate parser state {state.name!r}")
        self._states[state.name] = state
        return self

    def parse(self, data: bytes, phv: Optional[Phv] = None) -> Phv:
        """Run the FSM over ``data``; returns the populated PHV.

        A :class:`~repro.packet.headers.HeaderError` mid-parse stops the
        walk and marks ``meta.parse_error`` instead of raising: real
        parsers deliver malformed packets to a default queue rather than
        wedging the pipeline.
        """
        if phv is None:
            phv = Phv()
        state_name = self.start
        remaining = data
        steps = 0
        while state_name != ACCEPT:
            if steps > len(self._states) + 8:
                raise RuntimeError("parse graph did not terminate (cycle?)")
            steps += 1
            state = self._states.get(state_name)
            if state is None:
                raise ValueError(f"parse graph references unknown state {state_name!r}")
            try:
                remaining, select = state.extractor(remaining, phv)
            except HeaderError as exc:
                phv.set("meta.parse_error", 1)
                phv.set("meta.parse_error_state", state_name.encode())
                break
            state_name = state.next_state(select)
        phv.set("meta.payload", remaining)
        return phv


# ----------------------------------------------------------------------
# Default extractors
# ----------------------------------------------------------------------


def extract_ethernet(data: bytes, phv: Phv) -> Tuple[bytes, Optional[int]]:
    eth, rest = EthernetHeader.unpack(data)
    # The hot extractors write the field store directly: every value here
    # is an int by construction, so Phv.set's type check adds nothing.
    fields = phv._fields
    fields["eth.dst"] = eth.dst.value
    fields["eth.src"] = eth.src.value
    fields["eth.type"] = eth.ethertype
    return rest, eth.ethertype


def extract_ipv4(data: bytes, phv: Phv) -> Tuple[bytes, Optional[int]]:
    ipv4, rest = Ipv4Header.unpack(data)
    fields = phv._fields
    fields["ipv4.src"] = ipv4.src.value
    fields["ipv4.dst"] = ipv4.dst.value
    fields["ipv4.proto"] = ipv4.protocol
    fields["ipv4.ttl"] = ipv4.ttl
    fields["ipv4.dscp"] = ipv4.dscp
    fields["ipv4.ecn"] = ipv4.ecn
    fields["ipv4.len"] = ipv4.total_length
    fields["ipv4.id"] = ipv4.identification
    # Trim MAC padding using the IP length, like a real deparser would.
    l3_payload = ipv4.total_length - Ipv4Header.LENGTH
    if 0 <= l3_payload <= len(rest):
        rest = rest[:l3_payload]
    return rest, ipv4.protocol


def extract_udp(data: bytes, phv: Phv) -> Tuple[bytes, Optional[int]]:
    udp, rest = UdpHeader.unpack(data)
    fields = phv._fields
    fields["udp.src_port"] = udp.src_port
    fields["udp.dst_port"] = udp.dst_port
    fields["udp.len"] = udp.length
    select = KV_UDP_PORT if KV_UDP_PORT in (udp.src_port, udp.dst_port) else 0
    return rest, select


def extract_tcp(data: bytes, phv: Phv) -> Tuple[bytes, Optional[int]]:
    tcp, rest = TcpHeader.unpack(data)
    phv.set("tcp.src_port", tcp.src_port)
    phv.set("tcp.dst_port", tcp.dst_port)
    phv.set("tcp.flags", tcp.flags)
    phv.set("tcp.seq", tcp.seq)
    return rest, None


def extract_esp(data: bytes, phv: Phv) -> Tuple[bytes, Optional[int]]:
    esp, rest = EspHeader.unpack(data)
    phv.set("esp.spi", esp.spi)
    phv.set("esp.seq", esp.seq)
    # Ciphertext beyond the ESP header is opaque to the parser.
    return rest, None


def extract_kv(data: bytes, phv: Phv) -> Tuple[bytes, Optional[int]]:
    """Extract the KV opcode/tenant/key without copying the value."""
    if not data:
        raise HeaderError("empty KV payload")
    opcode = data[0]
    phv.set("kv.opcode", opcode)
    if opcode == KvOpcode.RESPONSE:
        response, rest = KvResponse.unpack(data)
        phv.set("kv.tenant", response.tenant)
        phv.set("kv.request_id", response.request_id)
        phv.set("kv.status", int(response.status))
        return rest, None
    request, rest = KvRequest.unpack(data)
    phv.set("kv.tenant", request.tenant)
    phv.set("kv.request_id", request.request_id)
    phv.set("kv.key", request.key)
    return rest, None


def default_parse_graph() -> ParseGraph:
    """Ethernet -> IPv4 -> {UDP -> KV, TCP, ESP} parse graph."""
    graph = ParseGraph(start="ethernet")
    graph.add_state(
        ParserState(
            "ethernet",
            extract_ethernet,
            {ETHERTYPE_IPV4: "ipv4", None: ACCEPT},
        )
    )
    graph.add_state(
        ParserState(
            "ipv4",
            extract_ipv4,
            {
                IP_PROTO_UDP: "udp",
                IP_PROTO_TCP: "tcp",
                IP_PROTO_ESP: "esp",
                None: ACCEPT,
            },
        )
    )
    graph.add_state(
        ParserState("udp", extract_udp, {KV_UDP_PORT: "kv", None: ACCEPT})
    )
    graph.add_state(ParserState("tcp", extract_tcp, {None: ACCEPT}))
    graph.add_state(ParserState("esp", extract_esp, {None: ACCEPT}))
    graph.add_state(ParserState("kv", extract_kv, {None: ACCEPT}))
    return graph
