"""Action primitives and stateful registers.

Actions are the per-stage compute of an RMT pipeline.  Each is a named
function over ``(phv, ctx, **params)``; the standard library below covers
what the PANIC reference program needs: field writes, chain construction,
slack computation, queue selection, drops, and stateful counters.

The paper's constraint that "the actions possible at each stage are
limited to relatively simple atoms" (section 2.3.3) is preserved in
spirit: every standard action is O(1) over PHV fields and registers; no
action can loop over the payload, which is exactly why IPSec cannot be an
RMT action and must be an offload engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.rmt.phv import Phv


class ActionError(RuntimeError):
    """Raised when an action is misused (unknown name, bad params)."""


class Register:
    """A stateful register array, as in RMT switch designs.

    Supports the read / modify / write patterns actions need (counters,
    round-robin pointers, sequence numbers).
    """

    def __init__(self, name: str, size: int, initial: int = 0):
        if size <= 0:
            raise ValueError(f"register {name!r} needs positive size, got {size}")
        self.name = name
        self._cells: List[int] = [initial] * size
        self._listeners: List[Callable[[], None]] = []

    def on_mutate(self, fn: Callable[[], None]) -> None:
        """Register a callback fired on any cell write.

        Used by the flow memo to invalidate cached traversals whenever
        register state changes (whether from the control plane or from a
        stateful action)."""
        if fn not in self._listeners:
            self._listeners.append(fn)

    def read(self, index: int) -> int:
        return self._cells[self._check(index)]

    def write(self, index: int, value: int) -> None:
        self._cells[self._check(index)] = value
        for fn in self._listeners:
            fn()

    def add(self, index: int, delta: int = 1) -> int:
        i = self._check(index)
        self._cells[i] += delta
        for fn in self._listeners:
            fn()
        return self._cells[i]

    def _check(self, index: int) -> int:
        if not 0 <= index < len(self._cells):
            raise IndexError(
                f"register {self.name!r} index {index} out of range "
                f"[0, {len(self._cells)})"
            )
        return index

    def __len__(self) -> int:
        return len(self._cells)


@dataclass
class ActionContext:
    """Shared state actions may touch: registers and the pipeline clock.

    ``now_ps`` is the time the packet entered the pipeline -- the only
    notion of time an action gets, used for computing absolute slack
    deadlines.
    """

    registers: Dict[str, Register] = field(default_factory=dict)
    now_ps: int = 0
    #: Set whenever an action fetches a register during the current
    #: packet; the flow memo uses it to mark stages whose actions depend
    #: on mutable state (see :class:`repro.rmt.pipeline.TrajectoryMemo`).
    touched_state: bool = False

    def register(self, name: str) -> Register:
        reg = self.registers.get(name)
        if reg is None:
            raise ActionError(f"unknown register {name!r}")
        self.touched_state = True
        return reg


#: The signature of every action primitive.
Action = Callable[..., None]


# ----------------------------------------------------------------------
# Standard action library
# ----------------------------------------------------------------------


def no_op(phv: Phv, ctx: ActionContext) -> None:
    """Do nothing (the default default-action)."""


def drop(phv: Phv, ctx: ActionContext) -> None:
    """Mark the packet for dropping by the scheduler (lossy traffic)."""
    phv.set("meta.drop", 1)


def set_field(phv: Phv, ctx: ActionContext, *, field: str, value: Any) -> None:
    """Write a constant into a PHV field."""
    phv.set(field, value)


def copy_field(phv: Phv, ctx: ActionContext, *, src: str, dst: str) -> None:
    """Copy one PHV field to another."""
    phv.set(dst, phv.get(src))


#: Memoized chain encodings for ``set_chain``: route tables reuse the
#: same chain for every frame of a flow, and the wire form is a pure
#: function of the address list.  Bounded by wholesale clearing.
_CHAIN_BYTES_MEMO: Dict[tuple, bytes] = {}
_CHAIN_BYTES_MAX = 512


def set_chain(phv: Phv, ctx: ActionContext, *, chain: List[int]) -> None:
    """Replace the packet's offload chain (list of engine addresses)."""
    key = tuple(chain)
    encoded = _CHAIN_BYTES_MEMO.get(key)
    if encoded is None:
        if len(_CHAIN_BYTES_MEMO) >= _CHAIN_BYTES_MAX:
            _CHAIN_BYTES_MEMO.clear()
        encoded = _CHAIN_BYTES_MEMO[key] = b"".join(
            addr.to_bytes(2, "big") for addr in chain)
    phv.set("meta.chain", encoded)


def push_chain(phv: Phv, ctx: ActionContext, *, engine: int) -> None:
    """Append one engine address to the offload chain."""
    existing = phv.get_or("meta.chain", b"")
    assert isinstance(existing, bytes)
    phv.set("meta.chain", existing + engine.to_bytes(2, "big"))


def set_slack(phv: Phv, ctx: ActionContext, *, slack_ps: int) -> None:
    """Set the scheduler deadline to ``now + slack_ps`` (section 3.1.3)."""
    phv.set("meta.slack_deadline_ps", ctx.now_ps + slack_ps)


def set_priority(phv: Phv, ctx: ActionContext, *, priority: int) -> None:
    phv.set("meta.priority", priority)


def set_queue(phv: Phv, ctx: ActionContext, *, queue: int) -> None:
    """Steer to a host receive queue (RSS-style)."""
    phv.set("meta.rx_queue", queue)


def set_egress(phv: Phv, ctx: ActionContext, *, port: int) -> None:
    phv.set("meta.egress_port", port)


def set_tenant(phv: Phv, ctx: ActionContext, *, tenant: int) -> None:
    phv.set("meta.tenant", tenant)


def mark_needs_rmt(phv: Phv, ctx: ActionContext) -> None:
    """Flag that the chain must return to the RMT pipeline (section 3.1.2,
    e.g. encrypted packets whose inner chain is unknown until decrypted)."""
    phv.set("meta.needs_rmt", 1)


def mark_droppable(phv: Phv, ctx: ActionContext) -> None:
    """Flag the message as lossy (droppable under memory pressure)."""
    phv.set("meta.droppable", 1)


def count(phv: Phv, ctx: ActionContext, *, register: str, index: int = 0) -> None:
    """Increment a register cell (stateful counter)."""
    ctx.register(register).add(index)


def load_balance(
    phv: Phv,
    ctx: ActionContext,
    *,
    register: str,
    ways: int,
    dst: str = "meta.rx_queue",
) -> None:
    """Round-robin a value in [0, ways) into ``dst`` using a register."""
    if ways <= 0:
        raise ActionError(f"load_balance needs positive ways, got {ways}")
    reg = ctx.register(register)
    value = reg.read(0)
    reg.write(0, (value + 1) % ways)
    phv.set(dst, value % ways)


#: Memoized FNV results for ``hash_select``: the hash is a pure function
#: of the field values and ``ways``, and RSS steering hashes flow-stable
#: fields, so back-to-back frames of one flow hit the same entry.
#: Bounded by wholesale clearing, like the parse memo.
_HASH_SELECT_MEMO: Dict[tuple, int] = {}
_HASH_SELECT_MAX = 512


def hash_select(
    phv: Phv,
    ctx: ActionContext,
    *,
    fields: List[str],
    ways: int,
    dst: str = "meta.rx_queue",
) -> None:
    """Hash PHV fields into [0, ways) (RSS-style flow-stable steering)."""
    if ways <= 0:
        raise ActionError(f"hash_select needs positive ways, got {ways}")
    values = tuple(phv.get(name) for name in fields)
    key = (values, ways)
    selected = _HASH_SELECT_MEMO.get(key)
    if selected is None:
        acc = 0x811C9DC5
        for value in values:
            data = (value if isinstance(value, bytes)
                    else value.to_bytes(8, "big"))
            for byte in data:
                acc = ((acc ^ byte) * 0x01000193) & 0xFFFFFFFF
        if len(_HASH_SELECT_MEMO) >= _HASH_SELECT_MAX:
            _HASH_SELECT_MEMO.clear()
        selected = _HASH_SELECT_MEMO[key] = acc % ways
    phv.set(dst, selected)


def decrement_ttl(phv: Phv, ctx: ActionContext) -> None:
    ttl = phv.get("ipv4.ttl")
    assert isinstance(ttl, int)
    if ttl <= 1:
        phv.set("meta.drop", 1)
    phv.set("ipv4.ttl", max(0, ttl - 1))


# ----------------------------------------------------------------------
# L4 load balancing: consistent hashing + connection affinity
# ----------------------------------------------------------------------

#: Affinity-table stats register layout (cells of the ``stats`` register
#: an ``affinity_steer`` entry names).
LB_STAT_STEERED = 0    # every packet the action steered
LB_STAT_INSERTS = 1    # affinity entries created (first packet of a flow)
LB_STAT_HITS = 2       # packets pinned by an existing entry
LB_STAT_EVICTIONS = 3  # stale entries overwritten by a new flow
LB_STAT_BYPASS = 4     # collisions with a live entry (ring-only steering)
LB_STAT_CELLS = 5


def flow_key64(values: tuple) -> int:
    """FNV-1a 64-bit over PHV field values, never zero (zero is the
    affinity table's empty-slot sentinel)."""
    acc = 0xCBF29CE484222325
    for value in values:
        data = (value if isinstance(value, bytes)
                else value.to_bytes(8, "big"))
        for byte in data:
            acc = ((acc ^ byte) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return acc or 1


def ring_lookup(ring, key: int) -> int:
    """Pick the ring point owning ``key``: first point clockwise from the
    key's 32-bit position, wrapping to the lowest point.  ``ring`` is a
    sorted sequence of ``(point, backend)`` pairs (see
    :class:`repro.lb.ring.HashRing`)."""
    if not ring:
        raise ActionError("consistent ring is empty (no live backends)")
    point = key & 0xFFFFFFFF
    lo, hi = 0, len(ring)
    while lo < hi:
        mid = (lo + hi) // 2
        if ring[mid][0] < point:
            lo = mid + 1
        else:
            hi = mid
    if lo == len(ring):
        lo = 0
    return ring[lo][1]


def consistent_select(
    phv: Phv,
    ctx: ActionContext,
    *,
    fields: List[str],
    ring,
    dst: str = "meta.lb_backend",
) -> None:
    """Steer onto a consistent-hash ring of backends (no affinity state).

    Flow-stable like :func:`hash_select`, but membership-hashed: removing
    one backend only moves the flows that mapped to it, the property the
    load balancer's drain/migration protocol relies on."""
    values = tuple(phv.get(name) for name in fields)
    phv.set(dst, ring_lookup(ring, flow_key64(values)))


def affinity_steer(
    phv: Phv,
    ctx: ActionContext,
    *,
    fields: List[str],
    ring,
    key_reg: str,
    backend_reg: str,
    stamp_reg: str,
    epoch_reg: str,
    stats_reg: str,
    epoch: int,
    idle_ps: int,
    dst: str = "meta.lb_backend",
) -> None:
    """Consistent-hash steering with Register-backed connection affinity.

    The first packet of a flow hashes onto ``ring`` and inserts an
    affinity entry (flow key, chosen backend, rule epoch, last-seen
    stamp) into the bounded register arrays; every later packet of the
    flow is pinned to the recorded backend *regardless of the ring the
    current epoch carries* -- which is exactly what keeps established
    flows on their backend while the control plane drains or migrates
    the backend set underneath them (make-before-break, DESIGN.md
    section 17).

    The table is direct-indexed by ``key % slots`` with no chaining (the
    O(1)-atom constraint of section 2.3.3).  A slot whose entry has gone
    idle for ``idle_ps`` is reclaimed by the next colliding flow; a
    collision with a *live* entry falls back to ring-only steering --
    still flow-stable, but unpinned across epochs -- and is counted in
    the stats register so operators can size the table
    (``LB_STAT_BYPASS``).
    """
    values = tuple(phv.get(name) for name in fields)
    key = flow_key64(values)
    keys = ctx.register(key_reg)
    stats = ctx.register(stats_reg)
    stats.add(LB_STAT_STEERED)
    slot = key % len(keys)
    current = keys.read(slot)
    now = ctx.now_ps
    stamps = ctx.register(stamp_reg)
    if current == key:
        backend = ctx.register(backend_reg).read(slot)
        stamps.write(slot, now)
        stats.add(LB_STAT_HITS)
    elif current == 0 or now - stamps.read(slot) > idle_ps:
        backend = ring_lookup(ring, key)
        if current != 0:
            stats.add(LB_STAT_EVICTIONS)
        keys.write(slot, key)
        ctx.register(backend_reg).write(slot, backend)
        ctx.register(epoch_reg).write(slot, epoch)
        stamps.write(slot, now)
        stats.add(LB_STAT_INSERTS)
    else:
        # Live collision: steer by the ring without pinning.
        backend = ring_lookup(ring, key)
        stats.add(LB_STAT_BYPASS)
    phv.set(dst, backend)


def standard_actions() -> Dict[str, Action]:
    """The default action registry installed in every pipeline."""
    return {
        "no_op": no_op,
        "drop": drop,
        "set_field": set_field,
        "copy_field": copy_field,
        "set_chain": set_chain,
        "push_chain": push_chain,
        "set_slack": set_slack,
        "set_priority": set_priority,
        "set_queue": set_queue,
        "set_egress": set_egress,
        "set_tenant": set_tenant,
        "mark_needs_rmt": mark_needs_rmt,
        "mark_droppable": mark_droppable,
        "count": count,
        "load_balance": load_balance,
        "hash_select": hash_select,
        "decrement_ttl": decrement_ttl,
        "consistent_select": consistent_select,
        "affinity_steer": affinity_steer,
    }


def decode_chain(blob: bytes) -> List[int]:
    """Decode the ``meta.chain`` byte string back to engine addresses."""
    if len(blob) % 2:
        raise ActionError(f"chain blob has odd length {len(blob)}")
    return [
        int.from_bytes(blob[i : i + 2], "big") for i in range(0, len(blob), 2)
    ]
