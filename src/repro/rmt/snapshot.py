"""Control-plane snapshots: export/import RMT table state as JSON.

Operations tooling for the programmable switch: dump every table's
entries (with hit counts) for inspection, diff two control-plane states,
and restore a saved configuration into a freshly built program -- the
moral equivalent of `p4runtime` read/write on a real RMT target.

Only JSON-representable patterns survive a round trip: ints, tuples
(serialized as lists) and bytes (hex-encoded with a tag).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.rmt.pipeline import RmtProgram
from repro.rmt.table import Table, TableError


class SnapshotError(ValueError):
    """Raised when a snapshot cannot be encoded or applied."""


def _encode_value(value: Any) -> Any:
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, int) or isinstance(value, float) or isinstance(value, str):
        return value
    if isinstance(value, bytes):
        return {"__bytes__": value.hex()}
    if isinstance(value, (tuple, list)):
        return {"__tuple__": [_encode_value(v) for v in value]}
    if isinstance(value, dict):
        return {k: _encode_value(v) for k, v in value.items()}
    raise SnapshotError(f"cannot snapshot value of type {type(value).__name__}")


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        if "__bytes__" in value:
            return bytes.fromhex(value["__bytes__"])
        if "__tuple__" in value:
            return tuple(_decode_value(v) for v in value["__tuple__"])
        return {k: _decode_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode_value(v) for v in value]
    return value


def export_table(table: Table) -> Dict[str, Any]:
    """One table's entries as a JSON-safe dict."""
    entries: List[Dict[str, Any]] = []
    for entry in list(table._exact_index.values()) + list(table._scan_entries):
        entries.append({
            "patterns": [_encode_value(p) for p in entry.patterns],
            "action": entry.action,
            "params": _encode_value(entry.params),
            "priority": entry.priority,
            "hits": entry.hits,
        })
    return {
        "name": table.name,
        "keys": [
            {"field": key.field, "kind": key.kind.value} for key in table.keys
        ],
        "default_action": table.default_action,
        "entries": entries,
    }


def export_program(program: RmtProgram) -> str:
    """The whole program's control-plane state, as a JSON string."""
    payload = {
        "program": program.name,
        "tables": [export_table(stage.table) for stage in program.stages],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def import_program(program: RmtProgram, snapshot_json: str,
                   clear: bool = True) -> int:
    """Install a snapshot's entries into ``program``'s tables.

    Tables are matched by name; tables in the snapshot that the program
    lacks raise.  Returns the number of entries installed.  ``clear``
    wipes each named table first (restore semantics); pass False to
    merge.
    """
    try:
        payload = json.loads(snapshot_json)
    except json.JSONDecodeError as exc:
        raise SnapshotError(f"malformed snapshot JSON: {exc}") from exc
    installed = 0
    for table_dump in payload.get("tables", []):
        name = table_dump["name"]
        try:
            table = program.table(name)
        except KeyError:
            raise SnapshotError(
                f"snapshot references table {name!r} absent from program "
                f"{program.name!r}"
            ) from None
        if clear:
            table.clear()
        for entry in table_dump.get("entries", []):
            patterns = [_decode_value(p) for p in entry["patterns"]]
            params = _decode_value(entry.get("params", {}))
            table.add(patterns, entry["action"], params,
                      priority=entry.get("priority", 0))
            installed += 1
    return installed


def diff_programs(a_json: str, b_json: str) -> Dict[str, Dict[str, int]]:
    """Entry-count diff between two snapshots (per table).

    Returns ``{table: {"only_a": n, "only_b": m, "common": k}}`` keyed by
    (patterns, action) identity.
    """
    def index(dump_json: str) -> Dict[str, set]:
        payload = json.loads(dump_json)
        out: Dict[str, set] = {}
        for table_dump in payload.get("tables", []):
            keys = set()
            for entry in table_dump.get("entries", []):
                keys.add(json.dumps(
                    [entry["patterns"], entry["action"]], sort_keys=True
                ))
            out[table_dump["name"]] = keys
        return out

    index_a, index_b = index(a_json), index(b_json)
    result: Dict[str, Dict[str, int]] = {}
    for name in sorted(set(index_a) | set(index_b)):
        entries_a = index_a.get(name, set())
        entries_b = index_b.get(name, set())
        result[name] = {
            "only_a": len(entries_a - entries_b),
            "only_b": len(entries_b - entries_a),
            "common": len(entries_a & entries_b),
        }
    return result
