"""The packet header vector (PHV).

The PHV is the working state of an RMT pipeline: every parsed header field
plus per-packet metadata, addressed by dotted names such as ``ipv4.dst``
or ``meta.tenant``.  Actions read and write PHV fields; the deparser turns
header fields back into bytes.

Values are integers (the common case for match keys) or bytes (keys,
payload digests).  A field that was never parsed/set reads as *invalid*,
matching P4's header-validity semantics.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple, Union

FieldValue = Union[int, bytes]

_INVALID = object()


class PhvError(KeyError):
    """Raised when reading an invalid (unparsed) PHV field."""


class Phv:
    """A packet header vector: dotted-name fields plus validity bits."""

    __slots__ = ("_fields",)

    def __init__(self, initial: Optional[Dict[str, FieldValue]] = None):
        self._fields: Dict[str, FieldValue] = {}
        if initial:
            for name, value in initial.items():
                self.set(name, value)

    # ------------------------------------------------------------------
    # Field access
    # ------------------------------------------------------------------

    def set(self, name: str, value: FieldValue) -> None:
        """Set a field, making it valid."""
        if not isinstance(value, (int, bytes)):
            raise TypeError(
                f"PHV field {name!r} must be int or bytes, got "
                f"{type(value).__name__}"
            )
        self._fields[name] = value

    def get(self, name: str) -> FieldValue:
        """Read a field; raises :class:`PhvError` if invalid."""
        value = self._fields.get(name, _INVALID)
        if value is _INVALID:
            raise PhvError(f"PHV field {name!r} is not valid")
        return value

    def get_or(self, name: str, default: FieldValue) -> FieldValue:
        """Read a field, falling back to ``default`` when invalid."""
        value = self._fields.get(name, _INVALID)
        return default if value is _INVALID else value

    def is_valid(self, name: str) -> bool:
        return name in self._fields

    def invalidate(self, name: str) -> None:
        """Remove a field (e.g. after decapsulation).  Idempotent."""
        self._fields.pop(name, None)

    def header_valid(self, header: str) -> bool:
        """True when any field of ``header.*`` is valid."""
        prefix = header + "."
        return any(name.startswith(prefix) for name in self._fields)

    def invalidate_header(self, header: str) -> None:
        """Invalidate every ``header.*`` field."""
        prefix = header + "."
        for name in [n for n in self._fields if n.startswith(prefix)]:
            del self._fields[name]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def fields(self) -> Iterator[Tuple[str, FieldValue]]:
        return iter(sorted(self._fields.items()))

    def copy(self) -> "Phv":
        clone = Phv()
        clone._fields = dict(self._fields)
        return clone

    def __contains__(self, name: str) -> bool:
        return name in self._fields

    def __len__(self) -> int:
        return len(self._fields)

    def __repr__(self) -> str:
        parts = ", ".join(f"{k}={v!r}" for k, v in list(self.fields())[:8])
        suffix = ", ..." if len(self._fields) > 8 else ""
        return f"Phv({parts}{suffix})"
