"""ASCII visualization of a PANIC NIC: mesh map and live occupancy.

Plots are plain monospace text so they drop into terminals, logs and
docs.  Two views:

* :func:`mesh_map` -- which engine sits on which tile (Figure 3c as
  rendered from the actual constructed NIC);
* :func:`occupancy_map` -- per-tile scheduling-queue depth at the
  current instant, for eyeballing hotspots during an experiment.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

CELL_WIDTH = 13


def _grid_lines(
    width: int,
    height: int,
    cell_text: Callable[[int, int], str],
) -> str:
    horizontal = "+" + ("-" * CELL_WIDTH + "+") * width
    lines = [horizontal]
    for y in range(height):
        row = "|"
        for x in range(width):
            text = cell_text(x, y)[:CELL_WIDTH]
            row += text.center(CELL_WIDTH) + "|"
        lines.append(row)
        lines.append(horizontal)
    return "\n".join(lines)


def mesh_map(nic) -> str:
    """Render which engine occupies each mesh tile."""
    width = nic.config.mesh_width
    height = nic.config.mesh_height
    by_tile: Dict[tuple, str] = {}
    for key, engine in nic.engines.items():
        by_tile[nic.mesh.coords_of(engine.address)] = key

    def cell(x: int, y: int) -> str:
        return by_tile.get((x, y), ".")

    header = (
        f"{nic.name}: {width}x{height} mesh, "
        f"{nic.config.channel_bits}-bit channels"
    )
    return header + "\n" + _grid_lines(width, height, cell)


def occupancy_map(nic) -> str:
    """Render instantaneous queue depth (and busy marker) per tile."""
    width = nic.config.mesh_width
    height = nic.config.mesh_height
    by_tile: Dict[tuple, object] = {}
    for key, engine in nic.engines.items():
        by_tile[nic.mesh.coords_of(engine.address)] = (key, engine)

    def cell(x: int, y: int) -> str:
        entry = by_tile.get((x, y))
        if entry is None:
            return "."
        key, engine = entry
        marker = "*" if engine.busy else " "
        return f"{key[:7]}:{engine.backlog}{marker}"

    header = f"{nic.name}: queue depth per tile ('*' = busy)"
    return header + "\n" + _grid_lines(width, height, cell)


def utilization_report(nic, elapsed_ps: Optional[int] = None) -> str:
    """One line per engine: processed count, queue peak, drops."""
    lines = [f"{nic.name}: engine utilization"]
    for key in sorted(nic.engines):
        engine = nic.engines[key]
        lines.append(
            f"  {key:12s} processed={engine.processed.value:<8d} "
            f"queue_peak={engine.queue.max_occupancy:<6d} "
            f"dropped={engine.queue.dropped.value}"
        )
    return "\n".join(lines)
