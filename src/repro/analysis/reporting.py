"""Plain-text table rendering for benches and examples.

Keeps output paper-comparable: every bench prints the table it
reproduces next to the values the paper reports.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned monospace table."""
    rendered_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells for {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3g}" if abs(value) < 10 else f"{value:.1f}"
    return str(value)


def format_comparison(
    metric: str,
    measured: Dict[str, float],
    unit: str = "",
    lower_is_better: bool = True,
) -> str:
    """Render a cross-system comparison with a winner marker."""
    if not measured:
        raise ValueError("nothing to compare")
    best = (min if lower_is_better else max)(measured.values())
    rows = []
    for system, value in sorted(measured.items(), key=lambda kv: kv[1]):
        marker = " <-- best" if value == best else ""
        rows.append([system, f"{value:.4g} {unit}".strip() + marker])
    return format_table(["system", metric], rows)
