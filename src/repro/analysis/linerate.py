"""Line-rate packet-per-second model (reproduces Table 2 and section 4.2).

A minimal Ethernet frame occupies 84 bytes on the wire (64-byte frame +
8-byte preamble/SFD + 12-byte inter-frame gap), i.e. 672 bits.  A port at
line rate ``R`` therefore carries ``R / 672`` packets per second *per
direction*; Table 2 counts both RX and TX across all ports:

    PPS = ports * 2 * R / 672

which gives 238.1 Mpps for a 2-port 40 Gbps NIC (the paper rounds to
"240 Mpps") and 297.6 Mpps for a 1-port 100 Gbps NIC ("300 Mpps").

Section 4.2's feasibility argument: the heavyweight RMT pipeline
processes ``F * P`` packets per second (two 500 MHz pipelines = 1000
Mpps), so line rate holds while

    F * P >= PPS * passes_per_packet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.packet.packet import MIN_FRAME_BYTES, WIRE_OVERHEAD_BYTES, wire_bits

#: Bits per minimal frame on the wire (84 bytes).
MIN_FRAME_WIRE_BITS = wire_bits(MIN_FRAME_BYTES)


def min_frame_pps(line_rate_bps: float, ports: int, directions: int = 2) -> float:
    """Packets/sec of minimal frames at line rate over all ports, RX+TX."""
    if line_rate_bps <= 0 or ports <= 0 or directions <= 0:
        raise ValueError("line rate, ports and directions must be positive")
    return ports * directions * line_rate_bps / MIN_FRAME_WIRE_BITS


def rmt_pipeline_pps(freq_hz: float, pipelines: int) -> float:
    """Section 4.2: F * P packets per second."""
    if freq_hz <= 0 or pipelines <= 0:
        raise ValueError("frequency and pipeline count must be positive")
    return freq_hz * pipelines


def sustainable_rmt_passes(
    freq_hz: float, pipelines: int, line_rate_bps: float, ports: int
) -> float:
    """How many RMT passes each packet can take while holding line rate."""
    return rmt_pipeline_pps(freq_hz, pipelines) / min_frame_pps(line_rate_bps, ports)


def required_rmt_pipelines(
    line_rate_bps: float,
    ports: int,
    freq_hz: float,
    passes_per_packet: float = 1.0,
) -> int:
    """Minimum P so that F * P covers line rate at the given pass count."""
    needed_pps = min_frame_pps(line_rate_bps, ports) * passes_per_packet
    pipelines = needed_pps / freq_hz
    whole = int(pipelines)
    return whole if whole == pipelines else whole + 1


@dataclass
class LineRatePoint:
    """One row of Table 2."""

    line_rate_gbps: int
    ports: int
    pps_mpps: float
    paper_mpps: int

    def label(self) -> str:
        return f"{self.line_rate_gbps}Gbps x{self.ports}"


#: Table 2's parameter grid and the values the paper prints.
TABLE2_GRID = (
    (40, 2, 240),
    (40, 4, 480),
    (100, 1, 300),
    (100, 2, 600),
)


def table2_rows() -> List[LineRatePoint]:
    """Compute every row of Table 2."""
    rows = []
    for rate_gbps, ports, paper_mpps in TABLE2_GRID:
        pps = min_frame_pps(rate_gbps * 1e9, ports)
        rows.append(LineRatePoint(rate_gbps, ports, pps / 1e6, paper_mpps))
    return rows
