"""Analytical models and reporting helpers.

* :mod:`repro.analysis.linerate` -- the packets-per-second line-rate
  model behind Table 2 and the section 4.2 feasibility argument.
* :mod:`repro.analysis.reporting` -- plain-text table rendering used by
  benches and examples to print paper-style tables.
"""

from repro.analysis.linerate import (
    LineRatePoint,
    min_frame_pps,
    required_rmt_pipelines,
    rmt_pipeline_pps,
    sustainable_rmt_passes,
    table2_rows,
)
from repro.analysis.reporting import format_table, format_comparison
from repro.analysis.visualize import mesh_map, occupancy_map, utilization_report

__all__ = [
    "LineRatePoint",
    "format_comparison",
    "format_table",
    "mesh_map",
    "occupancy_map",
    "utilization_report",
    "min_frame_pps",
    "required_rmt_pipelines",
    "rmt_pipeline_pps",
    "sustainable_rmt_passes",
    "table2_rows",
]
