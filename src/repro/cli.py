"""Command-line interface: regenerate the paper's tables from a shell.

Usage::

    python -m repro table1      # offload taxonomy
    python -m repro table2      # line-rate PPS model
    python -m repro table3      # mesh bisection BW / chain length
    python -m repro demo        # the quickstart KV GET, end to end
    python -m repro faults      # crash-and-failover fault-tolerance demo
    python -m repro rack        # sharded rack-scale run vs monolithic
    python -m repro trace       # per-packet telemetry -> trace.json + timeline
    python -m repro chaos       # seeded chaos: lossy rack + invariant gate
    python -m repro lb          # RMT-resident L4 LB: live drain/failover
    python -m repro int-report  # in-band telemetry rack flight record
    python -m repro bench-report  # BENCH_*.json vs floor.json summary
    python -m repro all         # everything above (except rack/trace/chaos)

The heavier experiments (HOL blocking, isolation, ablations) live in
``benchmarks/`` where pytest-benchmark records their runtimes.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis import format_table, table2_rows
from repro.engines import coverage, table1_rows
from repro.noc import table3_rows
from repro.noc.analysis import TABLE3_PAPER


def cmd_table1() -> None:
    print(format_table(
        ["Project", "Offload Type"],
        table1_rows(),
        title="Table 1: offload types used by prior work",
    ))
    print()
    print(format_table(
        ["Engine", "Offload Type"],
        coverage(),
        title="Engine coverage of the taxonomy (this library)",
    ))


def cmd_table2() -> None:
    rows = [
        [f"{r.line_rate_gbps}Gbps", r.ports,
         f"{r.pps_mpps:.1f}Mpps", f"{r.paper_mpps}Mpps"]
        for r in table2_rows()
    ]
    print(format_table(
        ["Line-rate", "# Eth Ports", "PPS (model)", "PPS (paper)"],
        rows,
        title="Table 2: PPS for line-rate forwarding of minimal packets",
    ))


def cmd_table3() -> None:
    rows = []
    for r, (paper_bw, paper_chain) in zip(table3_rows(), TABLE3_PAPER):
        rows.append([
            f"{r.line_rate_gbps}Gbps x{r.ports}", f"{r.freq_mhz}MHz",
            r.channel_bits, r.topo,
            f"{r.bisection_gbps:.0f} / {paper_bw:.0f}",
            f"{r.chain_length:.2f} / {paper_chain:.2f}",
        ])
    print(format_table(
        ["Line-rate", "Freq", "Bits", "Topo",
         "Bisec Gbps (model/paper)", "Chain Len (model/paper)"],
        rows,
        title="Table 3: on-NIC topology throughput and chain length",
    ))


def cmd_demo() -> None:
    from repro import PanicConfig, PanicNic, Simulator
    from repro.packet import (
        KvOpcode,
        KvRequest,
        build_kv_request_frame,
        parse_frame,
    )
    from repro.sim.clock import format_time

    sim = Simulator()
    nic = PanicNic(sim, PanicConfig(ports=1))
    nic.control.enable_kv_cache()
    nic.offload("kvcache").cache_put(b"hot", b"served-on-nic")
    request = build_kv_request_frame(KvRequest(KvOpcode.GET, 1, 1, b"hot"))
    nic.inject(request)
    sim.run()
    response = parse_frame(nic.transmitted[0].data).kv_response()
    print("response value :", response.value.decode())
    print("request path   :", " -> ".join(request.trail))
    print("finished at    :", format_time(sim.now))
    print("host CPU ran   :", nic.host.interrupts_taken.value, "times")


def cmd_faults() -> None:
    """A compressed fault-tolerance demo: crash one IPSec lane mid-run
    and show the watchdog re-steering traffic onto its backup."""
    from repro import PanicConfig, PanicNic, Simulator
    from repro.faults import FaultInjector, FaultPlan, attach_health_monitor
    from repro.packet import build_udp_frame
    from repro.packet.packet import MessageKind, Packet
    from repro.sim.clock import NS, US, format_time

    sim = Simulator()
    nic = PanicNic(sim, PanicConfig(
        ports=1, offloads=("ipsec", "ipsec1", "compression", "kvcache"),
    ))
    nic.set_backup("ipsec", "ipsec1")
    nic.control.route_dscp(10, ["ipsec"])
    monitor = attach_health_monitor(nic, period_ps=2 * US, timeout_ps=4 * US)
    monitor.start()
    plan = FaultPlan(seed=1).crash_engine(20 * US, "ipsec")
    FaultInjector(nic, plan).arm()
    print(plan.describe())

    def spray(i: int = 0) -> None:
        if i >= 200:
            return
        frame = build_udp_frame(
            src_mac="02:00:00:00:00:01", dst_mac="02:00:00:00:00:02",
            src_ip="10.0.0.1", dst_ip="10.0.0.2",
            src_port=1000 + i, dst_port=9, dscp=10,
            payload=bytes(64),
        )
        nic.inject(Packet(frame, MessageKind.ETHERNET))
        sim.schedule(300 * NS, spray, i + 1)

    spray()
    sim.run(until_ps=120 * US)
    monitor.stop()
    sim.run()
    stats = nic.stats()
    print("failure detected at :", {
        k: format_time(v) for k, v in monitor.failed_at.items()
    })
    print("primary processed   :", stats["ipsec"]["processed"])
    print("backup processed    :", stats["ipsec1"]["processed"])
    print("delivered to host   :", stats["host"]["rx_delivered"])
    print("fault counters      :", stats["faults"])
    nic.mesh.assert_drained()
    print("mesh drained        : yes (0 messages in flight)")


def cmd_rack(nics: int = 4, workers: int = 0, frames: int = 40,
             gap_ns: int = 2000, prop_ns: int = 500,
             pattern: str = "symmetric", speculative: bool = False,
             flow_id: str = "auto") -> None:
    """Run one rack topology both monolithically and sharded across
    worker processes, then print the equivalence verdict and speedup
    (DESIGN.md sections 10 and 15)."""
    from repro.sim.clock import NS
    from repro.sim.shard import run_monolithic, run_sharded
    from repro.workloads.rack import rack_topology, resolve_flow_id

    workers = workers or min(4, nics)
    topo = rack_topology(
        nics=nics, frames=frames, gap_ps=gap_ns * NS,
        propagation_ps=prop_ns * NS, pattern=pattern, flow_id=flow_id,
    )
    protocol = "speculative" if speculative else "conservative"
    print(f"rack: {nics} NICs, all-pairs {pattern}, {frames} frames/flow, "
          f"{prop_ns}ns wires, {resolve_flow_id(flow_id, nics)} flow ids, "
          f"{protocol} windows")
    mono = run_monolithic(topo)
    sharded = run_sharded(topo, workers=workers, speculative=speculative)
    rows = []
    for result in (mono, sharded):
        rate = result.events_fired / result.wall_seconds \
            if result.wall_seconds else 0.0
        rows.append([
            result.mode, result.workers, result.events_fired,
            f"{result.wall_seconds:.3f}s", f"{rate / 1e3:.0f}k ev/s",
            result.rounds or "-",
        ])
    print(format_table(
        ["Mode", "Workers", "Events", "Wall", "Rate", "Sync rounds"],
        rows,
        title=f"Monolithic vs sharded ({workers} workers, "
              f"lookahead {sharded.lookahead_ps / 1000:.0f}ns)",
    ))
    delivered = sum(
        len(report["deliveries"]) for report in mono.reports.values())
    identical = all(
        sharded.reports[name] == mono.reports[name] for name in mono.reports)
    speedup = mono.wall_seconds / sharded.wall_seconds \
        if sharded.wall_seconds else 0.0
    print("frames delivered      :", delivered)
    print("speedup               :", f"{speedup:.2f}x")
    if sharded.speculative:
        print("rollbacks             :", sharded.rollbacks)
        print("replayed events       :", sharded.replayed_events)
    print("bit-identical reports :", "yes" if identical else "NO (DIVERGENCE)")
    if not identical:
        raise SystemExit("sharded run diverged from the monolithic run")


def cmd_trace(frames: int = 32, sample_every: int = 1,
              timeline: int = 3, out: str = "trace.json") -> None:
    """Trace an offload-chain run: write a Perfetto-loadable trace.json
    and print the first few packets' timelines (DESIGN.md section 11)."""
    from repro import PanicConfig, PanicNic, Simulator
    from repro.packet import build_udp_frame
    from repro.packet.packet import MessageKind, Packet
    from repro.sim.clock import NS, US, format_time
    from repro.telemetry import TelemetryConfig
    from repro.telemetry.export import format_timeline, write_chrome_trace

    sim = Simulator()
    nic = PanicNic(sim, PanicConfig(
        ports=1,
        offloads=("ipsec", "compression", "checksum"),
        telemetry=TelemetryConfig(
            sample_every=sample_every, probe_period_ps=1 * US,
        ),
    ))
    nic.control.route_dscp(1, ["ipsec", "compression", "checksum"])
    frame = build_udp_frame(
        src_mac="02:00:00:00:00:01", dst_mac="02:00:00:00:00:02",
        src_ip="10.0.0.1", dst_ip="10.0.0.2",
        src_port=1000, dst_port=9, dscp=1, payload=bytes(256),
    )
    for i in range(frames):
        sim.schedule_at(
            i * 700 * NS, nic.inject, Packet(frame, MessageKind.ETHERNET))
    sim.run()
    tel = nic.telemetry
    events = write_chrome_trace(
        out, {nic.name: tel.tracer.sorted_spans()},
        {nic.name: tel.probes.series()},
    )
    summary = tel.summary()
    print(f"traced {summary['sampled']}/{summary['seen']} frames "
          f"({summary['spans']} spans, {summary['dropped_spans']} dropped) "
          f"through the {len(nic.engines)}-engine chain")
    print(f"finished at {format_time(sim.now)}; "
          f"delivered {nic.stats()['host']['rx_delivered']} to the host")
    print(f"wrote {events} trace events to {out} "
          "(load it at https://ui.perfetto.dev)")
    print()
    print(format_timeline(tel.tracer.sorted_spans(), limit=timeline))


def cmd_chaos(seeds: int = 5, first_seed: int = 0, nics: int = 4,
              workers: int = 2, frames: int = 30, pattern: str = "fanin",
              transport: str = "gbn", out: str = "",
              trace_out: str = "", speculative: bool = False,
              floor_file: str = "benchmarks/chaos/floor.json") -> None:
    """Break the rack on purpose: run seeded chaos cases on the reliable
    incast and gate on the delivery invariants (DESIGN.md section 12).

    ``transport`` picks the config: ``gbn`` (go-back-N), ``sr``
    (selective repeat + adaptive RTO), ``gbn+ll``/``sr+ll`` (either
    transport with link-local repair armed on every wire), or ``lb``
    (the load-balanced rack with live drains and backend crashes,
    DESIGN.md section 17).  Goodput floors are per config, read from
    ``floor_file`` (configs absent from its ``floors`` map are
    ungated).  Exits non-zero if any invariant -- or a floor -- is
    violated, the same gate the CI ``chaos-smoke`` job runs via
    ``benchmarks/chaos/run_chaos.py``.

    ``trace_out`` (``--trace-out``) additionally reruns the first seed
    with telemetry enabled -- same fault weather, the plan regenerates
    from the seed -- and writes the merged Perfetto trace there; the
    gated runs themselves stay untraced.
    """
    import json

    from repro.reliability.chaos import DEFAULT_GOODPUT_FLOOR, run_chaos

    try:
        with open(floor_file) as fh:
            floors = {config: float(floor)
                      for config, floor in json.load(fh)["floors"].items()}
    except (FileNotFoundError, KeyError, ValueError):
        floors = DEFAULT_GOODPUT_FLOOR
        print(f"note: no per-config floors at {floor_file}; gating "
              f"link-local configs at {floors:.2f}")

    def progress(case: dict) -> None:
        verdict = "pass" if case["passed"] else "FAIL"
        print(f"  seed {case['seed']:>3} [{case['config']:>6}]: {verdict}  "
              f"goodput={case['goodput']:.3f}  "
              f"faults={case['events']}  retx={case['retransmits']}  "
              f"ll_repair={case['linklayer']['repaired']}  "
              f"aborts={case['delivery_failures']}")

    seed_list = list(range(first_seed, first_seed + seeds))
    protocol = "speculative" if speculative else "conservative"
    print(f"chaos: {len(seed_list)} seeds on a {nics}-NIC {pattern} rack, "
          f"{frames} frames/flow, config {transport}, "
          f"mono + {workers}-worker sharded ({protocol})")
    report = run_chaos(seed_list, nics=nics, pattern=pattern, frames=frames,
                       workers=workers, progress=progress,
                       configs=(transport,), goodput_floor=floors,
                       speculative=speculative)
    print(f"goodput min/mean      : {report['goodput_min']:.3f} / "
          f"{report['goodput_mean']:.3f}")
    print("invariants            :",
          "all hold" if report["passed"]
          else f"VIOLATED on seeds {report['failed_seeds']}")
    gate = (floors.get(transport) if isinstance(floors, dict)
            else (floors if "+" in transport else None))
    if gate is not None:
        print("goodput floor         :",
              f"{gate:.2f} "
              + ("held" if report["floor_ok"] else "BREACHED"))
    if out:
        with open(out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"wrote report to {out}")
    if trace_out:
        from repro.reliability.chaos import write_chaos_trace
        count = write_chaos_trace(
            trace_out, seed_list[0], nics=nics, pattern=pattern,
            frames=frames, workers=workers, config=transport)
        print(f"wrote {count} trace events from seed {seed_list[0]} "
              f"[{transport}] to {trace_out} "
              "(load it at https://ui.perfetto.dev)")
    if not report["passed"]:
        for case in report["cases"]:
            for violation in case["violations"]:
                print(f"  seed {case['seed']}: {violation}")
        raise SystemExit("chaos invariants violated")
    if not report["floor_ok"]:
        for breach in report["floor_failures"]:
            print(f"  seed {breach['seed']} [{breach['config']}]: "
                  f"goodput {breach['goodput']:.3f} below floor "
                  f"{breach['floor']:.2f}")
        raise SystemExit("chaos goodput floor breached")


def cmd_lb(nics: int = 7, backends: int = 3, frames: int = 30,
           workers: int = 2, speculative: bool = False,
           drain: str = "2@25", crash: str = "", out: str = "") -> None:
    """Serve a VIP from the RMT pipeline and migrate it live.

    Builds the load-balanced rack (LB at index 0, ``backends`` backends,
    the rest clients; DESIGN.md section 17), then exercises the two
    control-plane verbs mid-traffic: ``drain`` (``"B@US"``: planned
    make-before-break removal of backend B at that many microseconds --
    pinned flows complete, new flows re-hash) and ``crash`` (``"B@US"``:
    the backend's NIC goes dark and the heartbeat monitor must fail it
    out).  Runs monolithically and, with ``workers``, sharded too; gates
    the affinity and zero-committed-loss invariants and exits non-zero
    on any violation.
    """
    import json

    from repro.faults.plan import FaultPlan
    from repro.lb.rack import lb_rack_topology
    from repro.reliability.chaos import _check_lb_case
    from repro.sim.clock import US, format_time
    from repro.sim.shard import run_monolithic, run_sharded

    def parse_at(text: str, what: str):
        try:
            backend, at_us = text.split("@", 1)
            return int(backend), int(float(at_us) * US)
        except ValueError:
            raise SystemExit(f"--{what} wants BACKEND@MICROSECONDS, "
                             f"got {text!r}")

    drain_spec = parse_at(drain, "drain") if drain else None
    crash_spec = parse_at(crash, "crash") if crash else None

    def topology():
        return lb_rack_topology(nics=nics, n_backends=backends,
                                frames=frames, drain=drain_spec)

    def plan():
        fault_plan = FaultPlan(seed=0)
        if crash_spec is not None:
            fault_plan.nic_down(crash_spec[1], f"nic{crash_spec[0]}")
        return fault_plan

    verbs = []
    if drain_spec:
        verbs.append(f"drain nic{drain_spec[0]} @ "
                     f"{format_time(drain_spec[1])}")
    if crash_spec:
        verbs.append(f"crash nic{crash_spec[0]} @ "
                     f"{format_time(crash_spec[1])}")
    print(f"lb: {nics}-NIC rack, VIP on nic0, {backends} backends, "
          f"{nics - backends - 1} clients x {frames} frames; "
          + ("; ".join(verbs) if verbs else "no churn"))
    mono = run_monolithic(topology(), fault_plan=plan())
    shard = (run_sharded(topology(), workers=workers, fault_plan=plan(),
                         speculative=speculative)
             if workers else None)
    violations = _check_lb_case(mono, shard, None, backends)

    steering = mono.reports["nic0"]["steering"]
    monitor = mono.reports["nic0"]["monitor"]
    rows = []
    for b in range(1, backends + 1):
        state = ("drained" if b in steering["draining"]
                 else "FAILED" if b in steering["failed"] else "live")
        rows.append([f"nic{b}", state,
                     len(mono.reports[f"nic{b}"]["deliveries"])])
    print(format_table(["Backend", "State", "Frames served"], rows,
                       title="Backend delivery split"))
    sent = sum(r.get("sent", 0) for r in mono.reports.values())
    delivered = sum(len(r.get("deliveries", ()))
                    for r in mono.reports.values())
    aborted = sum(len(r.get("failures", ()))
                  for r in mono.reports.values())
    print("epochs installed      :", steering["epoch"] + 1,
          f"(gc removed {steering['gc_removed']} stale)")
    print("affinity table        :", steering["stats"])
    print("monitor               :", monitor["hb_probes_sent"], "probes,",
          monitor["hb_echoes_seen"], "echoes,",
          {b: format_time(t) for b, t in monitor["detected"].items()}
          or "no failures detected")
    print("goodput               :",
          f"{delivered}/{sent} = {delivered / sent:.3f}"
          if sent else "n/a", f"({aborted} aborted flows)")
    if shard is not None:
        identical = (mono.reports == shard.reports
                     and mono.wire_stats == shard.wire_stats)
        print("bit-identical sharded :",
              "yes" if identical else "NO (DIVERGENCE)")
    if out:
        with open(out, "w") as fh:
            json.dump({"reports": mono.reports,
                       "violations": violations}, fh,
                      indent=2, sort_keys=True, default=list)
        print(f"wrote report to {out}")
    if violations:
        for violation in violations:
            print(f"  ! {violation}")
        raise SystemExit("lb invariants violated")
    print("invariants            : affinity + zero committed loss hold")


def cmd_int_report(nics: int = 4, frames: int = 40, gap_ns: int = 2000,
                   prop_ns: int = 500, pattern: str = "fanin",
                   workers: int = 0, speculative: bool = False,
                   inband: bool = False, burst_depth: int = 8,
                   out: str = "", trace_out: str = "") -> None:
    """Run a rack with INT sources/transits/sinks armed and print the
    collector's flight record (DESIGN.md section 16): per-flow path
    traces, per-hop latency breakdowns, queue-depth watermarks, path
    changes, and microburst detections with the responsible flows named.

    ``workers=0`` runs monolithically; any other value shards the rack
    (the postcards are bit-identical either way -- that is the INT
    contract).  ``inband=True`` carries the hop stack as real trailer
    bytes that grow every frame on the wire instead of the zero-cost
    side channel.  ``out`` writes the report JSON; ``trace_out`` writes
    the collector's Perfetto counter/instant tracks.
    """
    import json

    from repro.sim.clock import NS
    from repro.sim.shard import run_monolithic, run_sharded
    from repro.telemetry.config import IntConfig
    from repro.telemetry.export import merge_int_reports
    from repro.telemetry.int_ import IntCollector, format_int_report
    from repro.workloads.rack import rack_topology

    topo = rack_topology(
        nics=nics, frames=frames, gap_ps=gap_ns * NS,
        propagation_ps=prop_ns * NS, pattern=pattern,
        int_=IntConfig(inband=inband),
    )
    carriage = "in-band trailers" if inband else "side-channel"
    mode = (f"{workers}-worker sharded"
            + (" (speculative)" if speculative else "")
            if workers else "monolithic")
    print(f"int-report: {nics}-NIC {pattern} rack, {frames} frames/flow, "
          f"{carriage} INT, {mode}")
    if workers:
        result = run_sharded(topo, workers=workers, speculative=speculative)
    else:
        result = run_monolithic(topo)
    merged = merge_int_reports(result.reports) or {}
    collector = IntCollector(microburst_depth=burst_depth)
    for sink in sorted(merged):
        collector.ingest(sink, merged[sink])
    report = collector.report()
    print()
    print(format_int_report(report))
    if out:
        with open(out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True, default=list)
        print(f"\nwrote report to {out}")
    if trace_out:
        from repro.telemetry.export import int_chrome_events, write_chrome_trace
        count = write_chrome_trace(
            trace_out, result.trace or {},
            extra_events=int_chrome_events(collector))
        print(f"wrote {count} trace events to {trace_out} "
              "(load it at https://ui.perfetto.dev)")


def cmd_bench_report(bench: Optional[List[str]] = None,
                     floor: str = "benchmarks/perf/floor.json",
                     tolerance: float = 0.30) -> None:
    """One-screen regression summary: load ``BENCH_*.json`` envelopes,
    diff every gated metric against the checked-in floor, and exit
    non-zero on any regression.  CI runs this over its bench artifacts;
    humans run it over a local ``BENCH_*.json`` glob.

    Gates applied (matching the bench harnesses' own ``--floor`` logic):
    throughput floors (``events_per_sec``, ``events_per_sec_batched``,
    ``parallel_events_per_sec``) pass above ``(1 - tolerance) * floor``;
    overhead caps (``telemetry_overhead_max_frac``,
    ``int_overhead_max_frac``), the chaos invariant/floor flags, and the
    lb migration gates (``lb_goodput_min`` on the ``lb_*`` workloads'
    goodput, exact ``invariants_ok``/``bit_identical`` flags) are exact.
    Ungated series are summarized, not judged.
    """
    import glob as globlib
    import json

    paths: List[str] = []
    for pattern in bench or ["BENCH_*.json"]:
        matches = sorted(globlib.glob(pattern))
        paths.extend(matches if matches else [pattern])
    try:
        with open(floor) as fh:
            floors = json.load(fh)
    except FileNotFoundError:
        floors = {}
        print(f"note: no floor file at {floor}; nothing is gated")
    rate_gates = {
        "events_per_sec": floors.get("events_per_sec", {}),
        "events_per_sec_batched": floors.get("events_per_sec_batched", {}),
    }
    parallel_gates = floors.get("parallel_events_per_sec", {})
    overhead_gates = {
        "telemetry_idle": floors.get("telemetry_overhead_max_frac"),
        "int_idle": floors.get("int_overhead_max_frac"),
    }
    lb_floor = floors.get("lb_goodput_min")
    rows = []          # (status_ok, line)
    ungated_points = 0
    for path in paths:
        try:
            with open(path) as fh:
                payload = json.load(fh)
        except (FileNotFoundError, ValueError) as exc:
            rows.append((False, f"  {path}: unreadable ({exc})"))
            continue
        bench_name = payload.get("bench", "?")
        series = payload.get("series", [])
        print(f"{path}: bench {bench_name!r}, "
              f"generated {payload.get('generated', '?')}, "
              f"{len(payload.get('workloads', {}))} workloads, "
              f"{len(series)} series points")
        for point in series:
            workload = point.get("workload")
            metric = point.get("metric")
            value = point.get("value")
            bound = None
            if metric in rate_gates and workload in rate_gates[metric]:
                bound = rate_gates[metric][workload]
            elif metric == "events_per_sec" and workload in parallel_gates:
                bound = parallel_gates[workload]
            if bound is not None:
                allowed = bound * (1.0 - tolerance)
                ok = value >= allowed
                rows.append((ok, (
                    f"  {workload} [{metric}]: {value:,.0f} vs floor "
                    f"{bound:,.0f} (min {allowed:,.0f}) -> "
                    + ("ok" if ok else "REGRESSION"))))
            elif (metric == "overhead_frac"
                    and overhead_gates.get(workload) is not None):
                cap = overhead_gates[workload]
                ok = value <= cap
                rows.append((ok, (
                    f"  {workload} [{metric}]: {value:+.2%} vs max "
                    f"{cap:.0%} -> " + ("ok" if ok else "REGRESSION"))))
            elif (workload == "chaos_batch"
                    and metric in ("all_pass", "floor_ok")):
                ok = bool(value)
                rows.append((ok, (
                    f"  chaos {metric}: "
                    + ("ok" if ok else "VIOLATED"))))
            elif (workload.startswith("lb_") and metric == "goodput"
                    and lb_floor is not None):
                ok = value >= lb_floor
                rows.append((ok, (
                    f"  {workload} [goodput]: {value:.4f} vs floor "
                    f"{lb_floor:.2f} -> "
                    + ("ok" if ok else "REGRESSION"))))
            elif (workload.startswith("lb_")
                    and metric in ("invariants_ok", "bit_identical")):
                ok = bool(value)
                rows.append((ok, (
                    f"  {workload} [{metric}]: "
                    + ("ok" if ok else "VIOLATED"))))
            else:
                ungated_points += 1
    for _ok, line in rows:
        print(line)
    failures = sum(1 for ok, _line in rows if not ok)
    print(f"{len(rows)} gated checks, {failures} failing, "
          f"{ungated_points} ungated series points")
    if failures:
        raise SystemExit(f"{failures} bench gate(s) failing")


COMMANDS = {
    "table1": cmd_table1,
    "table2": cmd_table2,
    "table3": cmd_table3,
    "demo": cmd_demo,
    "faults": cmd_faults,
    "rack": cmd_rack,
    "trace": cmd_trace,
    "chaos": cmd_chaos,
    "lb": cmd_lb,
    "int-report": cmd_int_report,
    "bench-report": cmd_bench_report,
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PANIC (HotNets 2018) reproduction: paper tables & demo",
    )
    parser.add_argument(
        "command",
        choices=sorted(COMMANDS) + ["all"],
        help="which artifact to print",
    )
    rack = parser.add_argument_group("rack options")
    rack.add_argument("--nics", type=int, default=None,
                      help="NICs in the rack (2..7 with DSCP flow ids, "
                           "up to 255 with the payload tag; default 4, "
                           "7 for lb)")
    rack.add_argument("--workers", type=int, default=0,
                      help="worker processes (default: min(4, nics))")
    rack.add_argument("--speculative", action="store_true",
                      help="shard with speculative windows + capsule "
                           "rollback instead of conservative barriers")
    rack.add_argument("--flow-id", choices=("auto", "dscp", "tag"),
                      default="auto",
                      help="rack flow-identity encoding (auto: DSCP "
                           "through 7 NICs, payload tag beyond)")
    rack.add_argument("--frames", type=int, default=40,
                      help="frames per directed flow")
    rack.add_argument("--gap-ns", type=int, default=2000,
                      help="inter-frame gap per sender, ns")
    rack.add_argument("--prop-ns", type=int, default=500,
                      help="wire propagation delay, ns (the lookahead)")
    rack.add_argument("--pattern", choices=("symmetric", "fanin"),
                      default=None,
                      help="traffic pattern (default: symmetric for rack, "
                           "fanin for chaos)")
    trace = parser.add_argument_group("trace options (--frames applies too)")
    trace.add_argument("--sample-every", type=int, default=1,
                       help="trace 1 in N injected frames (0: predicate only)")
    trace.add_argument("--trace-out", default=None,
                       help="Chrome trace-event JSON output path "
                            "(trace: default trace.json; chaos/int-report: "
                            "off unless given)")
    trace.add_argument("--timeline", type=int, default=3,
                       help="packet timelines to print")
    chaos = parser.add_argument_group(
        "chaos options (--nics/--workers/--frames/--pattern apply too)")
    chaos.add_argument("--seeds", type=int, default=5,
                       help="number of chaos seeds to run")
    chaos.add_argument("--first-seed", type=int, default=0,
                       help="first seed of the range")
    chaos.add_argument("--transport", default="gbn",
                       choices=("gbn", "sr", "gbn+ll", "sr+ll", "lb"),
                       help="config: go-back-N, selective repeat, either "
                            "+ link-local repair, or the load-balanced "
                            "rack")
    chaos.add_argument("--chaos-out", default="",
                       help="write the chaos report JSON here")
    chaos.add_argument("--chaos-floor", default="benchmarks/chaos/floor.json",
                       help="per-config goodput floor JSON "
                            "({\"floors\": {config: floor}})")
    lb_group = parser.add_argument_group(
        "lb options (--nics/--workers/--frames/--speculative apply too)")
    lb_group.add_argument("--backends", type=int, default=3,
                          help="backends serving the VIP (rack indices "
                               "1..N; the rest are clients)")
    lb_group.add_argument("--drain", default="2@25",
                          help="planned live drain, BACKEND@MICROSECONDS "
                               "('' to disable)")
    lb_group.add_argument("--crash", default="",
                          help="backend NIC crash, BACKEND@MICROSECONDS "
                               "(the health monitor must fail it out)")
    lb_group.add_argument("--lb-out", default="",
                          help="write the lb run report JSON here")
    int_group = parser.add_argument_group(
        "int-report options (--nics/--workers/--frames/--gap-ns/--prop-ns/"
        "--pattern/--speculative/--trace-out apply too)")
    int_group.add_argument("--inband", action="store_true",
                           help="carry the INT hop stack as real in-band "
                                "trailer bytes (frames grow on the wire) "
                                "instead of the zero-cost side channel")
    int_group.add_argument("--burst-depth", type=int, default=8,
                           help="engine queue depth that counts as a "
                                "microburst crossing")
    int_group.add_argument("--int-out", default="",
                           help="write the INT report JSON here")
    bench_group = parser.add_argument_group("bench-report options")
    bench_group.add_argument("--bench", action="append", default=None,
                             metavar="GLOB",
                             help="BENCH_*.json path or glob (repeatable; "
                                  "default: BENCH_*.json)")
    bench_group.add_argument("--bench-floor",
                             default="benchmarks/perf/floor.json",
                             help="floor JSON with the gated bounds")
    bench_group.add_argument("--tolerance", type=float, default=0.30,
                             help="allowed fraction under a throughput "
                                  "floor before it counts as a regression")
    args = parser.parse_args(argv)
    if args.command == "all":
        # rack spawns worker processes and trace writes a file; keep
        # "all" single-process and side-effect free.
        for name in ("table1", "table2", "table3", "demo", "faults"):
            COMMANDS[name]()
            print()
    elif args.command == "rack":
        cmd_rack(nics=args.nics or 4, workers=args.workers,
                 frames=args.frames,
                 gap_ns=args.gap_ns, prop_ns=args.prop_ns,
                 pattern=args.pattern or "symmetric",
                 speculative=args.speculative, flow_id=args.flow_id)
    elif args.command == "trace":
        cmd_trace(frames=args.frames, sample_every=args.sample_every,
                  timeline=args.timeline,
                  out=args.trace_out or "trace.json")
    elif args.command == "chaos":
        cmd_chaos(seeds=args.seeds, first_seed=args.first_seed,
                  nics=args.nics or 4, workers=args.workers or 2,
                  frames=args.frames, pattern=args.pattern or "fanin",
                  transport=args.transport, out=args.chaos_out,
                  trace_out=args.trace_out or "",
                  speculative=args.speculative,
                  floor_file=args.chaos_floor)
    elif args.command == "lb":
        cmd_lb(nics=args.nics or 7, backends=args.backends,
               frames=args.frames, workers=args.workers or 2,
               speculative=args.speculative,
               drain=args.drain, crash=args.crash, out=args.lb_out)
    elif args.command == "int-report":
        cmd_int_report(nics=args.nics or 4, frames=args.frames,
                       gap_ns=args.gap_ns, prop_ns=args.prop_ns,
                       pattern=args.pattern or "fanin",
                       workers=args.workers, speculative=args.speculative,
                       inband=args.inband, burst_depth=args.burst_depth,
                       out=args.int_out, trace_out=args.trace_out or "")
    elif args.command == "bench-report":
        cmd_bench_report(bench=args.bench, floor=args.bench_floor,
                         tolerance=args.tolerance)
    else:
        COMMANDS[args.command]()
    return 0


if __name__ == "__main__":
    sys.exit(main())
