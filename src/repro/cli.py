"""Command-line interface: regenerate the paper's tables from a shell.

Usage::

    python -m repro table1      # offload taxonomy
    python -m repro table2      # line-rate PPS model
    python -m repro table3      # mesh bisection BW / chain length
    python -m repro demo        # the quickstart KV GET, end to end
    python -m repro faults      # crash-and-failover fault-tolerance demo
    python -m repro all         # everything above

The heavier experiments (HOL blocking, isolation, ablations) live in
``benchmarks/`` where pytest-benchmark records their runtimes.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis import format_table, table2_rows
from repro.engines import coverage, table1_rows
from repro.noc import table3_rows
from repro.noc.analysis import TABLE3_PAPER


def cmd_table1() -> None:
    print(format_table(
        ["Project", "Offload Type"],
        table1_rows(),
        title="Table 1: offload types used by prior work",
    ))
    print()
    print(format_table(
        ["Engine", "Offload Type"],
        coverage(),
        title="Engine coverage of the taxonomy (this library)",
    ))


def cmd_table2() -> None:
    rows = [
        [f"{r.line_rate_gbps}Gbps", r.ports,
         f"{r.pps_mpps:.1f}Mpps", f"{r.paper_mpps}Mpps"]
        for r in table2_rows()
    ]
    print(format_table(
        ["Line-rate", "# Eth Ports", "PPS (model)", "PPS (paper)"],
        rows,
        title="Table 2: PPS for line-rate forwarding of minimal packets",
    ))


def cmd_table3() -> None:
    rows = []
    for r, (paper_bw, paper_chain) in zip(table3_rows(), TABLE3_PAPER):
        rows.append([
            f"{r.line_rate_gbps}Gbps x{r.ports}", f"{r.freq_mhz}MHz",
            r.channel_bits, r.topo,
            f"{r.bisection_gbps:.0f} / {paper_bw:.0f}",
            f"{r.chain_length:.2f} / {paper_chain:.2f}",
        ])
    print(format_table(
        ["Line-rate", "Freq", "Bits", "Topo",
         "Bisec Gbps (model/paper)", "Chain Len (model/paper)"],
        rows,
        title="Table 3: on-NIC topology throughput and chain length",
    ))


def cmd_demo() -> None:
    from repro import PanicConfig, PanicNic, Simulator
    from repro.packet import (
        KvOpcode,
        KvRequest,
        build_kv_request_frame,
        parse_frame,
    )
    from repro.sim.clock import format_time

    sim = Simulator()
    nic = PanicNic(sim, PanicConfig(ports=1))
    nic.control.enable_kv_cache()
    nic.offload("kvcache").cache_put(b"hot", b"served-on-nic")
    request = build_kv_request_frame(KvRequest(KvOpcode.GET, 1, 1, b"hot"))
    nic.inject(request)
    sim.run()
    response = parse_frame(nic.transmitted[0].data).kv_response()
    print("response value :", response.value.decode())
    print("request path   :", " -> ".join(request.trail))
    print("finished at    :", format_time(sim.now))
    print("host CPU ran   :", nic.host.interrupts_taken.value, "times")


def cmd_faults() -> None:
    """A compressed fault-tolerance demo: crash one IPSec lane mid-run
    and show the watchdog re-steering traffic onto its backup."""
    from repro import PanicConfig, PanicNic, Simulator
    from repro.faults import FaultInjector, FaultPlan, attach_health_monitor
    from repro.packet import build_udp_frame
    from repro.packet.packet import MessageKind, Packet
    from repro.sim.clock import NS, US, format_time

    sim = Simulator()
    nic = PanicNic(sim, PanicConfig(
        ports=1, offloads=("ipsec", "ipsec1", "compression", "kvcache"),
    ))
    nic.set_backup("ipsec", "ipsec1")
    nic.control.route_dscp(10, ["ipsec"])
    monitor = attach_health_monitor(nic, period_ps=2 * US, timeout_ps=4 * US)
    monitor.start()
    plan = FaultPlan(seed=1).crash_engine(20 * US, "ipsec")
    FaultInjector(nic, plan).arm()
    print(plan.describe())

    def spray(i: int = 0) -> None:
        if i >= 200:
            return
        frame = build_udp_frame(
            src_mac="02:00:00:00:00:01", dst_mac="02:00:00:00:00:02",
            src_ip="10.0.0.1", dst_ip="10.0.0.2",
            src_port=1000 + i, dst_port=9, dscp=10,
            payload=bytes(64),
        )
        nic.inject(Packet(frame, MessageKind.ETHERNET))
        sim.schedule(300 * NS, spray, i + 1)

    spray()
    sim.run(until_ps=120 * US)
    monitor.stop()
    sim.run()
    stats = nic.stats()
    print("failure detected at :", {
        k: format_time(v) for k, v in monitor.failed_at.items()
    })
    print("primary processed   :", stats["ipsec"]["processed"])
    print("backup processed    :", stats["ipsec1"]["processed"])
    print("delivered to host   :", stats["host"]["rx_delivered"])
    print("fault counters      :", stats["faults"])
    nic.mesh.assert_drained()
    print("mesh drained        : yes (0 messages in flight)")


COMMANDS = {
    "table1": cmd_table1,
    "table2": cmd_table2,
    "table3": cmd_table3,
    "demo": cmd_demo,
    "faults": cmd_faults,
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PANIC (HotNets 2018) reproduction: paper tables & demo",
    )
    parser.add_argument(
        "command",
        choices=sorted(COMMANDS) + ["all"],
        help="which artifact to print",
    )
    args = parser.parse_args(argv)
    if args.command == "all":
        for name in ("table1", "table2", "table3", "demo", "faults"):
            COMMANDS[name]()
            print()
    else:
        COMMANDS[args.command]()
    return 0


if __name__ == "__main__":
    sys.exit(main())
