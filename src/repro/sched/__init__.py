"""The logical scheduler: per-engine PIFO queues ranked by slack time.

Section 3.1.3 of the paper: every engine has a local scheduling queue; the
heavyweight RMT pipeline computes an end-to-end *slack time* per offload
in the chain and carries it in the message header; queues are priority
queues ordered by that slack.  "Although simple, this approach is able to
implement any arbitrary local scheduling algorithm" (citing Universal
Packet Scheduling).

This package provides the PIFO (push-in, first-out) queue used at every
engine plus the slack-assignment policies that program it.
"""

from repro.sched.pifo import PifoQueue, PifoFullError
from repro.sched.slack import (
    DeadlineSlackPolicy,
    FifoSlackPolicy,
    SlackPolicy,
    StrictPrioritySlackPolicy,
    WeightedShareSlackPolicy,
)

__all__ = [
    "DeadlineSlackPolicy",
    "FifoSlackPolicy",
    "PifoFullError",
    "PifoQueue",
    "SlackPolicy",
    "StrictPrioritySlackPolicy",
    "WeightedShareSlackPolicy",
]
