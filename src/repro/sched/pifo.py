"""A PIFO (push-in, first-out) priority queue with lossless/lossy policy.

The PIFO abstraction (Sivaraman et al., "Programmable packet scheduling at
line rate") admits arbitrary insertion ranks but always dequeues the
minimum rank.  PANIC ranks messages by their slack deadline.

Overflow policy implements the paper's section 4.3 / section 6 discussion:
the on-chip network is lossless, so drops happen *here*, and only to
messages marked droppable (e.g. lossy network traffic); messages that must
not be dropped (DMA descriptor reads) instead exert backpressure via
:class:`PifoFullError`, which callers translate into flow control.

Ties broken by arrival order (FIFO within equal rank), making the queue
work-conserving and starvation-free among equal ranks.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generic, List, Optional, Tuple, TypeVar

from repro.sim.stats import Counter

T = TypeVar("T")


class PifoFullError(RuntimeError):
    """Raised when a non-droppable push hits a full queue (backpressure)."""


class PifoQueue(Generic[T]):
    """A rank-ordered queue with bounded capacity.

    Parameters
    ----------
    name:
        For statistics and error messages.
    capacity:
        Maximum queued items; ``None`` means unbounded (useful in tests
        and analytical setups).
    """

    def __init__(self, name: str = "pifo", capacity: Optional[int] = None):
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive or None, got {capacity}")
        self.name = name
        self.capacity = capacity
        self._heap: List[Tuple[int, int, bool, T]] = []
        self._seq = itertools.count()
        self.pushed = Counter(f"{name}.pushed")
        self.dropped = Counter(f"{name}.dropped")
        self.rank_corruptions = Counter(f"{name}.rank_corruptions")
        self.max_occupancy = 0
        #: Observer called with the evicted item when drop-worst fires
        #: (set by repro.telemetry; must not mutate the queue).
        self.on_evict: Optional[Callable[[T], None]] = None

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def is_empty(self) -> bool:
        return not self._heap

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self._heap) >= self.capacity

    def push(self, item: T, rank: int, droppable: bool = False) -> bool:
        """Insert ``item`` at ``rank`` (lower dequeues first).

        Returns True if the item was enqueued.  On overflow:

        * if some queued *droppable* item has a worse (higher) rank, it is
          evicted to make room -- drop-worst keeps the queue's service
          guarantees intact for better-ranked traffic;
        * else if ``item`` is droppable, it is dropped (returns False);
        * else raises :class:`PifoFullError` -- lossless messages must not
          vanish, the producer has to stall.
        """
        heap = self._heap
        if self.capacity is not None and len(heap) >= self.capacity:
            if not self._evict_worse_droppable(rank):
                if droppable:
                    self.dropped.add()
                    return False
                raise PifoFullError(
                    f"PIFO {self.name!r} full ({self.capacity}) and no "
                    "droppable item to evict"
                )
        heapq.heappush(heap, (rank, next(self._seq), droppable, item))
        self.pushed.value += 1
        if len(heap) > self.max_occupancy:
            self.max_occupancy = len(heap)
        return True

    def _evict_worse_droppable(self, incoming_rank: int) -> bool:
        """Evict the worst-ranked droppable item if it is worse than
        ``incoming_rank``.  Returns True when a slot was freed."""
        worst_index = -1
        worst_key: Optional[Tuple[int, int]] = None
        for i, (rank, seq, droppable, _item) in enumerate(self._heap):
            if not droppable:
                continue
            key = (rank, seq)
            if worst_key is None or key > worst_key:
                worst_key = key
                worst_index = i
        if worst_index < 0 or worst_key is None:
            return False
        if worst_key[0] < incoming_rank:
            # The incoming item is worse than every droppable resident.
            return False
        evicted = self._heap[worst_index][3]
        self._heap[worst_index] = self._heap[-1]
        self._heap.pop()
        heapq.heapify(self._heap)
        self.dropped.add()
        if self.on_evict is not None:
            self.on_evict(evicted)
        return True

    def corrupt_ranks(self, rng) -> int:
        """Fault injection: scramble the rank store (simulated SRAM upset).

        Every queued item's rank is replaced with a draw from ``rng`` (a
        :class:`~repro.sim.rng.SeededRng`), so subsequent pops serve in a
        corrupted order.  Items are never lost -- PIFO state corruption
        violates scheduling guarantees, not losslessness.  Returns the
        number of entries corrupted.
        """
        if not self._heap:
            return 0
        corrupted = len(self._heap)
        self._heap = [
            (rng.randint(0, 1 << 62), seq, droppable, item)
            for (_rank, seq, droppable, item) in self._heap
        ]
        heapq.heapify(self._heap)
        self.rank_corruptions.add(corrupted)
        return corrupted

    def pop(self) -> Tuple[T, int]:
        """Remove and return ``(item, rank)`` with the minimum rank."""
        if not self._heap:
            raise IndexError(f"pop from empty PIFO {self.name!r}")
        rank, _seq, _droppable, item = heapq.heappop(self._heap)
        return item, rank

    def transit(self, item: T, rank: int, droppable: bool = False) -> None:
        """Push-then-immediately-pop, fused.

        The train lane services a frame the instant it arrives at an idle
        engine; under scalar execution that is a ``push`` followed by a
        ``pop`` in the same picosecond.  The fusion must leave every
        observable identical to that pair: the sequence counter advances
        once (the push's draw), ``pushed`` increments, and occupancy
        peaks at least at 1.  Only valid on an empty queue -- with
        residents the pop might not return ``item``.
        """
        if self._heap:
            raise RuntimeError(
                f"transit through non-empty PIFO {self.name!r}"
            )
        next(self._seq)
        self.pushed.value += 1
        if self.max_occupancy < 1:
            self.max_occupancy = 1

    def peek_batch(self, limit: Optional[int] = None) -> List[Tuple[T, int, bool]]:
        """The next ``limit`` items in pop order, without removing them.

        Returns ``(item, rank, droppable)`` triples ordered exactly as a
        sequence of :meth:`pop` calls would serve them (rank, then
        arrival seq).  Used by the train lane to vet a batch's
        eligibility before committing to :meth:`pop_batch`.
        """
        entries = sorted(self._heap)
        if limit is not None:
            entries = entries[:limit]
        return [(item, rank, droppable)
                for (rank, _seq, droppable, item) in entries]

    def pop_batch(self, count: int) -> List[Tuple[T, int]]:
        """Remove the ``count`` best-ranked items in pop order.

        Equivalent to ``count`` consecutive :meth:`pop` calls (and
        returns the same ``(item, rank)`` pairs), amortizing the
        per-item heap discipline for the train lane.
        """
        heap = self._heap
        if count > len(heap):
            raise IndexError(
                f"pop_batch({count}) from PIFO {self.name!r} "
                f"holding {len(heap)}"
            )
        if count == len(heap):
            batch = sorted(heap)
            heap.clear()
        else:
            batch = [heapq.heappop(heap) for _ in range(count)]
        return [(item, rank) for (rank, _seq, _droppable, item) in batch]

    def peek_rank(self) -> int:
        """Rank of the head item without removing it."""
        if not self._heap:
            raise IndexError(f"peek on empty PIFO {self.name!r}")
        return self._heap[0][0]

    def drain(self) -> List[T]:
        """Remove everything in rank order (used at teardown)."""
        items = []
        while self._heap:
            items.append(self.pop()[0])
        return items

    def __repr__(self) -> str:
        cap = self.capacity if self.capacity is not None else "inf"
        return f"PifoQueue({self.name!r}, {len(self._heap)}/{cap})"
