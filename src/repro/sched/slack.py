"""Slack-assignment policies.

The RMT pipeline stamps every message with an absolute deadline
(``arrival + slack``); engines dequeue in deadline order.  Different
policies turn high-level intent (latency SLOs, tenant weights, strict
priority) into slack values -- section 3.1.3 notes that computing slack to
enforce a high-level policy is the interesting open problem; these classes
are the concrete policies the benchmarks use.

Each policy exposes ``slack_ps(tenant, now_ps)`` so it can be used both by
RMT table entries (precomputed per-tenant constants) and directly by
baseline simulators.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.sim.clock import US


class SlackPolicy:
    """Base class: maps (tenant, arrival time) to an absolute deadline."""

    def deadline_ps(self, tenant: Optional[int], now_ps: int) -> int:
        raise NotImplementedError

    def slack_ps(self, tenant: Optional[int]) -> int:
        """The relative slack this policy grants ``tenant``."""
        return self.deadline_ps(tenant, 0)


class FifoSlackPolicy(SlackPolicy):
    """No differentiation: deadline == arrival, so the PIFO degenerates to
    FIFO (the baseline the isolation experiment compares against)."""

    def deadline_ps(self, tenant: Optional[int], now_ps: int) -> int:
        return now_ps


class DeadlineSlackPolicy(SlackPolicy):
    """Per-tenant latency targets: slack = the tenant's SLO budget.

    A latency-sensitive tenant with a 10 us SLO gets a much earlier
    deadline than a batch tenant with a 1 ms SLO arriving at the same
    instant, so it bypasses queued batch work (the paper's section 3.2
    "high-priority messages bypass other pending DMA requests").
    """

    def __init__(self, targets_ps: Dict[int, int], default_ps: int = 1000 * US):
        if not targets_ps and default_ps <= 0:
            raise ValueError("deadline policy needs targets or a positive default")
        for tenant, target in targets_ps.items():
            if target <= 0:
                raise ValueError(f"tenant {tenant} target must be positive: {target}")
        self.targets_ps = dict(targets_ps)
        self.default_ps = default_ps

    def deadline_ps(self, tenant: Optional[int], now_ps: int) -> int:
        if tenant is not None and tenant in self.targets_ps:
            return now_ps + self.targets_ps[tenant]
        return now_ps + self.default_ps


class StrictPrioritySlackPolicy(SlackPolicy):
    """Priority classes as widely separated slack bands.

    Class 0 gets slack 0, class 1 gets ``band_ps``, class 2 gets
    ``2 * band_ps``...  With a band wider than any realistic queueing
    delay this reproduces strict priority exactly.
    """

    def __init__(self, tenant_class: Dict[int, int], band_ps: int = 100_000 * US):
        if band_ps <= 0:
            raise ValueError(f"band must be positive, got {band_ps}")
        for tenant, cls in tenant_class.items():
            if cls < 0:
                raise ValueError(f"tenant {tenant} class must be >= 0: {cls}")
        self.tenant_class = dict(tenant_class)
        self.band_ps = band_ps

    def deadline_ps(self, tenant: Optional[int], now_ps: int) -> int:
        cls = self.tenant_class.get(tenant, max(self.tenant_class.values(), default=0) + 1)
        return now_ps + cls * self.band_ps


class WeightedShareSlackPolicy(SlackPolicy):
    """Approximate weighted fair sharing via virtual finish times.

    Each tenant accumulates a virtual time advanced by ``cost / weight``
    per message; the deadline is the tenant's virtual finish time.  This
    is the classic start-time fair queueing construction expressed as a
    slack policy (per Universal Packet Scheduling, a PIFO on virtual
    finish times realizes WFQ).
    """

    def __init__(self, weights: Dict[int, float], default_weight: float = 1.0):
        for tenant, weight in weights.items():
            if weight <= 0:
                raise ValueError(f"tenant {tenant} weight must be positive: {weight}")
        if default_weight <= 0:
            raise ValueError(f"default weight must be positive: {default_weight}")
        self.weights = dict(weights)
        self.default_weight = default_weight
        self._virtual_finish: Dict[Optional[int], float] = {}

    def deadline_ps(
        self,
        tenant: Optional[int],
        now_ps: int,
        cost_ps: int = 1000,
    ) -> int:
        weight = self.weights.get(tenant, self.default_weight)
        start = max(self._virtual_finish.get(tenant, 0.0), float(now_ps))
        finish = start + cost_ps / weight
        self._virtual_finish[tenant] = finish
        return int(finish)
