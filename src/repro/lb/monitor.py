"""Backend liveness for the load balancer: heartbeats over the cables.

The LB host probes every live backend periodically with a magic-tagged
UDP payload; each backend's host echoes it straight back.  Probes and
echoes ride the exact data path client traffic uses -- host doorbell,
RMT classification, egress cable, the backend's DMA path -- so a
backend that went dark at its MACs (``NIC_DOWN``), wedged its pipeline,
or lost its cable all look identical: echoes stop.  When a backend's
last echo is older than ``timeout_ps`` the monitor calls
``steering.fail(backend)``, which re-epochs the VIP away from it.

Both sides are pure host software layered *around* the reliable
transport: :func:`attach_heartbeat_responder` and the monitor's own RX
hook wrap the NIC's existing ``software_handler`` and pass everything
that is not a heartbeat through unchanged.

Everything is deterministic -- fixed probe period, no RNG -- so
monitor-driven failovers replay bit-identically under sharded and
speculative execution (detection latency quantizes to the probe tick).
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, Iterable, Tuple

from repro.sim.clock import US

#: Magic tag marking a heartbeat payload ("LB" in ASCII).
HB_MAGIC = 0x4C42
HB_PROBE = 0
HB_ECHO = 1

_HB = struct.Struct("!HBH")  # magic, type, sender rack index
HB_BYTES = _HB.size

#: Probe cadence and declaration threshold.  Heartbeats are sparse, so
#: both host crossings sit on the PCIe engine's interrupt-coalescing
#: *timeout* path (10 us each side when fewer than ``coalesce_count``
#: completions are pending) on top of software delays and NIC
#: traversals: a healthy backend can legitimately go ~27 us between
#: echoes.  The timeout clears that worst case with margin -- no false
#: failover -- while a dark backend is still declared well inside the
#: monitor's 150 us run.
DEFAULT_HB_PERIOD_PS = 5 * US
DEFAULT_HB_TIMEOUT_PS = 45 * US

#: Stop instant: the periodic probe tick would otherwise keep the event
#: heap alive forever.  Comfortably past the chaos horizon (100 us).
DEFAULT_MONITOR_STOP_PS = 150 * US


def pack_heartbeat(hb_type: int, index: int) -> bytes:
    return _HB.pack(HB_MAGIC, hb_type, index)


def parse_heartbeat(payload: bytes):
    """``(type, sender)`` when ``payload`` starts with a heartbeat,
    else None."""
    if len(payload) < HB_BYTES:
        return None
    magic, hb_type, index = _HB.unpack_from(payload)
    if magic != HB_MAGIC or hb_type not in (HB_PROBE, HB_ECHO):
        return None
    return hb_type, index


def attach_heartbeat_responder(
    nic,
    index: int,
    frame_builder: Callable[[int, bytes], bytes],
    *,
    payload_offset: int = 42,
) -> None:
    """Make a backend's host echo heartbeat probes.

    Wraps the NIC's current ``software_handler`` (the reliable
    transport's RX hook): probes are swallowed and echoed to their
    sender, everything else passes through.  ``frame_builder`` must
    address the *real* host IP of peer ``dst`` -- echoing to the VIP
    would bounce off the LB's own ``vip_steer`` back into a backend.
    """
    inner = nic.host.software_handler

    def dispatch(packet, queue: int) -> None:
        parsed = parse_heartbeat(packet.data[payload_offset:])
        if parsed is not None:
            hb_type, sender = parsed
            if hb_type == HB_PROBE:
                nic.host.enqueue_tx(
                    frame_builder(sender, pack_heartbeat(HB_ECHO, index))
                )
            return  # echoes addressed here are stray; swallow them too
        if inner is not None:
            inner(packet, queue)

    nic.host.software_handler = dispatch


class BackendHealthMonitor:
    """The LB-side half: probe, listen, declare, fail out.

    Parameters
    ----------
    nic:
        The load balancer's NIC (probes leave through its pipeline).
    index:
        The LB's rack index (stamped into probes).
    steering:
        The :class:`~repro.lb.steering.LbSteering` to call ``fail`` on.
    frame_builder:
        ``frame_builder(dst, payload) -> bytes`` addressing backend
        ``dst``'s real host IP.
    """

    def __init__(
        self,
        nic,
        index: int,
        steering,
        frame_builder: Callable[[int, bytes], bytes],
        *,
        period_ps: int = DEFAULT_HB_PERIOD_PS,
        timeout_ps: int = DEFAULT_HB_TIMEOUT_PS,
        payload_offset: int = 42,
    ):
        if period_ps <= 0 or timeout_ps <= period_ps:
            raise ValueError(
                f"need 0 < period_ps < timeout_ps, got "
                f"{period_ps} / {timeout_ps}"
            )
        self.nic = nic
        self.index = index
        self.steering = steering
        self.frame_builder = frame_builder
        self.period_ps = period_ps
        self.timeout_ps = timeout_ps
        self.probes_sent = 0
        self.echoes_seen = 0
        #: backend -> instant its silence was declared a failure.
        self.detected: Dict[int, int] = {}
        self._last_seen: Dict[int, int] = {}
        self._running = False
        self._gen = 0

        inner = nic.host.software_handler

        def dispatch(packet, queue: int) -> None:
            parsed = parse_heartbeat(packet.data[payload_offset:])
            if parsed is not None:
                hb_type, sender = parsed
                if hb_type == HB_ECHO:
                    self.echoes_seen += 1
                    self._last_seen[sender] = nic.sim.now
                return
            if inner is not None:
                inner(packet, queue)

        nic.host.software_handler = dispatch

    def start(self) -> None:
        """Begin probing.  Backends get a full timeout of grace from
        here before silence can be declared."""
        if self._running:
            raise RuntimeError("monitor already running")
        self._running = True
        self._gen += 1
        now = self.nic.sim.now
        for backend in self.steering.live_backends():
            self._last_seen.setdefault(backend, now)
        self._tick(self._gen)

    def stop(self) -> None:
        """Stop probing so the event heap can drain.  Idempotent."""
        self._running = False
        self._gen += 1

    def _tick(self, gen: int) -> None:
        if not self._running or gen != self._gen:
            return
        now = self.nic.sim.now
        for backend in self.steering.live_backends():
            last = self._last_seen.setdefault(backend, now)
            if now - last > self.timeout_ps:
                # Never empty the live set: with one backend left there
                # is nowhere to steer, so keep probing and hope.
                if len(self.steering.live_backends()) > 1:
                    if self.steering.fail(backend):
                        self.detected[backend] = now
                    continue
            self.nic.host.enqueue_tx(
                self.frame_builder(backend,
                                   pack_heartbeat(HB_PROBE, self.index))
            )
            self.probes_sent += 1
        self.nic.sim.schedule_at(now + self.period_ps, self._tick, gen)

    def stats(self) -> Dict[str, int]:
        return {
            "hb_probes_sent": self.probes_sent,
            "hb_echoes_seen": self.echoes_seen,
            "hb_failures_detected": len(self.detected),
        }

    def report(self) -> dict:
        return {
            "detected": dict(self.detected),
            **self.stats(),
        }
