"""The consistent-hash ring behind ``vip_steer``.

Each live backend contributes ``vnodes`` points on a 32-bit ring; a flow
key owns the first point clockwise from ``key & 0xFFFFFFFF``.  Removing
a backend deletes only its points, so at most ``1/len(backends)`` of the
keyspace changes owner -- the property that makes live drain cheap: the
affinity table pins established flows anyway, but new flows that *would*
have hashed to a surviving backend still do.

The ring is pure data.  :meth:`HashRing.as_param` renders it as the
sorted point tuple the ``affinity_steer``/``consistent_select`` actions
binary-search per packet (see :mod:`repro.rmt.action`); the control
plane snapshots it into a table entry's params, so mutating the ring
never changes an installed epoch retroactively.
"""

from __future__ import annotations

from typing import Iterable, Tuple

from repro.rmt.action import flow_key64, ring_lookup

#: Virtual nodes per backend.  32 keeps the per-drain churn within a few
#: percent of ideal while the per-packet binary search stays shallow
#: (128 points for 4 backends -> 7 comparisons).
DEFAULT_VNODES = 32


def ring_points(backends: Iterable[int],
                vnodes: int = DEFAULT_VNODES) -> Tuple[Tuple[int, int], ...]:
    """The sorted ``(point, backend)`` tuple for a backend set.

    Points are the low 32 bits of the FNV-1a 64 hash of
    ``(backend, replica)`` -- the same hash family the data plane keys
    flows with, so the point layout is reproducible from the backend
    indices alone (no RNG, no insertion-order dependence).
    """
    points = []
    for backend in sorted(set(backends)):
        for replica in range(vnodes):
            point = flow_key64((backend, replica)) & 0xFFFFFFFF
            points.append((point, backend))
    points.sort()
    return tuple(points)


class HashRing:
    """A mutable backend set rendering consistent-hash ring snapshots."""

    def __init__(self, backends: Iterable[int] = (),
                 vnodes: int = DEFAULT_VNODES):
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self._backends = set(int(b) for b in backends)
        self._points: Tuple[Tuple[int, int], ...] = ()
        self._dirty = True

    @property
    def backends(self) -> Tuple[int, ...]:
        return tuple(sorted(self._backends))

    def add(self, backend: int) -> None:
        if backend in self._backends:
            raise ValueError(f"backend {backend} already on the ring")
        self._backends.add(int(backend))
        self._dirty = True

    def remove(self, backend: int) -> None:
        if backend not in self._backends:
            raise ValueError(f"backend {backend} not on the ring")
        self._backends.discard(backend)
        self._dirty = True

    def as_param(self) -> Tuple[Tuple[int, int], ...]:
        """The sorted point tuple for the *current* backend set.

        Callers must treat the result as immutable: installed table
        entries hold a reference to exactly this snapshot.
        """
        if self._dirty:
            self._points = ring_points(self._backends, self.vnodes)
            self._dirty = False
        return self._points

    def owner(self, key: int) -> int:
        """The backend owning ``key`` on the current ring (the same
        lookup the data-plane action performs; for tests and sizing)."""
        return ring_lookup(self.as_param(), key)

    def __len__(self) -> int:
        return len(self._backends)

    def __contains__(self, backend: int) -> bool:
        return backend in self._backends
