"""RMT-resident L4 load balancing (DESIGN.md section 17).

The load balancer is not a middlebox: it is table entries and register
arrays inside the PANIC NIC's own heavyweight RMT pipeline.  A
``vip_steer`` entry matches frames addressed to a virtual IP and runs
the ``affinity_steer`` action -- consistent-hash backend selection with
a Register-backed connection-affinity table -- and ``lb_egress`` turns
the chosen backend into a chain ending at the cable's MAC, so steered
frames never touch the LB host (direct server return).

* :class:`~repro.lb.ring.HashRing` -- the consistent-hash ring.
* :class:`~repro.lb.steering.LbSteering` -- the control plane: versioned
  rule epochs with make-before-break installs, planned ``drain`` and
  failure-driven ``fail``, and garbage collection of masked entries.
* :class:`~repro.lb.monitor.BackendHealthMonitor` -- heartbeat probes
  over the same cables the traffic uses; a silent backend is failed out
  automatically.
* :mod:`repro.lb.rack` -- the rack workload: one LB NIC, N backends
  serving a VIP with direct server return, M clients running a reliable
  transport against the VIP.
"""

from repro.lb.monitor import (
    BackendHealthMonitor,
    DEFAULT_HB_PERIOD_PS,
    DEFAULT_HB_TIMEOUT_PS,
    attach_heartbeat_responder,
)
from repro.lb.rack import (
    DEFAULT_VIP_IP,
    build_lb_rack_nic,
    lb_rack_topology,
)
from repro.lb.ring import DEFAULT_VNODES, HashRing
from repro.lb.steering import DEFAULT_AFFINITY_SLOTS, LbSteering

__all__ = [
    "BackendHealthMonitor",
    "DEFAULT_AFFINITY_SLOTS",
    "DEFAULT_HB_PERIOD_PS",
    "DEFAULT_HB_TIMEOUT_PS",
    "DEFAULT_VIP_IP",
    "DEFAULT_VNODES",
    "HashRing",
    "LbSteering",
    "attach_heartbeat_responder",
    "build_lb_rack_nic",
    "lb_rack_topology",
]
