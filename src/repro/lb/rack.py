"""The load-balanced rack workload: clients, a VIP, backends.

Topology (all-pairs cabling, same as every other rack workload)::

    index 0                 -- the load balancer (owns the VIP)
    indices 1..n_backends   -- backends (serve the VIP, direct return)
    the rest                -- clients (one reliable flow each -> VIP)

A client addresses the *virtual* IP; the LB's ``vip_steer``/``lb_egress``
stages forward the frame -- unmodified, never touching the LB host --
out the cable to the backend its flow key owns.  The backend's reliable
transport accepts segments addressed to the virtual index
(``accept_dst``) and stamps ACKs with it (``reply_as``), replying
straight to the client over their direct cable: textbook direct server
return, so the LB carries only client->VIP traffic even at full incast.

Each client runs exactly one flow (one affinity entry) and starts at a
staggered offset, so a mid-run ``drain`` splits the clients into
affinity-pinned old flows (completing on the draining backend) and new
flows (hashed into the post-drain ring) -- the make-before-break epoch
protocol exercised end to end.

``build_lb_rack_nic`` is module-level and picklable by reference, as
the shard workers require.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.core.config import PanicConfig
from repro.core.panic import PanicNic
from repro.core.topology import LinkSpec, NicSpec, RackTopology
from repro.lb.monitor import (
    BackendHealthMonitor,
    DEFAULT_HB_PERIOD_PS,
    DEFAULT_HB_TIMEOUT_PS,
    DEFAULT_MONITOR_STOP_PS,
    attach_heartbeat_responder,
)
from repro.lb.steering import (
    DEFAULT_AFFINITY_SLOTS,
    DEFAULT_IDLE_PS,
    LbSteering,
)
from repro.packet.builder import build_udp_frame
from repro.packet.headers import RACK_TAG_BYTES, RACK_TAG_UDP_PORT
from repro.reliability.selective import SelectiveRepeatTransport
from repro.reliability.transport import (
    DEFAULT_MAX_RETRIES,
    DEFAULT_WINDOW,
    ReliableTransport,
    default_rto_ps,
)
from repro.sim.clock import US
from repro.sim.kernel import Simulator
from repro.sim.rng import SeededRng
from repro.workloads.rack import (
    flow_dscp,
    flow_tag,
    rack_mesh_size,
    rack_port,
    resolve_flow_id,
)
from repro.workloads.wire import DEFAULT_PROPAGATION_PS

#: The virtual IP.  Deliberately outside every host's ``10.0.<i>.1``
#: range: traffic to a host's *real* IP (heartbeats, ACK echoes) must
#: fall through ``vip_steer`` to the normal DMA path.
DEFAULT_VIP_IP = "10.0.99.1"

#: The LB's rack index; also the virtual index clients send flows to.
VIP_INDEX = 0


def lb_layout(n_nics: int, n_backends: int) -> Tuple[Tuple[int, ...],
                                                     Tuple[int, ...]]:
    """``(backends, clients)`` index tuples for a layout."""
    if n_backends < 1:
        raise ValueError(f"need at least one backend, got {n_backends}")
    if n_nics < n_backends + 2:
        raise ValueError(
            f"{n_nics} NICs cannot seat an LB, {n_backends} backends, "
            f"and at least one client"
        )
    backends = tuple(range(1, 1 + n_backends))
    clients = tuple(range(1 + n_backends, n_nics))
    return backends, clients


def client_flow_key(index: int) -> Tuple[int, int]:
    """The affinity-field values a client's frames carry: (src IP as
    int, UDP source port).  Mirrors the frame builder below; tests use
    it to prove a rack shape is collision-free in the affinity table."""
    ip = (10 << 24) | (index << 8) | 1  # 10.0.<index>.1
    return ip, 40000 + index


def build_lb_rack_nic(
    sim: Simulator,
    name: str,
    *,
    index: int,
    n_nics: int,
    n_backends: int,
    frames: int,
    gap_ps: int = 2 * US,
    stagger_ps: int = 10 * US,
    payload_bytes: int = 256,
    seed: int = 0,
    fast_path: bool = True,
    telemetry=None,
    int_=None,
    propagation_ps: int = DEFAULT_PROPAGATION_PS,
    window: int = DEFAULT_WINDOW,
    max_retries: int = DEFAULT_MAX_RETRIES,
    transport: str = "gbn",
    flow_id: str = "auto",
    vip_ip: str = DEFAULT_VIP_IP,
    slots: int = DEFAULT_AFFINITY_SLOTS,
    idle_ps: int = DEFAULT_IDLE_PS,
    hb_period_ps: int = DEFAULT_HB_PERIOD_PS,
    hb_timeout_ps: int = DEFAULT_HB_TIMEOUT_PS,
    monitor_stop_ps: int = DEFAULT_MONITOR_STOP_PS,
    drain: Optional[Tuple[int, int]] = None,
) -> Tuple[PanicNic, Callable[[], dict]]:
    """Build node ``index`` of the load-balanced rack.

    ``drain=(backend, at_ps)`` schedules a planned live drain on the LB
    node (ignored elsewhere).  Client ``c`` (zero-based among clients)
    starts its flow at ``c * stagger_ps``, sending ``frames`` payloads
    ``gap_ps`` apart to the VIP.

    Returns ``(nic, report)``.  Every report carries ``role`` and
    ``stats``; the LB adds ``steering``/``monitor``, backends add
    ``deliveries``, clients add ``tx_flows``/``fct``/``failures``.
    """
    if transport not in ("gbn", "sr"):
        raise ValueError(f"unknown transport {transport!r}")
    flow_id = resolve_flow_id(flow_id, n_nics)
    tagged = flow_id == "tag"
    backends, clients = lb_layout(n_nics, n_backends)
    mesh_side = rack_mesh_size(n_nics - 1)
    config = PanicConfig(
        ports=n_nics - 1,
        offloads=("checksum",),
        seed=seed + index,
        fast_path=fast_path,
        telemetry=telemetry,
        int_=int_,
        verify_checksums=True,
        mesh_width=mesh_side,
        mesh_height=mesh_side,
    )
    nic = PanicNic(sim, config, name=name)

    peers = [peer for peer in range(n_nics) if peer != index]
    for peer in peers:
        if tagged:
            nic.control.route_tag_tx(
                flow_tag(index, peer, n_nics),
                chain=["checksum"],
                egress_port=rack_port(index, peer),
            )
            nic.control.set_tag_slack(
                flow_tag(peer, index, n_nics), (1 + peer) * 200 * US
            )
        else:
            nic.control.route_dscp_tx(
                flow_dscp(index, peer, n_nics),
                chain=["checksum"],
                egress_port=rack_port(index, peer),
            )
            nic.control.set_dscp_slack(
                flow_dscp(peer, index, n_nics), (1 + peer) * 200 * US
            )

    shim = RACK_TAG_BYTES if tagged else 0
    payload_offset = 42 + shim

    def frame_builder(dst: int, segment: bytes, real: bool = False) -> bytes:
        # ``dst == VIP_INDEX`` addresses the *virtual* IP unless the
        # caller asks for the real host (heartbeat echoes to the LB).
        dst_ip = (vip_ip if dst == VIP_INDEX and not real
                  else f"10.0.{dst}.1")
        prefix = (flow_tag(index, dst, n_nics).to_bytes(2, "big")
                  if tagged else b"")
        return build_udp_frame(
            src_mac="02:00:00:00:00:%02x" % (index + 1),
            dst_mac="02:00:00:00:00:%02x" % (dst + 1),
            src_ip=f"10.0.{index}.1",
            dst_ip=dst_ip,
            src_port=40000 + index,
            dst_port=RACK_TAG_UDP_PORT if tagged else 9000,
            payload=prefix + segment,
            dscp=0 if tagged else flow_dscp(index, dst, n_nics),
        )

    role = ("lb" if index == VIP_INDEX
            else "backend" if index in backends else "client")

    steering = monitor = proto = None
    deliveries = []
    total_sent = 0

    if role == "lb":
        steering = LbSteering(
            nic, vip_ip,
            {b: rack_port(index, b) for b in backends},
            slots=slots, idle_ps=idle_ps,
        )
        monitor = BackendHealthMonitor(
            nic, index, steering,
            lambda dst, payload: frame_builder(dst, payload, real=True),
            period_ps=hb_period_ps,
            timeout_ps=hb_timeout_ps,
            payload_offset=payload_offset,
        )
        monitor.start()
        sim.schedule_at(monitor_stop_ps, monitor.stop)
        if drain is not None:
            backend, at_ps = drain
            sim.schedule_at(at_ps, steering.drain, backend)
        # Reclaim masked epochs once the experiment is quiescing -- the
        # "old rules are garbage-collected" end of make-before-break.
        sim.schedule_at(monitor_stop_ps, steering.gc)
    else:
        def on_deliver(src: int, seq: int, payload: bytes,
                       queue: int) -> None:
            deliveries.append((src, seq, sim.now, queue))

        transport_cls = (SelectiveRepeatTransport if transport == "sr"
                         else ReliableTransport)
        serving = role == "backend"
        proto = transport_cls(
            nic, index,
            frame_builder=frame_builder,
            rng=SeededRng(seed + index).fork("reliability"),
            rto_initial_ps=default_rto_ps(2 * propagation_ps),
            window=window,
            max_retries=max_retries,
            on_deliver=on_deliver,
            accept_dst={VIP_INDEX} if serving else None,
            reply_as=VIP_INDEX if serving else None,
        )
        if serving:
            attach_heartbeat_responder(
                nic, index,
                lambda dst, payload: frame_builder(dst, payload, real=True),
                payload_offset=payload_offset,
            )
        else:
            ordinal = clients.index(index)
            start_ps = ordinal * stagger_ps
            pad = bytes(max(0, payload_bytes - 16))
            for seq in range(frames):
                sim.schedule_at(start_ps + seq * gap_ps,
                                proto.send, VIP_INDEX, pad)
                total_sent += 1

    def report() -> dict:
        rep = {"role": role, "index": index, "stats": nic.stats()}
        if steering is not None:
            rep["steering"] = steering.report()
        if monitor is not None:
            rep["monitor"] = monitor.report()
        if proto is not None:
            rep.update(
                deliveries=sorted(deliveries),
                sent=total_sent,
                tx_flows=proto.flow_report(),
                fct=proto.fct_report(),
                failures=proto.failure_report(),
            )
        if nic.telemetry is not None:
            rep["trace"] = nic.telemetry.trace_report()
        return rep

    return nic, report


def lb_rack_topology(
    nics: int = 7,
    n_backends: int = 3,
    frames: int = 30,
    gap_ps: int = 2 * US,
    stagger_ps: int = 10 * US,
    payload_bytes: int = 256,
    propagation_ps: int = DEFAULT_PROPAGATION_PS,
    seed: int = 0,
    fast_path: bool = True,
    telemetry=None,
    int_=None,
    window: int = DEFAULT_WINDOW,
    max_retries: int = DEFAULT_MAX_RETRIES,
    transport: str = "gbn",
    flow_id: str = "auto",
    vip_ip: str = DEFAULT_VIP_IP,
    slots: int = DEFAULT_AFFINITY_SLOTS,
    idle_ps: int = DEFAULT_IDLE_PS,
    hb_period_ps: int = DEFAULT_HB_PERIOD_PS,
    hb_timeout_ps: int = DEFAULT_HB_TIMEOUT_PS,
    monitor_stop_ps: int = DEFAULT_MONITOR_STOP_PS,
    drain: Optional[Tuple[int, int]] = None,
) -> RackTopology:
    """An all-pairs rack serving a VIP: LB at index 0, ``n_backends``
    backends, the remaining NICs clients (module docstring)."""
    flow_id = resolve_flow_id(flow_id, nics)
    lb_layout(nics, n_backends)  # validate the shape up front
    specs = [
        NicSpec(
            f"nic{i}",
            build_lb_rack_nic,
            {
                "index": i,
                "n_nics": nics,
                "n_backends": n_backends,
                "frames": frames,
                "gap_ps": gap_ps,
                "stagger_ps": stagger_ps,
                "payload_bytes": payload_bytes,
                "seed": seed,
                "fast_path": fast_path,
                "telemetry": telemetry,
                "int_": int_,
                "propagation_ps": propagation_ps,
                "window": window,
                "max_retries": max_retries,
                "transport": transport,
                "flow_id": flow_id,
                "vip_ip": vip_ip,
                "slots": slots,
                "idle_ps": idle_ps,
                "hb_period_ps": hb_period_ps,
                "hb_timeout_ps": hb_timeout_ps,
                "monitor_stop_ps": monitor_stop_ps,
                "drain": drain,
            },
        )
        for i in range(nics)
    ]
    links = [
        LinkSpec(
            f"nic{i}", f"nic{j}",
            port_a=rack_port(i, j),
            port_b=rack_port(j, i),
            propagation_ps=propagation_ps,
        )
        for i in range(nics)
        for j in range(i + 1, nics)
    ]
    return RackTopology(specs, links)
