"""The load balancer's control plane: rule epochs over ``vip_steer``.

One :class:`LbSteering` owns a NIC's VIP: it declares the affinity
registers, installs the per-backend ``lb_egress`` chains, and manages
the versioned ``vip_steer`` entries that bind the VIP to a consistent
ring snapshot.

Reprogramming is **make-before-break**: every backend-set change bumps
the epoch and installs the new entry -- priority equal to the epoch, so
it immediately masks every older entry -- *before* anything is removed.
There is never an instant with no matching rule, so no packet can fall
through to the default DMA route mid-update.  Masked entries linger
until :meth:`gc`, which is safe at any time because they can no longer
match first.

Established flows never move: ``affinity_steer`` consults the register
table before the ring, and entries inserted under an old epoch keep
returning their pinned backend whatever the current ring says.  A
*drain* therefore only redirects flows that first appear after it; a
*fail* additionally strands the dead backend's pinned flows, which the
client transports abort after bounded retries (the rack-level
accounting invariant still closes: ``sent == acked + failed``).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.core.pipeline_programs import DIR_RX
from repro.lb.ring import DEFAULT_VNODES, HashRing
from repro.packet.addresses import IPv4Address
from repro.rmt.action import (
    LB_STAT_BYPASS,
    LB_STAT_EVICTIONS,
    LB_STAT_HITS,
    LB_STAT_INSERTS,
    LB_STAT_STEERED,
    LB_STAT_CELLS,
)
from repro.rmt.table import ternary_match
from repro.sim.clock import MS

#: Affinity table capacity.  Direct-indexed (no chaining): a live slot
#: collision falls back to ring-only steering, so size generously for
#: the experiment's concurrent-flow count (tests assert the shipped
#: rack shapes are collision-free).
DEFAULT_AFFINITY_SLOTS = 256

#: Idle eviction horizon.  Must exceed the worst-case retransmission
#: backoff of the transports using the VIP, or a retransmit could
#: re-insert a flow under a newer epoch (an affinity violation).
DEFAULT_IDLE_PS = 4 * MS

#: Fields identifying a connection.  The rack workloads give every
#: client one UDP source port, so (source IP, source port) is exactly
#: one affinity entry per client flow.
DEFAULT_AFFINITY_FIELDS = ("ipv4.src", "udp.src_port")


class LbSteering:
    """Control plane for one VIP on one NIC's RMT program.

    Parameters
    ----------
    nic:
        The :class:`~repro.core.panic.PanicNic` whose pipeline hosts the
        balancer.
    vip:
        The virtual IP (dotted quad or int).  Must differ from the LB
        host's own IP, or host-terminated traffic (heartbeat echoes,
        management) would be steered to backends.
    backend_ports:
        ``{backend_id: ethernet_port}`` -- every backend the VIP can
        ever use, with the LB-local port cabled to it.  ``lb_egress``
        entries are installed for all of them up front; the *live* set
        (initially all) shrinks via :meth:`drain`/:meth:`fail`.
    """

    def __init__(
        self,
        nic,
        vip,
        backend_ports: Dict[int, int],
        *,
        slots: int = DEFAULT_AFFINITY_SLOTS,
        vnodes: int = DEFAULT_VNODES,
        idle_ps: int = DEFAULT_IDLE_PS,
        fields: Iterable[str] = DEFAULT_AFFINITY_FIELDS,
    ):
        if not backend_ports:
            raise ValueError("load balancer needs at least one backend")
        if slots < 1:
            raise ValueError(f"affinity slots must be >= 1, got {slots}")
        self.nic = nic
        self.vip = IPv4Address(vip).value if not isinstance(vip, int) else vip
        self.backend_ports = dict(backend_ports)
        self.idle_ps = idle_ps
        self.fields = tuple(fields)
        self.ring = HashRing(backend_ports, vnodes=vnodes)
        self.epoch = 0
        #: backend -> instant it left the live set, by verb.
        self.draining: Dict[int, int] = {}
        self.failed: Dict[int, int] = {}
        #: (epoch, TableEntry) of every installed vip_steer entry.
        self._entries: list = []
        self._gc_count = 0

        program = nic.control.program
        self._registers = {
            "key_reg": "lb_key",
            "backend_reg": "lb_backend",
            "stamp_reg": "lb_stamp",
            "epoch_reg": "lb_epoch",
        }
        for reg in self._registers.values():
            program.add_register(reg, slots)
        program.add_register("lb_stats", LB_STAT_CELLS)
        self._stats_reg = program.registers["lb_stats"]

        egress = program.table("lb_egress")
        for backend, port in sorted(self.backend_ports.items()):
            egress.add(
                [backend], "set_chain",
                {"chain": [nic.control.port_addr(port)]},
            )

        self._tracer = None
        self._trace_ctx = None
        if nic.telemetry is not None:
            self._tracer = nic.telemetry.tracer
            self._trace_ctx = self._tracer.flow_ctx()

        self._install_epoch()

    # ------------------------------------------------------------------
    # Epoch protocol
    # ------------------------------------------------------------------

    def _install_epoch(self) -> None:
        """Install the current ring under the current epoch number."""
        entry = self.nic.control.program.table("vip_steer").add(
            [DIR_RX, ternary_match(self.vip, 0xFFFFFFFF)],
            "affinity_steer",
            {
                "fields": list(self.fields),
                "ring": self.ring.as_param(),
                "stats_reg": "lb_stats",
                "epoch": self.epoch,
                "idle_ps": self.idle_ps,
                **self._registers,
            },
            priority=self.epoch,
        )
        self._entries.append((self.epoch, entry))
        self._trace("lb_epoch", (("epoch", self.epoch),
                                 ("backends", len(self.ring))))

    def advance(self) -> int:
        """Make-before-break: install the current ring as a new epoch.

        The old entry is still installed (masked by priority) when the
        new one becomes matchable; :meth:`gc` reclaims it later.
        Returns the new epoch number.
        """
        self.epoch += 1
        self._install_epoch()
        return self.epoch

    def drain(self, backend: int) -> bool:
        """Planned removal: stop steering *new* flows at ``backend``.

        Affinity-pinned flows keep completing on it (zero-loss
        migration); once they finish the backend is idle and can be
        serviced.  Returns False when the backend already left the live
        set (idempotent, so a human drain racing the health monitor's
        fail is harmless).
        """
        if not self._retire(backend):
            return False
        self.draining[backend] = self.nic.sim.now
        self.advance()
        self._trace("lb_drain", (("backend", backend),
                                 ("epoch", self.epoch)))
        return True

    def fail(self, backend: int) -> bool:
        """Failure-driven removal (the health monitor's verb).

        Same table mechanics as :meth:`drain`; the difference is
        bookkeeping (``failed`` vs ``draining``) and that pinned flows
        will abort rather than complete -- the invariant that a flow
        never changes backend mid-connection holds even over a corpse.
        Returns False when the backend already left the live set.
        """
        if backend in self.failed:
            return False
        was_live = self._retire(backend)
        self.draining.pop(backend, None)
        self.failed[backend] = self.nic.sim.now
        if was_live:
            self.advance()
        self._trace("lb_fail", (("backend", backend),
                                ("epoch", self.epoch)))
        return True

    def _retire(self, backend: int) -> bool:
        if backend not in self.backend_ports:
            raise KeyError(
                f"unknown backend {backend}; have "
                f"{sorted(self.backend_ports)}"
            )
        if backend not in self.ring:
            return False
        if len(self.ring) == 1:
            raise RuntimeError(
                f"cannot remove backend {backend}: it is the last live "
                f"backend for the VIP"
            )
        self.ring.remove(backend)
        return True

    def gc(self) -> int:
        """Remove every masked (stale-epoch) ``vip_steer`` entry.

        Safe at any instant: stale entries sort after the live epoch, so
        they were already unreachable.  Returns how many were removed.
        """
        table = self.nic.control.program.table("vip_steer")
        stale = [(e, entry) for e, entry in self._entries if e < self.epoch]
        for _, entry in stale:
            table.remove_entry(entry)
        self._entries = [(e, entry) for e, entry in self._entries
                         if e >= self.epoch]
        self._gc_count += len(stale)
        if stale:
            self._trace("lb_gc", (("removed", len(stale)),
                                  ("epoch", self.epoch)))
        return len(stale)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def live_backends(self) -> Tuple[int, ...]:
        return self.ring.backends

    def stats(self) -> Dict[str, int]:
        """Data-plane counters from the ``lb_stats`` register."""
        reg = self._stats_reg
        return {
            "steered": reg.read(LB_STAT_STEERED),
            "inserts": reg.read(LB_STAT_INSERTS),
            "hits": reg.read(LB_STAT_HITS),
            "evictions": reg.read(LB_STAT_EVICTIONS),
            "bypass": reg.read(LB_STAT_BYPASS),
        }

    def report(self) -> dict:
        """Picklable summary for rack reports and the chaos harness."""
        return {
            "vip": self.vip,
            "epoch": self.epoch,
            "backends": list(self.ring.backends),
            "draining": dict(self.draining),
            "failed": dict(self.failed),
            "installed_entries": len(self._entries),
            "gc_removed": self._gc_count,
            "stats": self.stats(),
        }

    def _trace(self, kind: str, args: Tuple) -> None:
        if self._tracer is not None:
            self._tracer.instant(self._trace_ctx, kind,
                                 f"{self.nic.name}.lb",
                                 self.nic.sim.now, args)
