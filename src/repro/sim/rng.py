"""Deterministic random number generation for reproducible experiments.

Every stochastic component takes a :class:`SeededRng` (or a seed) rather
than touching the global ``random`` module, so that two runs with the same
configuration produce bit-identical traces.
"""

from __future__ import annotations

import random
import zlib
from typing import List, Sequence, TypeVar

T = TypeVar("T")


class SeededRng:
    """A thin wrapper over :class:`random.Random` with domain helpers."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._rng = random.Random(seed)

    def fork(self, salt: str) -> "SeededRng":
        """Derive an independent stream (e.g. one per traffic source).

        The salt is mixed with a stable digest, never Python's
        ``hash()``: string hashing is randomized per interpreter launch
        (PYTHONHASHSEED), which would give every process its own stream
        -- run-to-run timestamps would drift, and sharded workers on
        spawn-context platforms would diverge from the monolithic run.
        """
        return SeededRng(
            (self.seed << 32) ^ zlib.crc32(salt.encode("utf-8"))
        )

    # -- primitive draws -------------------------------------------------

    def uniform(self, low: float, high: float) -> float:
        return self._rng.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        return self._rng.randint(low, high)

    def random(self) -> float:
        return self._rng.random()

    def choice(self, seq: Sequence[T]) -> T:
        return self._rng.choice(seq)

    def shuffle(self, items: List[T]) -> None:
        self._rng.shuffle(items)

    def bytes(self, n: int) -> bytes:
        return self._rng.randbytes(n)

    # -- distributions used by workloads ---------------------------------

    def exponential(self, mean: float) -> float:
        """Exponential inter-arrival draw with the given mean (> 0)."""
        if mean <= 0:
            raise ValueError(f"exponential mean must be positive, got {mean}")
        return self._rng.expovariate(1.0 / mean)

    def zipf_index(self, n: int, alpha: float = 0.99) -> int:
        """Draw an index in [0, n) with Zipf(alpha) popularity.

        Uses inverse-CDF over the precomputed harmonic weights; the CDF is
        cached per (n, alpha) because KVS workloads draw millions of keys.
        """
        if n <= 0:
            raise ValueError(f"zipf support size must be positive, got {n}")
        cdf = self._zipf_cdf(n, alpha)
        u = self._rng.random()
        lo, hi = 0, n - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cdf[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return lo

    _zipf_cache: dict = {}

    @classmethod
    def _zipf_cdf(cls, n: int, alpha: float) -> List[float]:
        key = (n, alpha)
        cached = cls._zipf_cache.get(key)
        if cached is not None:
            return cached
        weights = [1.0 / (i + 1) ** alpha for i in range(n)]
        total = sum(weights)
        cdf = []
        acc = 0.0
        for w in weights:
            acc += w / total
            cdf.append(acc)
        cdf[-1] = 1.0
        cls._zipf_cache[key] = cdf
        return cdf

    def __repr__(self) -> str:
        return f"SeededRng(seed={self.seed})"
