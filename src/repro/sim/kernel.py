"""The event-driven simulation kernel.

A :class:`Simulator` owns an event heap.  Everything in the library --
routers, links, RMT stages, offload engines, workload generators, hosts --
is a :class:`Component` registered with one simulator, scheduling callbacks
at future picosecond timestamps.

Determinism: events that share a timestamp fire in scheduling order (a
monotonic sequence number breaks ties), so a run with a fixed RNG seed is
exactly reproducible.

Fast lanes
----------

The kernel keeps the (when, seq) firing order bit-identical while cutting
the Python-level cost per event:

* heap entries are ``(when, seq, event)`` tuples, so ``heapq`` compares
  C-level ints instead of calling :meth:`Event.__lt__`;
* events scheduled *at the current timestamp* bypass the heap entirely and
  ride a FIFO lane -- their sequence numbers are necessarily larger than
  anything already pending at ``now``, except same-timestamp heap entries,
  which the pop logic orders by ``seq`` across both lanes;
* fired events are recycled through a small free list instead of being
  reallocated (only when no outside reference is held, so ``cancel()``
  handles stay safe);
* lazily-cancelled events are compacted out of the heap once they dominate
  it, keeping pushes/pops logarithmic in *live* events.
"""

from __future__ import annotations

import heapq
import sys
from collections import deque
from time import perf_counter as _perf_counter
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.sim.clock import format_time

#: Maximum number of recycled Event objects kept on the free list.
_POOL_MAX = 512
#: Compaction triggers once the heap holds at least this many entries and
#: more than half of them are cancelled.
_COMPACT_MIN = 1024


class SimError(RuntimeError):
    """Raised for kernel misuse (time travel, running a finished sim, ...)."""


class DeadlockError(SimError):
    """``run`` exhausted its event budget with work still pending.

    The message carries :meth:`Simulator.pending_summary`, naming the
    callbacks that keep firing -- usually enough to spot a credit leak or
    a component rescheduling itself forever.
    """


class Event:
    """A scheduled callback.

    Events are created through :meth:`Simulator.schedule` and may be
    cancelled; a cancelled event stays in the heap but is skipped when
    popped (lazy deletion).
    """

    __slots__ = ("when", "seq", "fn", "args", "cancelled", "_sim")

    def __init__(self, when: int, seq: int, fn: Callable[..., None],
                 args: tuple, sim: "Optional[Simulator]" = None):
        self.when = when
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if not self.cancelled:
            self.cancelled = True
            sim = self._sim
            if sim is not None:
                sim._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        return (self.when, self.seq) < (other.when, other.seq)

    def __repr__(self) -> str:
        state = " cancelled" if self.cancelled else ""
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"Event(@{format_time(self.when)} {name}{state})"


#: Process-wide accumulator of events fired across every Simulator.run();
#: the benchmark harness snapshots it around timed sections so wall-clock
#: measurements can report events/sec without holding the Simulator.
_TOTALS = {"events_fired": 0}


def total_events_fired() -> int:
    """Events fired by every :meth:`Simulator.run` call in this process."""
    return _TOTALS["events_fired"]


class Simulator:
    """Discrete-event simulator with integer picosecond time."""

    def __init__(self) -> None:
        self.now: int = 0
        # Heap entries are (when, seq, event) so comparisons stay in C.
        self._heap: List[Tuple[int, int, Event]] = []
        # Same-timestamp lane: events scheduled at exactly `now` in FIFO
        # (= seq) order; drains before time can advance.
        self._fifo: Deque[Event] = deque()
        self._seq: int = 0
        self._components: Dict[str, "Component"] = {}
        self._events_fired: int = 0
        self._finished = False
        self._pool: List[Event] = []
        self._cancelled_pending = 0
        # Deadline of the run() call currently executing (None when the
        # run is unbounded).  The batched train lane reads it through
        # :meth:`train_horizon` so a train never commits state beyond the
        # window a caller asked for -- in the sharded runner that window
        # is the conservative ShardBoundary sync window, which is exactly
        # why trains can never leak across shard barriers.
        self._run_until: Optional[int] = None
        # Passive observers called after every fired event (telemetry
        # probes).  Empty on the hot path: run()'s inlined drain loop is
        # taken only when no hooks are installed.
        self._after_hooks: List[Callable[[int], None]] = []
        # Deferred slots: callbacks run after the currently-executing
        # event's callback returns, when the event schedule is sealed.
        # Used by the train lane to absorb just-scheduled wire arrivals
        # (see defer()).
        self._deferred: Deque[Tuple[Callable[..., None], tuple]] = deque()
        # Optional caller-owned list of the distinct timestamps at which
        # state was mutated: every fired event (step()) and every train
        # hop (advance_clock()).  The speculative shard runtime installs
        # one to detect execution past a commit point; None keeps the
        # hot path branch-free enough to be unmeasurable.
        self._fired_log: Optional[List[int]] = None
        # Optional caller-owned wall-time attribution sink: component
        # name -> [calls, seconds].  None (default) keeps the hot path
        # on the inlined drain loop with zero profiling cost; a sink
        # routes every event through step()'s perf_counter wrap.
        self._profile: Optional[Dict[str, list]] = None

    # ------------------------------------------------------------------
    # Component registry
    # ------------------------------------------------------------------

    def register(self, component: "Component") -> None:
        """Register a component under its (unique) name."""
        name = component.name
        if name in self._components:
            raise SimError(f"duplicate component name: {name!r}")
        self._components[name] = component

    def component(self, name: str) -> "Component":
        """Look up a registered component by name."""
        try:
            return self._components[name]
        except KeyError:
            raise SimError(f"no component named {name!r}") from None

    @property
    def components(self) -> Dict[str, "Component"]:
        """Mapping of all registered components by name (read-only view)."""
        return dict(self._components)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(self, delay_ps: int, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay_ps`` picoseconds from now.

        Body duplicated from :meth:`schedule_at` (with ``when >= now`` by
        construction): this is the hottest scheduling entry point, and the
        extra call level is measurable.
        """
        if delay_ps < 0:
            raise SimError(f"cannot schedule in the past (delay {delay_ps} ps)")
        when = self.now + int(delay_ps)
        seq = self._seq
        self._seq = seq + 1
        pool = self._pool
        if pool:
            event = pool.pop()
            event.when = when
            event.seq = seq
            event.fn = fn
            event.args = args
            event.cancelled = False
        else:
            event = Event(when, seq, fn, args, self)
        if when == self.now:
            self._fifo.append(event)
        else:
            heapq.heappush(self._heap, (when, seq, event))
        return event

    def schedule_at(self, when_ps: int, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at an absolute timestamp."""
        when = int(when_ps)
        if when < self.now:
            raise SimError(
                f"cannot schedule at {when} ps; current time is {self.now} ps"
            )
        seq = self._seq
        self._seq = seq + 1
        pool = self._pool
        if pool:
            event = pool.pop()
            event.when = when
            event.seq = seq
            event.fn = fn
            event.args = args
            event.cancelled = False
        else:
            event = Event(when, seq, fn, args, self)
        if when == self.now:
            # FIFO lane: seq order equals append order, and every entry
            # shares the current timestamp, so no heap needed.
            self._fifo.append(event)
        else:
            heapq.heappush(self._heap, (when, seq, event))
        return event

    def defer(self, fn: Callable[..., None], *args: Any) -> None:
        """Run ``fn(*args)`` once the current event's callback returns.

        Deferred slots exist for speculation that must wait until the
        running event has *finished scheduling*: an optimisation fired
        mid-callback could commit against a horizon that is missing
        events the rest of the callback is about to schedule.  Slots run
        in FIFO order at the current timestamp, before the next event is
        popped (for calls made outside the loop, at the next ``run()``
        or ``step()``).  A slot may defer further slots; they join the
        same drain.
        """
        self._deferred.append((fn, args))

    def make_event(self, when_ps: int, fn: Callable[..., None],
                   *args: Any) -> Event:
        """Allocate an event with the *current* sequence number without
        enqueuing it.

        Companion to :meth:`defer`: a deferred slot that may absorb the
        event entirely (a train ride) reserves its place in the global
        tie-break order now, and either drops the event (absorbed) or
        enqueues it via :meth:`commit_event` -- where it fires exactly
        as if it had been scheduled here, including against later
        same-timestamp events.
        """
        if when_ps < self.now:
            raise SimError(
                f"cannot make an event in the past ({when_ps} < {self.now})"
            )
        seq = self._seq
        self._seq = seq + 1
        pool = self._pool
        if pool:
            event = pool.pop()
            event.when = when_ps
            event.seq = seq
            event.fn = fn
            event.args = args
            event.cancelled = False
            return event
        return Event(when_ps, seq, fn, args, self)

    def commit_event(self, event: Event) -> None:
        """Enqueue an event from :meth:`make_event`.

        Always heap-bound, even at ``when == now``: the pop loops break
        same-timestamp ties between the heap and the FIFO lane by
        sequence number, so an old-seq event committed late still fires
        in its reserved order (the FIFO deque alone could not host it --
        its order is append order).
        """
        heapq.heappush(self._heap, (event.when, event.seq, event))

    def _drain_deferred(self) -> None:
        deferred = self._deferred
        while deferred:
            fn, args = deferred.popleft()
            fn(*args)

    def add_after_event_hook(self, hook: Callable[[int], None]) -> None:
        """Register ``hook(now_ps)`` to run after every fired event.

        Hooks are pure *observers*: they must not schedule or cancel
        events, advance time, or mutate component state -- the kernel
        gives no ordering or reentrancy guarantees beyond "after the
        event's callback returned".  Installing any hook routes ``run()``
        through the generic step loop instead of the inlined drain loop
        (identical semantics, measurably slower), which is why telemetry
        installs one only when probes are actually configured.
        """
        self._after_hooks.append(hook)

    def remove_after_event_hook(self, hook: Callable[[int], None]) -> None:
        """Unregister a hook added by :meth:`add_after_event_hook`."""
        self._after_hooks.remove(hook)

    def _note_cancelled(self) -> None:
        self._cancelled_pending += 1
        heap = self._heap
        if (self._cancelled_pending > _COMPACT_MIN
                and self._cancelled_pending * 2 > len(heap) + len(self._fifo)):
            self._compact()

    def _compact(self) -> None:
        """Drop lazily-cancelled events so heap ops track live work.

        Mutates the heap list and FIFO deque *in place*: the drain loop in
        :meth:`run` holds local aliases to both across callback invocations.
        """
        live = [entry for entry in self._heap if not entry[2].cancelled]
        heapq.heapify(live)
        self._heap[:] = live
        if any(event.cancelled for event in self._fifo):
            survivors = [e for e in self._fifo if not e.cancelled]
            self._fifo.clear()
            self._fifo.extend(survivors)
        self._cancelled_pending = 0

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _pop_next(self) -> Optional[Event]:
        """Pop the next live event across both lanes, or None."""
        heap = self._heap
        fifo = self._fifo
        while heap or fifo:
            if fifo:
                head = fifo[0]
                if heap:
                    when, seq, _ = heap[0]
                    # FIFO entries sit at the current timestamp; a heap
                    # entry wins only with the same `when` and older seq.
                    if when < head.when or (when == head.when and seq < head.seq):
                        head = heapq.heappop(heap)[2]
                    else:
                        fifo.popleft()
                else:
                    fifo.popleft()
            else:
                head = heapq.heappop(heap)[2]
            if head.cancelled:
                if self._cancelled_pending:
                    self._cancelled_pending -= 1
                if len(self._pool) < _POOL_MAX and sys.getrefcount(head) == 2:
                    head.fn = None
                    head.args = ()
                    self._pool.append(head)
                continue
            return head
        return None

    def _peek_when(self) -> Optional[int]:
        """Timestamp of the next live event, discarding cancelled heads."""
        fifo = self._fifo
        while fifo and fifo[0].cancelled:
            fifo.popleft()
            if self._cancelled_pending:
                self._cancelled_pending -= 1
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
            if self._cancelled_pending:
                self._cancelled_pending -= 1
        if fifo and (not heap or heap[0][0] >= fifo[0].when):
            return fifo[0].when
        if heap:
            return heap[0][0]
        return None

    def next_event_ps(self) -> Optional[int]:
        """Timestamp of the next live event, or None when drained.

        Used by the sharded runner (:mod:`repro.sim.shard`) to compute
        conservative synchronization windows: a shard whose next event is
        at ``t`` cannot emit anything onto a cross-shard wire before
        ``t``, so every shard may safely run to ``min_t + lookahead``.
        """
        return self._peek_when()

    def train_horizon(self) -> Optional[float]:
        """First instant a batched frame train may *not* touch.

        The train lane (:mod:`repro.core.train`) may only commit state
        mutations with timestamps **strictly below** this horizon: at the
        horizon itself a pending event (necessarily carrying an older
        sequence number) would fire first under scalar execution and
        could observe the pre-mutation state.  Returns ``None`` when the
        simulator is not quiescent -- a same-timestamp FIFO event is
        still pending, or after-event hooks (telemetry probes) are
        installed and must observe every intermediate step.  Returns
        ``inf`` for a fully drained, unbounded run.

        ``run(until_ps=...)`` fires events *at* ``until_ps``, so the
        horizon inside a bounded window is ``until_ps + 1``.
        """
        if self._fifo or self._after_hooks:
            return None
        nxt = self._peek_when()
        horizon: float = float("inf") if nxt is None else nxt
        if self._run_until is not None and self._run_until + 1 < horizon:
            horizon = self._run_until + 1
        return horizon

    def advance_clock(self, when_ps: int) -> None:
        """Move ``now`` forward inside the currently-executing event.

        Used by the train lane to replay a frame's whole trajectory in
        one event: genuine component methods (``handle``, ``decide``,
        ``service_time_ps``) read ``self.now`` and schedule relative
        delays, so the lane shifts the clock to each emulated hop's
        timestamp before invoking them.  Monotonic only -- the kernel's
        heap invariants do not survive time travel.
        """
        if when_ps < self.now:
            raise SimError(
                f"advance_clock cannot move backwards "
                f"({when_ps} < {self.now})"
            )
        self.now = when_ps
        log = self._fired_log
        if log is not None and (not log or log[-1] != when_ps):
            # Trains mutate component state at emulated hop timestamps
            # without firing heap events; the speculation dirty check
            # must see those instants too.
            log.append(when_ps)

    def set_fired_log(self, log: Optional[List[int]]) -> None:
        """Install (or remove, with ``None``) a mutation-timestamp log.

        While installed, the kernel appends every *distinct* timestamp at
        which component state may have changed -- each fired event's
        ``when`` and each train-lane :meth:`advance_clock` target -- in
        non-decreasing order.  The speculative shard runtime uses it to
        decide whether a shard executed past a commit point and must roll
        back (``log[-1] >= commit_ps``), and to locate the first
        rolled-back timestamp.  The caller owns the list and may clear it
        between windows.
        """
        self._fired_log = log

    def set_profile(self, sink: Optional[Dict[str, list]]) -> None:
        """Install (or remove, with ``None``) a wall-time profile sink.

        While installed, every fired event is timed with
        ``perf_counter`` and attributed to the component that handled it
        (the bound method's owner, falling back to the callback's
        qualname): ``sink[name] = [calls, seconds]``, accumulated in
        place.  The caller owns the dict.  Wall times are measurements
        of *this* process, not simulated state -- they are
        nondeterministic and must never feed reports that are compared
        across execution modes.  Simulated results are bit-identical
        with a sink installed or not (the sink only reroutes ``run()``
        off the inlined drain loop, which preserves firing order).
        """
        self._profile = sink

    def profile_report(self) -> List[tuple]:
        """The installed sink as ``(seconds, calls, name)`` rows, most
        expensive first; empty when no sink is installed."""
        if not self._profile:
            return []
        return sorted(
            ((cell[1], cell[0], name)
             for name, cell in self._profile.items()),
            reverse=True)

    def rewind_clock(self, when_ps: int) -> None:
        """Move ``now`` *backward* to a quiescent instant.

        Only legal when nothing separates the two clock readings: no
        same-timestamp FIFO events, no deferred slots, and no pending
        event earlier than the target.  The speculative shard runtime
        rewinds a cleanly-committed shard from its speculation horizon
        back to the commit point so the next window's cross-shard
        deliveries (all at or beyond the commit point) schedule onto a
        consistent clock.  State is untouched -- by the clean-commit
        check, no component mutated anything past the target.
        """
        when = int(when_ps)
        if when > self.now:
            raise SimError(
                f"rewind_clock cannot move forwards ({when} > {self.now})"
            )
        if self._fifo or self._deferred:
            raise SimError("rewind_clock with same-timestamp work pending")
        nxt = self._peek_when()
        if nxt is not None and nxt < when:
            raise SimError(
                f"rewind_clock past a pending event ({nxt} < {when})"
            )
        self.now = when

    def step(self) -> bool:
        """Fire the next pending event.  Returns False if none remain."""
        event = self._pop_next()
        if event is None:
            return False
        when = event.when
        if when < self.now:
            raise SimError("event heap corrupted: time went backwards")
        self.now = when
        self._events_fired += 1
        log = self._fired_log
        if log is not None and (not log or log[-1] != when):
            log.append(when)
        fn = event.fn
        args = event.args
        profile = self._profile
        if profile is None:
            fn(*args)
        else:
            t0 = _perf_counter()
            fn(*args)
            elapsed = _perf_counter() - t0
            try:
                key = fn.__self__.name
            except AttributeError:
                key = getattr(fn, "__qualname__", repr(fn))
            cell = profile.get(key)
            if cell is None:
                profile[key] = [1, elapsed]
            else:
                cell[0] += 1
                cell[1] += elapsed
        # Recycle the Event unless the caller kept the schedule() handle
        # (refcount: this local + getrefcount's argument).
        if len(self._pool) < _POOL_MAX and sys.getrefcount(event) == 2:
            event.fn = None
            event.args = ()
            self._pool.append(event)
        if self._deferred:
            self._drain_deferred()
        if self._after_hooks:
            now = self.now
            for hook in self._after_hooks:
                hook(now)
        return True

    def run(
        self,
        until_ps: Optional[int] = None,
        max_events: Optional[int] = None,
        on_max_events: str = "return",
    ) -> int:
        """Run until the heap drains, ``until_ps`` is reached, or
        ``max_events`` more events have fired.

        Returns the number of events fired by this call.  When ``until_ps``
        is given, simulated time is advanced to exactly ``until_ps`` even if
        the heap drains earlier, so back-to-back ``run`` calls see a
        consistent clock.

        ``on_max_events`` controls what happens when the event budget is
        exhausted with live events still pending: ``"return"`` (default)
        stops quietly, ``"raise"`` raises :class:`DeadlockError` carrying
        :meth:`pending_summary` -- a budget exhausted with work pending is
        almost always a deadlock or a credit leak, and the summary names
        the callbacks keeping the heap alive.
        """
        if on_max_events not in ("return", "raise"):
            raise SimError(
                f"on_max_events must be 'return' or 'raise', got {on_max_events!r}"
            )
        fired = 0
        # Expose the window deadline to the train lane for the duration
        # of this call (None = unbounded); see train_horizon().
        self._run_until = until_ps
        if self._deferred:
            # Slots queued by calls made outside the event loop (e.g. a
            # direct nic.inject before run()): the caller's schedule is
            # sealed once run() is entered.
            self._drain_deferred()
        if (until_ps is None and max_events is None
                and not self._after_hooks and self._fired_log is None
                and self._profile is None):
            # No deadline, no budget, no observers: drain with the
            # pop/fire machinery of step()/_pop_next() inlined -- two call
            # levels per event is measurable at this volume.  ``_compact``
            # mutates the heap and FIFO in place, keeping the local
            # aliases valid.  (After-event hooks route through the
            # generic step() loop below instead.)
            heap = self._heap
            fifo = self._fifo
            pool = self._pool
            deferred = self._deferred
            heappop = heapq.heappop
            getrefcount = sys.getrefcount
            while True:
                event = None
                while heap or fifo:
                    if fifo:
                        event = fifo[0]
                        if heap:
                            # Subscript (rather than unpack) the heap head:
                            # a lingering local reference to its event
                            # would defeat the refcount-gated recycling.
                            hw = heap[0][0]
                            if hw < event.when or (
                                hw == event.when and heap[0][1] < event.seq
                            ):
                                event = heappop(heap)[2]
                            else:
                                fifo.popleft()
                        else:
                            fifo.popleft()
                    else:
                        event = heappop(heap)[2]
                    if event.cancelled:
                        if self._cancelled_pending:
                            self._cancelled_pending -= 1
                        if len(pool) < _POOL_MAX and getrefcount(event) == 2:
                            event.fn = None
                            event.args = ()
                            pool.append(event)
                        event = None
                        continue
                    break
                if event is None:
                    break
                when = event.when
                if when < self.now:
                    raise SimError("event heap corrupted: time went backwards")
                self.now = when
                self._events_fired += 1
                fired += 1
                fn = event.fn
                args = event.args
                fn(*args)
                if len(pool) < _POOL_MAX and getrefcount(event) == 2:
                    event.fn = None
                    event.args = ()
                    pool.append(event)
                if deferred:
                    self._drain_deferred()
            _TOTALS["events_fired"] += fired
            return fired
        try:
            while True:
                head_when = self._peek_when()
                if head_when is None:
                    break
                if max_events is not None and fired >= max_events:
                    if on_max_events == "raise" and self.live_pending_events:
                        _TOTALS["events_fired"] += fired
                        raise DeadlockError(
                            f"run() exhausted max_events={max_events} at "
                            f"{format_time(self.now)} with work still pending "
                            f"(likely deadlock or livelock)\n"
                            + self.pending_summary()
                        )
                    break
                if until_ps is not None and head_when > until_ps:
                    break
                if self.step():
                    fired += 1
        finally:
            self._run_until = None
        if until_ps is not None and self.now < until_ps:
            self.now = until_ps
        _TOTALS["events_fired"] += fired
        return fired

    def pending_summary(self, limit: int = 8) -> str:
        """Human-readable digest of the live events still in the heap.

        Events are grouped by callback qualname with counts and earliest
        firing time, so a wedged run reports *who* is stuck (e.g. a channel
        ``_complete`` that never delivers) rather than a bare number.
        """
        groups: Dict[str, List[int]] = {}
        pending = [entry[2] for entry in self._heap]
        pending.extend(self._fifo)
        for event in pending:
            if event.cancelled:
                continue
            name = getattr(event.fn, "__qualname__", repr(event.fn))
            groups.setdefault(name, []).append(event.when)
        if not groups:
            return "pending events: none"
        lines = [f"pending events: {sum(len(w) for w in groups.values())}"]
        ranked = sorted(groups.items(), key=lambda kv: (-len(kv[1]), kv[0]))
        for name, whens in ranked[:limit]:
            lines.append(
                f"  {len(whens):>5} x {name} (earliest @{format_time(min(whens))})"
            )
        if len(ranked) > limit:
            lines.append(f"  ... and {len(ranked) - limit} more callback kinds")
        return "\n".join(lines)

    @property
    def live_pending_events(self) -> int:
        """Number of non-cancelled events still in the heap."""
        live = sum(1 for entry in self._heap if not entry[2].cancelled)
        return live + sum(1 for event in self._fifo if not event.cancelled)

    @property
    def events_fired(self) -> int:
        """Total number of events executed since construction."""
        return self._events_fired

    @property
    def pending_events(self) -> int:
        """Number of events still in the heap (including cancelled ones)."""
        return len(self._heap) + len(self._fifo)

    def __repr__(self) -> str:
        return (
            f"Simulator(now={format_time(self.now)}, "
            f"pending={self.pending_events}, fired={self._events_fired})"
        )


class Component:
    """Base class for everything that lives inside a simulation.

    Subclasses get a back-reference to the simulator (``self.sim``), a unique
    ``name``, and convenience wrappers around scheduling.
    """

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name
        # Shadow the class-level wrapper with the simulator's bound method:
        # ``self.schedule(...)`` then dispatches straight into the kernel
        # instead of through an extra Python frame per event scheduled.
        self.schedule = sim.schedule
        sim.register(self)

    def schedule(self, delay_ps: int, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule a callback relative to the current simulated time.

        (Normally shadowed by the instance attribute bound in
        ``__init__``; kept for subclasses that bypass that initializer.)
        """
        return self.sim.schedule(delay_ps, fn, *args)

    @property
    def now(self) -> int:
        """Current simulated time in picoseconds."""
        return self.sim.now

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"
