"""The event-driven simulation kernel.

A :class:`Simulator` owns an event heap.  Everything in the library --
routers, links, RMT stages, offload engines, workload generators, hosts --
is a :class:`Component` registered with one simulator, scheduling callbacks
at future picosecond timestamps.

Determinism: events that share a timestamp fire in scheduling order (a
monotonic sequence number breaks ties), so a run with a fixed RNG seed is
exactly reproducible.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, List, Optional

from repro.sim.clock import format_time


class SimError(RuntimeError):
    """Raised for kernel misuse (time travel, running a finished sim, ...)."""


class DeadlockError(SimError):
    """``run`` exhausted its event budget with work still pending.

    The message carries :meth:`Simulator.pending_summary`, naming the
    callbacks that keep firing -- usually enough to spot a credit leak or
    a component rescheduling itself forever.
    """


class Event:
    """A scheduled callback.

    Events are created through :meth:`Simulator.schedule` and may be
    cancelled; a cancelled event stays in the heap but is skipped when
    popped (lazy deletion).
    """

    __slots__ = ("when", "seq", "fn", "args", "cancelled")

    def __init__(self, when: int, seq: int, fn: Callable[..., None], args: tuple):
        self.when = when
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.when, self.seq) < (other.when, other.seq)

    def __repr__(self) -> str:
        state = " cancelled" if self.cancelled else ""
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"Event(@{format_time(self.when)} {name}{state})"


class Simulator:
    """Discrete-event simulator with integer picosecond time."""

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: List[Event] = []
        self._seq: int = 0
        self._components: Dict[str, "Component"] = {}
        self._events_fired: int = 0
        self._finished = False

    # ------------------------------------------------------------------
    # Component registry
    # ------------------------------------------------------------------

    def register(self, component: "Component") -> None:
        """Register a component under its (unique) name."""
        name = component.name
        if name in self._components:
            raise SimError(f"duplicate component name: {name!r}")
        self._components[name] = component

    def component(self, name: str) -> "Component":
        """Look up a registered component by name."""
        try:
            return self._components[name]
        except KeyError:
            raise SimError(f"no component named {name!r}") from None

    @property
    def components(self) -> Dict[str, "Component"]:
        """Mapping of all registered components by name (read-only view)."""
        return dict(self._components)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(self, delay_ps: int, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay_ps`` picoseconds from now."""
        if delay_ps < 0:
            raise SimError(f"cannot schedule in the past (delay {delay_ps} ps)")
        return self.schedule_at(self.now + int(delay_ps), fn, *args)

    def schedule_at(self, when_ps: int, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at an absolute timestamp."""
        if when_ps < self.now:
            raise SimError(
                f"cannot schedule at {when_ps} ps; current time is {self.now} ps"
            )
        event = Event(int(when_ps), self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Fire the next pending event.  Returns False if none remain."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if event.when < self.now:
                raise SimError("event heap corrupted: time went backwards")
            self.now = event.when
            self._events_fired += 1
            event.fn(*event.args)
            return True
        return False

    def run(
        self,
        until_ps: Optional[int] = None,
        max_events: Optional[int] = None,
        on_max_events: str = "return",
    ) -> int:
        """Run until the heap drains, ``until_ps`` is reached, or
        ``max_events`` more events have fired.

        Returns the number of events fired by this call.  When ``until_ps``
        is given, simulated time is advanced to exactly ``until_ps`` even if
        the heap drains earlier, so back-to-back ``run`` calls see a
        consistent clock.

        ``on_max_events`` controls what happens when the event budget is
        exhausted with live events still pending: ``"return"`` (default)
        stops quietly, ``"raise"`` raises :class:`DeadlockError` carrying
        :meth:`pending_summary` -- a budget exhausted with work pending is
        almost always a deadlock or a credit leak, and the summary names
        the callbacks keeping the heap alive.
        """
        if on_max_events not in ("return", "raise"):
            raise SimError(
                f"on_max_events must be 'return' or 'raise', got {on_max_events!r}"
            )
        fired = 0
        while self._heap:
            if max_events is not None and fired >= max_events:
                if on_max_events == "raise" and self.live_pending_events:
                    raise DeadlockError(
                        f"run() exhausted max_events={max_events} at "
                        f"{format_time(self.now)} with work still pending "
                        f"(likely deadlock or livelock)\n"
                        + self.pending_summary()
                    )
                break
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if until_ps is not None and head.when > until_ps:
                break
            if self.step():
                fired += 1
        if until_ps is not None and self.now < until_ps:
            self.now = until_ps
        return fired

    def pending_summary(self, limit: int = 8) -> str:
        """Human-readable digest of the live events still in the heap.

        Events are grouped by callback qualname with counts and earliest
        firing time, so a wedged run reports *who* is stuck (e.g. a channel
        ``_complete`` that never delivers) rather than a bare number.
        """
        groups: Dict[str, List[int]] = {}
        for event in self._heap:
            if event.cancelled:
                continue
            name = getattr(event.fn, "__qualname__", repr(event.fn))
            groups.setdefault(name, []).append(event.when)
        if not groups:
            return "pending events: none"
        lines = [f"pending events: {sum(len(w) for w in groups.values())}"]
        ranked = sorted(groups.items(), key=lambda kv: (-len(kv[1]), kv[0]))
        for name, whens in ranked[:limit]:
            lines.append(
                f"  {len(whens):>5} x {name} (earliest @{format_time(min(whens))})"
            )
        if len(ranked) > limit:
            lines.append(f"  ... and {len(ranked) - limit} more callback kinds")
        return "\n".join(lines)

    @property
    def live_pending_events(self) -> int:
        """Number of non-cancelled events still in the heap."""
        return sum(1 for event in self._heap if not event.cancelled)

    @property
    def events_fired(self) -> int:
        """Total number of events executed since construction."""
        return self._events_fired

    @property
    def pending_events(self) -> int:
        """Number of events still in the heap (including cancelled ones)."""
        return len(self._heap)

    def __repr__(self) -> str:
        return (
            f"Simulator(now={format_time(self.now)}, "
            f"pending={self.pending_events}, fired={self._events_fired})"
        )


class Component:
    """Base class for everything that lives inside a simulation.

    Subclasses get a back-reference to the simulator (``self.sim``), a unique
    ``name``, and convenience wrappers around scheduling.
    """

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name
        sim.register(self)

    def schedule(self, delay_ps: int, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule a callback relative to the current simulated time."""
        return self.sim.schedule(delay_ps, fn, *args)

    @property
    def now(self) -> int:
        """Current simulated time in picoseconds."""
        return self.sim.now

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"
