"""Time units and clock-domain conversion.

All simulation timestamps are integer picoseconds.  A :class:`Clock` converts
between cycles in a particular clock domain and picoseconds, rounding cycle
counts up so that a component never finishes early.
"""

from __future__ import annotations

#: One picosecond -- the base unit of simulated time.
PS = 1
#: One nanosecond in picoseconds.
NS = 1_000
#: One microsecond in picoseconds.
US = 1_000_000
#: One millisecond in picoseconds.
MS = 1_000_000_000
#: One second in picoseconds.
SEC = 1_000_000_000_000

#: One megahertz, for frequency arguments expressed in Hz.
MHZ = 1_000_000
#: One gigahertz, for frequency arguments expressed in Hz.
GHZ = 1_000_000_000


class Clock:
    """A fixed-frequency clock domain.

    Parameters
    ----------
    freq_hz:
        Clock frequency in hertz.  The paper's reference design runs the RMT
        pipeline and on-chip network at 500 MHz (section 4.2), which is the
        default throughout the library.
    """

    __slots__ = ("freq_hz", "period_ps", "_cycles_memo")

    #: Bound on the per-clock conversion memo; hot callers use a small set
    #: of cycle counts (1, per-hop serialization, fixed engine costs).
    _MEMO_MAX = 1024

    def __init__(self, freq_hz: float = 500 * MHZ):
        if freq_hz <= 0:
            raise ValueError(f"clock frequency must be positive, got {freq_hz}")
        self.freq_hz = freq_hz
        period = SEC / freq_hz
        if period < 1:
            raise ValueError(f"clock frequency {freq_hz} Hz is above 1 THz")
        self.period_ps = int(round(period))
        self._cycles_memo: dict = {}

    def cycles_to_ps(self, cycles: float) -> int:
        """Return the duration of ``cycles`` clock cycles in picoseconds.

        Fractional cycle counts are allowed (e.g. an analytically derived
        service time); the result is rounded up to a whole picosecond.
        Results for common cycle counts are memoised per clock.
        """
        memo = self._cycles_memo
        cached = memo.get(cycles)
        if cached is not None:
            return cached
        if cycles < 0:
            raise ValueError(f"cycle count must be non-negative, got {cycles}")
        ps = cycles * self.period_ps
        ips = int(ps)
        result = ips if ips == ps else ips + 1
        if len(memo) < self._MEMO_MAX:
            memo[cycles] = result
        return result

    def ps_to_cycles(self, ps: int) -> int:
        """Return how many *whole* cycles elapse in ``ps`` picoseconds."""
        if ps < 0:
            raise ValueError(f"duration must be non-negative, got {ps}")
        return ps // self.period_ps

    def next_edge(self, now_ps: int) -> int:
        """Return the first clock edge at or after ``now_ps``."""
        remainder = now_ps % self.period_ps
        if remainder == 0:
            return now_ps
        return now_ps + (self.period_ps - remainder)

    def __repr__(self) -> str:
        return f"Clock({self.freq_hz / MHZ:g} MHz, period={self.period_ps} ps)"


def format_time(ps: int) -> str:
    """Render a picosecond timestamp with a human-friendly unit."""
    if ps >= SEC:
        return f"{ps / SEC:.3f} s"
    if ps >= MS:
        return f"{ps / MS:.3f} ms"
    if ps >= US:
        return f"{ps / US:.3f} us"
    if ps >= NS:
        return f"{ps / NS:.3f} ns"
    return f"{ps} ps"
