"""Discrete-event simulation kernel used by every PANIC substrate.

The kernel is deliberately small: an event heap keyed by integer picosecond
timestamps, a ``Simulator`` facade, clocked ``Component`` objects, and a set
of statistics helpers (counters, histograms, latency trackers).

Time is always an integer number of picoseconds.  Components that run off a
clock convert between cycles and picoseconds through a :class:`Clock`.
"""

from repro.sim.clock import Clock, GHZ, MHZ, NS, PS, US, MS, SEC
from repro.sim.kernel import Event, Simulator, SimError, Component
from repro.sim.stats import (
    Counter,
    Histogram,
    LatencyTracker,
    RateMeter,
    TimeSeries,
)
from repro.sim.rng import SeededRng

__all__ = [
    "Clock",
    "Component",
    "Counter",
    "Event",
    "GHZ",
    "Histogram",
    "LatencyTracker",
    "MHZ",
    "MS",
    "NS",
    "PS",
    "RateMeter",
    "SeededRng",
    "SEC",
    "SimError",
    "Simulator",
    "TimeSeries",
    "US",
]
