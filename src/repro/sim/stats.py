"""Statistics primitives: counters, histograms, latency and rate trackers.

These are plain accumulators -- they do not interact with the event heap --
so they can also be used outside a simulation (e.g. by the analytical
models and the benchmark reporting code).
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Dict, Iterable, List, Optional

from repro.sim.clock import SEC


class Counter:
    """A named monotonic counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = "counter"):
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be non-negative: {amount}")
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Histogram:
    """Streaming histogram with exact quantiles.

    Samples are kept (as a list) and sorted lazily on query.  For the scales
    this library runs at (at most a few million samples per experiment) this
    is simpler and more accurate than approximate sketches.

    Empty-histogram semantics: ``mean``/``minimum``/``maximum`` return
    ``nan`` and ``summary()`` returns ``{"count": 0}``, so reporting code
    survives zero-delivery runs; ``percentile``/``cdf`` still raise --
    there is no meaningful quantile of nothing, and a silent default
    would corrupt downstream math.
    """

    __slots__ = ("name", "_samples", "_sorted", "_total")

    def __init__(self, name: str = "histogram"):
        self.name = name
        self._samples: List[float] = []
        self._sorted = True
        self._total = 0

    def record(self, value: float) -> None:
        self._samples.append(value)
        self._total += value
        self._sorted = False

    def record_many(self, values: Iterable[float]) -> None:
        values = list(values)
        self._samples.extend(values)
        self._total += sum(values)
        self._sorted = False

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def total(self) -> float:
        """Running sum of all samples (cached, not re-summed per query)."""
        return self._total

    @property
    def mean(self) -> float:
        if not self._samples:
            return float("nan")
        return self._total / len(self._samples)

    @property
    def minimum(self) -> float:
        if not self._samples:
            return float("nan")
        return min(self._samples)

    @property
    def maximum(self) -> float:
        if not self._samples:
            return float("nan")
        return max(self._samples)

    @property
    def stddev(self) -> float:
        if len(self._samples) < 2:
            return 0.0
        mu = self.mean
        var = sum((s - mu) ** 2 for s in self._samples) / (len(self._samples) - 1)
        return math.sqrt(var)

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            self._samples.sort()
            self._sorted = True

    def percentile(self, pct: float) -> float:
        """Exact percentile via linear interpolation (pct in [0, 100])."""
        if not 0 <= pct <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {pct}")
        if not self._samples:
            raise ValueError(f"histogram {self.name!r} is empty")
        self._ensure_sorted()
        if len(self._samples) == 1:
            return self._samples[0]
        rank = (pct / 100) * (len(self._samples) - 1)
        low = int(rank)
        frac = rank - low
        if low + 1 >= len(self._samples):
            return self._samples[-1]
        base = self._samples[low]
        # a + frac*(b-a) is exact when a == b (a*(1-f) + b*f is not).
        return base + frac * (self._samples[low + 1] - base)

    @property
    def median(self) -> float:
        return self.percentile(50)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    def cdf(self, value: float) -> float:
        """Fraction of samples <= value."""
        if not self._samples:
            raise ValueError(f"histogram {self.name!r} is empty")
        self._ensure_sorted()
        return bisect_right(self._samples, value) / len(self._samples)

    def summary(self) -> Dict[str, float]:
        """Return a dict of the usual summary statistics.

        An empty histogram summarizes to ``{"count": 0}`` -- no made-up
        quantiles, but reporting loops over many histograms don't blow
        up on the ones a run never touched.
        """
        if not self._samples:
            return {"count": 0}
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.minimum,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "max": self.maximum,
        }

    def __repr__(self) -> str:
        if not self._samples:
            return f"Histogram({self.name}, empty)"
        return (
            f"Histogram({self.name}, n={self.count}, mean={self.mean:.3g}, "
            f"p99={self.p99:.3g})"
        )


class LatencyTracker(Histogram):
    """Histogram specialised for picosecond latencies.

    ``observe(start_ps, end_ps)`` records ``end - start`` and validates the
    interval; summary helpers convert to nanoseconds for readability.
    """

    __slots__ = ()

    def observe(self, start_ps: int, end_ps: int) -> None:
        if end_ps < start_ps:
            raise ValueError(
                f"latency interval ends before it starts ({start_ps} > {end_ps})"
            )
        self.record(end_ps - start_ps)

    def mean_ns(self) -> float:
        return self.mean / 1_000

    def percentile_ns(self, pct: float) -> float:
        return self.percentile(pct) / 1_000


class RateMeter:
    """Tracks an event rate (e.g. packets or bits per second).

    ``record(now_ps, amount)`` accumulates; ``rate_per_sec(now_ps)`` divides
    by elapsed simulated time since the meter was started (or reset).
    When called without ``now_ps`` the rate is measured up to the last
    recorded sample, so trailing idle time is not averaged in; pass the
    current clock explicitly to include it.
    """

    __slots__ = ("name", "start_ps", "total", "last_ps")

    def __init__(self, name: str = "rate", start_ps: int = 0):
        self.name = name
        self.start_ps = start_ps
        self.total = 0.0
        self.last_ps: Optional[int] = None

    def record(self, now_ps: int, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"rate meter amount must be non-negative: {amount}")
        self.total += amount
        self.last_ps = now_ps

    def rate_per_sec(self, now_ps: Optional[int] = None) -> float:
        """Average rate between start and ``now_ps`` (or the last sample)."""
        end = now_ps if now_ps is not None else self.last_ps
        if end is None or end <= self.start_ps:
            return 0.0
        return self.total * SEC / (end - self.start_ps)

    def reset(self, now_ps: int) -> None:
        """Restart the measurement window at ``now_ps``.

        The accumulated total is discarded and the last-sample marker is
        cleared, so ``rate_per_sec()`` reads 0.0 until the next
        ``record`` -- a reset meter has observed nothing yet, and stale
        pre-reset samples must not leak into the new window.
        """
        self.start_ps = now_ps
        self.total = 0.0
        self.last_ps = None

    def __repr__(self) -> str:
        return f"RateMeter({self.name}, total={self.total})"


class TimeSeries:
    """A bounded (time_ps, value) gauge series for component probes.

    Appends are O(1); once ``max_samples`` points are held, further
    samples are counted in ``dropped`` instead of stored -- probes must
    never grow without bound inside long simulations.  The early samples
    are kept (rather than a sliding window) so the series start always
    aligns across components.
    """

    __slots__ = ("name", "unit", "max_samples", "dropped", "_t", "_v")

    def __init__(self, name: str = "series", unit: str = "",
                 max_samples: int = 4096):
        if max_samples <= 0:
            raise ValueError(f"max_samples must be > 0, got {max_samples}")
        self.name = name
        self.unit = unit
        self.max_samples = max_samples
        self.dropped = 0
        self._t: List[int] = []
        self._v: List[float] = []

    def record(self, t_ps: int, value: float) -> None:
        if len(self._t) >= self.max_samples:
            self.dropped += 1
            return
        self._t.append(t_ps)
        self._v.append(value)

    def items(self) -> List[tuple]:
        """The recorded ``(time_ps, value)`` points, in record order."""
        return list(zip(self._t, self._v))

    @property
    def count(self) -> int:
        return len(self._t)

    def __len__(self) -> int:
        return len(self._t)

    def __repr__(self) -> str:
        return (f"TimeSeries({self.name}, n={self.count}"
                + (f", dropped={self.dropped}" if self.dropped else "")
                + ")")
