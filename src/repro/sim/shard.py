"""Rack-scale sharded execution with conservative time windows.

Runs a :class:`~repro.core.topology.RackTopology` either **monolithically**
(every NIC in one :class:`~repro.sim.kernel.Simulator` cabled by real
:class:`~repro.workloads.wire.Wire` components -- the reference semantics)
or **sharded** across worker processes, one ``Simulator`` per worker,
synchronized with a conservative window protocol:

1. Every shard reports the timestamp of its earliest pending event.
2. The coordinator computes the window end ``E = m + L`` where ``m`` is
   the global minimum over those timestamps (and any in-flight cross-shard
   frame arrivals) and ``L`` is the **lookahead** -- the minimum
   propagation delay over all cross-shard wires.
3. Each shard runs its events up to ``E - 1`` inclusive.  Any frame it
   transmits during the window leaves at ``tx >= m`` and arrives at
   ``tx + prop >= m + L = E``, i.e. strictly beyond the window -- so no
   shard can receive anything it should already have processed.
4. At the barrier, egress frames (captured per window by
   :class:`~repro.workloads.wire.ShardBoundary`) are exchanged as
   serialized batches and scheduled at their exact arrival timestamps
   before the next window opens.

Windows are half-open on purpose: shards run ``until E - 1`` so that a
frame arriving exactly at ``E`` is scheduled *before* any local event at
``E`` fires.  Progress is guaranteed because ``m`` advances by at least
``L`` per round (every event at or before ``E - 1`` has fired, so the
next candidate is at least ``E = m + L``).

The sharded run reproduces the monolithic run bit-for-bit: identical
per-NIC ``stats()`` trees and delivery timestamps (enforced by
``tests/test_shard_equivalence.py``).  See DESIGN.md section 10 for the
determinism argument and its one residual tie-breaking caveat.

Speculative windows (opt-in)
----------------------------

``run_sharded(..., speculative=True)`` replaces the conservative window
with an optimistic one: every shard runs ``spec_horizon`` lookaheads past
the safe point, checkpointing its entire state first with a
copy-on-write ``os.fork`` (the parent freezes as the checkpoint; the
child speculates).  At the barrier the coordinator computes the **commit
point** ``W`` -- the low-water mark of every new cross-shard arrival,
capped at the speculation horizon -- and piggybacks it on the next
round's message.  A shard that mutated state at or past ``W`` (detected
through the kernel's fired-timestamp log, which also sees batched train
hops) is a *straggler victim*: it hands the unprocessed message to its
frozen checkpoint and exits; the parent wakes, replays deterministically
to ``W - 1`` (its RNG, heap, and sequence state are the exact
pre-speculation bits, so the replay is bit-identical and its re-emitted
capsules are dropped as duplicates), and speculates onward.  Clean
shards release the checkpoint and rewind their clock to ``W - 1``.
Capsules created at or past ``W`` are discarded at the barrier -- the
rolled-back sender will re-emit them.  ``W >= m + lookahead`` always, so
a speculative round commits at least the conservative window; the
horizon adapts (halves on rollback, doubles on clean rounds).  The
commit sweep preserves bit-identical results by construction: every
event below ``W`` fired with complete information, exactly once, in the
surviving process lineage.  See DESIGN.md section 15.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _conn_wait
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.topology import LinkSpec, RackTopology
from repro.sim.kernel import DeadlockError, SimError, Simulator

#: Default per-window event budget: a backstop against deadlocks and
#: livelocks inside one shard.  A window that fires this many events with
#: work still pending aborts the whole rack run with the shard's pending
#: summary instead of hanging the barrier forever.
DEFAULT_WINDOW_EVENT_BUDGET = 50_000_000

#: Default speculation horizon: how many conservative lookahead windows a
#: shard optimistically runs past the safe point before the barrier.  The
#: coordinator adapts the live horizon between 1 (pure conservative
#: behaviour) and this cap: halved after any rollback, doubled after an
#: all-clean round.
DEFAULT_SPEC_HORIZON = 8


class ShardError(SimError):
    """A worker process failed or the shard protocol was misused."""


class ShardDeadlockError(ShardError):
    """A shard exhausted its per-window event budget with work pending.

    Carries the offending shard id and a ``summary`` that survives the
    worker process: the kernel's ``pending_summary`` (which callbacks
    keep the heap alive) plus the shard's per-NIC engine state naming
    the component that starved -- not just the worker index.
    """

    def __init__(self, shard: int, summary: str):
        super().__init__(
            f"shard {shard} exhausted its window event budget with work "
            f"still pending (likely deadlock or livelock)\n{summary}"
        )
        self.shard = shard
        self.summary = summary


def _shard_pending_detail(nics: Dict[str, Any]) -> str:
    """Name the starved components of a wedged shard: every engine with
    a backlog, busy lanes, or an active fault, per NIC.  Shipped inside
    :class:`ShardDeadlockError` alongside the kernel pending summary."""
    lines: List[str] = [f"shard NICs: {', '.join(sorted(nics)) or '(none)'}"]
    for name in sorted(nics):
        engines = getattr(nics[name], "engines", None) or {}
        stuck = []
        for key in sorted(engines):
            engine = engines[key]
            backlog = getattr(engine, "backlog", 0)
            busy = getattr(engine, "_busy_lanes", 0)
            fault = getattr(engine, "fault_mode", None)
            if backlog or busy or fault:
                note = f"{key}(backlog={backlog}, busy_lanes={busy}"
                note += f", fault={fault})" if fault else ")"
                stuck.append(note)
        if stuck:
            lines.append(f"  {name} starved engines: " + ", ".join(stuck))
    if len(lines) == 1:
        lines.append("  no engine holds work; suspect wires or host timers")
    return "\n".join(lines)


@dataclass
class ShardRunResult:
    """Outcome of one rack run (either execution mode)."""

    mode: str                      # "monolithic" | "sharded"
    workers: int
    reports: Dict[str, dict]       # nic name -> its builder's report()
    events_fired: int              # summed across shards
    wall_seconds: float
    rounds: int = 0                # sync barriers (0 for monolithic)
    lookahead_ps: int = 0
    final_ps: Dict[str, int] = field(default_factory=dict)  # per-NIC sim.now
    #: Merged telemetry: nic name -> canonical span list, or None when no
    #: NIC ran with telemetry.  Span ids are execution-mode independent,
    #: so this merge is comparable between monolithic and sharded runs.
    trace: Optional[Dict[str, list]] = None
    #: Per-direction external-wire fault accounting, keyed by the
    #: mode-independent direction label (``wire0.nic0->nic1``), merged
    #: across shards.  Comparable between execution modes like reports.
    wire_stats: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: True when the run used (or requested) the speculative protocol.
    speculative: bool = False
    #: Horizon cap the speculative coordinator adapted under (0 when the
    #: protocol could not engage, e.g. no cross-shard wires).
    spec_horizon: int = 0
    #: Speculation outcome counters, summed across shards: checkpoints
    #: abandoned (rollbacks), events re-fired during deterministic replay,
    #: and optimistically-fired events thrown away with their checkpoint.
    rollbacks: int = 0
    replayed_events: int = 0
    discarded_events: int = 0
    #: One entry per synchronization round:
    #: ``(commit_ps, dirty_shards, cumulative_rollbacks,
    #: cumulative_replayed_events)``.  Conservative rounds log
    #: ``(window_end + 1, 0, 0, 0)``.  Feeds the Perfetto counter track
    #: (:func:`repro.telemetry.export.shard_window_counters`).
    window_log: List[Tuple[int, int, int, int]] = field(default_factory=list)
    #: Speculation cost profile (speculative runs only): duplicate
    #: cross-shard capsules re-emitted and discarded during deterministic
    #: replays, wall seconds the woken parents spent replaying, and the
    #: horizon (in lookaheads) each round speculated under -- the
    #: adaptation trajectory, one entry per round.
    capsules_replayed: int = 0
    rollback_wall_seconds: float = 0.0
    horizon_history: Tuple[int, ...] = ()
    #: Wall-time attribution (``profile=True`` runs only): merged
    #: ``(seconds, calls, component)`` rows, most expensive first, plus
    #: the per-shard breakdown ``{shard: {"busy_seconds", "profile"}}``
    #: where ``busy_seconds`` is time spent inside ``sim.run`` windows
    #: (barrier waits excluded, so imbalance is visible).  Wall times are
    #: measurements of this host, not simulated state -- nondeterministic,
    #: never part of mode-compared reports.
    profile: Optional[List[tuple]] = None
    shard_profiles: Optional[Dict[int, dict]] = None


def _merge_profile_rows(rows_per_shard) -> List[tuple]:
    """Sum per-shard ``(seconds, calls, name)`` profile rows into one
    report (component names are NIC-prefixed, so cross-shard collisions
    only happen for genuinely shared names like qualname fallbacks)."""
    merged: Dict[str, list] = {}
    for rows in rows_per_shard:
        for seconds, calls, name in rows:
            cell = merged.setdefault(name, [0, 0.0])
            cell[0] += calls
            cell[1] += seconds
    return sorted(
        ((cell[1], cell[0], name) for name, cell in merged.items()),
        reverse=True)


def _mp_context():
    """Fork when the platform offers it (cheap, inherits the import
    state); builders are module-level functions, so spawn works too."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


# ---------------------------------------------------------------------------
# Monolithic reference run
# ---------------------------------------------------------------------------


def run_monolithic(
    topology: RackTopology,
    fault_plan=None,
    profile: bool = False,
) -> ShardRunResult:
    """Run the whole topology in this process: the reference semantics
    every sharded run must reproduce bit-for-bit.

    ``fault_plan`` is an optional rack-scoped
    :class:`~repro.faults.plan.FaultPlan` (targets ``"<nic>:<target>"``
    and ``"wire_<i>_<j>"``) armed through :mod:`repro.faults.rack`.
    ``profile=True`` installs the kernel's per-component wall-time sink
    (:meth:`~repro.sim.kernel.Simulator.set_profile`) and surfaces the
    attribution rows in ``result.profile`` -- simulated results stay
    bit-identical, only this process's wall time is measured.
    """
    from repro.faults.rack import (
        arm_rack_faults, wire_direction_label, wire_ends,
    )
    from repro.workloads.wire import Wire

    t0 = time.perf_counter()
    sim = Simulator()
    if profile:
        sim.set_profile({})
    nics: Dict[str, Any] = {}
    reports: Dict[str, Callable[[], dict]] = {}
    for spec in topology.nics:
        nic, report = spec.builder(sim, spec.name, **spec.params)
        nics[spec.name] = nic
        reports[spec.name] = report
    wires = []
    ends: Dict[Tuple[int, str], Any] = {}
    for index, link in enumerate(topology.links):
        wire = Wire(
            sim, nics[link.nic_a], nics[link.nic_b],
            name=f"wire{index}.{link.nic_a}-{link.nic_b}",
            propagation_ps=link.propagation_ps,
            port_a=link.port_a, port_b=link.port_b,
            fault_labels={
                end: wire_direction_label(index, link, end)
                for end in ("a", "b")
            },
        )
        wires.append(wire)
        ends.update(wire_ends(wire, index))
    arm_rack_faults(fault_plan, topology, sim, nics, ends)
    fired = sim.run()
    wall = time.perf_counter() - t0
    from repro.telemetry.export import merge_trace_reports

    gathered = {name: report() for name, report in reports.items()}
    wire_stats: Dict[str, Dict[str, int]] = {}
    for wire in wires:
        wire_stats.update(wire.wire_stats())
    return ShardRunResult(
        mode="monolithic",
        workers=1,
        reports=gathered,
        events_fired=fired,
        wall_seconds=wall,
        final_ps={name: sim.now for name in nics},
        trace=merge_trace_reports(gathered),
        wire_stats=wire_stats,
        profile=sim.profile_report() if profile else None,
        shard_profiles=(
            {0: {"busy_seconds": wall, "profile": sim.profile_report()}}
            if profile else None
        ),
    )


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------

# Cross-shard boundaries are keyed by (link index, end) where end is "a"
# or "b"; the key names the *receiving* boundary, so a capsule captured at
# end "a" of link 7 is routed to key (7, "b").

_OTHER_END = {"a": "b", "b": "a"}


def _link_end(link: LinkSpec, end: str) -> Tuple[str, int]:
    return (link.nic_a, link.port_a) if end == "a" else (link.nic_b, link.port_b)


def _build_shard(
    sim: Simulator,
    shard: int,
    topology: RackTopology,
    assignment: Dict[str, int],
    fault_plan=None,
):
    """Construct shard ``shard``'s slice of the topology inside ``sim``:
    its NICs, intra-shard wires, cross-shard boundaries, and armed
    faults.  Returns ``(nics, reports, boundaries, wires)``."""
    from repro.faults.rack import (
        arm_rack_faults, boundary_end, wire_direction_label, wire_ends,
    )
    from repro.workloads.wire import ShardBoundary, Wire

    nics: Dict[str, Any] = {}
    reports: Dict[str, Callable[[], dict]] = {}
    for spec in topology.nics:
        if assignment[spec.name] != shard:
            continue
        nic, report = spec.builder(sim, spec.name, **spec.params)
        nics[spec.name] = nic
        reports[spec.name] = report

    boundaries: Dict[Tuple[int, str], Any] = {}
    wires = []
    ends: Dict[Tuple[int, str], Any] = {}
    for index, link in enumerate(topology.links):
        shard_a = assignment[link.nic_a]
        shard_b = assignment[link.nic_b]
        if shard_a == shard and shard_b == shard:
            wire = Wire(
                sim, nics[link.nic_a], nics[link.nic_b],
                name=f"wire{index}.{link.nic_a}-{link.nic_b}",
                propagation_ps=link.propagation_ps,
                port_a=link.port_a, port_b=link.port_b,
                fault_labels={
                    end: wire_direction_label(index, link, end)
                    for end in ("a", "b")
                },
            )
            wires.append(wire)
            ends.update(wire_ends(wire, index))
        elif shard_a == shard or shard_b == shard:
            end = "a" if shard_a == shard else "b"
            nic_name, port = _link_end(link, end)
            peer_name, _ = _link_end(link, _OTHER_END[end])
            boundary = ShardBoundary(
                sim, nics[nic_name], port,
                peer_nic=peer_name,
                propagation_ps=link.propagation_ps,
                name=f"boundary{index}.{nic_name}.p{port}",
                fault_label=wire_direction_label(index, link, end),
            )
            boundaries[(index, end)] = boundary
            ends.update(boundary_end(boundary, index, end))
    arm_rack_faults(fault_plan, topology, sim, nics, ends)
    return nics, reports, boundaries, wires


def _shard_wire_stats(wires, boundaries) -> Dict[str, Dict[str, int]]:
    wire_stats: Dict[str, Dict[str, int]] = {}
    for wire in wires:
        wire_stats.update(wire.wire_stats())
    for boundary in boundaries.values():
        wire_stats.update(boundary.wire_stats())
    return wire_stats


def _shard_worker_main(
    conn,
    shard: int,
    topology: RackTopology,
    assignment: Dict[str, int],
    window_budget: Optional[int],
    fault_plan=None,
    profile: bool = False,
) -> None:
    """Entry point of one shard process.

    Protocol (tuples over a duplex pipe):

    * -> ``("ready", next_ps)`` after construction.
    * <- ``("run", until_ps | None, ingress)`` where ``ingress`` is a list
      of ``(boundary_key, [PacketCapsule, ...])``; runs the window and
      replies ``("done", next_ps, fired, outbox)`` with ``outbox`` keyed
      by *destination* boundary.
    * <- ``("finish",)``; replies
      ``("reports", {nic: report}, now_ps, wire_stats, profile_rows,
      busy_seconds)`` where the last two carry the kernel's wall-time
      attribution and the time this worker spent inside ``sim.run``
      windows (both zero/empty unless ``profile``).
    * Budget exhaustion replies ``("deadlock", summary)``; any other
      failure replies ``("error", traceback)``.
    """
    try:
        sim = Simulator()
        nics, reports, boundaries, wires = _build_shard(
            sim, shard, topology, assignment, fault_plan
        )
        if profile:
            sim.set_profile({})
        busy = 0.0

        conn.send(("ready", sim.next_event_ps()))

        while True:
            message = conn.recv()
            if message[0] == "finish":
                conn.send((
                    "reports",
                    {name: report() for name, report in reports.items()},
                    sim.now,
                    _shard_wire_stats(wires, boundaries),
                    sim.profile_report(),
                    busy,
                ))
                return
            if message[0] != "run":  # pragma: no cover - protocol misuse
                raise ShardError(f"shard {shard}: unexpected {message[0]!r}")
            _, until_ps, ingress = message
            for key, capsules in ingress:
                boundaries[key].schedule_deliveries(capsules)
            window_t0 = time.perf_counter()
            try:
                # Batched execution (repro.core.train) needs no shard
                # awareness: run(until_ps=...) sets the kernel's
                # train_horizon to until_ps + 1, so a train can never
                # commit state beyond the synchronization window that a
                # cross-shard delivery could land in.
                fired = sim.run(
                    until_ps=until_ps,
                    max_events=window_budget,
                    on_max_events="raise",
                )
            except DeadlockError as exc:
                conn.send((
                    "deadlock",
                    f"{exc}\n{_shard_pending_detail(nics)}",
                ))
                return
            busy += time.perf_counter() - window_t0
            outbox = [
                ((index, _OTHER_END[end]), batch)
                for (index, end), boundary in boundaries.items()
                for batch in (boundary.take_outbox(),)
                if batch
            ]
            conn.send(("done", sim.next_event_ps(), fired, outbox))
    except Exception:  # pragma: no cover - ships the traceback out
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):
            pass


# ---------------------------------------------------------------------------
# Speculative worker process (fork-based copy-on-write checkpoints)
# ---------------------------------------------------------------------------


def _send_verdict(fd: int, verdict: tuple) -> None:
    """Deliver the speculator's verdict to its frozen checkpoint and
    close the pipe."""
    data = pickle.dumps(verdict, protocol=pickle.HIGHEST_PROTOCOL)
    with os.fdopen(fd, "wb") as fh:
        fh.write(data)


def _spec_checkpoint():
    """Checkpoint this worker process with a copy-on-write fork.

    Returns ``(None, verdict_fd)`` in the **child**, which speculates
    onward and must eventually deliver exactly one verdict through
    ``verdict_fd``:

    * ``("release",)`` -- the speculation committed cleanly; the frozen
      parent exits and the child is authoritative.
    * ``("rollback", payload)`` -- the child executed past the commit
      point; it exits right after sending, and this call returns
      ``(payload, None)`` **in the parent**, which resumes as the live
      worker from the exact pre-speculation state (heap, RNG streams,
      sequence counters, reliability timers -- every object bit-for-bit,
      which is what makes the replay deterministic).

    The parent never touches the coordinator pipe while frozen, so the
    duplex connection needs no locking.  A child that dies without a
    verdict (coordinator abort, crash) EOFs the pipe and the parent
    exits quietly.
    """
    read_fd, write_fd = os.pipe()
    pid = os.fork()
    if pid == 0:
        os.close(read_fd)
        return None, write_fd
    os.close(write_fd)
    with os.fdopen(read_fd, "rb") as fh:
        try:
            verdict = pickle.load(fh)
        except Exception:
            os._exit(1)
    if verdict[0] == "release":
        os._exit(0)
    os.waitpid(pid, 0)
    return verdict[1], None


def _spec_worker_main(
    conn,
    shard: int,
    topology: RackTopology,
    assignment: Dict[str, int],
    window_budget: Optional[int],
    fault_plan=None,
    profile: bool = False,
) -> None:
    """Entry point of one speculative shard process.

    Protocol (tuples over a duplex pipe):

    * -> ``("ready", next_ps)`` after construction.
    * <- ``("spec", commit_ps, until_ps, checkpoint, ingress)``: first
      resolve the *previous* round at the piggybacked commit point
      (release the frozen checkpoint and rewind, or roll back to it and
      replay), then schedule ingress, fork a fresh checkpoint (skipped
      when ``checkpoint`` is false -- the coordinator proves the round
      commits whole), and speculate to ``until_ps``.  Replies ``("spec_done", next_ps, fired,
      fired_times, outbox, counters)`` where ``fired_times`` is the
      kernel's distinct mutation-timestamp log for the speculation and
      ``counters`` the cumulative speculation counters.
    * <- ``("finish", commit_ps)``: resolve (necessarily clean -- the
      coordinator only finishes after a round with no new cross-shard
      capsules), then reply ``("reports", {nic: report}, now_ps,
      wire_stats, counters, events_fired, profile_rows, busy_seconds)``.
      ``events_fired`` counts the surviving process lineage only, i.e.
      each committed event exactly once; the last two mirror the
      conservative worker's profile payload.
    """
    try:
        sim = Simulator()
        nics, reports, boundaries, wires = _build_shard(
            sim, shard, topology, assignment, fault_plan
        )
        if profile:
            sim.set_profile({})
        busy = 0.0
        fired_log: List[int] = []
        sim.set_fired_log(fired_log)
        # Cumulative speculation counters.  Copy-on-write keeps these
        # lineage-consistent: a child that commits carries its increments
        # forward; a child that rolls back dies and the woken parent's
        # pre-fork copy resumes, so only surviving work is ever counted
        # (the parent itself adds the rollback costs below).
        counters = {
            "rollbacks": 0, "replayed_events": 0, "discarded_events": 0,
            "capsules_replayed": 0, "rollback_wall_seconds": 0.0,
        }
        verdict_fd: Optional[int] = None  # pipe to the frozen checkpoint
        spec_fired = 0  # events fired by this process's last speculation

        conn.send(("ready", sim.next_event_ps()))
        message = conn.recv()
        while True:
            kind = message[0]
            commit_ps = message[1]
            # Phase A: resolve the previous round at commit_ps.  Only a
            # process holding a frozen checkpoint has anything to
            # resolve; a parent resuming after rollback already sits at
            # the commit point with no checkpoint behind it.
            if verdict_fd is not None:
                if fired_log and fired_log[-1] >= commit_ps:
                    # Straggler: state mutated at or past the commit
                    # point.  Forward the unprocessed message to the
                    # checkpoint and vanish; the parent takes over.
                    _send_verdict(
                        verdict_fd, ("rollback", (message, spec_fired))
                    )
                    os._exit(0)
                _send_verdict(verdict_fd, ("release",))
                verdict_fd = None
                if commit_ps - 1 < sim.now:
                    sim.rewind_clock(commit_ps - 1)
            if kind == "finish":
                conn.send((
                    "reports",
                    {name: report() for name, report in reports.items()},
                    sim.now,
                    _shard_wire_stats(wires, boundaries),
                    dict(counters),
                    sim.events_fired,
                    sim.profile_report(),
                    busy,
                ))
                return
            if kind != "spec":  # pragma: no cover - protocol misuse
                raise ShardError(f"shard {shard}: unexpected {kind!r}")
            _, _, until_ps, do_ckpt, ingress = message

            # Phase B: schedule this round's cross-shard arrivals (all at
            # or beyond the commit point), checkpoint, speculate.  The
            # coordinator clears do_ckpt when the window provably commits
            # whole (horizon 1), making the fork unnecessary.
            for key, capsules in ingress:
                boundaries[key].schedule_deliveries(capsules)
            payload, child_fd = (
                _spec_checkpoint() if do_ckpt else (None, None)
            )
            if payload is not None:
                # Parent, woken by a rollback: replay deterministically
                # to the commit point the child could not honour, drop
                # the duplicate capsules the replay re-emits (the
                # coordinator kept the originals), and process the
                # forwarded message as the live worker.
                message, dirty_fired = payload
                counters["rollbacks"] += 1
                counters["discarded_events"] += dirty_fired
                del fired_log[:]
                replay_t0 = time.perf_counter()
                try:
                    counters["replayed_events"] += sim.run(
                        until_ps=message[1] - 1,
                        max_events=window_budget,
                        on_max_events="raise",
                    )
                except DeadlockError as exc:
                    conn.send((
                        "deadlock", f"{exc}\n{_shard_pending_detail(nics)}",
                    ))
                    return
                for boundary in boundaries.values():
                    # Duplicates of capsules the coordinator already
                    # holds -- drop them, but count the re-serialization
                    # work the rollback forced.
                    counters["capsules_replayed"] += len(
                        boundary.take_outbox())
                replay_elapsed = time.perf_counter() - replay_t0
                counters["rollback_wall_seconds"] += replay_elapsed
                busy += replay_elapsed
                continue
            # Child: speculate past the horizon.
            verdict_fd = child_fd
            del fired_log[:]
            window_t0 = time.perf_counter()
            try:
                spec_fired = sim.run(
                    until_ps=until_ps,
                    max_events=window_budget,
                    on_max_events="raise",
                )
            except DeadlockError as exc:
                conn.send((
                    "deadlock", f"{exc}\n{_shard_pending_detail(nics)}",
                ))
                return
            busy += time.perf_counter() - window_t0
            outbox = [
                ((index, _OTHER_END[end]), batch)
                for (index, end), boundary in boundaries.items()
                for batch in (boundary.take_outbox(),)
                if batch
            ]
            conn.send((
                "spec_done", sim.next_event_ps(), spec_fired,
                list(fired_log), outbox, dict(counters),
            ))
            message = conn.recv()
    except (EOFError, BrokenPipeError):
        # Coordinator went away (abort path); frozen ancestors unwind
        # through their verdict-pipe EOFs.
        pass
    except Exception:  # pragma: no cover - ships the traceback out
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):
            pass


# ---------------------------------------------------------------------------
# Coordinator
# ---------------------------------------------------------------------------


def run_sharded(
    topology: RackTopology,
    workers: int,
    window_event_budget: Optional[int] = DEFAULT_WINDOW_EVENT_BUDGET,
    fault_plan=None,
    speculative: bool = False,
    spec_horizon: int = DEFAULT_SPEC_HORIZON,
    profile: bool = False,
) -> ShardRunResult:
    """Run ``topology`` partitioned across ``workers`` processes.

    With one worker (or no cross-shard links) the single shard runs one
    unbounded window -- no barriers, identical to monolithic semantics in
    a child process.  Raises :class:`ShardDeadlockError` when a shard
    exhausts ``window_event_budget`` with work pending, and
    :class:`~repro.core.topology.TopologyError` when a cross-shard wire
    is shorter than the minimum lookahead.

    ``fault_plan`` is an optional rack-scoped fault schedule; every
    worker arms its local subset with plan-global RNG salts (see
    :mod:`repro.faults.rack`), so a faulty sharded run reproduces the
    faulty monolithic run bit-for-bit.

    ``speculative=True`` switches to optimistic windows with
    fork-checkpoint rollback (module docstring): shards run up to
    ``spec_horizon`` lookaheads past the safe point and roll back on
    stragglers.  Results stay bit-identical to the monolithic run; the
    :class:`ShardRunResult` additionally carries rollback/replay
    counters and a per-round window log.  Requires POSIX ``os.fork``.
    When the topology has no cross-shard wires there is nothing to
    speculate past, so the conservative single-window path runs instead
    (the result still reports ``speculative=True`` with zero counters).

    ``profile=True`` installs each worker's kernel wall-time sink and
    gathers the merged attribution plus per-shard busy seconds into
    ``result.profile`` / ``result.shard_profiles`` (nondeterministic
    wall measurements; simulated results are unaffected).
    """
    assignment = topology.assign_shards(workers)
    lookahead = topology.lookahead_ps(assignment)
    spec_live = bool(speculative and lookahead)
    if spec_live and not hasattr(os, "fork"):  # pragma: no cover
        raise ShardError(
            "speculative mode requires POSIX fork for copy-on-write "
            "checkpoints"
        )
    if spec_live and spec_horizon < 1:
        raise ShardError(f"spec_horizon must be >= 1, got {spec_horizon}")

    # Destination boundary key -> owning shard, for routing outboxes.
    key_shard: Dict[Tuple[int, str], int] = {}
    for index, link in enumerate(topology.links):
        if assignment[link.nic_a] != assignment[link.nic_b]:
            key_shard[(index, "a")] = assignment[link.nic_a]
            key_shard[(index, "b")] = assignment[link.nic_b]

    ctx = _mp_context()
    pipes = []
    procs = []
    t0 = time.perf_counter()
    try:
        for shard in range(workers):
            parent, child = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=_spec_worker_main if spec_live else _shard_worker_main,
                args=(child, shard, topology, assignment,
                      window_event_budget, fault_plan, profile),
                name=f"repro-shard-{shard}",
                daemon=True,
            )
            proc.start()
            child.close()
            pipes.append(parent)
            procs.append(proc)

        def expect(shard: int, *kinds: str):
            reply = pipes[shard].recv()
            if reply[0] == "deadlock":
                raise ShardDeadlockError(shard, reply[1])
            if reply[0] == "error":
                raise ShardError(f"shard {shard} failed:\n{reply[1]}")
            if reply[0] not in kinds:  # pragma: no cover
                raise ShardError(
                    f"shard {shard}: expected {kinds}, got {reply[0]!r}"
                )
            return reply

        next_ps: List[Optional[int]] = [
            expect(shard, "ready")[1] for shard in range(workers)
        ]
        inbox: List[Dict[Tuple[int, str], list]] = [
            {} for _ in range(workers)
        ]
        total_fired = 0
        rounds = 0
        window_log: List[Tuple[int, int, int, int]] = []
        rollbacks = replayed = discarded = 0
        capsules_replayed = 0
        rollback_wall = 0.0
        horizon_history: List[int] = []

        if spec_live:
            commit_ps: Optional[int] = None
            horizon = 1 if spec_horizon < 1 else spec_horizon
            while True:
                candidates = [t for t in next_ps if t is not None]
                candidates.extend(
                    capsule.arrival_ps
                    for shard_inbox in inbox
                    for batch in shard_inbox.values()
                    for capsule in batch
                )
                if not candidates:
                    break
                until = min(candidates) + horizon * lookahead - 1
                rounds += 1
                horizon_history.append(horizon)
                # At horizon 1 every new arrival lands at or beyond
                # until + 1, so the round provably commits whole: skip
                # the checkpoint fork, the round degenerates to a
                # conservative window.
                do_ckpt = horizon > 1
                for shard in range(workers):
                    pipes[shard].send((
                        "spec", commit_ps, until, do_ckpt,
                        sorted(inbox[shard].items()),
                    ))
                    inbox[shard] = {}
                replies = [
                    expect(shard, "spec_done") for shard in range(workers)
                ]
                # Commit point: low-water mark of every new cross-shard
                # arrival, capped at the horizon.  Conservative on
                # purpose -- arrivals of capsules that will themselves be
                # rolled back still lower it; that only costs extra
                # replay, never correctness, and W >= m + lookahead
                # keeps each round committing at least the conservative
                # window.
                commit_ps = until + 1
                for _, _, _, _, outbox, _ in replies:
                    for _key, batch in outbox:
                        for capsule in batch:
                            if capsule.arrival_ps < commit_ps:
                                commit_ps = capsule.arrival_ps
                dirty = 0
                rollbacks = replayed = discarded = 0
                for shard, reply in enumerate(replies):
                    _, next_at_s, _fired, fired_times, outbox, ctrs = reply
                    # The shard's corrected next event after the commit
                    # sweep: the first rolled-back timestamp, if any,
                    # else its post-speculation head.
                    first_rolled = next(
                        (t for t in fired_times if t >= commit_ps), None
                    )
                    if first_rolled is not None:
                        dirty += 1
                        next_ps[shard] = (
                            first_rolled if next_at_s is None
                            else min(first_rolled, next_at_s)
                        )
                    else:
                        next_ps[shard] = next_at_s
                    rollbacks += ctrs["rollbacks"]
                    replayed += ctrs["replayed_events"]
                    discarded += ctrs["discarded_events"]
                    for key, batch in outbox:
                        kept = [
                            c for c in batch if c.created_ps < commit_ps
                        ]
                        if kept:
                            inbox[key_shard[key]].setdefault(
                                key, []
                            ).extend(kept)
                # Counters lag one round: a rollback forced by this W
                # shows up in the next reply.  Good enough for a gauge.
                window_log.append((commit_ps, dirty, rollbacks, replayed))
                horizon = (
                    max(1, horizon // 2) if dirty
                    else min(spec_horizon, horizon * 2)
                )
        else:
            while True:
                candidates = [t for t in next_ps if t is not None]
                candidates.extend(
                    capsule.arrival_ps
                    for shard_inbox in inbox
                    for batch in shard_inbox.values()
                    for capsule in batch
                )
                if not candidates:
                    break
                if lookahead:
                    # Half-open window: run to E - 1 so a frame arriving
                    # at exactly E is scheduled before any local event at
                    # E fires.
                    until: Optional[int] = min(candidates) + lookahead - 1
                else:
                    until = None  # no cross-shard wires: unbounded window
                rounds += 1
                for shard in range(workers):
                    pipes[shard].send((
                        "run", until, sorted(inbox[shard].items()),
                    ))
                    inbox[shard] = {}
                exchanged = False
                for shard in range(workers):
                    _, shard_next, fired, outbox = expect(shard, "done")
                    next_ps[shard] = shard_next
                    total_fired += fired
                    for key, batch in outbox:
                        inbox[key_shard[key]].setdefault(key, []).extend(batch)
                        exchanged = True
                if until is not None:
                    window_log.append((until + 1, 0, 0, 0))
                if until is None and not exchanged:
                    break

        reports: Dict[str, dict] = {}
        final_ps: Dict[str, int] = {}
        wire_stats: Dict[str, Dict[str, int]] = {}
        for shard in range(workers):
            pipes[shard].send(
                ("finish", commit_ps) if spec_live else ("finish",)
            )
        if spec_live:
            rollbacks = replayed = discarded = 0
            capsules_replayed = 0
            rollback_wall = 0.0
            total_fired = 0
        shard_profiles: Dict[int, dict] = {}
        for shard in range(workers):
            reply = expect(shard, "reports")
            shard_reports, now_ps, shard_wires = reply[1], reply[2], reply[3]
            if spec_live:
                ctrs, lineage_fired = reply[4], reply[5]
                rollbacks += ctrs["rollbacks"]
                replayed += ctrs["replayed_events"]
                discarded += ctrs["discarded_events"]
                capsules_replayed += ctrs["capsules_replayed"]
                rollback_wall += ctrs["rollback_wall_seconds"]
                # The surviving lineage fired each committed event
                # exactly once; per-round sums would double-count
                # rolled-back work.
                total_fired += lineage_fired
                profile_rows, busy = reply[6], reply[7]
            else:
                profile_rows, busy = reply[4], reply[5]
            if profile:
                shard_profiles[shard] = {
                    "busy_seconds": busy, "profile": profile_rows,
                }
            reports.update(shard_reports)
            wire_stats.update(shard_wires)
            for name in shard_reports:
                final_ps[name] = now_ps
        wall = time.perf_counter() - t0
        for proc in procs:
            proc.join(timeout=30)
        from repro.telemetry.export import merge_trace_reports

        return ShardRunResult(
            mode="sharded",
            workers=workers,
            reports=reports,
            events_fired=total_fired,
            wall_seconds=wall,
            rounds=rounds,
            lookahead_ps=lookahead,
            final_ps=final_ps,
            trace=merge_trace_reports(reports),
            wire_stats=wire_stats,
            speculative=speculative,
            spec_horizon=spec_horizon if spec_live else 0,
            rollbacks=rollbacks,
            replayed_events=replayed,
            discarded_events=discarded,
            window_log=window_log,
            capsules_replayed=capsules_replayed,
            rollback_wall_seconds=rollback_wall,
            horizon_history=tuple(horizon_history),
            profile=(
                _merge_profile_rows(
                    entry["profile"] for entry in shard_profiles.values()
                ) if profile else None
            ),
            shard_profiles=shard_profiles if profile else None,
        )
    finally:
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)
        for pipe in pipes:
            pipe.close()


# ---------------------------------------------------------------------------
# Generic process pool on the same plumbing (used by benchmarks/perf)
# ---------------------------------------------------------------------------


def _map_worker_main(conn, fn: Callable[[Any], Any]) -> None:
    """Worker loop for :func:`parallel_map`: receive ``(index, item)``
    jobs, reply ``("done", index, result)`` until ``("stop",)``."""
    try:
        while True:
            message = conn.recv()
            if message[0] == "stop":
                return
            _, index, item = message
            conn.send(("done", index, fn(item)))
    except Exception:  # pragma: no cover
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):
            pass


def parallel_map(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    jobs: Optional[int] = None,
) -> List[Any]:
    """Map ``fn`` over ``items`` across worker processes, preserving
    order.  ``fn`` must be a module-level (picklable) function.  Jobs are
    dispatched dynamically, so heterogeneous item costs balance out.
    Falls back to an in-process loop for a single job or a single item.
    """
    work = list(items)
    if not work:
        return []
    jobs = max(1, min(jobs or os.cpu_count() or 1, len(work)))
    if jobs == 1:
        return [fn(item) for item in work]

    ctx = _mp_context()
    results: List[Any] = [None] * len(work)
    pending = iter(enumerate(work))
    outstanding = 0
    pipes = []
    procs = []
    try:
        for job in range(jobs):
            parent, child = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=_map_worker_main, args=(child, fn),
                name=f"repro-map-{job}", daemon=True,
            )
            proc.start()
            child.close()
            pipes.append(parent)
            procs.append(proc)

        for pipe in pipes:
            try:
                index, item = next(pending)
            except StopIteration:
                break
            pipe.send(("job", index, item))
            outstanding += 1

        while outstanding:
            for pipe in _conn_wait(pipes):
                reply = pipe.recv()
                if reply[0] == "error":
                    raise ShardError(f"parallel_map worker failed:\n{reply[1]}")
                _, index, result = reply
                results[index] = result
                outstanding -= 1
                try:
                    index, item = next(pending)
                except StopIteration:
                    continue
                pipe.send(("job", index, item))
                outstanding += 1

        for pipe in pipes:
            pipe.send(("stop",))
        for proc in procs:
            proc.join(timeout=30)
        return results
    finally:
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)
        for pipe in pipes:
            pipe.close()
