"""The :class:`Packet` container carried through every simulator.

A packet couples the raw frame bytes with NIC-side metadata: identifiers,
timestamps used by latency trackers, the tenant/flow labels assigned by
classification, and -- inside PANIC -- the parsed on-chip chain header.

Section 3.1 of the paper: *"even messages between different on-NIC engines
... that are not Ethernet packets can be treated as if they were"*.  The
same :class:`Packet` type therefore also represents DMA requests, DMA
completions and doorbells; ``kind`` distinguishes them.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.packet.panic_hdr import PanicHeader

#: Minimum Ethernet frame (64 bytes including FCS).
MIN_FRAME_BYTES = 64
#: Preamble (7) + SFD (1) + inter-frame gap (12) bytes per frame on the wire.
WIRE_OVERHEAD_BYTES = 20


def wire_bits(frame_bytes: int) -> int:
    """Bits a frame occupies on the physical wire, including preamble+IFG.

    Frames shorter than the Ethernet minimum are padded to 64 bytes, which
    is how the paper's Table 2 arrives at its packets-per-second numbers
    (64 B minimum frame + 20 B overhead = 84 B = 672 bits per packet).
    """
    if frame_bytes < 0:
        raise ValueError(f"negative frame size: {frame_bytes}")
    padded = max(frame_bytes, MIN_FRAME_BYTES)
    return (padded + WIRE_OVERHEAD_BYTES) * 8


class MessageKind(enum.Enum):
    """What a message on the unified on-chip network represents."""

    ETHERNET = "ethernet"  # a network frame (RX or TX)
    DMA_READ = "dma_read"  # request to read host memory
    DMA_WRITE = "dma_write"  # request to write host memory
    DMA_COMPLETION = "dma_completion"
    DOORBELL = "doorbell"  # PCIe doorbell / interrupt message
    CONTROL = "control"  # table updates, credits, ...


class Direction(enum.Enum):
    RX = "rx"
    TX = "tx"
    INTERNAL = "internal"


_packet_ids = itertools.count()


@dataclass
class PacketMetadata:
    """Mutable NIC-side metadata that never appears on the external wire."""

    ingress_port: Optional[int] = None
    egress_port: Optional[int] = None
    direction: Direction = Direction.RX
    tenant: Optional[int] = None
    flow_id: Optional[int] = None
    priority: int = 0
    created_ps: int = 0
    nic_arrival_ps: Optional[int] = None
    nic_departure_ps: Optional[int] = None
    #: Per-experiment scratch values (e.g. which offloads touched this packet).
    annotations: Dict[str, Any] = field(default_factory=dict)


class Packet:
    """A message travelling through a NIC simulation.

    Parameters
    ----------
    data:
        The frame (or message) payload bytes.
    kind:
        What the message represents on the unified network.
    meta:
        Optional pre-populated metadata.
    """

    __slots__ = ("packet_id", "data", "kind", "meta", "panic")

    def __init__(
        self,
        data: bytes,
        kind: MessageKind = MessageKind.ETHERNET,
        meta: Optional[PacketMetadata] = None,
    ):
        self.packet_id: int = next(_packet_ids)
        self.data = bytes(data)
        self.kind = kind
        self.meta = meta if meta is not None else PacketMetadata()
        #: PANIC chain header; attached by the RMT pipeline, consumed by
        #: per-engine lookup logic.  ``None`` outside the PANIC NIC.
        self.panic: Optional[PanicHeader] = None

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------

    @property
    def frame_bytes(self) -> int:
        """Length of the frame as handed to / received from the MAC."""
        return len(self.data)

    @property
    def wire_bits(self) -> int:
        """Bits occupied on the external Ethernet wire."""
        return wire_bits(len(self.data))

    @property
    def chip_bits(self) -> int:
        """Bits occupied on the on-chip network (frame + chain header).

        In pointer mode (payload parked in a shared packet buffer) the
        network carries only a descriptor; the MAC sets the
        ``noc_bits`` annotation and this property honours it.
        """
        override = self.meta.annotations.get("noc_bits")
        if override is not None:
            return int(override)
        extra = self.panic.length if self.panic is not None else 0
        return (len(self.data) + extra) * 8

    # ------------------------------------------------------------------
    # Lifecycle helpers
    # ------------------------------------------------------------------

    def touch(self, engine_name: str) -> None:
        """Record that an engine processed this packet (for assertions)."""
        trail = self.meta.annotations.setdefault("trail", [])
        trail.append(engine_name)

    @property
    def trail(self) -> list:
        """Ordered list of engines that processed this packet."""
        return list(self.meta.annotations.get("trail", []))

    def clone(self) -> "Packet":
        """Deep-enough copy with a fresh packet id (for multicast/replies)."""
        copy = Packet(self.data, self.kind, PacketMetadata(**{
            "ingress_port": self.meta.ingress_port,
            "egress_port": self.meta.egress_port,
            "direction": self.meta.direction,
            "tenant": self.meta.tenant,
            "flow_id": self.meta.flow_id,
            "priority": self.meta.priority,
            "created_ps": self.meta.created_ps,
            "nic_arrival_ps": self.meta.nic_arrival_ps,
            "nic_departure_ps": self.meta.nic_departure_ps,
            "annotations": dict(self.meta.annotations),
        }))
        if self.panic is not None:
            copy.panic = self.panic.copy()
        return copy

    def __repr__(self) -> str:
        chain = ""
        if self.panic is not None:
            chain = f", chain={self.panic.remaining()}"
        return (
            f"Packet(#{self.packet_id}, {self.kind.value}, "
            f"{self.frame_bytes}B{chain})"
        )
