"""Wire-format protocol headers: Ethernet, IPv4, UDP, TCP, IPSec ESP.

Each header class packs to and parses from real network byte order, and
validates its fields, so simulated offloads operate on genuine wire bytes.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Tuple

from repro.packet.addresses import IPv4Address, MacAddress
from repro.packet.checksum import internet_checksum

# EtherTypes.
ETHERTYPE_IPV4 = 0x0800
#: Locally administered EtherType for PANIC's internal chain header
#: (prepended to messages while they travel the on-chip network).
ETHERTYPE_PANIC = 0x88B5  # IEEE 802 local experimental

# IP protocol numbers.
IP_PROTO_TCP = 6
IP_PROTO_UDP = 17
IP_PROTO_ESP = 50

#: UDP destination port keying the rack flow-identity tag shim: payloads
#: to this port start with a 16-bit big-endian flow tag (VXLAN-style --
#: the tag rides the payload so every fixed wire offset below it stays
#: put, unlike an 802.1Q tag which would shift the whole L3 stack).  The
#: parser's ``rack_tag`` state extracts it into ``rack.tag`` without
#: consuming it; RMT tables key TX steering and RX slack on the field.
#: 16 bits cover all-pairs flow identity for rack rows far beyond the
#: 6-bit DSCP cap (src * n + dst for n up to 255).
RACK_TAG_UDP_PORT = 9100
#: Width of the tag shim at the start of a RACK_TAG_UDP_PORT payload.
RACK_TAG_BYTES = 2


class HeaderError(ValueError):
    """Raised when bytes cannot be parsed as the requested header."""


@dataclass
class EthernetHeader:
    """A 14-byte Ethernet II header (FCS is modelled, not stored)."""

    dst: MacAddress
    src: MacAddress
    ethertype: int = ETHERTYPE_IPV4

    LENGTH = 14

    def __post_init__(self) -> None:
        self.dst = MacAddress(self.dst)
        self.src = MacAddress(self.src)
        if not 0 <= self.ethertype <= 0xFFFF:
            raise HeaderError(f"ethertype out of range: {self.ethertype:#x}")

    def pack(self) -> bytes:
        return self.dst.to_bytes() + self.src.to_bytes() + struct.pack(
            "!H", self.ethertype
        )

    @classmethod
    def unpack(cls, data: bytes) -> Tuple["EthernetHeader", bytes]:
        if len(data) < cls.LENGTH:
            raise HeaderError(f"truncated Ethernet header: {len(data)} bytes")
        # Wire values cannot violate __post_init__'s range checks (two
        # bytes are always a valid ethertype), so construction bypasses
        # the dataclass validation on this hot parse path.
        header = object.__new__(cls)
        header.dst = MacAddress.from_wire(data[0:6])
        header.src = MacAddress.from_wire(data[6:12])
        header.ethertype = (data[12] << 8) | data[13]
        return header, data[cls.LENGTH :]


@dataclass
class Ipv4Header:
    """An IPv4 header without options (IHL fixed at 5 words / 20 bytes)."""

    src: IPv4Address
    dst: IPv4Address
    protocol: int = IP_PROTO_UDP
    total_length: int = 20
    ttl: int = 64
    dscp: int = 0
    ecn: int = 0  # 0=Not-ECT, 1=ECT(1), 2=ECT(0), 3=CE
    identification: int = 0
    flags_fragment: int = 0x4000  # DF set, offset 0

    LENGTH = 20

    def __post_init__(self) -> None:
        self.src = IPv4Address(self.src)
        self.dst = IPv4Address(self.dst)
        if not 0 <= self.protocol <= 0xFF:
            raise HeaderError(f"protocol out of range: {self.protocol}")
        if not self.LENGTH <= self.total_length <= 0xFFFF:
            raise HeaderError(f"total_length out of range: {self.total_length}")
        if not 0 <= self.ttl <= 0xFF:
            raise HeaderError(f"ttl out of range: {self.ttl}")
        if not 0 <= self.dscp <= 0x3F:
            raise HeaderError(f"dscp out of range: {self.dscp}")
        if not 0 <= self.ecn <= 3:
            raise HeaderError(f"ecn out of range: {self.ecn}")

    def pack(self) -> bytes:
        """Serialize with a freshly computed header checksum."""
        version_ihl = (4 << 4) | 5
        tos = (self.dscp << 2) | self.ecn
        without_cksum = struct.pack(
            "!BBHHHBBH4s4s",
            version_ihl,
            tos,
            self.total_length,
            self.identification,
            self.flags_fragment,
            self.ttl,
            self.protocol,
            0,
            self.src.to_bytes(),
            self.dst.to_bytes(),
        )
        cksum = internet_checksum(without_cksum)
        return without_cksum[:10] + struct.pack("!H", cksum) + without_cksum[12:]

    @classmethod
    def unpack(cls, data: bytes) -> Tuple["Ipv4Header", bytes]:
        if len(data) < cls.LENGTH:
            raise HeaderError(f"truncated IPv4 header: {len(data)} bytes")
        (
            version_ihl,
            tos,
            total_length,
            identification,
            flags_fragment,
            ttl,
            protocol,
            _cksum,
            src,
            dst,
        ) = struct.unpack("!BBHHHBBH4s4s", data[: cls.LENGTH])
        version = version_ihl >> 4
        ihl = version_ihl & 0xF
        if version != 4:
            raise HeaderError(f"not an IPv4 packet (version {version})")
        if ihl != 5:
            raise HeaderError(f"IPv4 options unsupported (IHL {ihl})")
        # Of __post_init__'s checks, only total_length can fail on wire
        # input (a !H can be < 20); replicate it and bypass the rest.
        if total_length < cls.LENGTH:
            raise HeaderError(f"total_length out of range: {total_length}")
        header = object.__new__(cls)
        header.src = IPv4Address.from_wire(src)
        header.dst = IPv4Address.from_wire(dst)
        header.protocol = protocol
        header.total_length = total_length
        header.ttl = ttl
        header.dscp = tos >> 2
        header.ecn = tos & 0x3
        header.identification = identification
        header.flags_fragment = flags_fragment
        return header, data[cls.LENGTH :]

    def pseudo_header(self, l4_length: int) -> bytes:
        """RFC 768/793 pseudo-header for UDP/TCP checksumming."""
        return self.src.to_bytes() + self.dst.to_bytes() + struct.pack(
            "!BBH", 0, self.protocol, l4_length
        )


@dataclass
class UdpHeader:
    """An 8-byte UDP header."""

    src_port: int
    dst_port: int
    length: int = 8
    checksum: int = 0

    LENGTH = 8

    def __post_init__(self) -> None:
        for label, port in (("src", self.src_port), ("dst", self.dst_port)):
            if not 0 <= port <= 0xFFFF:
                raise HeaderError(f"{label} port out of range: {port}")
        if not self.LENGTH <= self.length <= 0xFFFF:
            raise HeaderError(f"UDP length out of range: {self.length}")

    def pack(self) -> bytes:
        return struct.pack(
            "!HHHH", self.src_port, self.dst_port, self.length, self.checksum
        )

    def pack_with_checksum(self, ip: Ipv4Header, payload: bytes) -> bytes:
        """Serialize with a valid checksum over the pseudo-header."""
        datagram = self.pack() + payload
        pseudo = ip.pseudo_header(len(datagram))
        cksum = internet_checksum(pseudo + datagram)
        if cksum == 0:
            cksum = 0xFFFF  # per RFC 768, zero is transmitted as all-ones
        return struct.pack(
            "!HHHH", self.src_port, self.dst_port, self.length, cksum
        )

    @classmethod
    def unpack(cls, data: bytes) -> Tuple["UdpHeader", bytes]:
        if len(data) < cls.LENGTH:
            raise HeaderError(f"truncated UDP header: {len(data)} bytes")
        src_port, dst_port, length, checksum = struct.unpack("!HHHH", data[:8])
        # Ports from a !H are always in range; only the length check of
        # __post_init__ can fail on wire input.
        if length < cls.LENGTH:
            raise HeaderError(f"UDP length out of range: {length}")
        header = object.__new__(cls)
        header.src_port = src_port
        header.dst_port = dst_port
        header.length = length
        header.checksum = checksum
        return header, data[8:]


@dataclass
class TcpHeader:
    """A 20-byte TCP header (no options)."""

    src_port: int
    dst_port: int
    seq: int = 0
    ack: int = 0
    flags: int = 0x10  # ACK
    window: int = 0xFFFF
    checksum: int = 0
    urgent: int = 0

    LENGTH = 20

    FLAG_FIN = 0x01
    FLAG_SYN = 0x02
    FLAG_RST = 0x04
    FLAG_PSH = 0x08
    FLAG_ACK = 0x10

    def __post_init__(self) -> None:
        for label, port in (("src", self.src_port), ("dst", self.dst_port)):
            if not 0 <= port <= 0xFFFF:
                raise HeaderError(f"{label} port out of range: {port}")
        if not 0 <= self.seq < 1 << 32 or not 0 <= self.ack < 1 << 32:
            raise HeaderError("TCP sequence/ack number out of range")

    def pack(self) -> bytes:
        offset_flags = (5 << 12) | (self.flags & 0x1FF)
        return struct.pack(
            "!HHIIHHHH",
            self.src_port,
            self.dst_port,
            self.seq,
            self.ack,
            offset_flags,
            self.window,
            self.checksum,
            self.urgent,
        )

    @classmethod
    def unpack(cls, data: bytes) -> Tuple["TcpHeader", bytes]:
        if len(data) < cls.LENGTH:
            raise HeaderError(f"truncated TCP header: {len(data)} bytes")
        (
            src_port,
            dst_port,
            seq,
            ack,
            offset_flags,
            window,
            checksum,
            urgent,
        ) = struct.unpack("!HHIIHHHH", data[: cls.LENGTH])
        offset_words = offset_flags >> 12
        if offset_words < 5:
            raise HeaderError(f"bad TCP data offset: {offset_words}")
        option_bytes = (offset_words - 5) * 4
        if len(data) < cls.LENGTH + option_bytes:
            raise HeaderError("truncated TCP options")
        header = cls(
            src_port,
            dst_port,
            seq,
            ack,
            offset_flags & 0x1FF,
            window,
            checksum,
            urgent,
        )
        return header, data[cls.LENGTH + option_bytes :]


@dataclass
class EspHeader:
    """An IPSec ESP header (RFC 4303): SPI + sequence number.

    The trailer (padding, pad-length, next-header) and the integrity check
    value are handled by the IPSec engine, which owns the cipher state.
    """

    spi: int
    seq: int

    LENGTH = 8

    def __post_init__(self) -> None:
        if not 0 <= self.spi < 1 << 32:
            raise HeaderError(f"ESP SPI out of range: {self.spi}")
        if not 0 <= self.seq < 1 << 32:
            raise HeaderError(f"ESP sequence out of range: {self.seq}")

    def pack(self) -> bytes:
        return struct.pack("!II", self.spi, self.seq)

    @classmethod
    def unpack(cls, data: bytes) -> Tuple["EspHeader", bytes]:
        if len(data) < cls.LENGTH:
            raise HeaderError(f"truncated ESP header: {len(data)} bytes")
        spi, seq = struct.unpack("!II", data[:8])
        return cls(spi, seq), data[8:]
